//! Domain example: comparing classical trajectory distance metrics against
//! the learned deep representation on the same dataset — the workflow a
//! practitioner would use to decide whether deep clustering is worth the
//! training cost for their data.
//!
//! ```sh
//! cargo run --release -p e2dtc --example metric_comparison
//! ```

use e2dtc::{t2vec_kmeans, E2dtc, E2dtcConfig};
use traj_data::ground_truth::generate_ground_truth;
use traj_data::{GroundTruthConfig, SynthSpec};
use traj_cluster::{kmedoids_alternating, nmi, uacc, KMedoidsConfig};
use traj_dist::{DistanceMatrix, Metric};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let city = SynthSpec::hangzhou_like(300, 11).generate();
    let (data, _) =
        generate_ground_truth(&city.dataset, &city.pois, GroundTruthConfig::default());
    let k = data.num_clusters;
    println!("dataset: {} labelled trajectories, k = {k}\n", data.len());
    println!("{:<22} {:>6} {:>6} {:>9}", "method", "UACC", "NMI", "time");

    // Classical: each metric's distance matrix + K-Medoids.
    for metric in Metric::paper_baselines(200.0) {
        let t0 = std::time::Instant::now();
        let matrix = DistanceMatrix::compute(&data.dataset.trajectories, &metric);
        let mut rng = StdRng::seed_from_u64(0);
        let res = kmedoids_alternating(matrix.data(), data.len(), KMedoidsConfig::new(k), &mut rng);
        println!(
            "{:<22} {:>6.3} {:>6.3} {:>8.2}s",
            format!("{} + K-Medoids", metric.name()),
            uacc(&res.assignment, &data.labels),
            nmi(&res.assignment, &data.labels),
            t0.elapsed().as_secs_f64()
        );
    }

    // Deep two-stage baseline (t2vec + k-means).
    let t0 = std::time::Instant::now();
    let fit = t2vec_kmeans(&data.dataset, E2dtcConfig::fast(k));
    println!(
        "{:<22} {:>6.3} {:>6.3} {:>8.2}s",
        "t2vec + k-means",
        uacc(&fit.assignments, &data.labels),
        nmi(&fit.assignments, &data.labels),
        t0.elapsed().as_secs_f64()
    );

    // Full E²DTC (joint self-training).
    let t0 = std::time::Instant::now();
    let mut model = E2dtc::new(&data.dataset, E2dtcConfig::fast(k));
    let fit = model.fit(&data.dataset);
    println!(
        "{:<22} {:>6.3} {:>6.3} {:>8.2}s",
        "E2DTC (full)",
        uacc(&fit.assignments, &data.labels),
        nmi(&fit.assignments, &data.labels),
        t0.elapsed().as_secs_f64()
    );
}
