//! Domain example: cleaning a raw GPS feed before clustering.
//!
//! Real trackers produce spiky, gappy, redundant streams. This example
//! runs the standard cleanup pipeline — speed-outlier removal, stay-point
//! collapsing, gap splitting, Douglas–Peucker simplification — and shows
//! the effect on dataset size and on clustering quality.
//!
//! ```sh
//! cargo run --release -p e2dtc --example preprocessing_pipeline
//! ```

use e2dtc::{E2dtc, E2dtcConfig};
use traj_data::ground_truth::generate_ground_truth;
use traj_data::preprocess::{
    collapse_stay_points, douglas_peucker, remove_speed_outliers, split_on_gaps,
};
use traj_data::{Dataset, GroundTruthConfig, SynthSpec, Trajectory};
use traj_cluster::{nmi, uacc};

fn main() {
    // A raw feed: higher spike probability than the default presets.
    let mut spec = SynthSpec::hangzhou_like(250, 21);
    spec.spike_prob = 0.08;
    let city = spec.generate();
    let raw = &city.dataset;
    println!(
        "raw feed: {} trajectories, {} points",
        raw.len(),
        raw.total_points()
    );

    // Cleanup pipeline.
    let cleaned: Vec<Trajectory> = raw
        .trajectories
        .iter()
        .flat_map(|t| {
            let t = remove_speed_outliers(t, 60.0); // taxis don't do 216 km/h
            let t = collapse_stay_points(&t, 40.0, 120.0); // idle at lights/ranks
            split_on_gaps(&t, 300.0, 4) // recording interruptions
        })
        .map(|t| douglas_peucker(&t, 15.0)) // drop redundant straight-line points
        .filter(|t| t.len() >= 4)
        .collect();
    let cleaned = Dataset::new("hangzhou-cleaned", cleaned);
    println!(
        "cleaned:  {} trajectories, {} points ({}% of raw)",
        cleaned.len(),
        cleaned.total_points(),
        100 * cleaned.total_points() / raw.total_points().max(1)
    );

    // Label both with Algorithm 2 and cluster both; cleanup should not
    // hurt quality while shrinking the data.
    for (name, dataset) in [("raw", raw.clone()), ("cleaned", cleaned)] {
        let (data, _) =
            generate_ground_truth(&dataset, &city.pois, GroundTruthConfig::default());
        if data.len() < data.num_clusters * 3 {
            println!("{name}: too few labelled trajectories to cluster");
            continue;
        }
        let mut model = E2dtc::new(&data.dataset, E2dtcConfig::fast(data.num_clusters));
        let t0 = std::time::Instant::now();
        let fit = model.fit(&data.dataset);
        println!(
            "{name:<8} UACC {:.3}  NMI {:.3}  (train {:.1}s on {} labelled trips)",
            uacc(&fit.assignments, &data.labels),
            nmi(&fit.assignments, &data.labels),
            t0.elapsed().as_secs_f64(),
            data.len()
        );
    }
}
