//! Domain example: building a labelled trajectory-clustering benchmark
//! from an unlabelled dataset with the paper's Algorithm 2, then exporting
//! it for other tools.
//!
//! Shows the effect of the two parameters: the radius ratio σ (cluster
//! area) and the fallen threshold λ (membership strictness) — the paper's
//! §VI discussion of overlap vs. outliers.
//!
//! ```sh
//! cargo run --release -p e2dtc --example ground_truth_labeling
//! ```

use traj_data::ground_truth::{cluster_radius_m, generate_ground_truth};
use traj_data::io::{export_labeled_csv, save_labeled_json};
use traj_data::{GroundTruthConfig, SynthSpec};

fn main() {
    let city = SynthSpec::geolife_like(600, 5).generate();
    println!(
        "raw dataset: {} trajectories, {} POI cluster centers",
        city.dataset.len(),
        city.pois.len()
    );

    // Parameter study: how σ and λ trade coverage against label purity.
    println!("\n σ     λ    radius(m)  labelled  coverage");
    for &sigma in &[0.3, 0.6, 0.9] {
        for &lambda in &[0.5, 0.7, 0.9] {
            let cfg = GroundTruthConfig::new(sigma, lambda);
            let (labelled, _) = generate_ground_truth(&city.dataset, &city.pois, cfg);
            println!(
                " {sigma:.1}   {lambda:.1}   {:>8.0}  {:>8}   {:>5.1}%",
                cluster_radius_m(&city.pois, sigma),
                labelled.len(),
                100.0 * labelled.len() as f64 / city.dataset.len() as f64
            );
        }
    }

    // The paper's setting, exported for downstream use.
    let (labelled, _) =
        generate_ground_truth(&city.dataset, &city.pois, GroundTruthConfig::default());
    let dir = std::env::temp_dir().join("e2dtc_example");
    std::fs::create_dir_all(&dir).expect("create output dir");
    let json = dir.join("geolife_like_labelled.json");
    let csv = dir.join("geolife_like_labelled.csv");
    save_labeled_json(&labelled, &json).expect("write json");
    export_labeled_csv(&labelled, &csv).expect("write csv");
    println!(
        "\nexported {} labelled trajectories:\n  {}\n  {}",
        labelled.len(),
        json.display(),
        csv.display()
    );
}
