//! Domain example: hot-route analysis of a Porto-like taxi fleet.
//!
//! A dispatcher wants to know the city's dominant trip groups, how many
//! taxis serve each, and which trips don't fit any group (potential
//! anomalies — low-confidence soft assignments). This mirrors the paper's
//! motivating applications: hot-area detection and abnormal-activity
//! analysis.
//!
//! ```sh
//! cargo run --release -p e2dtc --example taxi_fleet_analysis
//! ```

use e2dtc::{E2dtc, E2dtcConfig};
use traj_data::ground_truth::generate_ground_truth;
use traj_data::{GroundTruthConfig, SynthSpec};

fn main() {
    let city = SynthSpec::porto_like(400, 7).generate();
    let (data, _) =
        generate_ground_truth(&city.dataset, &city.pois, GroundTruthConfig::default());
    println!("fleet: {} labelled trips, {} service areas", data.len(), data.num_clusters);

    let mut model = E2dtc::new(&data.dataset, E2dtcConfig::fast(data.num_clusters));
    let fit = model.fit(&data.dataset);

    // Fleet-level summary: trips per discovered group.
    let mut sizes = vec![0usize; data.num_clusters];
    for &c in &fit.assignments {
        sizes[c] += 1;
    }
    println!("\ntrips per discovered hot-route group:");
    for (c, s) in sizes.iter().enumerate() {
        let bar = "#".repeat(s / 2);
        println!("  group {c:>2}: {s:>4}  {bar}");
    }

    // Anomaly screening: trips whose best soft assignment is weak.
    let q = model.soft_assignment(&data.dataset);
    let mut flagged: Vec<(usize, f32)> = (0..data.len())
        .map(|i| {
            let best = q.row(i).iter().cloned().fold(f32::MIN, f32::max);
            (i, best)
        })
        .collect();
    flagged.sort_by(|a, b| a.1.total_cmp(&b.1));
    println!("\n10 least-confident trips (candidates for anomaly review):");
    for (i, conf) in flagged.iter().take(10) {
        println!(
            "  trip {:>5}  confidence {:.3}  ({} GPS points)",
            data.dataset.trajectories[*i].id,
            conf,
            data.dataset.trajectories[*i].len()
        );
    }

    // Serving a new day's data is embed + assign — no retraining.
    let tomorrow = SynthSpec::porto_like(50, 99).generate();
    let t0 = std::time::Instant::now();
    let assignments = model.assign(&tomorrow.dataset);
    println!(
        "\nassigned {} new trips in {:.0} ms",
        assignments.len(),
        t0.elapsed().as_secs_f64() * 1e3
    );
}
