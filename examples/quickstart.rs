//! Quickstart: generate a small synthetic taxi dataset, fit E²DTC, and
//! inspect the clustering.
//!
//! ```sh
//! cargo run --release -p e2dtc --example quickstart
//! ```

use e2dtc::{E2dtc, E2dtcConfig};
use traj_data::ground_truth::generate_ground_truth;
use traj_data::{GroundTruthConfig, SynthSpec};
use traj_cluster::{nmi, rand_index, uacc};

fn main() {
    // 1. A Hangzhou-like synthetic city: 7 POI-anchored clusters, 5 s
    //    taxi sampling, GPS noise and variable sampling rates.
    let city = SynthSpec::hangzhou_like(300, 42).generate();
    println!(
        "generated {} trajectories / {} GPS points",
        city.dataset.len(),
        city.dataset.total_points()
    );

    // 2. Label it with the paper's Algorithm 2 (σ = 0.6, λ = 0.7).
    let (data, _) =
        generate_ground_truth(&city.dataset, &city.pois, GroundTruthConfig::default());
    println!("Algorithm 2 labelled {} trajectories into {} clusters", data.len(), data.num_clusters);

    // 3. Fit E²DTC end-to-end: grid tokenization, skip-gram cell vectors,
    //    seq2seq pre-training, then self-training with the joint loss.
    let mut model = E2dtc::new(&data.dataset, E2dtcConfig::fast(data.num_clusters));
    println!("model has {} trainable parameters", model.num_parameters());
    let fit = model.fit(&data.dataset);

    // 4. Evaluate with the paper's three metrics.
    println!(
        "UACC {:.3}   NMI {:.3}   RI {:.3}",
        uacc(&fit.assignments, &data.labels),
        nmi(&fit.assignments, &data.labels),
        rand_index(&fit.assignments, &data.labels),
    );

    // 5. The trained encoder clusters *new* trajectories without retraining.
    let fresh = SynthSpec::hangzhou_like(20, 1234).generate();
    let assignments = model.assign(&fresh.dataset);
    println!("cluster ids of 20 unseen trajectories: {assignments:?}");
}
