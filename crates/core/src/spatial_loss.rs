//! Spatial-proximity-aware target weights (paper Eq. 8).
//!
//! Plain NLL treats every wrong cell as equally wrong; Eq. 8 instead
//! spreads the target mass over the `k` nearest cells of the ground-truth
//! cell, weighted by `exp(−‖v_g − v_g'‖₂ / α)` over the *cell-embedding*
//! vectors — so predicting a nearby cell is penalized gently and a distant
//! cell heavily. Restricting to the kNN of the target (rather than all of
//! `V`) is the paper's own cost reduction.
//!
//! This module precomputes, for every vocabulary cell, its sparse weight
//! distribution — directly consumable by
//! `Tape::weighted_softmax_nll`.

use crate::cell_embedding::row_distance;
use crate::vocab::{Vocab, SPECIALS};
use serde::{Deserialize, Serialize};
use traj_data::Grid;
use traj_nn::Tensor;

/// Per-target-cell sparse weight distributions for Eq. 8.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WeightTable {
    /// `weights[dense_id]` = sparse `(column, weight)` list summing to 1.
    weights: Vec<Vec<(usize, f32)>>,
}

impl WeightTable {
    /// Builds the table.
    ///
    /// For each vocabulary cell: take the `k` spatially nearest vocabulary
    /// cells (grid distance, self included), weight them by
    /// `exp(−‖v_j − v_target‖ / α)` over the skip-gram `cell_vectors`, and
    /// normalize. `alpha → 0` collapses to a one-hot target (plain NLL).
    /// Special tokens get one-hot self targets.
    pub fn build(
        grid: &Grid,
        vocab: &Vocab,
        cell_vectors: &Tensor,
        k: usize,
        alpha: f32,
    ) -> Self {
        assert!(k >= 1, "kNN size must be at least 1");
        assert_eq!(
            cell_vectors.rows(),
            vocab.size(),
            "one embedding row per vocabulary token"
        );
        let size = vocab.size();
        let mut weights = Vec::with_capacity(size);
        for dense in 0..size {
            if !vocab.is_cell(dense) {
                weights.push(vec![(dense, 1.0)]);
                continue;
            }
            let grid_token = vocab.decode(dense).expect("is_cell checked");
            // k nearest *vocabulary* cells by grid distance. The grid's own
            // knn_cells returns raw grid tokens which may be unobserved, so
            // scan the vocabulary instead (|V| is compact).
            let mut cands: Vec<(f64, usize)> = (SPECIALS..size)
                .map(|other| {
                    let og = vocab.decode(other).expect("cell id");
                    (grid.cell_distance_m(grid_token, og), other)
                })
                .collect();
            cands.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            cands.truncate(k);

            let mut row: Vec<(usize, f32)> = if alpha <= f32::EPSILON {
                vec![(dense, 1.0)]
            } else {
                cands
                    .iter()
                    .map(|&(_, other)| {
                        let d = row_distance(cell_vectors, other, dense);
                        (other, (-d / alpha).exp())
                    })
                    .collect()
            };
            let sum: f32 = row.iter().map(|&(_, w)| w).sum();
            if sum > 0.0 {
                for (_, w) in row.iter_mut() {
                    *w /= sum;
                }
            } else {
                row = vec![(dense, 1.0)];
            }
            weights.push(row);
        }
        Self { weights }
    }

    /// Sparse target distribution for a dense token id.
    pub fn target(&self, dense: usize) -> &[(usize, f32)] {
        &self.weights[dense]
    }

    /// Number of tokens covered.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// True when the table is empty.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use traj_data::{Dataset, GpsPoint, Trajectory};
    use traj_nn::init::Init;

    fn fixture() -> (Grid, Vocab) {
        // A straight line of points, one cell apart.
        let pts = (0..8)
            .map(|j| GpsPoint::new(30.0, 120.0 + j as f64 * 0.004, j as f64))
            .collect();
        let t = Trajectory::new(0, pts);
        let grid = Grid::fit(&Dataset::new("t", vec![t.clone()]), 300.0);
        let vocab = Vocab::build(&grid, &[t]);
        (grid, vocab)
    }

    fn random_vectors(vocab: &Vocab, seed: u64) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        Init::Normal(0.3).tensor(vocab.size(), 8, &mut rng)
    }

    #[test]
    fn rows_are_normalized_distributions() {
        let (grid, vocab) = fixture();
        let vecs = random_vectors(&vocab, 0);
        let table = WeightTable::build(&grid, &vocab, &vecs, 4, 1.0);
        assert_eq!(table.len(), vocab.size());
        for dense in 0..vocab.size() {
            let row = table.target(dense);
            assert!(!row.is_empty());
            let sum: f32 = row.iter().map(|&(_, w)| w).sum();
            assert!((sum - 1.0).abs() < 1e-5, "row {dense} sums to {sum}");
            assert!(row.iter().all(|&(_, w)| w >= 0.0));
            assert!(row.iter().all(|&(c, _)| c < vocab.size()));
        }
    }

    #[test]
    fn target_cell_is_always_covered() {
        let (grid, vocab) = fixture();
        let vecs = random_vectors(&vocab, 1);
        let table = WeightTable::build(&grid, &vocab, &vecs, 4, 1.0);
        for dense in SPECIALS..vocab.size() {
            assert!(
                table.target(dense).iter().any(|&(c, _)| c == dense),
                "target {dense} missing from its own kNN"
            );
        }
    }

    #[test]
    fn alpha_zero_degrades_to_one_hot() {
        let (grid, vocab) = fixture();
        let vecs = random_vectors(&vocab, 2);
        let table = WeightTable::build(&grid, &vocab, &vecs, 6, 0.0);
        for dense in SPECIALS..vocab.size() {
            assert_eq!(table.target(dense), &[(dense, 1.0)]);
        }
    }

    #[test]
    fn specials_get_one_hot_targets() {
        let (grid, vocab) = fixture();
        let vecs = random_vectors(&vocab, 3);
        let table = WeightTable::build(&grid, &vocab, &vecs, 4, 1.0);
        assert_eq!(table.target(0), &[(0, 1.0)]);
        assert_eq!(table.target(1), &[(1, 1.0)]);
    }

    #[test]
    fn knn_truncates_support() {
        let (grid, vocab) = fixture();
        let vecs = random_vectors(&vocab, 4);
        let table = WeightTable::build(&grid, &vocab, &vecs, 3, 1.0);
        for dense in SPECIALS..vocab.size() {
            assert!(table.target(dense).len() <= 3);
        }
    }
}
