//! The E²DTC training pipeline (paper §V, Algorithm 1) — everything that
//! needs `&mut`: pre-training, the self-training joint step, non-finite
//! guards with snapshot rollback, and the periodic-checkpoint policy.
//!
//! Phases, exactly as Fig. 2 lays them out:
//!
//! 1. **Trajectory embedding** (construction, in [`E2dtc::new`]): grid
//!    discretization, compact vocabulary, skip-gram cell vectors.
//! 2. **Pre-training** ([`E2dtc::pretrain`]): corrupt-and-reconstruct
//!    training of the seq2seq model under the spatial loss `L_r` (Eq. 8),
//!    then k-means in the feature space to seed the cluster centroids.
//! 3. **Self-training**: joint optimization of
//!    `L_r + β·L_c + γ·L_t` (Eq. 14), with the target distribution `P`
//!    recomputed each epoch and training stopped once cluster assignments
//!    change by at most `δ`.
//!
//! [`E2dtc::fit`] runs all three and returns assignments, embeddings, and
//! the per-epoch history.
//!
//! ## Fault tolerance (DESIGN.md §10)
//!
//! Training is the single point of failure in the paper's
//! train-once/serve-forever story, so `fit` is hardened three ways:
//!
//! - **Non-finite guards** — every batch's loss and gradients pass
//!   through a [`traj_nn::NonFiniteGuard`]; a poisoned update is skipped
//!   (gradients zeroed, no optimizer step), and after
//!   `guard_patience` consecutive poisoned batches the epoch is replayed
//!   from an in-memory start-of-epoch snapshot with the learning rate
//!   multiplied by `guard_lr_backoff`. Recoveries surface in
//!   [`EpochRecord::skipped_batches`] / [`EpochRecord::rollbacks`].
//! - **Periodic durable checkpoints** — with `checkpoint_every > 0` and a
//!   `checkpoint_dir`, a format-v3 checkpoint (atomic write, checksum;
//!   see [`crate::persist`]) is written after every N completed epochs
//!   and rotated to the newest `checkpoint_keep_last` files.
//! - **Resume** — [`E2dtc::resume`] restores model, optimizer, RNG
//!   stream, and the phase cursor from the last good checkpoint; a
//!   resumed `fit` continues where the interrupted run stopped and, for
//!   the same seed, reproduces the uninterrupted run's final assignments
//!   exactly (pinned by `tests/resume_integration.rs`).

use crate::batcher::{length_buckets, shuffle_batches};
use crate::config::LossMode;
use crate::dec::{hard_assignment, label_change_fraction};
use crate::model::E2dtc;
use crate::vocab::UNK;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use traj_data::augment::corrupt;
use traj_cluster::{kmeans, KMeansConfig, Points};
use traj_data::{Dataset, Trajectory};
use traj_nn::optim::Adam;
use traj_nn::{
    student_t_assignment, target_distribution, GuardVerdict, NonFiniteGuard, ParamId,
    ParamStore, Tape, Tensor,
};

/// Hard cap on guard rollbacks per `fit` call. Replaying an epoch from
/// the same snapshot with the same RNG stream can reproduce the same
/// non-finite batch when the instability is deterministic; the budget
/// turns that pathology into an early stop instead of a livelock.
const MAX_ROLLBACKS: usize = 8;

/// Which phase an epoch record belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Phase {
    /// Pre-training (reconstruction only).
    Pretrain,
    /// Self-training (joint loss).
    SelfTrain,
}

impl Phase {
    /// Wire name used in run-log epoch events.
    pub fn wire_name(self) -> &'static str {
        match self {
            Phase::Pretrain => "pretrain",
            Phase::SelfTrain => "selftrain",
        }
    }
}

/// One epoch of training history.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct EpochRecord {
    /// Phase the epoch belongs to.
    pub phase: Phase,
    /// Epoch index within its phase.
    pub epoch: usize,
    /// Mean reconstruction loss `L_r` (over non-skipped batches).
    pub recon_loss: f32,
    /// Mean clustering loss `L_c` (0 when inactive).
    pub cluster_loss: f32,
    /// Mean triplet loss `L_t` (0 when inactive).
    pub triplet_loss: f32,
    /// Fraction of trajectories that changed cluster at the epoch start
    /// (self-training only).
    pub label_change: Option<f64>,
    /// Mean pre-clip global gradient norm over applied optimizer steps
    /// (0 when no step was applied). Pre-v3 records deserialize to 0.
    #[serde(default)]
    pub grad_norm: f32,
    /// Learning rate in force during the epoch. Pre-v3 records
    /// deserialize to 0.
    #[serde(default)]
    pub lr: f32,
    /// Batches whose update was dropped by the non-finite guard.
    #[serde(default)]
    pub skipped_batches: usize,
    /// Snapshot rollbacks consumed while (re)running this epoch.
    #[serde(default)]
    pub rollbacks: usize,
}

impl EpochRecord {
    /// The record as a run-log event (see `traj_obs::event`).
    pub fn to_event(&self) -> traj_obs::Event {
        traj_obs::Event::Epoch {
            phase: self.phase.wire_name().to_string(),
            epoch: self.epoch as u64,
            recon_loss: f64::from(self.recon_loss),
            cluster_loss: f64::from(self.cluster_loss),
            triplet_loss: f64::from(self.triplet_loss),
            grad_norm: f64::from(self.grad_norm),
            lr: f64::from(self.lr),
            label_change: self.label_change,
            skipped_batches: self.skipped_batches as u64,
            rollbacks: self.rollbacks as u64,
        }
    }
}

/// Mid-training cursor carried inside format-v3 checkpoints: everything
/// `fit` needs — beyond the model parameters themselves — to continue an
/// interrupted run as if it had never stopped.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TrainingState {
    /// Phase of the next epoch to run.
    pub phase: Phase,
    /// Next epoch index within `phase`.
    pub next_epoch: usize,
    /// Completed epochs across both phases (names checkpoint files).
    pub epochs_done: usize,
    /// Accumulated per-epoch history.
    pub history: Vec<EpochRecord>,
    /// Previous self-training assignments (stop-rule state).
    #[serde(default)]
    pub prev_assign: Option<Vec<usize>>,
    /// Captured RNG stream position (four xoshiro256++ state words).
    pub rng: Vec<u64>,
}

impl TrainingState {
    pub(crate) fn fresh() -> Self {
        Self {
            phase: Phase::Pretrain,
            next_epoch: 0,
            epochs_done: 0,
            history: Vec::new(),
            prev_assign: None,
            rng: Vec::new(),
        }
    }
}

/// Outcome of one joint-loss mini-batch step.
struct StepOutcome {
    l_r: f32,
    l_c: f32,
    l_t: f32,
    /// Pre-clip global gradient norm; 0 when the guard withheld the step.
    grad_norm: f32,
    verdict: GuardVerdict,
}

/// In-memory start-of-epoch snapshot the guard rolls back to. Never hits
/// disk; durable recovery is the checkpoint file's job.
struct Snapshot {
    store: ParamStore,
    opt: Adam,
    rng: [u64; 4],
    prev_assign: Option<Vec<usize>>,
}

/// Final output of [`E2dtc::fit`].
#[derive(Clone, Debug)]
pub struct FitResult {
    /// Cluster id per trajectory (aligned with the input dataset).
    pub assignments: Vec<usize>,
    /// Flat `(n, hidden)` trajectory embeddings.
    pub embeddings: Vec<f32>,
    /// Embedding dimensionality.
    pub embed_dim: usize,
    /// Flat `(k, hidden)` final centroids.
    pub centroids: Vec<f32>,
    /// Per-epoch training history.
    pub history: Vec<EpochRecord>,
}

/// Per-epoch observer callback: `(epoch, embeddings (n × hidden flat),
/// current hard assignments)`. Used by the Fig. 5 learning-process
/// experiment. Under a guard rollback the replayed epoch fires the
/// callback again with the restored state.
pub type EpochCallback<'a> = dyn FnMut(usize, &[f32], &[usize]) + 'a;

impl E2dtc {
    /// Runs the full Algorithm 1: pre-training, centroid initialization,
    /// self-training, final assignment. On a model returned by
    /// [`E2dtc::resume`], continues the interrupted run instead of
    /// starting over.
    pub fn fit(&mut self, dataset: &Dataset) -> FitResult {
        self.fit_with_callback(dataset, &mut |_, _, _| {})
    }

    /// [`E2dtc::fit`] with a per-self-training-epoch observer.
    pub fn fit_with_callback(
        &mut self,
        dataset: &Dataset,
        callback: &mut EpochCallback<'_>,
    ) -> FitResult {
        self.ensure_sequences(dataset);
        let mut st = match self.pending.take() {
            Some(s) => {
                // Rejoin the interrupted run's RNG stream exactly where
                // the checkpoint captured it.
                self.rng = StdRng::restore(rng_state_from(&s.rng));
                s
            }
            None => TrainingState::fresh(),
        };
        let mut guard = NonFiniteGuard::new(self.cfg.guard_patience);
        let mut rollback_budget = MAX_ROLLBACKS;
        let mut pending_rollbacks = 0usize;
        let mut tape = Tape::new();
        let fit_span = self.recorder.span("fit");

        // — Phase 2: pre-training (skipped entirely when resuming past it) —
        if st.phase == Phase::Pretrain {
            let _phase_span = self.recorder.span("pretrain");
            let mut epoch = st.next_epoch;
            while epoch < self.cfg.pretrain_epochs {
                let snap = self.snapshot(&st);
                let (mut rec, rolled) =
                    self.pretrain_epoch(dataset, &mut tape, epoch, &mut guard);
                if rolled {
                    if rollback_budget == 0 {
                        self.recorder.warn(format!(
                            "e2dtc: rollback budget exhausted during pre-training; \
                             stopping early at epoch {epoch}"
                        ));
                        break;
                    }
                    rollback_budget -= 1;
                    pending_rollbacks += 1;
                    self.restore(&snap, &mut st, &mut guard);
                    continue; // replay the same epoch from the snapshot
                }
                rec.rollbacks = std::mem::take(&mut pending_rollbacks);
                self.recorder.emit(&rec.to_event());
                st.history.push(rec);
                st.epochs_done += 1;
                st.next_epoch = epoch + 1;
                self.maybe_checkpoint(&mut st);
                epoch += 1;
            }

            if self.cfg.loss_mode == LossMode::L0 {
                // Pre-training only: final clustering is plain k-means
                // (this is simultaneously the paper's L0 ablation and the
                // embedding half of the t2vec + k-means baseline).
                let n = dataset.len();
                let d = self.repr_dim();
                let emb = self.embed_dataset_training(dataset);
                let res = best_kmeans(
                    emb.data(),
                    n,
                    d,
                    self.cfg.k_clusters,
                    self.cfg.seed ^ 0x6b6d65616e73,
                );
                callback(0, emb.data(), &res.assignment);
                drop(fit_span);
                self.finish_run();
                return FitResult {
                    assignments: res.assignment,
                    embeddings: emb.into_vec(),
                    embed_dim: d,
                    centroids: res.centroids,
                    history: st.history,
                };
            }

            // Phase transition: seed the centroids and anneal the LR.
            let _init_span = self.recorder.span("centroid_init");
            let emb = self.embed_dataset_training(dataset);
            self.init_centroids(&emb);
            self.opt.set_lr(self.cfg.lr * self.cfg.selftrain_lr_scale);
            st.phase = Phase::SelfTrain;
            st.next_epoch = 0;
        }

        // — Phase 3: self-training (Algorithm 1, lines 3–10) —
        let phase_span = self.recorder.span("selftrain");
        let centroids_id =
            self.centroids.expect("centroids exist after pre-training or resume");
        let mut epoch = st.next_epoch;
        while epoch < self.cfg.selftrain_epochs {
            let snap = self.snapshot(&st);
            // Epoch bookkeeping: Q, P, assignments, stopping rule.
            let emb = self.embed_dataset_training(dataset);
            let q = student_t_assignment(&emb, self.store.get(centroids_id));
            let p = target_distribution(&q);
            let assign = hard_assignment(&q);
            let change =
                st.prev_assign.as_ref().map(|prev| label_change_fraction(prev, &assign));
            callback(epoch, emb.data(), &assign);
            if let Some(c) = change {
                if c <= self.cfg.delta {
                    let rec = EpochRecord {
                        phase: Phase::SelfTrain,
                        epoch,
                        recon_loss: 0.0,
                        cluster_loss: 0.0,
                        triplet_loss: 0.0,
                        label_change: Some(c),
                        grad_norm: 0.0,
                        lr: self.opt.lr(),
                        skipped_batches: 0,
                        rollbacks: std::mem::take(&mut pending_rollbacks),
                    };
                    self.recorder.emit(&rec.to_event());
                    self.recorder.info(format!(
                        "self-training converged at epoch {epoch}: label change {c:.5} <= \
                         delta {}",
                        self.cfg.delta
                    ));
                    st.history.push(rec);
                    break;
                }
            }
            st.prev_assign = Some(assign.clone());

            // One pass of joint training.
            let batches = self.make_batches(dataset.len());
            let (mut sum_r, mut sum_c, mut sum_t) = (0.0f64, 0.0f64, 0.0f64);
            let mut sum_norm = 0.0f64;
            let mut count = 0usize;
            let mut skipped = 0usize;
            let mut rolled = false;
            let mut batch_ms = self.recorder.enabled().then(traj_obs::Histogram::new);
            for batch in &batches {
                let t0 = batch_ms.is_some().then(std::time::Instant::now);
                let negatives = mine_negatives(batch, &assign, &emb);
                let step = self.joint_step(
                    &mut tape,
                    dataset,
                    batch,
                    &p,
                    centroids_id,
                    &negatives,
                    &mut guard,
                );
                if let (Some(h), Some(t0)) = (batch_ms.as_mut(), t0) {
                    h.record(t0.elapsed().as_secs_f64() * 1e3);
                }
                match step.verdict {
                    GuardVerdict::Proceed => {
                        sum_r += step.l_r as f64;
                        sum_c += step.l_c as f64;
                        sum_t += step.l_t as f64;
                        sum_norm += step.grad_norm as f64;
                        count += 1;
                    }
                    GuardVerdict::Skip => skipped += 1,
                    GuardVerdict::Rollback => {
                        skipped += 1;
                        rolled = true;
                        break;
                    }
                }
            }
            if rolled {
                if rollback_budget == 0 {
                    self.recorder.warn(format!(
                        "e2dtc: rollback budget exhausted during self-training; \
                         stopping early at epoch {epoch}"
                    ));
                    break;
                }
                rollback_budget -= 1;
                pending_rollbacks += 1;
                self.restore(&snap, &mut st, &mut guard);
                continue; // replay the same epoch from the snapshot
            }
            if let Some(h) = &batch_ms {
                self.recorder.histogram("selftrain.batch_ms", h);
            }
            let rec = EpochRecord {
                phase: Phase::SelfTrain,
                epoch,
                recon_loss: (sum_r / count.max(1) as f64) as f32,
                cluster_loss: (sum_c / count.max(1) as f64) as f32,
                triplet_loss: (sum_t / count.max(1) as f64) as f32,
                label_change: change,
                grad_norm: (sum_norm / count.max(1) as f64) as f32,
                lr: self.opt.lr(),
                skipped_batches: skipped,
                rollbacks: std::mem::take(&mut pending_rollbacks),
            };
            self.recorder.emit(&rec.to_event());
            st.history.push(rec);
            st.epochs_done += 1;
            st.next_epoch = epoch + 1;
            self.maybe_checkpoint(&mut st);
            epoch += 1;
        }
        drop(phase_span);

        // Final assignment with the trained parameters.
        let emb = self.embed_dataset_training(dataset);
        let q = student_t_assignment(&emb, self.store.get(centroids_id));
        drop(fit_span);
        self.finish_run();
        FitResult {
            assignments: hard_assignment(&q),
            embed_dim: emb.cols(),
            embeddings: emb.into_vec(),
            centroids: self.store.get(centroids_id).data().to_vec(),
            history: st.history,
        }
    }

    /// End-of-run telemetry: kernel counter snapshots, then a flush so a
    /// crash after `fit` cannot lose buffered run-log lines.
    fn finish_run(&self) {
        if !self.recorder.enabled() {
            return;
        }
        let nn = traj_nn::telemetry::counters();
        self.recorder.counters(&nn);
        self.recorder.flush();
    }

    /// Phase 2: corrupt-and-reconstruct pre-training (Algorithm 1,
    /// lines 1–2). Each epoch draws one random `(r1, r2)` corruption per
    /// trajectory from the configured rate grids (the paper's 16-pair
    /// sweep, sampled across epochs instead of materialized at once).
    ///
    /// Non-finite batches are skipped (no parameter update); standalone
    /// pre-training keeps no snapshot, so the guard never rolls back here
    /// — that escalation belongs to [`E2dtc::fit`].
    pub fn pretrain(&mut self, dataset: &Dataset, epochs: usize) -> Vec<EpochRecord> {
        self.ensure_sequences(dataset);
        let mut history = Vec::with_capacity(epochs);
        // One tape reused across every batch: clear() keeps the node
        // buffer's allocation, so steady-state batches allocate no graph.
        let mut tape = Tape::new();
        let mut guard = NonFiniteGuard::new(0);
        for epoch in 0..epochs {
            let (rec, _) = self.pretrain_epoch(dataset, &mut tape, epoch, &mut guard);
            history.push(rec);
        }
        history
    }

    /// One pre-training epoch. Returns the record and whether the guard
    /// requested a rollback (in which case the epoch aborted mid-way and
    /// the record must be discarded).
    fn pretrain_epoch(
        &mut self,
        dataset: &Dataset,
        tape: &mut Tape,
        epoch: usize,
        guard: &mut NonFiniteGuard,
    ) -> (EpochRecord, bool) {
        let batches = self.make_batches(dataset.len());
        let mut total = 0.0f64;
        let mut sum_norm = 0.0f64;
        let mut count = 0usize;
        let mut skipped = 0usize;
        let mut rolled = false;
        let mut batch_ms = self.recorder.enabled().then(traj_obs::Histogram::new);
        for batch in &batches {
            let t0 = batch_ms.is_some().then(std::time::Instant::now);
            let (inputs, targets) = self.corrupted_batch(dataset, batch);
            tape.clear();
            let input_refs: Vec<&[usize]> = inputs.iter().map(Vec::as_slice).collect();
            let target_refs: Vec<&[usize]> = targets.iter().map(Vec::as_slice).collect();
            let enc = self.model.encode(tape, &self.store, &input_refs, true, &mut self.rng);
            let loss = self.model.reconstruction_loss(
                tape,
                &self.store,
                &enc,
                &target_refs,
                &self.weights,
                true,
                &mut self.rng,
            );
            let loss_val = self.observe_loss(tape.value(loss).get(0, 0));
            tape.backward(loss, &mut self.store);
            let verdict = guard.observe(loss_val, &self.store);
            if let (Some(h), Some(t0)) = (batch_ms.as_mut(), t0) {
                h.record(t0.elapsed().as_secs_f64() * 1e3);
            }
            match verdict {
                GuardVerdict::Proceed => {
                    sum_norm += self.opt.step(&mut self.store) as f64;
                    total += loss_val as f64;
                    count += 1;
                }
                GuardVerdict::Skip => {
                    self.store.zero_grads();
                    skipped += 1;
                }
                GuardVerdict::Rollback => {
                    self.store.zero_grads();
                    skipped += 1;
                    rolled = true;
                    break;
                }
            }
        }
        if let Some(h) = &batch_ms {
            if !rolled {
                self.recorder.histogram("pretrain.batch_ms", h);
            }
        }
        let rec = EpochRecord {
            phase: Phase::Pretrain,
            epoch,
            recon_loss: (total / count.max(1) as f64) as f32,
            cluster_loss: 0.0,
            triplet_loss: 0.0,
            label_change: None,
            grad_norm: (sum_norm / count.max(1) as f64) as f32,
            lr: self.opt.lr(),
            skipped_batches: skipped,
            rollbacks: 0,
        };
        (rec, rolled)
    }

    /// Embeds every trajectory of `dataset` through the *training-loop*
    /// forward: the tape path, visiting batches in shuffled order so the
    /// RNG stream advances exactly as it always has (checkpoint resume
    /// and the golden-run suite both pin that stream). Values are
    /// bit-identical to the tape-free [`E2dtc::embed_dataset`]
    /// (`tests/frozen_parity.rs`); only the RNG side effect differs.
    pub fn embed_dataset_training(&mut self, dataset: &Dataset) -> Tensor {
        let sequences = self.dataset_sequences(dataset);
        let n = sequences.len();
        let d = self.repr_dim();
        let mut out = Tensor::zeros(n, d);
        let mut tape = Tape::new();
        for batch in self.make_batches_for(&sequences) {
            tape.clear();
            let refs: Vec<&[usize]> =
                batch.iter().map(|&i| sequences[i].as_slice()).collect();
            let enc = self.model.encode(&mut tape, &self.store, &refs, false, &mut self.rng);
            let repr = tape.value(enc.repr);
            for (row, &i) in batch.iter().enumerate() {
                out.row_mut(i).copy_from_slice(repr.row(row));
            }
        }
        out
    }

    /// Initializes the cluster centroids by k-means over the embeddings
    /// (paper §V-C, last paragraph). Re-initializes if called again.
    pub fn init_centroids(&mut self, embeddings: &Tensor) {
        let n = embeddings.rows();
        let d = embeddings.cols();
        let res =
            best_kmeans(embeddings.data(), n, d, self.cfg.k_clusters, self.cfg.seed ^ 0x63656e74);
        let tensor = Tensor::from_vec(self.cfg.k_clusters, d, res.centroids);
        match self.centroids {
            Some(id) => *self.store.get_mut(id) = tensor,
            None => self.centroids = Some(self.store.add("centroids", tensor)),
        }
    }

    /// One joint-loss mini-batch: `L_r + β·L_c + γ·L_t` per the active
    /// [`LossMode`]. `negatives[row]` is the batch-row index of the mined
    /// triplet negative for anchor `row`. Returns the three loss values,
    /// the pre-clip gradient norm, and the guard's verdict (the optimizer
    /// step is applied only on [`GuardVerdict::Proceed`]).
    #[allow(clippy::too_many_arguments)]
    fn joint_step(
        &mut self,
        tape: &mut Tape,
        dataset: &Dataset,
        batch: &[usize],
        p: &Tensor,
        centroids_id: ParamId,
        negatives: &[usize],
        guard: &mut NonFiniteGuard,
    ) -> StepOutcome {
        let (inputs, targets) = self.corrupted_batch(dataset, batch);
        tape.clear();
        let input_refs: Vec<&[usize]> = inputs.iter().map(Vec::as_slice).collect();
        let target_refs: Vec<&[usize]> = targets.iter().map(Vec::as_slice).collect();

        // Anchor embeddings from the *original* sequences; positives from
        // the corrupted variants (which also drive reconstruction).
        let enc_orig =
            self.model.encode(tape, &self.store, &target_refs, true, &mut self.rng);
        let enc_corr =
            self.model.encode(tape, &self.store, &input_refs, true, &mut self.rng);
        let l_r = self.model.reconstruction_loss(
            tape,
            &self.store,
            &enc_corr,
            &target_refs,
            &self.weights,
            true,
            &mut self.rng,
        );
        let mut total = l_r;
        let lr_val = tape.value(l_r).get(0, 0);
        let mut lc_val = 0.0;
        let mut lt_val = 0.0;

        if matches!(self.cfg.loss_mode, LossMode::L1 | LossMode::L2) {
            // Batch rows of the (epoch-fixed) target distribution P.
            let k = p.cols();
            let mut p_batch = Tensor::zeros(batch.len(), k);
            for (row, &i) in batch.iter().enumerate() {
                p_batch.row_mut(row).copy_from_slice(p.row(i));
            }
            let cvar = tape.param(&self.store, centroids_id);
            let l_c = tape.dec_kl(enc_orig.repr, cvar, p_batch);
            lc_val = tape.value(l_c).get(0, 0);
            let scaled = tape.scale(l_c, self.cfg.beta);
            total = tape.add(total, scaled);
        }
        if self.cfg.loss_mode == LossMode::L2 && batch.len() >= 2 {
            let neg_rows = tape.gather_rows(enc_orig.repr, negatives);
            let l_t = tape.triplet(
                enc_orig.repr,
                enc_corr.repr,
                neg_rows,
                self.cfg.triplet_margin,
            );
            lt_val = tape.value(l_t).get(0, 0);
            let scaled = tape.scale(l_t, self.cfg.gamma);
            total = tape.add(total, scaled);
        }

        let total_val = self.observe_loss(tape.value(total).get(0, 0));
        tape.backward(total, &mut self.store);
        let verdict = guard.observe(total_val, &self.store);
        let mut grad_norm = 0.0;
        match verdict {
            GuardVerdict::Proceed => {
                grad_norm = self.opt.step(&mut self.store);
            }
            GuardVerdict::Skip | GuardVerdict::Rollback => self.store.zero_grads(),
        }
        StepOutcome { l_r: lr_val, l_c: lc_val, l_t: lt_val, grad_norm, verdict }
    }

    /// Fault-injection seam: the batch loss as the guard will see it.
    /// With the `fault-injection` feature an installed [`crate::fault::FaultPlan`]
    /// may replace it with NaN; in production builds this is the identity.
    #[allow(unused_mut)]
    fn observe_loss(&mut self, loss: f32) -> f32 {
        #[cfg(feature = "fault-injection")]
        if let Some(plan) = self.fault.as_mut() {
            if plan.poison_next_loss() {
                return f32::NAN;
            }
        }
        loss
    }

    /// Captures the in-memory rollback target: parameters, optimizer,
    /// RNG position, and stop-rule state at the start of an epoch.
    fn snapshot(&self, st: &TrainingState) -> Snapshot {
        Snapshot {
            store: self.store.clone(),
            opt: self.opt.clone(),
            rng: self.rng.state(),
            prev_assign: st.prev_assign.clone(),
        }
    }

    /// Restores a start-of-epoch snapshot and applies the learning-rate
    /// backoff — the recovery half of the guard protocol.
    fn restore(&mut self, snap: &Snapshot, st: &mut TrainingState, guard: &mut NonFiniteGuard) {
        self.store = snap.store.clone();
        self.opt = snap.opt.clone();
        self.opt.set_lr(self.opt.lr() * self.cfg.effective_lr_backoff());
        self.rng = StdRng::restore(snap.rng);
        st.prev_assign = snap.prev_assign.clone();
        guard.reset_streak();
    }

    /// Writes a periodic training checkpoint when the policy says so.
    /// Checkpoint failures never kill training: the run that is being
    /// protected must not die because its protection hiccuped.
    fn maybe_checkpoint(&mut self, st: &mut TrainingState) {
        if self.cfg.checkpoint_every == 0
            || st.epochs_done % self.cfg.checkpoint_every != 0
        {
            return;
        }
        let Some(dir) = self.cfg.checkpoint_dir.clone() else { return };
        let dir = std::path::PathBuf::from(dir);
        if let Err(e) = std::fs::create_dir_all(&dir) {
            self.recorder
                .warn(format!("e2dtc: cannot create checkpoint dir {}: {e}", dir.display()));
            return;
        }
        st.rng = self.rng.state().to_vec();
        let path = dir.join(crate::persist::checkpoint_file_name(st.epochs_done));
        match self.save_checkpoint(&path, st) {
            Ok(()) => {
                if let Err(e) =
                    crate::persist::rotate_checkpoints(&dir, self.cfg.checkpoint_keep_last)
                {
                    self.recorder.warn(format!("e2dtc: checkpoint rotation failed: {e}"));
                }
            }
            Err(e) => {
                self.recorder
                    .warn(format!("e2dtc: checkpoint write failed ({e}); training continues"));
            }
        }
    }

    /// Re-tokenizes `dataset` into `self.sequences` when they are absent
    /// or misaligned (e.g. after [`E2dtc::load`], or when training moves
    /// to a different dataset).
    pub(crate) fn ensure_sequences(&mut self, dataset: &Dataset) {
        if self.sequences.len() != dataset.len() {
            self.sequences = self.dataset_sequences(dataset);
        }
    }

    /// Tokenizes an arbitrary dataset with the *training* grid/vocabulary
    /// (unknown cells become `UNK`).
    pub(crate) fn dataset_sequences(&self, dataset: &Dataset) -> Vec<Vec<usize>> {
        dataset
            .trajectories
            .iter()
            .map(|t| {
                let seq = self.vocab.encode_trajectory(&self.grid, t, self.cfg.max_seq_len);
                if seq.is_empty() {
                    vec![UNK]
                } else {
                    seq
                }
            })
            .collect()
    }

    /// Index batches sorted by sequence length (minimizes padding), with
    /// shuffled batch order.
    fn make_batches(&mut self, n: usize) -> Vec<Vec<usize>> {
        let lens: Vec<usize> = (0..n).map(|i| self.sequences[i].len()).collect();
        self.batches_from_lens(&lens)
    }

    pub(crate) fn make_batches_for(&mut self, sequences: &[Vec<usize>]) -> Vec<Vec<usize>> {
        let lens: Vec<usize> = sequences.iter().map(Vec::len).collect();
        self.batches_from_lens(&lens)
    }

    fn batches_from_lens(&mut self, lens: &[usize]) -> Vec<Vec<usize>> {
        let mut batches = length_buckets(lens, self.cfg.batch_size);
        shuffle_batches(&mut batches, &mut self.rng);
        batches
    }

    /// Corrupts each batch trajectory with a random `(r1, r2)` draw and
    /// returns `(corrupted token sequences, original token sequences)`.
    fn corrupted_batch(
        &mut self,
        dataset: &Dataset,
        batch: &[usize],
    ) -> (Vec<Vec<usize>>, Vec<Vec<usize>>) {
        let mut inputs = Vec::with_capacity(batch.len());
        for &i in batch {
            let t: &Trajectory = &dataset.trajectories[i];
            let r1 = *pick(&self.cfg.augment.drop_rates, &mut self.rng);
            let r2 = *pick(&self.cfg.augment.distort_rates, &mut self.rng);
            let corrupted = corrupt(t, r1, r2, self.cfg.augment.noise_std_m, &mut self.rng);
            let mut seq =
                self.vocab.encode_trajectory(&self.grid, &corrupted, self.cfg.max_seq_len);
            if seq.is_empty() {
                seq.push(UNK);
            }
            inputs.push(seq);
        }
        let targets: Vec<Vec<usize>> =
            batch.iter().map(|&i| self.sequences[i].clone()).collect();
        (inputs, targets)
    }
}

#[cfg(feature = "fault-injection")]
impl E2dtc {
    /// Installs a test-only fault plan; subsequent training batches and
    /// checkpoint saves consult it. See [`crate::fault`].
    pub fn set_fault_plan(&mut self, plan: crate::fault::FaultPlan) {
        self.fault = Some(plan);
    }

    /// Removes and returns the installed fault plan.
    pub fn take_fault_plan(&mut self) -> Option<crate::fault::FaultPlan> {
        self.fault.take()
    }
}

/// Rebuilds the RNG state array from checkpointed words (zero-padded when
/// short; `StdRng::restore` rejects the degenerate all-zero state).
pub(crate) fn rng_state_from(words: &[u64]) -> [u64; 4] {
    let mut s = [0u64; 4];
    for (d, &w) in s.iter_mut().zip(words) {
        *d = w;
    }
    s
}

/// Hard-negative mining for the triplet loss: for each anchor, the
/// nearest batch member currently assigned to a different cluster (falls
/// back to the next row when the batch is single-cluster).
fn mine_negatives(batch: &[usize], assign: &[usize], emb: &Tensor) -> Vec<usize> {
    batch
        .iter()
        .enumerate()
        .map(|(row, &i)| {
            batch
                .iter()
                .enumerate()
                .filter(|&(r2, &j)| r2 != row && assign[j] != assign[i])
                .min_by(|&(_, &a), &(_, &b)| {
                    emb.row_sq_dist(i, emb, a).total_cmp(&emb.row_sq_dist(i, emb, b))
                })
                .map(|(r2, _)| r2)
                .unwrap_or((row + 1) % batch.len())
        })
        .collect()
}

fn pick<'a, T>(xs: &'a [T], rng: &mut impl Rng) -> &'a T {
    &xs[rng.gen_range(0..xs.len())]
}

/// Multi-restart k-means (8 seeded restarts, best inertia kept). Both the
/// centroid initialization and the `t2vec + k-means` / `L0` final
/// clustering use this to keep init variance from dominating results.
pub(crate) fn best_kmeans(
    data: &[f32],
    n: usize,
    d: usize,
    k: usize,
    seed: u64,
) -> traj_cluster::KMeansResult {
    (0..8)
        .map(|r| {
            let mut rng = StdRng::seed_from_u64(seed.wrapping_add(r));
            kmeans(Points::new(data, n, d), KMeansConfig::new(k), &mut rng)
        })
        .min_by(|a, b| a.inertia.total_cmp(&b.inertia))
        .expect("at least one restart")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::E2dtcConfig;
    use crate::test_util::tiny_city;

    #[test]
    fn pretrain_reduces_reconstruction_loss() {
        let city = tiny_city(40, 3);
        let mut cfg = E2dtcConfig::tiny(3);
        cfg.lr = 5e-3;
        let mut model = E2dtc::new(&city.dataset, cfg);
        let history = model.pretrain(&city.dataset, 4);
        assert_eq!(history.len(), 4);
        let first = history.first().expect("non-empty").recon_loss;
        let last = history.last().expect("non-empty").recon_loss;
        assert!(
            last < first,
            "pre-training loss did not drop: {first} -> {last}"
        );
        assert!(history.iter().all(|r| r.skipped_batches == 0 && r.rollbacks == 0));
    }

    #[test]
    fn fit_produces_k_clusters_and_history() {
        let city = tiny_city(40, 3);
        let mut model = E2dtc::new(&city.dataset, E2dtcConfig::tiny(3));
        let fit = model.fit(&city.dataset);
        assert_eq!(fit.assignments.len(), 40);
        assert!(fit.assignments.iter().all(|&c| c < 3));
        assert_eq!(fit.embeddings.len(), 40 * model.repr_dim());
        assert_eq!(fit.centroids.len(), 3 * model.repr_dim());
        assert!(fit.history.iter().any(|r| r.phase == Phase::Pretrain));
        assert!(fit.history.iter().any(|r| r.phase == Phase::SelfTrain));
        // A healthy run triggers no guard activity.
        assert!(fit.history.iter().all(|r| r.skipped_batches == 0 && r.rollbacks == 0));
    }

    #[test]
    fn l0_mode_skips_self_training() {
        let city = tiny_city(30, 3);
        let cfg = E2dtcConfig::tiny(3).with_loss_mode(LossMode::L0);
        let mut model = E2dtc::new(&city.dataset, cfg);
        let fit = model.fit(&city.dataset);
        assert!(fit.history.iter().all(|r| r.phase == Phase::Pretrain));
        assert_eq!(fit.assignments.len(), 30);
    }

    #[test]
    fn callback_fires_every_selftrain_epoch() {
        let city = tiny_city(25, 2);
        let mut cfg = E2dtcConfig::tiny(2);
        cfg.selftrain_epochs = 2;
        cfg.delta = 0.0;
        let mut model = E2dtc::new(&city.dataset, cfg);
        let mut epochs = Vec::new();
        let _ = model.fit_with_callback(&city.dataset, &mut |e, emb, asg| {
            epochs.push(e);
            assert_eq!(emb.len(), 25 * 24);
            assert_eq!(asg.len(), 25);
        });
        assert!(!epochs.is_empty());
        assert_eq!(epochs[0], 0);
    }

    #[test]
    fn same_seed_fit_is_deterministic() {
        // The resume guarantee rests on this: two identically-seeded runs
        // produce identical assignments and history.
        let city = tiny_city(30, 3);
        let mut m1 = E2dtc::new(&city.dataset, E2dtcConfig::tiny(3));
        let mut m2 = E2dtc::new(&city.dataset, E2dtcConfig::tiny(3));
        let f1 = m1.fit(&city.dataset);
        let f2 = m2.fit(&city.dataset);
        assert_eq!(f1.assignments, f2.assignments);
        assert_eq!(f1.embeddings, f2.embeddings);
        assert_eq!(f1.history.len(), f2.history.len());
    }

    #[test]
    fn rng_state_from_pads_short_input() {
        assert_eq!(rng_state_from(&[1, 2]), [1, 2, 0, 0]);
        assert_eq!(rng_state_from(&[1, 2, 3, 4, 5]), [1, 2, 3, 4]);
    }
}
