//! Self-clustering helpers (paper §V-D).
//!
//! The differentiable pieces — Student-t soft assignment `Q` (Eq. 9),
//! target distribution `P` (Eq. 10), and the KL clustering loss (Eq. 11) —
//! live in `traj-nn` (`student_t_assignment`, `target_distribution`,
//! `Tape::dec_kl`). This module adds the non-differentiable glue
//! Algorithm 1 needs: hard assignments and the label-change stopping
//! criterion.

pub use traj_nn::{student_t_assignment, target_distribution};

use traj_nn::Tensor;

/// Hard cluster assignment: argmax over each row of the soft assignment
/// `Q`.
pub fn hard_assignment(q: &Tensor) -> Vec<usize> {
    (0..q.rows())
        .map(|i| {
            q.row(i)
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(j, _)| j)
                .expect("Q has at least one cluster column")
        })
        .collect()
}

/// Fraction of items whose cluster changed between two assignments
/// (Algorithm 1, line 8: stop when `Σ 1[C'_i ≠ C_i] ≤ δ`, here expressed
/// as a fraction of the dataset).
///
/// # Panics
/// Panics on length mismatch.
pub fn label_change_fraction(old: &[usize], new: &[usize]) -> f64 {
    assert_eq!(old.len(), new.len(), "assignments must be aligned");
    if old.is_empty() {
        return 0.0;
    }
    let changed = old.iter().zip(new).filter(|(a, b)| a != b).count();
    changed as f64 / old.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hard_assignment_picks_argmax() {
        let q = Tensor::from_rows(&[vec![0.1, 0.7, 0.2], vec![0.5, 0.3, 0.2]]);
        assert_eq!(hard_assignment(&q), vec![1, 0]);
    }

    #[test]
    fn label_change_counts_fraction() {
        assert_eq!(label_change_fraction(&[0, 1, 2, 0], &[0, 1, 0, 0]), 0.25);
        assert_eq!(label_change_fraction(&[1, 1], &[1, 1]), 0.0);
        assert_eq!(label_change_fraction(&[], &[]), 0.0);
    }

    #[test]
    fn q_then_p_sharpen_cycle() {
        // End-to-end sanity of the Eq. 9 → Eq. 10 cycle: P must remain a
        // distribution and sharpen high-confidence rows.
        let v = Tensor::from_rows(&[
            vec![0.0, 0.0],
            vec![0.1, 0.0],
            vec![5.0, 5.0],
            vec![5.1, 5.0],
        ]);
        let c = Tensor::from_rows(&[vec![0.0, 0.0], vec![5.0, 5.0]]);
        let q = student_t_assignment(&v, &c);
        let p = target_distribution(&q);
        for i in 0..4 {
            let sum: f32 = p.row(i).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
        assert_eq!(hard_assignment(&q), vec![0, 0, 1, 1]);
        assert_eq!(hard_assignment(&p), vec![0, 0, 1, 1]);
        // Sharper than Q on the confident rows.
        assert!(p.get(0, 0) >= q.get(0, 0));
    }
}
