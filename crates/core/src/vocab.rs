//! Compact token vocabulary over observed grid cells.
//!
//! A city-scale grid has tens of thousands of cells but trajectories only
//! ever visit a small fraction. Restricting the decoder's softmax to the
//! *observed* cells (plus `UNK`/`BOS` specials) cuts the dominant
//! `hidden × |V|` projection cost by an order of magnitude without changing
//! the objective — unobserved cells can never be reconstruction targets.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use traj_data::{Grid, Trajectory};

/// Dense id of the unknown-cell token (corrupted points may wander into
/// never-observed cells; they are encoded as `UNK` on the input side and
/// never appear as targets).
pub const UNK: usize = 0;
/// Dense id of the decoder's begin-of-sequence token.
pub const BOS: usize = 1;
/// Number of reserved special tokens.
pub const SPECIALS: usize = 2;

/// Bidirectional mapping between grid tokens and dense vocabulary ids.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Vocab {
    dense_of_grid: HashMap<usize, usize>,
    grid_of_dense: Vec<usize>,
}

impl Vocab {
    /// Builds the vocabulary from every cell observed in `trajectories`
    /// under `grid`.
    pub fn build(grid: &Grid, trajectories: &[Trajectory]) -> Self {
        let mut dense_of_grid = HashMap::new();
        let mut grid_of_dense = Vec::new();
        for t in trajectories {
            for tok in grid.tokenize(t) {
                dense_of_grid.entry(tok).or_insert_with(|| {
                    grid_of_dense.push(tok);
                    SPECIALS + grid_of_dense.len() - 1
                });
            }
        }
        Self { dense_of_grid, grid_of_dense }
    }

    /// Total vocabulary size including specials.
    pub fn size(&self) -> usize {
        SPECIALS + self.grid_of_dense.len()
    }

    /// Number of real (cell) tokens.
    pub fn num_cells(&self) -> usize {
        self.grid_of_dense.len()
    }

    /// Dense id of a grid token, or `UNK` when unobserved.
    pub fn encode(&self, grid_token: usize) -> usize {
        self.dense_of_grid.get(&grid_token).copied().unwrap_or(UNK)
    }

    /// Grid token of a dense id; `None` for specials.
    pub fn decode(&self, dense: usize) -> Option<usize> {
        if dense < SPECIALS {
            None
        } else {
            self.grid_of_dense.get(dense - SPECIALS).copied()
        }
    }

    /// True when the id refers to a real cell.
    pub fn is_cell(&self, dense: usize) -> bool {
        dense >= SPECIALS && dense < self.size()
    }

    /// Encodes a trajectory into its dense token sequence (consecutive
    /// duplicates collapsed by [`Grid::tokenize`]), uniformly subsampled to
    /// at most `max_len` tokens.
    pub fn encode_trajectory(
        &self,
        grid: &Grid,
        t: &Trajectory,
        max_len: usize,
    ) -> Vec<usize> {
        let toks = grid.tokenize(t);
        let seq: Vec<usize> = toks.iter().map(|&g| self.encode(g)).collect();
        subsample(seq, max_len)
    }
}

/// Uniformly subsamples a sequence to at most `max_len` elements,
/// preserving order and endpoints.
pub fn subsample(seq: Vec<usize>, max_len: usize) -> Vec<usize> {
    let n = seq.len();
    if n <= max_len || max_len == 0 {
        return seq;
    }
    if max_len == 1 {
        return vec![seq[0]];
    }
    (0..max_len)
        .map(|i| {
            let idx = i * (n - 1) / (max_len - 1);
            seq[idx]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use traj_data::{Dataset, GpsPoint};

    fn fixture() -> (Grid, Vec<Trajectory>) {
        let mut trajs = Vec::new();
        for i in 0..3 {
            let pts = (0..5)
                .map(|j| {
                    GpsPoint::new(30.0 + i as f64 * 0.01, 120.0 + j as f64 * 0.01, j as f64)
                })
                .collect();
            trajs.push(Trajectory::new(i as u64, pts));
        }
        let grid = Grid::fit(&Dataset::new("t", trajs.clone()), 300.0);
        (grid, trajs)
    }

    #[test]
    fn observed_cells_get_stable_dense_ids() {
        let (grid, trajs) = fixture();
        let vocab = Vocab::build(&grid, &trajs);
        assert!(vocab.num_cells() >= 10, "3 × 5 distinct-ish cells expected");
        for t in &trajs {
            for tok in grid.tokenize(t) {
                let dense = vocab.encode(tok);
                assert!(vocab.is_cell(dense));
                assert_eq!(vocab.decode(dense), Some(tok));
            }
        }
    }

    #[test]
    fn unobserved_maps_to_unk() {
        let (grid, trajs) = fixture();
        let vocab = Vocab::build(&grid, &trajs);
        // A grid corner no trajectory visits.
        let corner = grid.vocab_size() - 1;
        if grid.tokenize(&trajs[0]).iter().all(|&t| t != corner) {
            assert_eq!(vocab.encode(corner), UNK);
        }
        assert_eq!(vocab.decode(UNK), None);
        assert_eq!(vocab.decode(BOS), None);
    }

    #[test]
    fn encode_trajectory_respects_cap() {
        let (grid, trajs) = fixture();
        let vocab = Vocab::build(&grid, &trajs);
        let full = vocab.encode_trajectory(&grid, &trajs[0], 1000);
        let capped = vocab.encode_trajectory(&grid, &trajs[0], 3);
        assert!(capped.len() <= 3);
        assert_eq!(capped.first(), full.first());
        assert_eq!(capped.last(), full.last());
    }

    #[test]
    fn subsample_preserves_endpoints_and_order() {
        let seq: Vec<usize> = (0..100).collect();
        let s = subsample(seq.clone(), 10);
        assert_eq!(s.len(), 10);
        assert_eq!(s[0], 0);
        assert_eq!(*s.last().expect("non-empty"), 99);
        assert!(s.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(subsample(seq.clone(), 200), seq);
    }

    #[test]
    fn subsample_edge_cases() {
        assert_eq!(subsample(vec![5, 6, 7], 1), vec![5]);
        assert_eq!(subsample(vec![], 4), Vec::<usize>::new());
    }
}
