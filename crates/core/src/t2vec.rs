//! The `t2vec + k-means` baseline (paper §II-B, §VII-A).
//!
//! t2vec (Li et al., ICDE 2018) is the pre-training half of E²DTC: the
//! same corrupt-and-reconstruct seq2seq with the spatial loss, but *no*
//! joint clustering — representations are frozen after pre-training and a
//! separate k-means pass clusters them. In this codebase that is exactly
//! [`LossMode::L0`], so the baseline is a thin wrapper that also serves as
//! the Table IV `L0` ablation.

use crate::config::{E2dtcConfig, LossMode};
use crate::model::{E2dtc, FitResult};
use traj_data::Dataset;

/// Trains a t2vec-style embedding on `dataset` and clusters it with
/// k-means. `cfg`'s loss mode is overridden to [`LossMode::L0`].
pub fn t2vec_kmeans(dataset: &Dataset, cfg: E2dtcConfig) -> FitResult {
    let mut model = E2dtc::new(dataset, cfg.with_loss_mode(LossMode::L0));
    model.fit(dataset)
}

/// Trains t2vec and returns the model itself (for experiments that need
/// to embed additional datasets with the frozen encoder).
pub fn t2vec_model(dataset: &Dataset, cfg: E2dtcConfig) -> E2dtc {
    let mut model = E2dtc::new(dataset, cfg.with_loss_mode(LossMode::L0));
    let _ = model.pretrain(dataset, model.config().pretrain_epochs);
    model
}

#[cfg(test)]
mod tests {
    use super::*;
    use traj_data::SynthSpec;

    #[test]
    fn baseline_produces_valid_clustering() {
        let mut spec = SynthSpec::hangzhou_like(30, 5);
        spec.num_clusters = 3;
        spec.len_range = (8, 14);
        spec.outlier_fraction = 0.0;
        let city = spec.generate();
        let fit = t2vec_kmeans(&city.dataset, E2dtcConfig::tiny(3));
        assert_eq!(fit.assignments.len(), 30);
        assert!(fit.assignments.iter().all(|&c| c < 3));
        // k-means produced k centroids.
        assert_eq!(fit.centroids.len() % fit.embed_dim, 0);
        assert_eq!(fit.centroids.len() / fit.embed_dim, 3);
    }
}
