//! Skip-gram cell embeddings (paper §V-B, Eq. 7).
//!
//! Before the seq2seq model trains, every grid cell gets a vector
//! representation learned with the word2vec skip-gram objective over the
//! token sequences: cells that co-occur within a window (i.e. are visited
//! in close succession) get similar vectors. We use the standard
//! negative-sampling approximation of the softmax in Eq. 7 with direct
//! SGD — no autograd needed for this shallow model.

use crate::config::SkipGramConfig;
use crate::vocab::SPECIALS;
use rand::Rng;
use traj_nn::Tensor;

/// Trains `(vocab_size, dim)` cell embeddings from dense token sequences.
///
/// Ids below [`SPECIALS`] (UNK/BOS) are skipped as contexts/targets but
/// still receive random-initialized rows so the table is fully usable by
/// the encoder.
pub fn train_cell_embeddings(
    sequences: &[Vec<usize>],
    vocab_size: usize,
    dim: usize,
    cfg: &SkipGramConfig,
    rng: &mut impl Rng,
) -> Tensor {
    let mut input = random_table(vocab_size, dim, rng);
    let mut output = random_table(vocab_size, dim, rng);

    // Unigram^(3/4) negative-sampling table (word2vec convention).
    let mut counts = vec![0usize; vocab_size];
    for seq in sequences {
        for &t in seq {
            if t >= SPECIALS {
                counts[t] += 1;
            }
        }
    }
    let neg_table = build_negative_table(&counts);
    if neg_table.is_empty() {
        return Tensor::from_vec(vocab_size, dim, input);
    }

    for _ in 0..cfg.epochs {
        for seq in sequences {
            for (pos, &center) in seq.iter().enumerate() {
                if center < SPECIALS {
                    continue;
                }
                let lo = pos.saturating_sub(cfg.window);
                let hi = (pos + cfg.window).min(seq.len() - 1);
                for ctx_pos in lo..=hi {
                    let context = seq[ctx_pos];
                    if ctx_pos == pos || context < SPECIALS {
                        continue;
                    }
                    sgd_pair(&mut input, &mut output, dim, center, context, true, cfg.lr);
                    for _ in 0..cfg.negatives {
                        let neg = neg_table[rng.gen_range(0..neg_table.len())];
                        if neg != context {
                            sgd_pair(&mut input, &mut output, dim, center, neg, false, cfg.lr);
                        }
                    }
                }
            }
        }
    }
    Tensor::from_vec(vocab_size, dim, input)
}

fn random_table(vocab: usize, dim: usize, rng: &mut impl Rng) -> Vec<f32> {
    let bound = 0.5 / dim as f32;
    (0..vocab * dim).map(|_| rng.gen_range(-bound..bound)).collect()
}

fn build_negative_table(counts: &[usize]) -> Vec<usize> {
    const TABLE_SIZE: usize = 1 << 16;
    let weights: Vec<f64> =
        counts.iter().map(|&c| (c as f64).powf(0.75)).collect();
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        return Vec::new();
    }
    let mut table = Vec::with_capacity(TABLE_SIZE);
    for (id, &w) in weights.iter().enumerate() {
        let slots = ((w / total) * TABLE_SIZE as f64).round() as usize;
        table.extend(std::iter::repeat_n(id, slots));
    }
    if table.is_empty() {
        // Degenerate rounding: fall back to all ids with non-zero counts.
        table = counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, _)| i)
            .collect();
    }
    table
}

/// One positive/negative SGD update of the pair `(center, other)` under
/// the negative-sampling logistic objective.
fn sgd_pair(
    input: &mut [f32],
    output: &mut [f32],
    dim: usize,
    center: usize,
    other: usize,
    positive: bool,
    lr: f32,
) {
    let ci = center * dim;
    let oi = other * dim;
    let mut dot = 0.0f32;
    for j in 0..dim {
        dot += input[ci + j] * output[oi + j];
    }
    let pred = 1.0 / (1.0 + (-dot).exp());
    let target = if positive { 1.0 } else { 0.0 };
    let g = lr * (target - pred);
    for j in 0..dim {
        let iv = input[ci + j];
        let ov = output[oi + j];
        input[ci + j] += g * ov;
        output[oi + j] += g * iv;
    }
}

/// Euclidean distance between two embedding rows (used by the Eq. 8 cell
/// weights).
pub fn row_distance(table: &Tensor, a: usize, b: usize) -> f32 {
    table.row_sq_dist(a, table, b).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Two disjoint "neighbourhoods" of cells that co-occur internally.
    fn sequences() -> Vec<Vec<usize>> {
        let mut seqs = Vec::new();
        for _ in 0..60 {
            seqs.push(vec![2, 3, 4, 2, 3, 4, 2, 3, 4]);
            seqs.push(vec![5, 6, 7, 5, 6, 7, 5, 6, 7]);
        }
        seqs
    }

    #[test]
    fn cooccurring_cells_land_closer_than_disjoint_ones() {
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = SkipGramConfig { window: 2, negatives: 4, epochs: 4, lr: 0.05 };
        let table = train_cell_embeddings(&sequences(), 8, 16, &cfg, &mut rng);
        let within = row_distance(&table, 2, 3);
        let across = row_distance(&table, 2, 6);
        assert!(
            within < across,
            "co-occurring cells ({within}) should be closer than disjoint ({across})"
        );
    }

    #[test]
    fn output_shape_and_finiteness() {
        let mut rng = StdRng::seed_from_u64(1);
        let table =
            train_cell_embeddings(&sequences(), 8, 12, &SkipGramConfig::default(), &mut rng);
        assert_eq!(table.shape(), (8, 12));
        assert!(!table.has_non_finite());
    }

    #[test]
    fn empty_input_still_yields_table() {
        let mut rng = StdRng::seed_from_u64(2);
        let table =
            train_cell_embeddings(&[], 5, 8, &SkipGramConfig::default(), &mut rng);
        assert_eq!(table.shape(), (5, 8));
    }

    #[test]
    fn deterministic_under_seed() {
        let cfg = SkipGramConfig::default();
        let a = train_cell_embeddings(&sequences(), 8, 8, &cfg, &mut StdRng::seed_from_u64(7));
        let b = train_cell_embeddings(&sequences(), 8, 8, &cfg, &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }
}
