//! The E²DTC model facade.
//!
//! [`E2dtc`] holds everything the pipeline accumulates — grid, vocabulary,
//! spatial weight table, seq2seq parameters, centroids, optimizer, RNG —
//! and delegates the heavy lifting to focused modules:
//!
//! - [`crate::trainer`] — pre-training, self-training, guards, rollback,
//!   periodic checkpoints (everything that needs `&mut self`);
//! - [`crate::encoder`] — the tape-free inference forward and the
//!   [`FrozenEncoder`] produced by [`E2dtc::freeze`];
//! - [`crate::batcher`] — length-bucketed batching shared by both;
//! - [`crate::persist`] — checkpoint save/load/resume.
//!
//! Inference entry points ([`E2dtc::embed_dataset`],
//! [`E2dtc::soft_assignment`], [`E2dtc::assign`]) take `&self`: they run
//! the tape-free path, which is bit-identical to the training forward
//! (pinned by `tests/frozen_parity.rs`) and leaves the training RNG
//! stream untouched.

use crate::cell_embedding::train_cell_embeddings;
use crate::config::E2dtcConfig;
use crate::dec::hard_assignment;
use crate::encoder::FrozenEncoder;
use crate::seq2seq::Seq2Seq;
use crate::spatial_loss::WeightTable;
use crate::vocab::Vocab;
use rand::rngs::StdRng;
use rand::SeedableRng;
use traj_data::{Dataset, Grid};
use traj_nn::infer::Scratch;
use traj_nn::optim::Adam;
use traj_nn::{student_t_assignment, ParamId, ParamStore, Tape, Tensor};

pub use crate::trainer::{EpochCallback, EpochRecord, FitResult, Phase, TrainingState};

/// The E²DTC model: seq2seq parameters, cluster centroids, vocabulary,
/// and optimizer state.
pub struct E2dtc {
    pub(crate) cfg: E2dtcConfig,
    pub(crate) grid: Grid,
    pub(crate) vocab: Vocab,
    pub(crate) weights: WeightTable,
    pub(crate) store: ParamStore,
    pub(crate) model: Seq2Seq,
    pub(crate) centroids: Option<ParamId>,
    pub(crate) opt: Adam,
    pub(crate) rng: StdRng,
    /// Tokenized original trajectories, aligned with the dataset.
    pub(crate) sequences: Vec<Vec<usize>>,
    /// Training cursor restored by [`E2dtc::resume`], consumed by the
    /// next `fit` call.
    pub(crate) pending: Option<TrainingState>,
    /// Telemetry handle; captured from `traj_obs::global()` at
    /// construction, overridable via [`E2dtc::set_recorder`]. Never
    /// serialized.
    pub(crate) recorder: traj_obs::Recorder,
    /// Test-only fault-injection plan (see [`crate::fault`]).
    #[cfg(feature = "fault-injection")]
    pub(crate) fault: Option<crate::fault::FaultPlan>,
}

impl E2dtc {
    /// Builds the model for a dataset: fits the grid, builds the compact
    /// vocabulary, trains skip-gram cell vectors, and initializes the
    /// seq2seq parameters. (Phase 1 of Fig. 2.)
    ///
    /// # Panics
    /// Panics on an empty dataset or `k_clusters > |dataset|`.
    pub fn new(dataset: &Dataset, cfg: E2dtcConfig) -> Self {
        assert!(!dataset.is_empty(), "cannot fit an empty dataset");
        assert!(
            cfg.k_clusters >= 1 && cfg.k_clusters <= dataset.len(),
            "k = {} out of range for {} trajectories",
            cfg.k_clusters,
            dataset.len()
        );
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let grid = Grid::fit(dataset, cfg.cell_meters);
        let vocab = Vocab::build(&grid, &dataset.trajectories);
        let sequences: Vec<Vec<usize>> = dataset
            .trajectories
            .iter()
            .map(|t| vocab.encode_trajectory(&grid, t, cfg.max_seq_len))
            .collect();
        let cell_vectors = train_cell_embeddings(
            &sequences,
            vocab.size(),
            cfg.embed_dim,
            &cfg.skipgram,
            &mut rng,
        );
        let weights = WeightTable::build(&grid, &vocab, &cell_vectors, cfg.knn_k, cfg.alpha);
        let mut store = ParamStore::new();
        let model = Seq2Seq::with_options(
            &mut store,
            cell_vectors,
            cfg.hidden_dim,
            cfg.layers,
            cfg.attention,
            &mut rng,
        );
        let opt = Adam::new(cfg.lr).with_max_grad_norm(cfg.max_grad_norm);
        Self {
            cfg,
            grid,
            vocab,
            weights,
            store,
            model,
            centroids: None,
            opt,
            rng,
            sequences,
            pending: None,
            recorder: traj_obs::global(),
            #[cfg(feature = "fault-injection")]
            fault: None,
        }
    }

    /// Replaces the telemetry recorder (models default to the global one
    /// in force at construction time).
    pub fn set_recorder(&mut self, recorder: traj_obs::Recorder) {
        self.recorder = recorder;
    }

    /// The configuration in force.
    pub fn config(&self) -> &E2dtcConfig {
        &self.cfg
    }

    /// Vocabulary built from the training dataset.
    pub fn vocab(&self) -> &Vocab {
        &self.vocab
    }

    /// Spatial grid fitted to the training dataset.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// Trajectory-representation dimensionality.
    pub fn repr_dim(&self) -> usize {
        self.model.hidden_dim()
    }

    /// Number of trainable scalars.
    pub fn num_parameters(&self) -> usize {
        self.store.num_scalars()
    }

    /// True when a resumed training cursor is waiting for the next
    /// [`E2dtc::fit`] call.
    pub fn has_pending_training(&self) -> bool {
        self.pending.is_some()
    }

    /// The resumed training cursor, if one is pending.
    pub fn pending_training(&self) -> Option<&TrainingState> {
        self.pending.as_ref()
    }

    /// Overrides the periodic-checkpoint policy (useful after
    /// [`E2dtc::resume`], whose checkpoint carries the policy it was
    /// written under). `every = 0` disables periodic checkpoints.
    pub fn set_checkpoint_policy(
        &mut self,
        dir: Option<String>,
        every: usize,
        keep_last: usize,
    ) {
        self.cfg.checkpoint_dir = dir;
        self.cfg.checkpoint_every = every;
        self.cfg.checkpoint_keep_last = keep_last;
    }

    /// Embeds every trajectory of `dataset` (inference; no parameter
    /// updates, no RNG consumption). Returns an `(n, hidden)` tensor
    /// aligned with the dataset. Runs the tape-free forward — values are
    /// bit-identical to the training path's.
    pub fn embed_dataset(&self, dataset: &Dataset) -> Tensor {
        let sequences = self.dataset_sequences(dataset);
        let mut scratch = Scratch::new();
        crate::encoder::embed_tokenized(
            &self.model,
            &self.store,
            &sequences,
            self.cfg.batch_size,
            &mut scratch,
        )
    }

    /// Soft cluster assignment `Q` for a dataset under the trained model.
    ///
    /// # Panics
    /// Panics if called before centroids exist.
    pub fn soft_assignment(&self, dataset: &Dataset) -> Tensor {
        let id = self.centroids.expect("model has no centroids yet — run fit first");
        let emb = self.embed_dataset(dataset);
        student_t_assignment(&emb, self.store.get(id))
    }

    /// Hard cluster assignment for a (possibly new) dataset — the paper's
    /// "once finely trained, it can be efficiently adopted for trajectory
    /// clustering requests" inference path.
    pub fn assign(&self, dataset: &Dataset) -> Vec<usize> {
        hard_assignment(&self.soft_assignment(dataset))
    }

    /// Extracts an immutable, `Send + Sync` inference engine: the trained
    /// encoder, grid, vocabulary, and (when present) centroids — no
    /// optimizer state, no tape, no RNG. Share it across threads behind
    /// an `Arc` (see the `traj-query` crate).
    pub fn freeze(&self) -> FrozenEncoder {
        FrozenEncoder::from_parts(
            self.cfg.clone(),
            self.grid.clone(),
            self.vocab.clone(),
            self.store.clone(),
            self.model.clone(),
            self.centroids.map(|id| self.store.get(id).clone()),
        )
    }

    /// Autoencoder round-trip: encodes each trajectory and greedily
    /// decodes `steps` tokens back, returning the reconstructed paths as
    /// sequences of grid-cell centres. Inspects what the latent
    /// representation retains (the t2vec premise that a representation
    /// learned from low-sampling trajectories can "recover the
    /// high-sampling trajectory").
    pub fn reconstruct(
        &mut self,
        dataset: &Dataset,
        steps: usize,
    ) -> Vec<Vec<traj_data::GpsPoint>> {
        let sequences = self.dataset_sequences(dataset);
        let mut out: Vec<Vec<traj_data::GpsPoint>> = vec![Vec::new(); sequences.len()];
        let mut tape = Tape::new();
        for batch in self.make_batches_for(&sequences) {
            tape.clear();
            let refs: Vec<&[usize]> =
                batch.iter().map(|&i| sequences[i].as_slice()).collect();
            let enc = self.model.encode(&mut tape, &self.store, &refs, false, &mut self.rng);
            let decoded = self.model.greedy_decode(
                &mut tape,
                &self.store,
                &enc,
                steps,
                &mut self.rng,
            );
            for (row, &i) in batch.iter().enumerate() {
                out[i] = decoded[row]
                    .iter()
                    .filter_map(|&tok| self.vocab.decode(tok))
                    .map(|grid_tok| self.grid.cell_center(grid_tok))
                    .collect();
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::tiny_city;

    #[test]
    fn construction_builds_vocab_and_params() {
        let city = tiny_city(30, 3);
        let model = E2dtc::new(&city.dataset, E2dtcConfig::tiny(3));
        assert!(model.vocab().num_cells() > 10);
        assert!(model.num_parameters() > 1000);
        assert_eq!(model.repr_dim(), 24);
    }

    #[test]
    fn embed_dataset_is_aligned_and_finite() {
        let city = tiny_city(25, 3);
        let model = E2dtc::new(&city.dataset, E2dtcConfig::tiny(3));
        let emb = model.embed_dataset(&city.dataset);
        assert_eq!(emb.shape(), (25, model.repr_dim()));
        assert!(!emb.has_non_finite());
        // Alignment: embedding a single-trajectory dataset gives the same
        // row (inference is deterministic).
        let single = Dataset::new("one", vec![city.dataset.trajectories[7].clone()]);
        let e1 = model.embed_dataset(&single);
        for (a, b) in e1.row(0).iter().zip(emb.row(7)) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn assign_works_on_unseen_data() {
        let city = tiny_city(30, 3);
        let mut model = E2dtc::new(&city.dataset, E2dtcConfig::tiny(3));
        let _ = model.fit(&city.dataset);
        // A fresh sample from the same generator (different seed).
        let mut spec2 = traj_data::SynthSpec::hangzhou_like(10, 123);
        spec2.num_clusters = 3;
        spec2.len_range = (8, 16);
        spec2.outlier_fraction = 0.0;
        let new_city = spec2.generate();
        let assign = model.assign(&new_city.dataset);
        assert_eq!(assign.len(), 10);
        assert!(assign.iter().all(|&c| c < 3));
    }

    #[test]
    fn freeze_requires_no_centroids_for_embedding() {
        let city = tiny_city(20, 2);
        let model = E2dtc::new(&city.dataset, E2dtcConfig::tiny(2));
        let frozen = model.freeze();
        assert!(frozen.centroids().is_none());
        let emb = frozen.embed_dataset(&city.dataset);
        assert_eq!(emb.shape(), (20, model.repr_dim()));
    }
}
