//! # e2dtc — End-to-End Deep Trajectory Clustering via Self-Training
//!
//! A from-scratch Rust reproduction of **E²DTC** (Fang, Du, Chen, Hu, Gao,
//! Chen — ICDE 2021): a deep trajectory clustering framework that jointly
//! learns a cluster-oriented trajectory representation and the clustering
//! itself, with no hand-crafted similarity metric.
//!
//! ## Pipeline (paper Fig. 2 / Algorithm 1)
//!
//! 1. **Trajectory embedding** — raw GPS trajectories are discretized into
//!    grid-cell token sequences ([`vocab`]) and cells get skip-gram
//!    vectors ([`cell_embedding`], Eq. 7).
//! 2. **Pre-training** — a stacked-GRU seq2seq autoencoder learns to
//!    reconstruct trajectories from corrupted (down-sampled + distorted)
//!    variants under the spatial-proximity-aware loss `L_r`
//!    ([`seq2seq`], [`spatial_loss`], Eq. 8). k-means seeds the cluster
//!    centroids in the learned feature space.
//! 3. **Self-training** — the encoder and centroids are tuned jointly
//!    with `L = L_r + β·L_c + γ·L_t` (Eq. 14): the DEC-style KL
//!    clustering loss over Student-t soft assignments ([`dec`],
//!    Eqs. 9–11) plus a triplet loss whose positives are the corrupted
//!    variants (Eq. 13). Training stops when cluster assignments change
//!    by at most `δ`.
//!
//! ## Quick start
//!
//! ```no_run
//! use e2dtc::{E2dtc, E2dtcConfig};
//! use traj_data::SynthSpec;
//!
//! let city = SynthSpec::hangzhou_like(500, 42).generate();
//! let mut model = E2dtc::new(&city.dataset, E2dtcConfig::fast(7));
//! let fit = model.fit(&city.dataset);
//! println!("cluster of trajectory 0: {}", fit.assignments[0]);
//! ```
//!
//! The `t2vec + k-means` baseline of the paper's evaluation is
//! [`t2vec::t2vec_kmeans`]; the Table IV loss ablations are selected with
//! [`LossMode`].

#![warn(missing_docs)]
// Parallel-array index loops are idiomatic in the numeric kernels here;
// iterator-zip rewrites obscure them.
#![allow(clippy::needless_range_loop)]

pub mod batcher;
pub mod cell_embedding;
pub mod config;
pub mod dec;
pub mod encoder;
#[cfg(feature = "fault-injection")]
pub mod fault;
pub mod model;
pub mod persist;
pub mod seq2seq;
pub mod spatial_loss;
pub mod t2vec;
#[cfg(test)]
pub(crate) mod test_util;
pub mod trainer;
pub mod vocab;

pub use config::{E2dtcConfig, LossMode, SkipGramConfig};
pub use encoder::FrozenEncoder;
pub use model::{E2dtc, EpochRecord, FitResult, Phase, TrainingState};
pub use persist::PersistError;
pub use t2vec::t2vec_kmeans;
