//! Test-only fault injection for the training pipeline.
//!
//! Compiled only with the `fault-injection` cargo feature; production
//! builds carry none of this code. A [`FaultPlan`] is installed on a model
//! with [`crate::E2dtc::set_fault_plan`] and consulted from two seams:
//!
//! - **Loss poisoning** — `E2dtc` training loops route every batch loss
//!   through the plan, which can replace chosen batches' losses with NaN.
//!   This exercises the [`traj_nn::NonFiniteGuard`] skip and rollback
//!   paths without relying on genuine numerical blow-ups.
//! - **Save faults** — `E2dtc::save_checkpoint` asks the plan whether the
//!   current save should fail. [`SaveFault::Kill`] dies "mid-write": a
//!   partial temp file is left behind and the target path is never
//!   touched, proving the atomic-rename protocol keeps the last good
//!   checkpoint intact. [`SaveFault::Torn`] simulates a non-atomic
//!   writer / post-crash filesystem: a truncated blob lands at the final
//!   path, which `E2dtc::resume` must detect (checksum) and fall back
//!   past.
//!
//! Faults are addressed by *counter*: the plan counts batches and saves as
//! the seams consult it, and fires when a counter hits a scheduled index.
//! Counters make plans deterministic under the deterministic training
//! loop, so tests can target e.g. "the 3rd batch of the 2nd epoch".

/// How a scheduled checkpoint save should fail.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SaveFault {
    /// Write only this many bytes of the encoded checkpoint *at the final
    /// path* (simulating a torn, non-atomic write surviving a crash).
    Torn(usize),
    /// Abort mid-write: leave a partial temp file, never touch the final
    /// path, and return an I/O error (simulating a crash or full disk
    /// during the atomic protocol).
    Kill,
}

/// Deterministic schedule of injected training faults.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    nan_loss_batches: Vec<usize>,
    save_faults: Vec<(usize, SaveFault)>,
    batches_seen: usize,
    saves_seen: usize,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules NaN losses for the given global batch indices (counting
    /// every training batch the model processes, across epochs and
    /// phases).
    pub fn poison_loss_at(mut self, batches: &[usize]) -> Self {
        self.nan_loss_batches.extend_from_slice(batches);
        self
    }

    /// Schedules NaN losses for `len` consecutive batches starting at
    /// global batch index `start` — enough consecutive poison trips the
    /// guard's rollback patience.
    pub fn poison_loss_run(mut self, start: usize, len: usize) -> Self {
        self.nan_loss_batches.extend(start..start + len);
        self
    }

    /// Schedules the `save_idx`-th checkpoint save (0-based) to leave a
    /// torn `keep_bytes`-byte file at the final path.
    pub fn tear_save(mut self, save_idx: usize, keep_bytes: usize) -> Self {
        self.save_faults.push((save_idx, SaveFault::Torn(keep_bytes)));
        self
    }

    /// Schedules the `save_idx`-th checkpoint save (0-based) to die
    /// mid-write without touching the final path.
    pub fn kill_save(mut self, save_idx: usize) -> Self {
        self.save_faults.push((save_idx, SaveFault::Kill));
        self
    }

    /// Counts one training batch; true when its loss must become NaN.
    pub(crate) fn poison_next_loss(&mut self) -> bool {
        let idx = self.batches_seen;
        self.batches_seen += 1;
        self.nan_loss_batches.contains(&idx)
    }

    /// Counts one checkpoint save; returns the fault scheduled for it.
    pub(crate) fn next_save_fault(&mut self) -> Option<SaveFault> {
        let idx = self.saves_seen;
        self.saves_seen += 1;
        self.save_faults.iter().find(|(i, _)| *i == idx).map(|&(_, f)| f)
    }

    /// Training batches observed so far.
    pub fn batches_seen(&self) -> usize {
        self.batches_seen
    }

    /// Checkpoint saves observed so far.
    pub fn saves_seen(&self) -> usize {
        self.saves_seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poison_fires_on_scheduled_batches_only() {
        let mut plan = FaultPlan::new().poison_loss_at(&[1, 3]);
        let fired: Vec<bool> = (0..5).map(|_| plan.poison_next_loss()).collect();
        assert_eq!(fired, vec![false, true, false, true, false]);
        assert_eq!(plan.batches_seen(), 5);
    }

    #[test]
    fn poison_run_covers_consecutive_batches() {
        let mut plan = FaultPlan::new().poison_loss_run(2, 3);
        let fired: Vec<bool> = (0..6).map(|_| plan.poison_next_loss()).collect();
        assert_eq!(fired, vec![false, false, true, true, true, false]);
    }

    #[test]
    fn save_faults_address_by_save_index() {
        let mut plan = FaultPlan::new().tear_save(1, 64).kill_save(2);
        assert_eq!(plan.next_save_fault(), None);
        assert_eq!(plan.next_save_fault(), Some(SaveFault::Torn(64)));
        assert_eq!(plan.next_save_fault(), Some(SaveFault::Kill));
        assert_eq!(plan.next_save_fault(), None);
        assert_eq!(plan.saves_seen(), 4);
    }
}
