//! Length-bucketed batching, shared by training and inference.
//!
//! Variable-length sequences share mini-batches through masked recurrence
//! steps (see [`crate::seq2seq`]), so a batch costs `max_len` GRU steps
//! regardless of its shorter members. Sorting by length before chunking
//! minimizes that padding waste. Training additionally shuffles the
//! *order* of the buckets each epoch (contents stay deterministic — only
//! the visit order draws from the RNG), which is what lets the inference
//! path skip the shuffle and still produce bit-identical per-trajectory
//! results.

use rand::Rng;

/// Groups indices `0..lens.len()` into batches of at most `batch_size`,
/// sorted by sequence length (stable, so ties keep input order).
pub fn length_buckets(lens: &[usize], batch_size: usize) -> Vec<Vec<usize>> {
    let mut idx: Vec<usize> = (0..lens.len()).collect();
    idx.sort_by_key(|&i| lens[i]);
    idx.chunks(batch_size.max(1)).map(|c| c.to_vec()).collect()
}

/// Shuffles batch visit order in place (Fisher–Yates, one `gen_range`
/// draw per swap — the training loop's exact historical RNG consumption).
pub fn shuffle_batches(batches: &mut [Vec<usize>], rng: &mut impl Rng) {
    for i in (1..batches.len()).rev() {
        let j = rng.gen_range(0..=i);
        batches.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn buckets_sort_by_length_and_chunk() {
        let lens = [5, 1, 3, 1, 9, 2];
        let buckets = length_buckets(&lens, 2);
        assert_eq!(buckets, vec![vec![1, 3], vec![5, 2], vec![0, 4]]);
        // Every index appears exactly once.
        let mut all: Vec<usize> = buckets.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..lens.len()).collect::<Vec<_>>());
    }

    #[test]
    fn zero_batch_size_is_clamped_to_one() {
        let buckets = length_buckets(&[4, 2, 3], 0);
        assert_eq!(buckets.len(), 3);
        assert!(buckets.iter().all(|b| b.len() == 1));
    }

    #[test]
    fn shuffle_permutes_batch_order_not_contents() {
        let lens: Vec<usize> = (0..40).map(|i| i % 7).collect();
        let mut shuffled = length_buckets(&lens, 4);
        let reference = shuffled.clone();
        let mut rng = StdRng::seed_from_u64(3);
        shuffle_batches(&mut shuffled, &mut rng);
        assert_ne!(shuffled, reference, "seed 3 should reorder 10 batches");
        let mut a = shuffled.clone();
        let mut b = reference.clone();
        a.sort();
        b.sort();
        assert_eq!(a, b, "shuffle must only permute whole batches");
    }

    #[test]
    fn empty_input_yields_no_batches() {
        assert!(length_buckets(&[], 8).is_empty());
    }
}
