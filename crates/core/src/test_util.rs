//! Shared fixtures for the crate's unit tests.

use traj_data::{GeneratedCity, SynthSpec};

/// A small, outlier-free synthetic city with `n` trajectories in `k`
/// ground-truth clusters (seed 99) — the standard unit-test workload.
pub(crate) fn tiny_city(n: usize, k: usize) -> GeneratedCity {
    let mut spec = SynthSpec::hangzhou_like(n, 99);
    spec.num_clusters = k;
    spec.len_range = (8, 16);
    spec.outlier_fraction = 0.0;
    spec.generate()
}
