//! Seq2seq GRU encoder–decoder over token sequences (paper §III-A, §V-C).
//!
//! The encoder compresses a (possibly corrupted) token sequence into the
//! trajectory representation `v_T` — the final hidden state of a stacked
//! GRU. The decoder, initialized with the encoder's final states,
//! reconstructs the *original* sequence under teacher forcing, trained
//! with the spatial-proximity-aware loss (Eq. 8).
//!
//! Variable-length sequences share mini-batches through masked recurrence
//! steps: once a sequence ends, its hidden state is frozen, so `v_T` is
//! exactly the hidden state at each sequence's own final token.

use crate::spatial_loss::WeightTable;
use crate::vocab::{BOS, UNK};
use rand::Rng;
use traj_nn::layers::{DotAttention, Embedding, Gru, Linear};
use traj_nn::{ParamStore, Tape, Tensor, Var};

/// Encoder + decoder + output projection, sharing one token-embedding
/// table.
#[derive(Clone, Debug)]
pub struct Seq2Seq {
    /// Shared token embedding (initialized from the skip-gram cell
    /// vectors).
    pub embedding: Embedding,
    /// Encoder GRU stack.
    pub encoder: Gru,
    /// Decoder GRU stack (same depth/width as the encoder so states
    /// transfer directly).
    pub decoder: Gru,
    /// Hidden-to-vocabulary projection (`W` of Eq. 8).
    pub projection: Linear,
    /// Optional Luong dot-product attention over the encoder outputs
    /// (extension beyond the paper).
    pub attention: Option<DotAttention>,
}

/// Output of an encoder pass.
pub struct Encoded {
    /// Per-layer final hidden states, `(batch, hidden)` each.
    pub state: Vec<Var>,
    /// Top-layer final hidden state — the trajectory representation `v_T`.
    pub repr: Var,
    /// Top-layer hidden state at every timestep (attention keys/values).
    pub outputs: Vec<Var>,
}

impl Seq2Seq {
    /// Registers all parameters in `store`.
    pub fn new(
        store: &mut ParamStore,
        cell_vectors: Tensor,
        hidden_dim: usize,
        layers: usize,
        rng: &mut impl Rng,
    ) -> Self {
        Self::with_options(store, cell_vectors, hidden_dim, layers, false, rng)
    }

    /// [`Seq2Seq::new`] with the optional decoder attention enabled.
    pub fn with_options(
        store: &mut ParamStore,
        cell_vectors: Tensor,
        hidden_dim: usize,
        layers: usize,
        attention: bool,
        rng: &mut impl Rng,
    ) -> Self {
        let vocab = cell_vectors.rows();
        let embed_dim = cell_vectors.cols();
        let embedding = Embedding::from_pretrained(store, "token", cell_vectors);
        let encoder = Gru::new(store, "encoder", embed_dim, hidden_dim, layers, rng);
        let decoder = Gru::new(store, "decoder", embed_dim, hidden_dim, layers, rng);
        let projection = Linear::new(store, "proj", hidden_dim, vocab, true, rng);
        let attention = attention.then(|| DotAttention::new(store, "attn", hidden_dim, rng));
        Self { embedding, encoder, decoder, projection, attention }
    }

    /// Trajectory-representation dimensionality.
    pub fn hidden_dim(&self) -> usize {
        self.encoder.hidden_dim()
    }

    /// Encodes a batch of dense token sequences.
    ///
    /// # Panics
    /// Panics on an empty batch or an empty sequence.
    pub fn encode(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        seqs: &[&[usize]],
        train: bool,
        rng: &mut impl Rng,
    ) -> Encoded {
        assert!(!seqs.is_empty(), "empty batch");
        assert!(seqs.iter().all(|s| !s.is_empty()), "empty sequence in batch");
        let batch = seqs.len();
        let max_len = seqs.iter().map(|s| s.len()).max().expect("non-empty batch");
        let hidden = self.encoder.hidden_dim();

        let mut state = self.encoder.zero_state(tape, batch);
        let mut outputs = Vec::with_capacity(max_len);
        for t in 0..max_len {
            let ids: Vec<usize> =
                seqs.iter().map(|s| s.get(t).copied().unwrap_or(UNK)).collect();
            let x = self.embedding.forward(tape, store, &ids);
            let top = if seqs.iter().all(|s| t < s.len()) {
                self.encoder.step(tape, store, x, &mut state, train, rng)
            } else {
                let mask = row_mask(seqs, t, batch, hidden);
                self.encoder.step_masked(tape, store, x, &mut state, &mask, train, rng)
            };
            outputs.push(top);
        }
        let repr = *state.last().expect("at least one layer");
        Encoded { state, repr, outputs }
    }

    /// Teacher-forced reconstruction loss (Eq. 8) of `targets` given the
    /// encoder state. Returns the scalar mean-per-position loss node.
    ///
    /// # Panics
    /// Panics if `init_state` depth mismatches the decoder, or on empty
    /// targets.
    #[allow(clippy::too_many_arguments)]
    pub fn reconstruction_loss(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        encoded: &Encoded,
        targets: &[&[usize]],
        weights: &WeightTable,
        train: bool,
        rng: &mut impl Rng,
    ) -> Var {
        let init_state = &encoded.state;
        assert_eq!(init_state.len(), self.decoder.layers(), "state depth mismatch");
        assert!(!targets.is_empty(), "empty batch");
        assert!(targets.iter().all(|s| !s.is_empty()), "empty target in batch");
        let batch = targets.len();
        let max_len = targets.iter().map(|s| s.len()).max().expect("non-empty");
        let hidden = self.decoder.hidden_dim();

        let mut state = init_state.to_vec();
        let mut total: Option<Var> = None;
        for t in 0..max_len {
            // Teacher forcing: input is BOS at t = 0, else the previous
            // target token.
            let ids: Vec<usize> = targets
                .iter()
                .map(|s| if t == 0 { BOS } else { s.get(t - 1).copied().unwrap_or(UNK) })
                .collect();
            let x = self.embedding.forward(tape, store, &ids);
            let h = if targets.iter().all(|s| t < s.len()) {
                self.decoder.step(tape, store, x, &mut state, train, rng)
            } else {
                let mask = row_mask(targets, t, batch, hidden);
                self.decoder.step_masked(tape, store, x, &mut state, &mask, train, rng)
            };
            let h = match &self.attention {
                Some(attn) => attn.attend(tape, store, h, &encoded.outputs),
                None => h,
            };
            let logits = self.projection.forward(tape, store, h);
            let rows: Vec<Vec<(usize, f32)>> = targets
                .iter()
                .map(|s| {
                    s.get(t).map_or_else(Vec::new, |&tok| weights.target(tok).to_vec())
                })
                .collect();
            let step_loss = tape.weighted_softmax_nll(logits, rows);
            total = Some(match total {
                Some(acc) => tape.add(acc, step_loss),
                None => step_loss,
            });
        }
        let total = total.expect("max_len >= 1");
        tape.scale(total, 1.0 / max_len as f32)
    }
}

impl Seq2Seq {
    /// Greedy decoding: starting from the encoder state, emits `steps`
    /// tokens per batch row by feeding back the argmax prediction at each
    /// step. This is the generative direction of the autoencoder — used to
    /// inspect what the latent representation `v_T` retains of a
    /// trajectory (`E2dtc::reconstruct`).
    ///
    /// # Panics
    /// Panics if `init_state` depth mismatches the decoder or `steps == 0`.
    pub fn greedy_decode(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        encoded: &Encoded,
        steps: usize,
        rng: &mut impl Rng,
    ) -> Vec<Vec<usize>> {
        let init_state = &encoded.state;
        assert_eq!(init_state.len(), self.decoder.layers(), "state depth mismatch");
        assert!(steps >= 1, "must decode at least one step");
        let batch = tape.value(init_state[0]).rows();
        let mut state = init_state.to_vec();
        let mut out: Vec<Vec<usize>> = vec![Vec::with_capacity(steps); batch];
        let mut prev: Vec<usize> = vec![BOS; batch];
        for _ in 0..steps {
            let x = self.embedding.forward(tape, store, &prev);
            let h = self.decoder.step(tape, store, x, &mut state, false, rng);
            let h = match &self.attention {
                Some(attn) => attn.attend(tape, store, h, &encoded.outputs),
                None => h,
            };
            let logits = self.projection.forward(tape, store, h);
            let lv = tape.value(logits);
            for (row, seq) in out.iter_mut().enumerate() {
                let tok = lv
                    .row(row)
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(j, _)| j)
                    .expect("non-empty vocabulary");
                seq.push(tok);
            }
            prev = out.iter().map(|s| *s.last().expect("pushed above")).collect();
        }
        out
    }
}

/// `(batch, hidden)` mask whose row `i` is 1.0 iff sequence `i` is still
/// active at position `t`.
fn row_mask(seqs: &[&[usize]], t: usize, batch: usize, hidden: usize) -> Tensor {
    let mut mask = Tensor::zeros(batch, hidden);
    for (i, s) in seqs.iter().enumerate() {
        if t < s.len() {
            mask.row_mut(i).fill(1.0);
        }
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spatial_loss::WeightTable;
    use crate::vocab::Vocab;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use traj_data::{Dataset, GpsPoint, Grid, Trajectory};
    use traj_nn::init::Init;
    use traj_nn::optim::Adam;

    fn tiny_model(vocab: usize, seed: u64) -> (ParamStore, Seq2Seq) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let cell_vectors = Init::Normal(0.1).tensor(vocab, 8, &mut rng);
        let model = Seq2Seq::new(&mut store, cell_vectors, 12, 2, &mut rng);
        (store, model)
    }

    fn uniform_weights(vocab: usize) -> WeightTable {
        // One-hot table without grid machinery: build via the real builder
        // on a synthetic straight-line vocabulary.
        let pts: Vec<GpsPoint> = (0..vocab)
            .map(|j| GpsPoint::new(30.0, 120.0 + j as f64 * 0.004, j as f64))
            .collect();
        let t = Trajectory::new(0, pts);
        let grid = Grid::fit(&Dataset::new("w", vec![t.clone()]), 300.0);
        let v = Vocab::build(&grid, &[t]);
        let mut rng = StdRng::seed_from_u64(0);
        let vecs = Init::Normal(0.1).tensor(v.size(), 8, &mut rng);
        WeightTable::build(&grid, &v, &vecs, 3, 1.0)
    }

    #[test]
    fn encode_handles_variable_lengths() {
        let (store, model) = tiny_model(10, 0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut tape = Tape::new();
        let seqs: Vec<&[usize]> = vec![&[2, 3, 4, 5], &[6, 7]];
        let enc = model.encode(&mut tape, &store, &seqs, false, &mut rng);
        assert_eq!(tape.value(enc.repr).shape(), (2, 12));
        assert_eq!(enc.state.len(), 2);
    }

    #[test]
    fn short_sequence_repr_is_unaffected_by_padding() {
        // Encoding [6, 7] alone must equal its row in a padded batch.
        let (store, model) = tiny_model(10, 0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut tape = Tape::new();
        let batch: Vec<&[usize]> = vec![&[2, 3, 4, 5], &[6, 7]];
        let enc_batch = model.encode(&mut tape, &store, &batch, false, &mut rng);
        let solo: Vec<&[usize]> = vec![&[6, 7]];
        let enc_solo = model.encode(&mut tape, &store, &solo, false, &mut rng);
        let padded_row = tape.value(enc_batch.repr).row(1).to_vec();
        let solo_row = tape.value(enc_solo.repr).row(0).to_vec();
        for (a, b) in padded_row.iter().zip(&solo_row) {
            assert!((a - b).abs() < 1e-6, "masking leaked: {a} vs {b}");
        }
    }

    #[test]
    fn reconstruction_loss_is_finite_and_positive() {
        let wt = uniform_weights(8);
        let vocab = wt.len();
        let (store, model) = tiny_model(vocab, 2);
        let mut rng = StdRng::seed_from_u64(3);
        let mut tape = Tape::new();
        let seqs: Vec<&[usize]> = vec![&[2, 3, 4], &[3, 4]];
        let enc = model.encode(&mut tape, &store, &seqs, false, &mut rng);
        let loss = model.reconstruction_loss(
            &mut tape, &store, &enc, &seqs, &wt, false, &mut rng,
        );
        let v = tape.value(loss).get(0, 0);
        assert!(v.is_finite() && v > 0.0, "loss = {v}");
    }

    #[test]
    fn training_reduces_reconstruction_loss() {
        let wt = uniform_weights(8);
        let vocab = wt.len();
        let (mut store, model) = tiny_model(vocab, 4);
        let mut rng = StdRng::seed_from_u64(5);
        let mut opt = Adam::new(5e-3).with_max_grad_norm(5.0);
        let seqs: Vec<Vec<usize>> = vec![vec![2, 3, 4, 5], vec![5, 4, 3], vec![2, 4, 6]];
        let loss_at = |store: &ParamStore, rng: &mut StdRng| -> f32 {
            let mut tape = Tape::new();
            let refs: Vec<&[usize]> = seqs.iter().map(Vec::as_slice).collect();
            let enc = model.encode(&mut tape, store, &refs, false, rng);
            let loss =
                model.reconstruction_loss(&mut tape, store, &enc, &refs, &wt, false, rng);
            tape.value(loss).get(0, 0)
        };
        let before = loss_at(&store, &mut rng);
        for _ in 0..30 {
            let mut tape = Tape::new();
            let refs: Vec<&[usize]> = seqs.iter().map(Vec::as_slice).collect();
            let enc = model.encode(&mut tape, &store, &refs, true, &mut rng);
            let loss = model.reconstruction_loss(
                &mut tape, &store, &enc, &refs, &wt, true, &mut rng,
            );
            tape.backward(loss, &mut store);
            opt.step(&mut store);
        }
        let after = loss_at(&store, &mut rng);
        assert!(
            after < before * 0.9,
            "training did not reduce loss: {before} -> {after}"
        );
    }

    #[test]
    #[should_panic(expected = "empty batch")]
    fn empty_batch_panics() {
        let (store, model) = tiny_model(8, 0);
        let mut rng = StdRng::seed_from_u64(0);
        let mut tape = Tape::new();
        let _ = model.encode(&mut tape, &store, &[], false, &mut rng);
    }
}
