//! `e2dtc` — command-line interface to the trajectory clustering pipeline.
//!
//! ```text
//! e2dtc generate --kind hangzhou --n 500 --seed 7 --out data.json
//! e2dtc train    --data data.json --out model.json [--preset fast|paper]
//!                [--loss l0|l1|l2] [--k <clusters>] [--seed <s>]
//!                [--checkpoint-dir DIR] [--checkpoint-every N]
//!                [--checkpoint-keep N] [--resume DIR_OR_FILE]
//! e2dtc assign   --model model.json --data data.json --out assignments.json
//! e2dtc embed    --model model.json --data data.json --out embeddings.json
//! e2dtc evaluate --data data.json --assignments assignments.json
//! ```
//!
//! `generate` emits a synthetic city labelled with the paper's Algorithm 2
//! (σ = 0.6, λ = 0.7); `train` runs the full Algorithm 1; `assign` serves
//! clustering requests with a frozen model; `embed` batch-embeds
//! trajectories through the tape-free frozen encoder (loading the
//! checkpoint without optimizer state); `evaluate` scores assignments
//! with UACC / NMI / RI.
//!
//! With `--checkpoint-dir`/`--checkpoint-every`, `train` drops an atomic,
//! checksummed checkpoint every N epochs; after a crash, rerunning with
//! `--resume <dir>` continues from the newest usable one (corrupt files
//! are skipped) and produces the same model the uninterrupted run would
//! have.

use e2dtc::{E2dtc, E2dtcConfig, LossMode};
use std::collections::HashMap;
use std::process::ExitCode;
use traj_data::ground_truth::generate_ground_truth;
use traj_data::io::{load_labeled_json, save_labeled_json};
use traj_data::{GroundTruthConfig, SynthSpec};
use traj_cluster::{nmi, rand_index, uacc};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, flags)) = parse(&args) else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    if let Some(path) = flags.get("log-json") {
        match traj_obs::jsonl_recorder(path) {
            Ok(rec) => traj_obs::set_global(rec),
            Err(e) => {
                eprintln!("error: cannot open run log {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let recorder = traj_obs::global();
    emit_run_header(&recorder, &cmd, &flags);
    let t0 = std::time::Instant::now();
    let result = match cmd.as_str() {
        "generate" => generate(&flags),
        "train" => train(&flags),
        "assign" => assign(&flags),
        "embed" => embed(&flags),
        "evaluate" => evaluate(&flags),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    if recorder.enabled() {
        recorder.emit(&traj_obs::Event::RunEnd {
            status: (if result.is_ok() { "ok" } else { "error" }).to_string(),
            wall_ms: t0.elapsed().as_secs_f64() * 1e3,
        });
        recorder.flush();
    }
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
e2dtc — end-to-end deep trajectory clustering (E2DTC, ICDE 2021)

USAGE:
  e2dtc generate --kind <geolife|porto|hangzhou> [--n N] [--seed S] --out data.json
  e2dtc train    --data data.json --out model.json [--preset fast|paper]
                 [--loss l0|l1|l2] [--k CLUSTERS] [--seed S]
                 [--checkpoint-dir DIR] [--checkpoint-every N]
                 [--checkpoint-keep N] [--resume DIR_OR_FILE]
  e2dtc assign   --model model.json --data data.json --out assignments.json
  e2dtc embed    --model model.json --data data.json --out embeddings.json
  e2dtc evaluate --data data.json --assignments assignments.json

GLOBAL FLAGS:
  --log-json PATH   write a structured JSONL run log (see DESIGN.md §11)
  --quiet           suppress progress output on stdout";

/// Flags that take no value.
const BOOL_FLAGS: &[&str] = &["quiet"];

fn parse(args: &[String]) -> Option<(String, HashMap<String, String>)> {
    let cmd = args.first()?.clone();
    let mut flags = HashMap::new();
    let mut i = 1;
    while i < args.len() {
        let key = args[i].strip_prefix("--")?;
        if BOOL_FLAGS.contains(&key) {
            flags.insert(key.to_string(), "true".to_string());
            i += 1;
        } else {
            let value = args.get(i + 1)?;
            flags.insert(key.to_string(), value.clone());
            i += 2;
        }
    }
    Some((cmd, flags))
}

/// First line of the run log: command, seed, git state, and the raw flag
/// map as the configuration tree (the resolved `E2dtcConfig` is a pure
/// function of these flags plus the binary version).
fn emit_run_header(
    recorder: &traj_obs::Recorder,
    cmd: &str,
    flags: &HashMap<String, String>,
) {
    if !recorder.enabled() {
        return;
    }
    let mut keys: Vec<&String> = flags.keys().collect();
    keys.sort();
    let config = serde::Value::Object(
        keys.into_iter()
            .map(|k| (k.clone(), serde::Value::Str(flags[k].clone())))
            .collect(),
    );
    recorder.emit(&traj_obs::Event::RunHeader {
        schema: traj_obs::event::SCHEMA_VERSION,
        ts_ms: traj_obs::unix_millis(),
        name: cmd.to_string(),
        seed: flags.get("seed").and_then(|s| s.parse().ok()).unwrap_or(0),
        git: traj_obs::git_describe(),
        config,
    });
}

fn required<'a>(flags: &'a HashMap<String, String>, key: &str) -> Result<&'a str, String> {
    flags.get(key).map(String::as_str).ok_or_else(|| format!("missing --{key}"))
}

fn quiet(flags: &HashMap<String, String>) -> bool {
    flags.contains_key("quiet")
}

fn generate(flags: &HashMap<String, String>) -> Result<(), String> {
    let kind = required(flags, "kind")?;
    let out = required(flags, "out")?;
    let n: usize = flags.get("n").map_or(Ok(500), |v| v.parse().map_err(|e| format!("{e}")))?;
    let seed: u64 = flags.get("seed").map_or(Ok(7), |v| v.parse().map_err(|e| format!("{e}")))?;
    let spec = match kind {
        "geolife" => SynthSpec::geolife_like(n, seed),
        "porto" => SynthSpec::porto_like(n, seed),
        "hangzhou" => SynthSpec::hangzhou_like(n, seed),
        other => return Err(format!("unknown dataset kind `{other}`")),
    };
    let city = spec.generate();
    let (labelled, _) =
        generate_ground_truth(&city.dataset, &city.pois, GroundTruthConfig::default());
    save_labeled_json(&labelled, out).map_err(|e| e.to_string())?;
    let msg = format!(
        "wrote {} labelled trajectories ({} clusters, {} GPS points) to {out}",
        labelled.len(),
        labelled.num_clusters,
        labelled.dataset.total_points()
    );
    if !quiet(flags) {
        println!("{msg}");
    }
    traj_obs::global().info(msg);
    Ok(())
}

fn train(flags: &HashMap<String, String>) -> Result<(), String> {
    let data_path = required(flags, "data")?;
    let out = required(flags, "out")?;
    let data = load_labeled_json(data_path).map_err(|e| e.to_string())?;
    let k: usize = flags
        .get("k")
        .map_or(Ok(data.num_clusters), |v| v.parse().map_err(|e| format!("{e}")))?;
    let seed: u64 = flags.get("seed").map_or(Ok(0), |v| v.parse().map_err(|e| format!("{e}")))?;
    let mut cfg = match flags.get("preset").map(String::as_str) {
        Some("paper") => E2dtcConfig::paper(k),
        None | Some("fast") => E2dtcConfig::fast(k),
        Some(other) => return Err(format!("unknown preset `{other}`")),
    }
    .with_seed(seed);
    cfg.loss_mode = match flags.get("loss").map(String::as_str) {
        Some("l0") => LossMode::L0,
        Some("l1") => LossMode::L1,
        None | Some("l2") => LossMode::L2,
        Some(other) => return Err(format!("unknown loss mode `{other}`")),
    };

    let ckpt_every: usize = flags
        .get("checkpoint-every")
        .map_or(Ok(0), |v| v.parse().map_err(|e| format!("{e}")))?;
    let ckpt_keep: usize = flags
        .get("checkpoint-keep")
        .map_or(Ok(2), |v| v.parse().map_err(|e| format!("{e}")))?;
    let ckpt_dir = flags.get("checkpoint-dir").cloned();
    if ckpt_dir.is_none() && ckpt_every > 0 {
        return Err("--checkpoint-every requires --checkpoint-dir".into());
    }
    if let Some(dir) = &ckpt_dir {
        cfg = cfg.with_checkpointing(dir.clone(), ckpt_every.max(1));
        cfg.checkpoint_keep_last = ckpt_keep;
    }

    let recorder = traj_obs::global();
    let mut model = match flags.get("resume") {
        Some(path) => {
            let model = E2dtc::resume(path).map_err(|e| e.to_string())?;
            let st = model.pending_training().expect("resume guarantees a cursor");
            let msg = format!(
                "resuming from {path}: {} epochs done, continuing at {:?} epoch {}",
                st.epochs_done, st.phase, st.next_epoch
            );
            if !quiet(flags) {
                println!("{msg}");
            }
            recorder.info(msg);
            let mut model = model;
            if ckpt_dir.is_some() || ckpt_every > 0 {
                model.set_checkpoint_policy(ckpt_dir.clone(), ckpt_every.max(1), ckpt_keep);
            }
            model
        }
        None => {
            let msg = format!(
                "training on {} trajectories, k = {k}, loss = {}",
                data.len(),
                cfg.loss_mode.name()
            );
            if !quiet(flags) {
                println!("{msg}");
            }
            recorder.info(msg);
            E2dtc::new(&data.dataset, cfg)
        }
    };
    let t0 = std::time::Instant::now();
    let fit = model.fit(&data.dataset);
    let trained = format!(
        "trained in {:.1}s ({} epochs recorded, {} parameters)",
        t0.elapsed().as_secs_f64(),
        fit.history.len(),
        model.num_parameters()
    );
    let scores = format!(
        "training-set scores: UACC {:.3}  NMI {:.3}  RI {:.3}",
        uacc(&fit.assignments, &data.labels),
        nmi(&fit.assignments, &data.labels),
        rand_index(&fit.assignments, &data.labels)
    );
    if !quiet(flags) {
        println!("{trained}");
        println!("{scores}");
    }
    recorder.info(trained);
    recorder.info(scores);
    model.save(out).map_err(|e| e.to_string())?;
    if !quiet(flags) {
        println!("model saved to {out}");
    }
    Ok(())
}

fn assign(flags: &HashMap<String, String>) -> Result<(), String> {
    let model_path = required(flags, "model")?;
    let data_path = required(flags, "data")?;
    let out = required(flags, "out")?;
    let model = E2dtc::load(model_path).map_err(|e| e.to_string())?;
    let data = load_labeled_json(data_path).map_err(|e| e.to_string())?;
    let t0 = std::time::Instant::now();
    let assignments = model.assign(&data.dataset);
    let msg = format!(
        "assigned {} trajectories in {:.0} ms",
        assignments.len(),
        t0.elapsed().as_secs_f64() * 1e3
    );
    if !quiet(flags) {
        println!("{msg}");
    }
    traj_obs::global().info(msg);
    let json = serde_json::to_string_pretty(&assignments).map_err(|e| e.to_string())?;
    std::fs::write(out, json).map_err(|e| e.to_string())?;
    if !quiet(flags) {
        println!("assignments written to {out}");
    }
    Ok(())
}

fn embed(flags: &HashMap<String, String>) -> Result<(), String> {
    let model_path = required(flags, "model")?;
    let data_path = required(flags, "data")?;
    let out = required(flags, "out")?;
    let frozen = e2dtc::FrozenEncoder::from_checkpoint(model_path).map_err(|e| e.to_string())?;
    let data = load_labeled_json(data_path).map_err(|e| e.to_string())?;
    let t0 = std::time::Instant::now();
    let emb = frozen.embed_dataset(&data.dataset);
    // Assignments ride along when the checkpoint carries centroids.
    let assignments = frozen.centroids().map(|_| frozen.hard_assign(&emb));
    let msg = format!(
        "embedded {} trajectories (dim {}) in {:.0} ms{}",
        emb.rows(),
        emb.cols(),
        t0.elapsed().as_secs_f64() * 1e3,
        if assignments.is_some() { ", with cluster assignments" } else { "" }
    );
    if !quiet(flags) {
        println!("{msg}");
    }
    traj_obs::global().info(msg);
    #[derive(serde::Serialize)]
    struct EmbedOutput {
        n: usize,
        dim: usize,
        embeddings: Vec<Vec<f32>>,
        assignments: Option<Vec<usize>>,
    }
    let payload = EmbedOutput {
        n: emb.rows(),
        dim: emb.cols(),
        embeddings: (0..emb.rows()).map(|r| emb.row(r).to_vec()).collect(),
        assignments,
    };
    let json = serde_json::to_string(&payload).map_err(|e| e.to_string())?;
    std::fs::write(out, json).map_err(|e| e.to_string())?;
    if !quiet(flags) {
        println!("embeddings written to {out}");
    }
    Ok(())
}

fn evaluate(flags: &HashMap<String, String>) -> Result<(), String> {
    let data_path = required(flags, "data")?;
    let asg_path = required(flags, "assignments")?;
    let data = load_labeled_json(data_path).map_err(|e| e.to_string())?;
    let text = std::fs::read_to_string(asg_path).map_err(|e| e.to_string())?;
    let assignments: Vec<usize> = serde_json::from_str(&text).map_err(|e| e.to_string())?;
    if assignments.len() != data.len() {
        return Err(format!(
            "assignment count {} does not match dataset size {}",
            assignments.len(),
            data.len()
        ));
    }
    let msg = format!(
        "UACC {:.3}  NMI {:.3}  RI {:.3}",
        uacc(&assignments, &data.labels),
        nmi(&assignments, &data.labels),
        rand_index(&assignments, &data.labels)
    );
    // The metrics line is the command's output, so `--quiet` keeps it.
    println!("{msg}");
    traj_obs::global().info(msg);
    Ok(())
}
