//! The frozen (inference-only) encoder — the paper's end product.
//!
//! After self-training converges, E²DTC's serving story is "once finely
//! trained, it can be efficiently adopted for trajectory clustering
//! requests": embed new trajectories with the frozen seq2seq encoder and
//! assign them to the learned centroids. [`FrozenEncoder`] packages
//! exactly that — immutable weights, grid, vocabulary, and centroids,
//! with no tape, no optimizer state, and no RNG — so it is `Send + Sync`
//! and can be shared across threads behind an `Arc` (see the
//! `traj-query` crate for the batched fan-out engine).
//!
//! The forward path is the tape-free eval mirror from
//! [`traj_nn::infer`]: bit-identical to the training-path forward
//! (pinned by `tests/frozen_parity.rs`) while skipping all autograd
//! bookkeeping, including the per-batch clone of every parameter tensor
//! that `Tape::param` performs.

use crate::batcher::length_buckets;
use crate::config::E2dtcConfig;
use crate::dec::hard_assignment;
use crate::seq2seq::Seq2Seq;
use crate::vocab::{Vocab, UNK};
use traj_data::{Dataset, Grid, Trajectory};
use traj_nn::infer::Scratch;
use traj_nn::{student_t_assignment, ParamStore, Tensor};

/// Immutable trained encoder + centroids, safe to share across threads.
#[derive(Clone, Debug)]
pub struct FrozenEncoder {
    cfg: E2dtcConfig,
    grid: Grid,
    vocab: Vocab,
    store: ParamStore,
    model: Seq2Seq,
    centroids: Option<Tensor>,
}

// The whole point: one encoder instance serves many threads.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<FrozenEncoder>();
};

impl FrozenEncoder {
    /// Assembles a frozen encoder from already-validated parts (used by
    /// [`crate::model::E2dtc::freeze`] and the checkpoint loader).
    pub(crate) fn from_parts(
        cfg: E2dtcConfig,
        grid: Grid,
        vocab: Vocab,
        store: ParamStore,
        model: Seq2Seq,
        centroids: Option<Tensor>,
    ) -> Self {
        Self { cfg, grid, vocab, store, model, centroids }
    }

    /// The configuration the encoder was trained under.
    pub fn config(&self) -> &E2dtcConfig {
        &self.cfg
    }

    /// Spatial grid fitted to the training dataset.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// Vocabulary built from the training dataset.
    pub fn vocab(&self) -> &Vocab {
        &self.vocab
    }

    /// Trajectory-representation dimensionality.
    pub fn repr_dim(&self) -> usize {
        self.model.hidden_dim()
    }

    /// The learned `(k, hidden)` centroids, when self-training (or
    /// [`crate::model::E2dtc::init_centroids`]) produced them.
    pub fn centroids(&self) -> Option<&Tensor> {
        self.centroids.as_ref()
    }

    /// Tokenizes one trajectory with the training grid/vocabulary
    /// (unknown cells become `UNK`; an empty encoding becomes `[UNK]`).
    pub fn tokenize(&self, traj: &Trajectory) -> Vec<usize> {
        let seq = self.vocab.encode_trajectory(&self.grid, traj, self.cfg.max_seq_len);
        if seq.is_empty() {
            vec![UNK]
        } else {
            seq
        }
    }

    /// Encodes one already-tokenized batch, returning the `(batch,
    /// hidden)` representations. The result tensor is drawn from
    /// `scratch`; hand it back with [`Scratch::put`] when done to keep
    /// the pool at its allocation fixed point.
    pub fn encode_sequences(&self, seqs: &[&[usize]], scratch: &mut Scratch) -> Tensor {
        encode_batch(&self.model, &self.store, seqs, scratch)
    }

    /// Embeds a batch of trajectories (tokenize + length-bucket +
    /// encode), returning an `(n, hidden)` tensor aligned with the input.
    pub fn embed_batch(&self, trajs: &[Trajectory], scratch: &mut Scratch) -> Tensor {
        let sequences: Vec<Vec<usize>> = trajs.iter().map(|t| self.tokenize(t)).collect();
        embed_tokenized(&self.model, &self.store, &sequences, self.cfg.batch_size, scratch)
    }

    /// Embeds every trajectory of a dataset — the `&self` twin of the
    /// historical `E2dtc::embed_dataset`.
    pub fn embed_dataset(&self, dataset: &Dataset) -> Tensor {
        let mut scratch = Scratch::new();
        self.embed_batch(&dataset.trajectories, &mut scratch)
    }

    /// Soft (Student-t) cluster assignment `Q` for pre-computed
    /// embeddings (paper Eq. 9).
    ///
    /// # Panics
    /// Panics when the encoder was frozen before centroids existed.
    pub fn soft_assign(&self, embeddings: &Tensor) -> Tensor {
        let c = self
            .centroids
            .as_ref()
            .expect("frozen encoder has no centroids — freeze after fit/init_centroids");
        student_t_assignment(embeddings, c)
    }

    /// Hard cluster assignment (argmax of `Q`) for pre-computed
    /// embeddings.
    ///
    /// # Panics
    /// Panics when the encoder has no centroids.
    pub fn hard_assign(&self, embeddings: &Tensor) -> Vec<usize> {
        hard_assignment(&self.soft_assign(embeddings))
    }

    /// For each embedding row, the `k` nearest centroids as
    /// `(centroid index, squared distance)` pairs, nearest first.
    ///
    /// # Panics
    /// Panics when the encoder has no centroids.
    pub fn centroid_topk(&self, embeddings: &Tensor, k: usize) -> Vec<Vec<(usize, f32)>> {
        let c = self
            .centroids
            .as_ref()
            .expect("frozen encoder has no centroids — freeze after fit/init_centroids");
        let k = k.min(c.rows());
        (0..embeddings.rows())
            .map(|r| {
                let mut dists: Vec<(usize, f32)> =
                    (0..c.rows()).map(|j| (j, embeddings.row_sq_dist(r, c, j))).collect();
                dists.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
                dists.truncate(k);
                dists
            })
            .collect()
    }
}

/// Tape-free mirror of [`Seq2Seq::encode`]: runs the masked GRU
/// recurrence over a dense token batch and returns the top-layer final
/// hidden states `v_T` as a `(batch, hidden)` scratch tensor.
///
/// # Panics
/// Panics on an empty batch or an empty sequence.
pub(crate) fn encode_batch(
    model: &Seq2Seq,
    store: &ParamStore,
    seqs: &[&[usize]],
    scratch: &mut Scratch,
) -> Tensor {
    assert!(!seqs.is_empty(), "empty batch");
    assert!(seqs.iter().all(|s| !s.is_empty()), "empty sequence in batch");
    let batch = seqs.len();
    let max_len = seqs.iter().map(|s| s.len()).max().expect("non-empty batch");
    let hidden = model.encoder.hidden_dim();

    let mut state = model.encoder.eval_zero_state(batch, scratch);
    let mut ids: Vec<usize> = Vec::with_capacity(batch);
    for t in 0..max_len {
        ids.clear();
        ids.extend(seqs.iter().map(|s| s.get(t).copied().unwrap_or(UNK)));
        let x = model.embedding.eval(store, &ids, scratch);
        if seqs.iter().all(|s| t < s.len()) {
            model.encoder.eval_step(store, &x, &mut state, scratch);
        } else {
            // Mirror of seq2seq::row_mask: active rows 1.0, ended 0.0.
            let mut mask = scratch.take(batch, hidden);
            for (i, s) in seqs.iter().enumerate() {
                if t < s.len() {
                    mask.row_mut(i).fill(1.0);
                }
            }
            model.encoder.eval_step_masked(store, &x, &mut state, &mask, scratch);
            scratch.put(mask);
        }
        scratch.put(x);
    }
    let repr = state.pop().expect("at least one layer");
    for s in state {
        scratch.put(s);
    }
    repr
}

/// Embeds pre-tokenized sequences through length-bucketed batches,
/// scattering results back to input order. One implementation serves the
/// `E2dtc` facade, [`FrozenEncoder::embed_batch`], and `traj-query`.
pub(crate) fn embed_tokenized(
    model: &Seq2Seq,
    store: &ParamStore,
    sequences: &[Vec<usize>],
    batch_size: usize,
    scratch: &mut Scratch,
) -> Tensor {
    let n = sequences.len();
    let d = model.hidden_dim();
    let mut out = Tensor::zeros(n, d);
    let lens: Vec<usize> = sequences.iter().map(Vec::len).collect();
    for batch in length_buckets(&lens, batch_size) {
        let refs: Vec<&[usize]> = batch.iter().map(|&i| sequences[i].as_slice()).collect();
        let repr = encode_batch(model, store, &refs, scratch);
        for (row, &i) in batch.iter().enumerate() {
            out.row_mut(i).copy_from_slice(repr.row(row));
        }
        scratch.put(repr);
    }
    out
}
