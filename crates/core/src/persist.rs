//! Model persistence: train once, serve clustering requests forever.
//!
//! The paper's efficiency story (Fig. 3) rests on training offline and
//! serving requests with the frozen model. This module serializes
//! everything inference needs — configuration, grid, vocabulary, spatial
//! weight table, all network parameters, and optimizer state — as JSON.
//!
//! Reconstruction relies on parameter registration being deterministic:
//! [`crate::seq2seq::Seq2Seq::new`] always registers the same tensors in
//! the same order for a given architecture, so the saved [`ParamStore`]
//! slots match a freshly-built model's `ParamId`s exactly (a unit test
//! pins this invariant).

use crate::config::E2dtcConfig;
use crate::model::E2dtc;
use crate::seq2seq::Seq2Seq;
use crate::spatial_loss::WeightTable;
use crate::vocab::Vocab;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::fs::File;
use std::io::{self, BufReader, BufWriter};
use std::path::Path;
use traj_data::Grid;
use traj_nn::optim::Adam;
use traj_nn::{ParamId, ParamStore, Tensor};

/// On-disk representation of a trained model.
#[derive(Serialize, Deserialize)]
struct SavedModel {
    format_version: u32,
    config: E2dtcConfig,
    grid: Grid,
    vocab: Vocab,
    weights: WeightTable,
    store: ParamStore,
    /// Whether the store's final parameter is the centroid matrix.
    has_centroids: bool,
    opt: Adam,
}

const FORMAT_VERSION: u32 = 1;

impl E2dtc {
    /// Serializes the trained model to pretty JSON.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let saved = SavedModel {
            format_version: FORMAT_VERSION,
            config: self.cfg.clone(),
            grid: self.grid.clone(),
            vocab: self.vocab.clone(),
            weights: self.weights.clone(),
            store: self.store.clone(),
            has_centroids: self.centroids.is_some(),
            opt: self.opt.clone(),
        };
        let file = BufWriter::new(File::create(path)?);
        serde_json::to_writer(file, &saved).map_err(io::Error::other)
    }

    /// Loads a model saved with [`E2dtc::save`].
    ///
    /// The loaded model is immediately usable for inference
    /// ([`E2dtc::embed_dataset`], [`E2dtc::assign`]) and for continued
    /// training (`fit` re-tokenizes its dataset on demand).
    pub fn load(path: impl AsRef<Path>) -> io::Result<E2dtc> {
        let file = BufReader::new(File::open(path)?);
        let saved: SavedModel = serde_json::from_reader(file).map_err(io::Error::other)?;
        if saved.format_version != FORMAT_VERSION {
            return Err(io::Error::other(format!(
                "unsupported model format version {} (expected {FORMAT_VERSION})",
                saved.format_version
            )));
        }
        // Rebuild the architecture in a scratch store: parameter ids are
        // assigned in deterministic registration order, so the layer
        // handles line up with the saved store's slots.
        let mut scratch = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(saved.config.seed);
        let placeholder = Tensor::zeros(saved.vocab.size(), saved.config.embed_dim);
        let model = Seq2Seq::with_options(
            &mut scratch,
            placeholder,
            saved.config.hidden_dim,
            saved.config.layers,
            saved.config.attention,
            &mut rng,
        );
        let expected = scratch.len() + usize::from(saved.has_centroids);
        if saved.store.len() != expected {
            return Err(io::Error::other(format!(
                "saved parameter count {} does not match architecture ({expected})",
                saved.store.len()
            )));
        }
        let centroids = saved
            .has_centroids
            .then(|| saved.store.ids().last().expect("store non-empty"));
        Ok(E2dtc {
            rng: StdRng::seed_from_u64(saved.config.seed ^ 0x6c6f6164),
            cfg: saved.config,
            grid: saved.grid,
            vocab: saved.vocab,
            weights: saved.weights,
            store: saved.store,
            model,
            centroids,
            opt: saved.opt,
            sequences: Vec::new(),
        })
    }

    /// Handle of the centroid parameter, if self-training has run.
    pub fn centroids_param(&self) -> Option<ParamId> {
        self.centroids
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::E2dtcConfig;
    use traj_data::SynthSpec;

    fn trained_model() -> (E2dtc, traj_data::Dataset) {
        let mut spec = SynthSpec::hangzhou_like(40, 77);
        spec.num_clusters = 3;
        spec.len_range = (10, 18);
        spec.outlier_fraction = 0.0;
        let city = spec.generate();
        let mut model = E2dtc::new(&city.dataset, E2dtcConfig::tiny(3));
        let _ = model.fit(&city.dataset);
        (model, city.dataset)
    }

    #[test]
    fn save_load_roundtrip_preserves_inference() {
        let (mut model, dataset) = trained_model();
        let dir = std::env::temp_dir().join("e2dtc_persist_test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("model.json");
        model.save(&path).expect("save");

        let mut loaded = E2dtc::load(&path).expect("load");
        let orig_emb = model.embed_dataset(&dataset);
        let loaded_emb = loaded.embed_dataset(&dataset);
        assert_eq!(orig_emb, loaded_emb, "embeddings diverge after reload");
        assert_eq!(model.assign(&dataset), loaded.assign(&dataset));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn loaded_model_reports_centroids() {
        let (model, _) = trained_model();
        assert!(model.centroids_param().is_some());
        let dir = std::env::temp_dir().join("e2dtc_persist_test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("model2.json");
        model.save(&path).expect("save");
        let loaded = E2dtc::load(&path).expect("load");
        assert!(loaded.centroids_param().is_some());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn load_rejects_missing_file() {
        assert!(E2dtc::load("/nonexistent/model.json").is_err());
    }

    #[test]
    fn registration_order_is_deterministic() {
        // The invariant save/load depends on: two identically-configured
        // constructions register identical parameter names in order.
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let build = || {
            let mut store = ParamStore::new();
            let mut rng = StdRng::seed_from_u64(0);
            let _ = Seq2Seq::new(&mut store, Tensor::zeros(10, 8), 12, 2, &mut rng);
            store.ids().map(|id| store.name(id).to_string()).collect::<Vec<_>>()
        };
        assert_eq!(build(), build());
    }
}
