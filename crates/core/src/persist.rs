//! Model persistence: train once, serve clustering requests forever.
//!
//! The paper's efficiency story (Fig. 3) rests on training offline and
//! serving requests with the frozen model. This module serializes
//! everything inference needs — configuration, grid, vocabulary, spatial
//! weight table, all network parameters, and optimizer state — as JSON.
//!
//! Reconstruction relies on parameter registration being deterministic:
//! [`crate::seq2seq::Seq2Seq::new`] always registers the same tensors in
//! the same order for a given architecture, so the saved [`ParamStore`]
//! slots match a freshly-built model's `ParamId`s exactly (a unit test
//! pins this invariant).

use crate::config::E2dtcConfig;
use crate::model::E2dtc;
use crate::seq2seq::Seq2Seq;
use crate::spatial_loss::WeightTable;
use crate::vocab::Vocab;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::fs::File;
use std::io::{self, BufReader, BufWriter};
use std::path::Path;
use traj_data::Grid;
use traj_nn::optim::Adam;
use traj_nn::{ParamId, ParamStore, Tensor};

/// On-disk representation of a trained model.
#[derive(Serialize, Deserialize)]
struct SavedModel {
    format_version: u32,
    config: E2dtcConfig,
    grid: Grid,
    vocab: Vocab,
    weights: WeightTable,
    store: ParamStore,
    /// Whether the store's final parameter is the centroid matrix.
    has_centroids: bool,
    opt: Adam,
}

/// Version 2 fuses each GRU cell's ten per-gate tensors into four
/// (`w_x`, `w_h`, `b_x`, `b_h`); version-1 checkpoints are migrated on
/// load by [`migrate_v1_store`].
const FORMAT_VERSION: u32 = 2;

/// v1 per-cell parameter suffixes, in their registration order.
const V1_GRU_SUFFIXES: [&str; 10] =
    [".w_xr", ".w_hr", ".w_xz", ".w_hz", ".w_xn", ".w_hn", ".b_r", ".b_z", ".b_xn", ".b_hn"];

/// Rebuilds a fused (v2) parameter store from a v1 store holding ten
/// per-gate tensors per GRU cell.
///
/// The fused layout concatenates gate columns as `[r | z | n]`:
/// `w_x = [W_xr | W_xz | W_xn]`, `w_h = [W_hr | W_hz | W_hn]`,
/// `b_x = [b_r | b_z | b_xn]`, and `b_h = [0 | 0 | b_hn]` (v1 had no
/// recurrent bias on the r/z gates, which the fused form encodes as zero
/// blocks). Non-GRU parameters are copied through unchanged, preserving
/// relative order.
fn migrate_v1_store(old: &ParamStore) -> io::Result<ParamStore> {
    let mut fused = ParamStore::new();
    let ids: Vec<ParamId> = old.ids().collect();
    let mut i = 0;
    while i < ids.len() {
        let name = old.name(ids[i]).to_string();
        if let Some(prefix) = name.strip_suffix(".w_xr") {
            let mut gates = Vec::with_capacity(V1_GRU_SUFFIXES.len());
            for (j, suffix) in V1_GRU_SUFFIXES.iter().enumerate() {
                let id = ids.get(i + j).copied().ok_or_else(|| {
                    io::Error::other(format!("v1 GRU cell `{prefix}` is truncated"))
                })?;
                let got = old.name(id);
                if got != format!("{prefix}{suffix}") {
                    return Err(io::Error::other(format!(
                        "v1 GRU cell `{prefix}`: expected `{prefix}{suffix}`, found `{got}`"
                    )));
                }
                gates.push(old.get(id));
            }
            let w_x = gates[0].concat_cols(gates[2]).concat_cols(gates[4]);
            let w_h = gates[1].concat_cols(gates[3]).concat_cols(gates[5]);
            let b_x = gates[6].concat_cols(gates[7]).concat_cols(gates[8]);
            let b_hn = gates[9];
            let b_h = Tensor::zeros(1, 2 * b_hn.cols()).concat_cols(b_hn);
            fused.add(format!("{prefix}.w_x"), w_x);
            fused.add(format!("{prefix}.w_h"), w_h);
            fused.add(format!("{prefix}.b_x"), b_x);
            fused.add(format!("{prefix}.b_h"), b_h);
            i += V1_GRU_SUFFIXES.len();
        } else {
            fused.add(name, old.get(ids[i]).clone());
            i += 1;
        }
    }
    Ok(fused)
}

impl E2dtc {
    /// Serializes the trained model to pretty JSON.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let saved = SavedModel {
            format_version: FORMAT_VERSION,
            config: self.cfg.clone(),
            grid: self.grid.clone(),
            vocab: self.vocab.clone(),
            weights: self.weights.clone(),
            store: self.store.clone(),
            has_centroids: self.centroids.is_some(),
            opt: self.opt.clone(),
        };
        let file = BufWriter::new(File::create(path)?);
        serde_json::to_writer(file, &saved).map_err(io::Error::other)
    }

    /// Loads a model saved with [`E2dtc::save`].
    ///
    /// The loaded model is immediately usable for inference
    /// ([`E2dtc::embed_dataset`], [`E2dtc::assign`]) and for continued
    /// training (`fit` re-tokenizes its dataset on demand).
    pub fn load(path: impl AsRef<Path>) -> io::Result<E2dtc> {
        let file = BufReader::new(File::open(path)?);
        let saved: SavedModel = serde_json::from_reader(file).map_err(io::Error::other)?;
        let (store, opt) = match saved.format_version {
            FORMAT_VERSION => (saved.store, saved.opt),
            1 => {
                // Pre-fusion checkpoint: fuse the per-gate GRU tensors.
                // The parameter layout changes, so Adam's per-slot moment
                // buffers no longer line up; restart the optimizer state
                // (weights are preserved exactly, only momentum is lost).
                let store = migrate_v1_store(&saved.store)?;
                let opt =
                    Adam::new(saved.config.lr).with_max_grad_norm(saved.config.max_grad_norm);
                (store, opt)
            }
            v => {
                return Err(io::Error::other(format!(
                    "unsupported model format version {v} (expected ≤ {FORMAT_VERSION})"
                )))
            }
        };
        // Rebuild the architecture in a scratch store: parameter ids are
        // assigned in deterministic registration order, so the layer
        // handles line up with the saved store's slots.
        let mut scratch = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(saved.config.seed);
        let placeholder = Tensor::zeros(saved.vocab.size(), saved.config.embed_dim);
        let model = Seq2Seq::with_options(
            &mut scratch,
            placeholder,
            saved.config.hidden_dim,
            saved.config.layers,
            saved.config.attention,
            &mut rng,
        );
        let expected = scratch.len() + usize::from(saved.has_centroids);
        if store.len() != expected {
            return Err(io::Error::other(format!(
                "saved parameter count {} does not match architecture ({expected})",
                store.len()
            )));
        }
        let centroids =
            saved.has_centroids.then(|| store.ids().last().expect("store non-empty"));
        Ok(E2dtc {
            rng: StdRng::seed_from_u64(saved.config.seed ^ 0x6c6f6164),
            cfg: saved.config,
            grid: saved.grid,
            vocab: saved.vocab,
            weights: saved.weights,
            store,
            model,
            centroids,
            opt,
            sequences: Vec::new(),
        })
    }

    /// Handle of the centroid parameter, if self-training has run.
    pub fn centroids_param(&self) -> Option<ParamId> {
        self.centroids
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::E2dtcConfig;
    use traj_data::SynthSpec;

    fn trained_model() -> (E2dtc, traj_data::Dataset) {
        let mut spec = SynthSpec::hangzhou_like(40, 77);
        spec.num_clusters = 3;
        spec.len_range = (10, 18);
        spec.outlier_fraction = 0.0;
        let city = spec.generate();
        let mut model = E2dtc::new(&city.dataset, E2dtcConfig::tiny(3));
        let _ = model.fit(&city.dataset);
        (model, city.dataset)
    }

    #[test]
    fn save_load_roundtrip_preserves_inference() {
        let (mut model, dataset) = trained_model();
        let dir = std::env::temp_dir().join("e2dtc_persist_test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("model.json");
        model.save(&path).expect("save");

        let mut loaded = E2dtc::load(&path).expect("load");
        let orig_emb = model.embed_dataset(&dataset);
        let loaded_emb = loaded.embed_dataset(&dataset);
        assert_eq!(orig_emb, loaded_emb, "embeddings diverge after reload");
        assert_eq!(model.assign(&dataset), loaded.assign(&dataset));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn loaded_model_reports_centroids() {
        let (model, _) = trained_model();
        assert!(model.centroids_param().is_some());
        let dir = std::env::temp_dir().join("e2dtc_persist_test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("model2.json");
        model.save(&path).expect("save");
        let loaded = E2dtc::load(&path).expect("load");
        assert!(loaded.centroids_param().is_some());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn load_rejects_missing_file() {
        assert!(E2dtc::load("/nonexistent/model.json").is_err());
    }

    /// Splits a fused (v2) store back into the v1 per-gate layout, exactly
    /// inverting [`migrate_v1_store`]. The r/z blocks of `b_h` fold into
    /// `b_r`/`b_z`: both biases feed the same gate pre-activation, so the
    /// sum is the equivalent v1 parameterization.
    fn defuse_to_v1(store: &ParamStore) -> ParamStore {
        let col_block = |t: &Tensor, lo: usize, hi: usize| {
            let mut out = Tensor::zeros(t.rows(), hi - lo);
            for r in 0..t.rows() {
                out.row_mut(r).copy_from_slice(&t.row(r)[lo..hi]);
            }
            out
        };
        let ids: Vec<ParamId> = store.ids().collect();
        let mut v1 = ParamStore::new();
        let mut i = 0;
        while i < ids.len() {
            let name = store.name(ids[i]).to_string();
            if let Some(prefix) = name.strip_suffix(".w_x") {
                let w_x = store.get(ids[i]);
                let w_h = store.get(ids[i + 1]);
                let b_x = store.get(ids[i + 2]);
                let b_h = store.get(ids[i + 3]);
                let h = w_h.rows();
                v1.add(format!("{prefix}.w_xr"), col_block(w_x, 0, h));
                v1.add(format!("{prefix}.w_hr"), col_block(w_h, 0, h));
                v1.add(format!("{prefix}.w_xz"), col_block(w_x, h, 2 * h));
                v1.add(format!("{prefix}.w_hz"), col_block(w_h, h, 2 * h));
                v1.add(format!("{prefix}.w_xn"), col_block(w_x, 2 * h, 3 * h));
                v1.add(format!("{prefix}.w_hn"), col_block(w_h, 2 * h, 3 * h));
                v1.add(format!("{prefix}.b_r"), col_block(b_x, 0, h).add(&col_block(b_h, 0, h)));
                v1.add(
                    format!("{prefix}.b_z"),
                    col_block(b_x, h, 2 * h).add(&col_block(b_h, h, 2 * h)),
                );
                v1.add(format!("{prefix}.b_xn"), col_block(b_x, 2 * h, 3 * h));
                v1.add(format!("{prefix}.b_hn"), col_block(b_h, 2 * h, 3 * h));
                i += 4;
            } else {
                v1.add(name, store.get(ids[i]).clone());
                i += 1;
            }
        }
        v1
    }

    #[test]
    fn v1_checkpoint_loads_and_matches_fused_model() {
        let (mut model, dataset) = trained_model();

        // Synthesize a pre-fusion checkpoint carrying the same weights.
        let saved = SavedModel {
            format_version: 1,
            config: model.cfg.clone(),
            grid: model.grid.clone(),
            vocab: model.vocab.clone(),
            weights: model.weights.clone(),
            store: defuse_to_v1(&model.store),
            has_centroids: model.centroids.is_some(),
            opt: Adam::new(model.cfg.lr).with_max_grad_norm(model.cfg.max_grad_norm),
        };
        let dir = std::env::temp_dir().join("e2dtc_persist_test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("model_v1.json");
        {
            let file = BufWriter::new(File::create(&path).expect("create"));
            serde_json::to_writer(file, &saved).expect("write v1 checkpoint");
        }

        let mut migrated = E2dtc::load(&path).expect("v1 checkpoint must load");
        assert!(migrated.centroids_param().is_some());

        // The fused parameterization is mathematically identical; only
        // float association differs (b_h's r/z blocks fold into b_x), so
        // embeddings agree to f32 tolerance and assignments exactly.
        let orig = model.embed_dataset(&dataset);
        let loaded = migrated.embed_dataset(&dataset);
        assert_eq!(orig.shape(), loaded.shape());
        for (a, b) in orig.data().iter().zip(loaded.data()) {
            assert!((a - b).abs() < 1e-3, "migrated embedding diverges: {a} vs {b}");
        }
        assert_eq!(model.assign(&dataset), migrated.assign(&dataset));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn registration_order_is_deterministic() {
        // The invariant save/load depends on: two identically-configured
        // constructions register identical parameter names in order.
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let build = || {
            let mut store = ParamStore::new();
            let mut rng = StdRng::seed_from_u64(0);
            let _ = Seq2Seq::new(&mut store, Tensor::zeros(10, 8), 12, 2, &mut rng);
            store.ids().map(|id| store.name(id).to_string()).collect::<Vec<_>>()
        };
        assert_eq!(build(), build());
    }
}
