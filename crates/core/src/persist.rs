//! Model persistence: train once, serve clustering requests forever —
//! and survive dying in the middle of the training investment.
//!
//! The paper's efficiency story (Fig. 3) rests on training offline and
//! serving requests with the frozen model. This module serializes
//! everything inference needs — configuration, grid, vocabulary, spatial
//! weight table, all network parameters, and optimizer state — plus,
//! for training checkpoints, the [`TrainingState`] cursor that lets
//! [`E2dtc::resume`] continue an interrupted `fit` exactly.
//!
//! ## Checkpoint format v3 (DESIGN.md §10)
//!
//! A v3 file is a one-line ASCII header followed by a JSON payload:
//!
//! ```text
//! E2DTC-CKPT v3 fnv1a64=<16 hex digits> len=<payload bytes>\n
//! { ...SavedModel JSON... }
//! ```
//!
//! The header carries an FNV-1a 64 checksum and the byte length of the
//! payload, so torn writes and bit rot are detected before JSON parsing
//! ever runs. Files are written atomically: full payload to a `.tmp`
//! sibling, `fsync`, then `rename` over the final path — a crash at any
//! point leaves either the old file or the new file, never a hybrid.
//!
//! Legacy v1/v2 files carry no header (they start with `{`) and are
//! still loaded, including the v1→v2 fused-GRU migration.
//!
//! Loading validates, in order: header + checksum, format version,
//! parameter count, each parameter's registration name and tensor shape
//! against a freshly-built architecture, and the finiteness of every
//! weight. Each failure mode is a distinct [`PersistError`] variant.
//!
//! Reconstruction relies on parameter registration being deterministic:
//! [`crate::seq2seq::Seq2Seq::new`] always registers the same tensors in
//! the same order for a given architecture, so the saved [`ParamStore`]
//! slots match a freshly-built model's `ParamId`s exactly (a unit test
//! pins this invariant).

use crate::config::E2dtcConfig;
use crate::encoder::FrozenEncoder;
use crate::model::{E2dtc, TrainingState};
use crate::seq2seq::Seq2Seq;
use crate::spatial_loss::WeightTable;
use crate::trainer::rng_state_from;
use crate::vocab::Vocab;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::fs::File;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use traj_data::Grid;
use traj_nn::optim::Adam;
use traj_nn::{ParamId, ParamStore, Tensor};

/// Magic prefix of a v3 (header + checksum) checkpoint file.
const MAGIC: &str = "E2DTC-CKPT";

/// Everything that can go wrong saving or loading a model/checkpoint.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying filesystem failure.
    Io(io::Error),
    /// The JSON payload does not parse or does not match the schema.
    Json(String),
    /// The `E2DTC-CKPT` header line is malformed or lies about the
    /// payload length (e.g. a truncated file).
    BadHeader(String),
    /// The payload does not hash to the checksum in the header.
    ChecksumMismatch {
        /// Checksum recorded in the header.
        expected: u64,
        /// Checksum of the payload actually on disk.
        actual: u64,
    },
    /// The file's `format_version` is newer than this build understands.
    UnsupportedVersion(u32),
    /// The saved parameter count does not match the architecture the
    /// saved configuration describes.
    ParamCountMismatch {
        /// Parameters in the file.
        saved: usize,
        /// Parameters the architecture registers.
        expected: usize,
    },
    /// A saved tensor's registration name or shape disagrees with the
    /// architecture.
    ShapeMismatch {
        /// Parameter registration name.
        name: String,
        /// `(rows, cols)` in the file.
        saved: (usize, usize),
        /// `(rows, cols)` the architecture expects.
        expected: (usize, usize),
    },
    /// A saved parameter holds NaN or infinity.
    NonFiniteParam(String),
    /// A v1 checkpoint's per-gate GRU cell is truncated or misordered.
    BadGruCell(String),
    /// The checkpoint's serialized RNG state has the wrong word count.
    BadRngState(usize),
    /// [`E2dtc::resume`] needs a training cursor, but the file is a plain
    /// model save (or predates format v3).
    NotATrainingCheckpoint,
    /// A checkpoint directory holds no usable checkpoint.
    NoCheckpointFound(PathBuf),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "i/o error: {e}"),
            PersistError::Json(e) => write!(f, "malformed checkpoint JSON: {e}"),
            PersistError::BadHeader(e) => write!(f, "bad checkpoint header: {e}"),
            PersistError::ChecksumMismatch { expected, actual } => write!(
                f,
                "checkpoint checksum mismatch: header says {expected:016x}, \
                 payload hashes to {actual:016x} (file is corrupt or torn)"
            ),
            PersistError::UnsupportedVersion(v) => {
                write!(f, "unsupported checkpoint format version {v}")
            }
            PersistError::ParamCountMismatch { saved, expected } => write!(
                f,
                "saved parameter count {saved} does not match architecture ({expected})"
            ),
            PersistError::ShapeMismatch { name, saved, expected } => write!(
                f,
                "parameter `{name}` has shape {}x{}, architecture expects {}x{}",
                saved.0, saved.1, expected.0, expected.1
            ),
            PersistError::NonFiniteParam(name) => {
                write!(f, "parameter `{name}` holds NaN/Inf values")
            }
            PersistError::BadGruCell(e) => write!(f, "v1 GRU migration failed: {e}"),
            PersistError::BadRngState(n) => {
                write!(f, "serialized RNG state has {n} words (expected 4)")
            }
            PersistError::NotATrainingCheckpoint => {
                write!(f, "file carries no training state (plain model save?); \
                       use E2dtc::load for inference")
            }
            PersistError::NoCheckpointFound(dir) => {
                write!(f, "no usable checkpoint found in {}", dir.display())
            }
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

/// On-disk representation of a trained model / training checkpoint.
#[derive(Serialize, Deserialize)]
struct SavedModel {
    format_version: u32,
    config: E2dtcConfig,
    grid: Grid,
    vocab: Vocab,
    weights: WeightTable,
    store: ParamStore,
    /// Whether the store's final parameter is the centroid matrix.
    has_centroids: bool,
    opt: Adam,
    /// Mid-training cursor; `None` for plain model saves and all pre-v3
    /// files.
    #[serde(default)]
    training: Option<TrainingState>,
}

/// Version 3 adds the checksummed header, the optional [`TrainingState`]
/// cursor, and load-time shape/finiteness validation. Version 2 fused
/// each GRU cell's ten per-gate tensors into four (`w_x`, `w_h`, `b_x`,
/// `b_h`); version-1 checkpoints are migrated on load by
/// [`migrate_v1_store`].
const FORMAT_VERSION: u32 = 3;

/// v1 per-cell parameter suffixes, in their registration order.
const V1_GRU_SUFFIXES: [&str; 10] =
    [".w_xr", ".w_hr", ".w_xz", ".w_hz", ".w_xn", ".w_hn", ".b_r", ".b_z", ".b_xn", ".b_hn"];

/// FNV-1a 64-bit hash — tiny, dependency-free, and plenty to catch torn
/// writes and bit rot (this is integrity checking, not cryptography).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// File name of the periodic checkpoint written after `epochs_done`
/// completed epochs (zero-padded so lexicographic order = epoch order).
pub fn checkpoint_file_name(epochs_done: usize) -> String {
    format!("ckpt-{epochs_done:06}.json")
}

/// All periodic checkpoints in `dir`, sorted oldest → newest.
pub fn list_checkpoints(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else { continue };
        if name.starts_with("ckpt-") && name.ends_with(".json") {
            out.push(path);
        }
    }
    out.sort();
    Ok(out)
}

/// Deletes the oldest periodic checkpoints in `dir`, keeping the newest
/// `keep` (`0` keeps everything).
pub fn rotate_checkpoints(dir: &Path, keep: usize) -> io::Result<()> {
    if keep == 0 {
        return Ok(());
    }
    let files = list_checkpoints(dir)?;
    for stale in files.iter().rev().skip(keep) {
        std::fs::remove_file(stale)?;
    }
    Ok(())
}

/// Serializes to the v3 on-disk form: checksummed header + JSON payload.
fn encode(saved: &SavedModel) -> Result<Vec<u8>, PersistError> {
    let payload = serde_json::to_string(saved).map_err(|e| PersistError::Json(e.to_string()))?;
    let payload = payload.into_bytes();
    let mut out = format!("{MAGIC} v{FORMAT_VERSION} fnv1a64={:016x} len={}\n",
        fnv1a64(&payload),
        payload.len())
    .into_bytes();
    out.extend_from_slice(&payload);
    Ok(out)
}

/// Validates the header + checksum of raw file bytes and returns the JSON
/// payload. Bytes not starting with [`MAGIC`] are legacy v1/v2 raw JSON
/// and are returned unchanged.
fn verify_and_strip_header(bytes: &[u8]) -> Result<&[u8], PersistError> {
    if !bytes.starts_with(MAGIC.as_bytes()) {
        return Ok(bytes); // legacy v1/v2: raw JSON, no header
    }
    let newline = bytes
        .iter()
        .position(|&b| b == b'\n')
        .ok_or_else(|| PersistError::BadHeader("missing header terminator".into()))?;
    let header = std::str::from_utf8(&bytes[..newline])
        .map_err(|_| PersistError::BadHeader("header is not UTF-8".into()))?;
    let payload = &bytes[newline + 1..];

    let mut fields = header.split_whitespace();
    let _magic = fields.next();
    let version = fields
        .next()
        .and_then(|v| v.strip_prefix('v'))
        .and_then(|v| v.parse::<u32>().ok())
        .ok_or_else(|| PersistError::BadHeader(format!("unparseable version in `{header}`")))?;
    if version > FORMAT_VERSION {
        return Err(PersistError::UnsupportedVersion(version));
    }
    let checksum = fields
        .next()
        .and_then(|v| v.strip_prefix("fnv1a64="))
        .and_then(|v| u64::from_str_radix(v, 16).ok())
        .ok_or_else(|| PersistError::BadHeader(format!("unparseable checksum in `{header}`")))?;
    let len = fields
        .next()
        .and_then(|v| v.strip_prefix("len="))
        .and_then(|v| v.parse::<usize>().ok())
        .ok_or_else(|| PersistError::BadHeader(format!("unparseable length in `{header}`")))?;
    if payload.len() != len {
        return Err(PersistError::BadHeader(format!(
            "payload is {} bytes, header says {len} (truncated write?)",
            payload.len()
        )));
    }
    let actual = fnv1a64(payload);
    if actual != checksum {
        return Err(PersistError::ChecksumMismatch { expected: checksum, actual });
    }
    Ok(payload)
}

/// Atomic durable write: full contents to a `.tmp` sibling, `fsync`, then
/// `rename` over `path`. A crash at any point leaves either the previous
/// file or the complete new one.
fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = tmp_path(path);
    {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    // Best-effort directory fsync so the rename itself is durable.
    if let Some(dir) = path.parent() {
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Rebuilds a fused (v2) parameter store from a v1 store holding ten
/// per-gate tensors per GRU cell.
///
/// The fused layout concatenates gate columns as `[r | z | n]`:
/// `w_x = [W_xr | W_xz | W_xn]`, `w_h = [W_hr | W_hz | W_hn]`,
/// `b_x = [b_r | b_z | b_xn]`, and `b_h = [0 | 0 | b_hn]` (v1 had no
/// recurrent bias on the r/z gates, which the fused form encodes as zero
/// blocks). Non-GRU parameters are copied through unchanged, preserving
/// relative order.
fn migrate_v1_store(old: &ParamStore) -> Result<ParamStore, PersistError> {
    let mut fused = ParamStore::new();
    let ids: Vec<ParamId> = old.ids().collect();
    let mut i = 0;
    while i < ids.len() {
        let name = old.name(ids[i]).to_string();
        if let Some(prefix) = name.strip_suffix(".w_xr") {
            let mut gates = Vec::with_capacity(V1_GRU_SUFFIXES.len());
            for (j, suffix) in V1_GRU_SUFFIXES.iter().enumerate() {
                let id = ids.get(i + j).copied().ok_or_else(|| {
                    PersistError::BadGruCell(format!("v1 GRU cell `{prefix}` is truncated"))
                })?;
                let got = old.name(id);
                if got != format!("{prefix}{suffix}") {
                    return Err(PersistError::BadGruCell(format!(
                        "v1 GRU cell `{prefix}`: expected `{prefix}{suffix}`, found `{got}`"
                    )));
                }
                gates.push(old.get(id));
            }
            let w_x = gates[0].concat_cols(gates[2]).concat_cols(gates[4]);
            let w_h = gates[1].concat_cols(gates[3]).concat_cols(gates[5]);
            let b_x = gates[6].concat_cols(gates[7]).concat_cols(gates[8]);
            let b_hn = gates[9];
            let b_h = Tensor::zeros(1, 2 * b_hn.cols()).concat_cols(b_hn);
            fused.add(format!("{prefix}.w_x"), w_x);
            fused.add(format!("{prefix}.w_h"), w_h);
            fused.add(format!("{prefix}.b_x"), b_x);
            fused.add(format!("{prefix}.b_h"), b_h);
            i += V1_GRU_SUFFIXES.len();
        } else {
            fused.add(name, old.get(ids[i]).clone());
            i += 1;
        }
    }
    Ok(fused)
}

/// Fully-validated checkpoint contents, ready to assemble into either a
/// trainable [`E2dtc`] or an inference-only [`FrozenEncoder`].
struct LoadedParts {
    cfg: E2dtcConfig,
    grid: Grid,
    vocab: Vocab,
    weights: WeightTable,
    store: ParamStore,
    model: Seq2Seq,
    centroids: Option<ParamId>,
    opt: Adam,
    training: Option<TrainingState>,
}

/// Reads, verifies, migrates (v1 → fused), and validates a checkpoint
/// file — the shared loading path behind [`E2dtc::load`] and
/// [`FrozenEncoder::from_checkpoint`].
fn load_parts(path: &Path) -> Result<LoadedParts, PersistError> {
    let bytes = std::fs::read(path)?;
    let payload = verify_and_strip_header(&bytes)?;
    let payload = std::str::from_utf8(payload)
        .map_err(|_| PersistError::Json("payload is not UTF-8".into()))?;
    let saved: SavedModel =
        serde_json::from_str(payload).map_err(|e| PersistError::Json(e.to_string()))?;

    let (store, opt) = match saved.format_version {
        2 | 3 => (saved.store, saved.opt),
        1 => {
            // Pre-fusion checkpoint: fuse the per-gate GRU tensors.
            // The parameter layout changes, so Adam's per-slot moment
            // buffers no longer line up; restart the optimizer state
            // (weights are preserved exactly, only momentum is lost).
            let store = migrate_v1_store(&saved.store)?;
            let opt = Adam::new(saved.config.lr).with_max_grad_norm(saved.config.max_grad_norm);
            (store, opt)
        }
        v => return Err(PersistError::UnsupportedVersion(v)),
    };

    // Rebuild the architecture in a scratch store: parameter ids are
    // assigned in deterministic registration order, so the layer
    // handles line up with the saved store's slots — and the scratch
    // names/shapes are the authority the file is validated against.
    let mut scratch = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(saved.config.seed);
    let placeholder = Tensor::zeros(saved.vocab.size(), saved.config.embed_dim);
    let model = Seq2Seq::with_options(
        &mut scratch,
        placeholder,
        saved.config.hidden_dim,
        saved.config.layers,
        saved.config.attention,
        &mut rng,
    );
    let expected = scratch.len() + usize::from(saved.has_centroids);
    if store.len() != expected {
        return Err(PersistError::ParamCountMismatch { saved: store.len(), expected });
    }
    for (slot, id) in scratch.ids().enumerate() {
        let saved_id = store.ids().nth(slot).expect("count checked above");
        let (name, want) = (scratch.name(id), scratch.get(id).shape());
        let got = store.get(saved_id).shape();
        if store.name(saved_id) != name || got != want {
            return Err(PersistError::ShapeMismatch {
                name: name.to_string(),
                saved: got,
                expected: want,
            });
        }
    }
    if saved.has_centroids {
        let id = store.ids().last().expect("store non-empty");
        let got = store.get(id).shape();
        let want = (saved.config.k_clusters, saved.config.hidden_dim);
        if got != want {
            return Err(PersistError::ShapeMismatch {
                name: store.name(id).to_string(),
                saved: got,
                expected: want,
            });
        }
    }
    if let Some(name) = store.first_non_finite_param() {
        return Err(PersistError::NonFiniteParam(name.to_string()));
    }
    if let Some(st) = &saved.training {
        if st.rng.len() != 4 {
            return Err(PersistError::BadRngState(st.rng.len()));
        }
    }

    let centroids = saved.has_centroids.then(|| store.ids().last().expect("store non-empty"));
    Ok(LoadedParts {
        cfg: saved.config,
        grid: saved.grid,
        vocab: saved.vocab,
        weights: saved.weights,
        store,
        model,
        centroids,
        opt,
        training: saved.training,
    })
}

impl FrozenEncoder {
    /// Loads an inference-only encoder straight from a checkpoint file
    /// (any format version; v1 stores are migrated). Optimizer state, the
    /// spatial weight table, and any training cursor in the file are
    /// dropped — nothing a query path needs is kept mutable, so the
    /// result is `Send + Sync` without further ceremony.
    pub fn from_checkpoint(path: impl AsRef<Path>) -> Result<FrozenEncoder, PersistError> {
        let parts = load_parts(path.as_ref())?;
        let centroids = parts.centroids.map(|id| parts.store.get(id).clone());
        Ok(FrozenEncoder::from_parts(
            parts.cfg,
            parts.grid,
            parts.vocab,
            parts.store,
            parts.model,
            centroids,
        ))
    }
}

impl E2dtc {
    /// Serializes the trained model (no training cursor) in format v3:
    /// checksummed header + JSON payload, written atomically.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), PersistError> {
        let saved = self.to_saved(None);
        write_atomic(path.as_ref(), &encode(&saved)?)?;
        Ok(())
    }

    /// Writes a training checkpoint: the full model plus the mid-training
    /// cursor `st`, so [`E2dtc::resume`] can continue the run. Atomic and
    /// checksummed like [`E2dtc::save`].
    pub fn save_checkpoint(
        &mut self,
        path: impl AsRef<Path>,
        st: &TrainingState,
    ) -> Result<(), PersistError> {
        let path = path.as_ref();
        let saved = self.to_saved(Some(st.clone()));
        let bytes = encode(&saved)?;

        #[cfg(feature = "fault-injection")]
        if let Some(fault) = self.fault.as_mut().and_then(crate::fault::FaultPlan::next_save_fault)
        {
            use crate::fault::SaveFault;
            return match fault {
                SaveFault::Torn(keep) => {
                    // A non-atomic writer crashed mid-flush: truncated
                    // bytes sit at the final path.
                    std::fs::write(path, &bytes[..keep.min(bytes.len())])?;
                    Ok(())
                }
                SaveFault::Kill => {
                    // The atomic protocol crashed mid-tmp-write: partial
                    // tmp file, final path untouched.
                    std::fs::write(tmp_path(path), &bytes[..bytes.len() / 2])?;
                    Err(PersistError::Io(io::Error::other(
                        "fault injection: save killed mid-write",
                    )))
                }
            };
        }

        write_atomic(path, &bytes)?;
        Ok(())
    }

    fn to_saved(&self, training: Option<TrainingState>) -> SavedModel {
        SavedModel {
            format_version: FORMAT_VERSION,
            config: self.cfg.clone(),
            grid: self.grid.clone(),
            vocab: self.vocab.clone(),
            weights: self.weights.clone(),
            store: self.store.clone(),
            has_centroids: self.centroids.is_some(),
            opt: self.opt.clone(),
            training,
        }
    }

    /// Loads a model saved with [`E2dtc::save`] or [`E2dtc::save_checkpoint`]
    /// (any format version; v1 stores are migrated).
    ///
    /// The loaded model is immediately usable for inference
    /// ([`E2dtc::embed_dataset`], [`E2dtc::assign`]) and for continued
    /// training (`fit` re-tokenizes its dataset on demand; a checkpoint's
    /// training cursor, if present, makes `fit` continue the interrupted
    /// run).
    pub fn load(path: impl AsRef<Path>) -> Result<E2dtc, PersistError> {
        let parts = load_parts(path.as_ref())?;
        Ok(E2dtc {
            rng: match &parts.training {
                // `fit` re-restores from the cursor; seeding here keeps
                // inference on a freshly-loaded checkpoint deterministic.
                Some(st) => StdRng::restore(rng_state_from(&st.rng)),
                None => StdRng::seed_from_u64(parts.cfg.seed ^ 0x6c6f6164),
            },
            pending: parts.training,
            recorder: traj_obs::global(),
            cfg: parts.cfg,
            grid: parts.grid,
            vocab: parts.vocab,
            weights: parts.weights,
            store: parts.store,
            model: parts.model,
            centroids: parts.centroids,
            opt: parts.opt,
            sequences: Vec::new(),
            #[cfg(feature = "fault-injection")]
            fault: None,
        })
    }

    /// Resumes an interrupted training run from a checkpoint file, or
    /// from the newest *usable* checkpoint in a directory: corrupt or
    /// torn files (bad checksum, truncated payload, failed validation)
    /// are skipped with a warning and the scan falls back to the previous
    /// one.
    ///
    /// The returned model carries the training cursor; the next
    /// [`E2dtc::fit`] call continues the run and — for the same seed and
    /// data — reproduces the uninterrupted run's final assignments.
    pub fn resume(path: impl AsRef<Path>) -> Result<E2dtc, PersistError> {
        let path = path.as_ref();
        if !path.is_dir() {
            return Self::resume_file(path);
        }
        let mut candidates = list_checkpoints(path)?;
        if candidates.is_empty() {
            return Err(PersistError::NoCheckpointFound(path.to_path_buf()));
        }
        let mut last_err = None;
        while let Some(file) = candidates.pop() {
            match Self::resume_file(&file) {
                Ok(model) => return Ok(model),
                Err(e) => {
                    traj_obs::global()
                        .warn(format!("e2dtc: skipping checkpoint {}: {e}", file.display()));
                    last_err = Some(e);
                }
            }
        }
        Err(last_err.unwrap_or_else(|| PersistError::NoCheckpointFound(path.to_path_buf())))
    }

    fn resume_file(path: &Path) -> Result<E2dtc, PersistError> {
        let model = Self::load(path)?;
        if !model.has_pending_training() {
            return Err(PersistError::NotATrainingCheckpoint);
        }
        Ok(model)
    }

    /// Handle of the centroid parameter, if self-training has run.
    pub fn centroids_param(&self) -> Option<ParamId> {
        self.centroids
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::E2dtcConfig;
    use crate::model::Phase;
    use traj_data::SynthSpec;

    fn trained_model() -> (E2dtc, traj_data::Dataset) {
        let mut spec = SynthSpec::hangzhou_like(40, 77);
        spec.num_clusters = 3;
        spec.len_range = (10, 18);
        spec.outlier_fraction = 0.0;
        let city = spec.generate();
        let mut model = E2dtc::new(&city.dataset, E2dtcConfig::tiny(3));
        let _ = model.fit(&city.dataset);
        (model, city.dataset)
    }

    fn test_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("e2dtc_persist_test").join(name);
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    fn expect_err(r: Result<E2dtc, PersistError>) -> PersistError {
        match r {
            Ok(_) => panic!("expected load/resume to fail"),
            Err(e) => e,
        }
    }

    fn cursor() -> TrainingState {
        TrainingState {
            phase: Phase::SelfTrain,
            next_epoch: 1,
            epochs_done: 4,
            history: Vec::new(),
            prev_assign: Some(vec![0, 1, 2]),
            rng: vec![1, 2, 3, 4],
        }
    }

    #[test]
    fn save_load_roundtrip_preserves_inference() {
        let (model, dataset) = trained_model();
        let dir = test_dir("roundtrip");
        let path = dir.join("model.json");
        model.save(&path).expect("save");

        let loaded = E2dtc::load(&path).expect("load");
        let orig_emb = model.embed_dataset(&dataset);
        let loaded_emb = loaded.embed_dataset(&dataset);
        assert_eq!(orig_emb, loaded_emb, "embeddings diverge after reload");
        assert_eq!(model.assign(&dataset), loaded.assign(&dataset));
        assert!(!loaded.has_pending_training(), "plain save must carry no cursor");
    }

    #[test]
    fn v3_file_has_header_and_checksum() {
        let (model, _) = trained_model();
        let dir = test_dir("header");
        let path = dir.join("model.json");
        model.save(&path).expect("save");
        let bytes = std::fs::read(&path).expect("read");
        let header_end = bytes.iter().position(|&b| b == b'\n').expect("newline");
        let header = std::str::from_utf8(&bytes[..header_end]).expect("utf8");
        assert!(header.starts_with("E2DTC-CKPT v3 fnv1a64="), "header: {header}");
        assert_eq!(fnv1a64(&bytes[header_end + 1..]), {
            let hex = header.split("fnv1a64=").nth(1).unwrap().split(' ').next().unwrap();
            u64::from_str_radix(hex, 16).unwrap()
        });
    }

    #[test]
    fn checkpoint_roundtrip_preserves_cursor() {
        let (mut model, _) = trained_model();
        let dir = test_dir("cursor");
        let path = dir.join(checkpoint_file_name(4));
        model.save_checkpoint(&path, &cursor()).expect("save_checkpoint");
        let resumed = E2dtc::resume(&path).expect("resume");
        assert!(resumed.has_pending_training());
        let st = resumed.pending.as_ref().expect("cursor");
        assert_eq!(st.phase, Phase::SelfTrain);
        assert_eq!(st.next_epoch, 1);
        assert_eq!(st.epochs_done, 4);
        assert_eq!(st.prev_assign.as_deref(), Some(&[0usize, 1, 2][..]));
        assert_eq!(st.rng, vec![1, 2, 3, 4]);
    }

    #[test]
    fn resume_rejects_plain_model_save() {
        let (model, _) = trained_model();
        let dir = test_dir("notackpt");
        let path = dir.join("model.json");
        model.save(&path).expect("save");
        match expect_err(E2dtc::resume(&path)) {
            PersistError::NotATrainingCheckpoint => {}
            other => panic!("expected NotATrainingCheckpoint, got {other:?}"),
        }
    }

    #[test]
    fn load_rejects_truncated_payload() {
        let (mut model, _) = trained_model();
        let dir = test_dir("truncated");
        let path = dir.join(checkpoint_file_name(1));
        model.save_checkpoint(&path, &cursor()).expect("save");
        let bytes = std::fs::read(&path).expect("read");
        std::fs::write(&path, &bytes[..bytes.len() - 200]).expect("truncate");
        match expect_err(E2dtc::load(&path)) {
            PersistError::BadHeader(msg) => {
                assert!(msg.contains("truncated"), "msg: {msg}")
            }
            other => panic!("expected BadHeader, got {other:?}"),
        }
    }

    #[test]
    fn load_rejects_flipped_payload_byte() {
        let (mut model, _) = trained_model();
        let dir = test_dir("bitrot");
        let path = dir.join(checkpoint_file_name(1));
        model.save_checkpoint(&path, &cursor()).expect("save");
        let mut bytes = std::fs::read(&path).expect("read");
        let header_end = bytes.iter().position(|&b| b == b'\n').expect("newline");
        // Flip a digit deep in the payload without changing its length.
        let target = header_end + 600;
        bytes[target] = if bytes[target] == b'1' { b'2' } else { b'1' };
        std::fs::write(&path, &bytes).expect("write");
        match expect_err(E2dtc::load(&path)) {
            PersistError::ChecksumMismatch { .. } => {}
            other => panic!("expected ChecksumMismatch, got {other:?}"),
        }
    }

    #[test]
    fn load_rejects_wrong_shape_tensor() {
        let (model, _) = trained_model();
        let dir = test_dir("badshape");
        let path = dir.join("model.json");
        // Rebuild the saved form with one tensor the wrong shape.
        let mut saved = model.to_saved(None);
        let mut mangled = ParamStore::new();
        for (slot, id) in saved.store.ids().enumerate() {
            let t = if slot == 1 {
                Tensor::zeros(1, 1)
            } else {
                saved.store.get(id).clone()
            };
            mangled.add(saved.store.name(id).to_string(), t);
        }
        saved.store = mangled;
        write_atomic(&path, &encode(&saved).expect("encode")).expect("write");
        match expect_err(E2dtc::load(&path)) {
            PersistError::ShapeMismatch { saved: got, .. } => assert_eq!(got, (1, 1)),
            other => panic!("expected ShapeMismatch, got {other:?}"),
        }
    }

    #[test]
    fn load_rejects_non_finite_parameter() {
        let (model, _) = trained_model();
        let dir = test_dir("nonfinite");
        let path = dir.join("model.json");
        let mut saved = model.to_saved(None);
        let first = saved.store.ids().next().expect("non-empty");
        saved.store.get_mut(first).set(0, 0, f32::NAN);
        write_atomic(&path, &encode(&saved).expect("encode")).expect("write");
        match expect_err(E2dtc::load(&path)) {
            PersistError::NonFiniteParam(_) => {}
            other => panic!("expected NonFiniteParam, got {other:?}"),
        }
    }

    #[test]
    fn load_rejects_bad_rng_state() {
        let (mut model, _) = trained_model();
        let dir = test_dir("badrng");
        let path = dir.join(checkpoint_file_name(1));
        let mut st = cursor();
        st.rng = vec![1, 2]; // wrong word count
        model.save_checkpoint(&path, &st).expect("save");
        match expect_err(E2dtc::load(&path)) {
            PersistError::BadRngState(2) => {}
            other => panic!("expected BadRngState(2), got {other:?}"),
        }
    }

    #[test]
    fn resume_directory_falls_back_past_corrupt_newest() {
        let (mut model, _) = trained_model();
        let dir = test_dir("fallback");
        model
            .save_checkpoint(dir.join(checkpoint_file_name(2)), &cursor())
            .expect("good checkpoint");
        // Newest checkpoint is torn garbage (e.g. non-atomic writer died).
        std::fs::write(dir.join(checkpoint_file_name(3)), b"E2DTC-CKPT v3 fnv1a64=dead")
            .expect("write corrupt");
        let resumed = E2dtc::resume(&dir).expect("resume must fall back");
        assert_eq!(resumed.pending.as_ref().expect("cursor").epochs_done, 4);
    }

    #[test]
    fn resume_empty_directory_is_a_typed_error() {
        let dir = test_dir("empty");
        match expect_err(E2dtc::resume(&dir)) {
            PersistError::NoCheckpointFound(_) => {}
            other => panic!("expected NoCheckpointFound, got {other:?}"),
        }
    }

    #[test]
    fn rotation_keeps_newest_n() {
        let (mut model, _) = trained_model();
        let dir = test_dir("rotation");
        for e in 1..=4 {
            model
                .save_checkpoint(dir.join(checkpoint_file_name(e)), &cursor())
                .expect("save");
        }
        rotate_checkpoints(&dir, 2).expect("rotate");
        let left: Vec<String> = list_checkpoints(&dir)
            .expect("list")
            .iter()
            .map(|p| p.file_name().unwrap().to_string_lossy().into_owned())
            .collect();
        assert_eq!(left, vec![checkpoint_file_name(3), checkpoint_file_name(4)]);
        // keep = 0 disables deletion.
        rotate_checkpoints(&dir, 0).expect("rotate");
        assert_eq!(list_checkpoints(&dir).expect("list").len(), 2);
    }

    #[test]
    fn loaded_model_reports_centroids() {
        let (model, _) = trained_model();
        assert!(model.centroids_param().is_some());
        let dir = test_dir("centroids");
        let path = dir.join("model2.json");
        model.save(&path).expect("save");
        let loaded = E2dtc::load(&path).expect("load");
        assert!(loaded.centroids_param().is_some());
    }

    #[test]
    fn load_rejects_missing_file() {
        assert!(E2dtc::load("/nonexistent/model.json").is_err());
    }

    /// Splits a fused (v2+) store back into the v1 per-gate layout, exactly
    /// inverting [`migrate_v1_store`]. The r/z blocks of `b_h` fold into
    /// `b_r`/`b_z`: both biases feed the same gate pre-activation, so the
    /// sum is the equivalent v1 parameterization.
    fn defuse_to_v1(store: &ParamStore) -> ParamStore {
        let col_block = |t: &Tensor, lo: usize, hi: usize| {
            let mut out = Tensor::zeros(t.rows(), hi - lo);
            for r in 0..t.rows() {
                out.row_mut(r).copy_from_slice(&t.row(r)[lo..hi]);
            }
            out
        };
        let ids: Vec<ParamId> = store.ids().collect();
        let mut v1 = ParamStore::new();
        let mut i = 0;
        while i < ids.len() {
            let name = store.name(ids[i]).to_string();
            if let Some(prefix) = name.strip_suffix(".w_x") {
                let w_x = store.get(ids[i]);
                let w_h = store.get(ids[i + 1]);
                let b_x = store.get(ids[i + 2]);
                let b_h = store.get(ids[i + 3]);
                let h = w_h.rows();
                v1.add(format!("{prefix}.w_xr"), col_block(w_x, 0, h));
                v1.add(format!("{prefix}.w_hr"), col_block(w_h, 0, h));
                v1.add(format!("{prefix}.w_xz"), col_block(w_x, h, 2 * h));
                v1.add(format!("{prefix}.w_hz"), col_block(w_h, h, 2 * h));
                v1.add(format!("{prefix}.w_xn"), col_block(w_x, 2 * h, 3 * h));
                v1.add(format!("{prefix}.w_hn"), col_block(w_h, 2 * h, 3 * h));
                v1.add(format!("{prefix}.b_r"), col_block(b_x, 0, h).add(&col_block(b_h, 0, h)));
                v1.add(
                    format!("{prefix}.b_z"),
                    col_block(b_x, h, 2 * h).add(&col_block(b_h, h, 2 * h)),
                );
                v1.add(format!("{prefix}.b_xn"), col_block(b_x, 2 * h, 3 * h));
                v1.add(format!("{prefix}.b_hn"), col_block(b_h, 2 * h, 3 * h));
                i += 4;
            } else {
                v1.add(name, store.get(ids[i]).clone());
                i += 1;
            }
        }
        v1
    }

    /// Builds a legacy (headerless, raw-JSON) v1 file for `model` with
    /// `mutate` applied to the defused store first.
    fn write_v1_file(
        model: &E2dtc,
        path: &Path,
        mutate: impl FnOnce(ParamStore) -> ParamStore,
    ) {
        let saved = SavedModel {
            format_version: 1,
            config: model.cfg.clone(),
            grid: model.grid.clone(),
            vocab: model.vocab.clone(),
            weights: model.weights.clone(),
            store: mutate(defuse_to_v1(&model.store)),
            has_centroids: model.centroids.is_some(),
            opt: Adam::new(model.cfg.lr).with_max_grad_norm(model.cfg.max_grad_norm),
            training: None,
        };
        let file = std::io::BufWriter::new(File::create(path).expect("create"));
        serde_json::to_writer(file, &saved).expect("write v1 checkpoint");
    }

    #[test]
    fn v1_checkpoint_loads_and_matches_fused_model() {
        let (model, dataset) = trained_model();
        let dir = test_dir("v1");
        let path = dir.join("model_v1.json");
        write_v1_file(&model, &path, |s| s);

        let migrated = E2dtc::load(&path).expect("v1 checkpoint must load");
        assert!(migrated.centroids_param().is_some());

        // The fused parameterization is mathematically identical; only
        // float association differs (b_h's r/z blocks fold into b_x), so
        // embeddings agree to f32 tolerance and assignments exactly.
        let orig = model.embed_dataset(&dataset);
        let loaded = migrated.embed_dataset(&dataset);
        assert_eq!(orig.shape(), loaded.shape());
        for (a, b) in orig.data().iter().zip(loaded.data()) {
            assert!((a - b).abs() < 1e-3, "migrated embedding diverges: {a} vs {b}");
        }
        assert_eq!(model.assign(&dataset), migrated.assign(&dataset));
    }

    #[test]
    fn v1_truncated_gru_cell_is_a_typed_error() {
        let (model, _) = trained_model();
        let dir = test_dir("v1trunc");
        let path = dir.join("model_v1.json");
        // Cut the store four tensors into the last GRU cell, so its
        // remaining six per-gate tensors are missing.
        write_v1_file(&model, &path, |s| {
            let last_cell_start = s
                .ids()
                .enumerate()
                .filter(|&(_, id)| s.name(id).ends_with(".w_xr"))
                .map(|(i, _)| i)
                .last()
                .expect("defused store has GRU cells");
            let mut out = ParamStore::new();
            for id in s.ids().take(last_cell_start + 4) {
                out.add(s.name(id).to_string(), s.get(id).clone());
            }
            out
        });
        match expect_err(E2dtc::load(&path)) {
            PersistError::BadGruCell(msg) => {
                assert!(msg.contains("truncated") || msg.contains("expected"), "msg: {msg}")
            }
            other => panic!("expected BadGruCell, got {other:?}"),
        }
    }

    #[test]
    fn registration_order_is_deterministic() {
        // The invariant save/load depends on: two identically-configured
        // constructions register identical parameter names in order.
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let build = || {
            let mut store = ParamStore::new();
            let mut rng = StdRng::seed_from_u64(0);
            let _ = Seq2Seq::new(&mut store, Tensor::zeros(10, 8), 12, 2, &mut rng);
            store.ids().map(|id| store.name(id).to_string()).collect::<Vec<_>>()
        };
        assert_eq!(build(), build());
    }
}
