//! Configuration of the E²DTC pipeline.

use serde::{Deserialize, Serialize};
use traj_data::augment::AugmentConfig;

/// Which terms of the joint loss (Eq. 14) are active — the paper's
/// ablation axes (Table IV).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum LossMode {
    /// `L₀` — reconstruction loss only (pre-training objective, Eq. 8);
    /// clustering is plain k-means on the frozen embeddings.
    L0,
    /// `L₁` — `L_r + β·L_c` (Eq. 12): adds the DEC clustering loss.
    L1,
    /// `L₂` — `L_r + β·L_c + γ·L_t` (Eq. 14): the full E²DTC objective
    /// with the triplet loss.
    L2,
}

impl LossMode {
    /// Display name matching Table IV.
    pub fn name(self) -> &'static str {
        match self {
            LossMode::L0 => "L0",
            LossMode::L1 => "L1",
            LossMode::L2 => "L2",
        }
    }
}

/// Skip-gram cell-embedding hyper-parameters (paper §V-B, Eq. 7).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SkipGramConfig {
    /// Context window `c` (neighbor cells on each side).
    pub window: usize,
    /// Negative samples per positive.
    pub negatives: usize,
    /// Training epochs over all token sequences.
    pub epochs: usize,
    /// SGD learning rate.
    pub lr: f32,
}

impl Default for SkipGramConfig {
    fn default() -> Self {
        Self { window: 3, negatives: 5, epochs: 3, lr: 0.025 }
    }
}

/// Full E²DTC configuration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct E2dtcConfig {
    /// Number of clusters `k`.
    pub k_clusters: usize,
    /// Spatial grid cell side, meters (paper default 300 m).
    pub cell_meters: f64,
    /// Token-embedding dimensionality.
    pub embed_dim: usize,
    /// GRU hidden size (= trajectory representation dimensionality).
    pub hidden_dim: usize,
    /// Stacked GRU layers (paper uses 3).
    pub layers: usize,
    /// Neighbourhood size of the spatial-proximity loss (Eq. 8's kNN
    /// restriction of the vocabulary, including the target cell itself).
    pub knn_k: usize,
    /// Temperature `α` of the cell weights in Eq. 8, in units of
    /// cell-embedding distance. `α → 0` degrades to plain NLL.
    pub alpha: f32,
    /// Clustering-loss weight `β`.
    pub beta: f32,
    /// Triplet-loss weight `γ`.
    pub gamma: f32,
    /// Triplet margin (Eq. 13's `α`; renamed to avoid the collision the
    /// paper's notation has).
    pub triplet_margin: f32,
    /// Pre-training epochs (`MaxIter₁`).
    pub pretrain_epochs: usize,
    /// Self-training epochs (`MaxIter₂`).
    pub selftrain_epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate (paper: 1e-4; scaled runs benefit from more).
    pub lr: f32,
    /// Learning-rate multiplier applied during self-training. The paper
    /// trains throughout at 1e-4, where representation drift is
    /// negligible; scaled-up learning rates need annealing in the
    /// fine-tuning phase or continued reconstruction training erodes the
    /// pre-trained representation faster than the clustering loss can
    /// shape it.
    pub selftrain_lr_scale: f32,
    /// Global gradient-norm clip (paper: 5).
    pub max_grad_norm: f32,
    /// Stop threshold `δ`: stop self-training when the fraction of
    /// trajectories changing cluster falls to or below this.
    pub delta: f64,
    /// Hard cap on token-sequence length (longer sequences are uniformly
    /// subsampled).
    pub max_seq_len: usize,
    /// Corruption augmentation used in pre-training and as the triplet
    /// positive generator.
    pub augment: AugmentConfig,
    /// Skip-gram settings for the cell-embedding phase.
    pub skipgram: SkipGramConfig,
    /// Active loss terms.
    pub loss_mode: LossMode,
    /// Adds Luong dot-product attention to the decoder (extension beyond
    /// the paper; see `traj_nn::layers::DotAttention`).
    #[serde(default)]
    pub attention: bool,
    /// Write a training checkpoint every this many completed epochs
    /// (counting across both phases); `0` disables periodic
    /// checkpointing. Requires [`E2dtcConfig::checkpoint_dir`].
    #[serde(default)]
    pub checkpoint_every: usize,
    /// Directory that receives `ckpt-<epoch>.json` training checkpoints;
    /// `None` disables periodic checkpointing.
    #[serde(default)]
    pub checkpoint_dir: Option<String>,
    /// Keep only the newest N periodic checkpoints (`0` = keep all).
    /// Keeping at least 2 lets `E2dtc::resume` fall back to the previous
    /// snapshot when the newest file is torn by a crash mid-write.
    #[serde(default)]
    pub checkpoint_keep_last: usize,
    /// Consecutive non-finite (NaN/Inf) batches tolerated before training
    /// rolls back to the start-of-epoch parameter snapshot with a
    /// learning-rate backoff; `0` disables rollback (poisoned updates are
    /// still skipped). Old checkpoints deserialize to `0`.
    #[serde(default)]
    pub guard_patience: usize,
    /// Multiplier applied to the learning rate on each guard rollback
    /// (`0` falls back to `0.5`, so old checkpoints stay sane).
    #[serde(default)]
    pub guard_lr_backoff: f32,
    /// Master RNG seed.
    pub seed: u64,
}

impl E2dtcConfig {
    /// The paper's training parameters (§VII-B): 300 m cells, 3 GRU
    /// layers, Adam @ 1e-4, gradient clip 5, 16 augmentation pairs.
    /// Model width is set to 256 (typical for t2vec-style models; the
    /// paper does not state it).
    pub fn paper(k_clusters: usize) -> Self {
        Self {
            k_clusters,
            cell_meters: 300.0,
            embed_dim: 256,
            hidden_dim: 256,
            layers: 3,
            knn_k: 20,
            alpha: 1.0,
            beta: 2.0,
            gamma: 1.0,
            triplet_margin: 5.0,
            pretrain_epochs: 10,
            selftrain_epochs: 500,
            batch_size: 64,
            lr: 1e-4,
            selftrain_lr_scale: 1.0,
            max_grad_norm: 5.0,
            delta: 0.001,
            max_seq_len: 100,
            augment: AugmentConfig::default(),
            skipgram: SkipGramConfig::default(),
            loss_mode: LossMode::L2,
            attention: false,
            checkpoint_every: 0,
            checkpoint_dir: None,
            checkpoint_keep_last: 2,
            guard_patience: 3,
            guard_lr_backoff: 0.5,
            seed: 0,
        }
    }

    /// CPU-scale configuration used by the experiment harness: same
    /// architecture shape (multi-layer GRU, all three losses), smaller
    /// widths and epoch counts.
    pub fn fast(k_clusters: usize) -> Self {
        Self {
            k_clusters,
            cell_meters: 300.0,
            embed_dim: 32,
            hidden_dim: 48,
            layers: 2,
            knn_k: 9,
            alpha: 1.0,
            beta: 2.0,
            gamma: 1.0,
            triplet_margin: 5.0,
            pretrain_epochs: 3,
            selftrain_epochs: 10,
            batch_size: 32,
            lr: 2e-3,
            selftrain_lr_scale: 0.5,
            max_grad_norm: 5.0,
            delta: 0.003,
            max_seq_len: 48,
            augment: AugmentConfig::light(),
            skipgram: SkipGramConfig { window: 5, epochs: 8, ..Default::default() },
            loss_mode: LossMode::L2,
            attention: false,
            checkpoint_every: 0,
            checkpoint_dir: None,
            checkpoint_keep_last: 2,
            guard_patience: 3,
            guard_lr_backoff: 0.5,
            seed: 0,
        }
    }

    /// Tiny configuration for unit/integration tests (seconds, not
    /// minutes).
    pub fn tiny(k_clusters: usize) -> Self {
        Self {
            embed_dim: 16,
            hidden_dim: 24,
            layers: 1,
            pretrain_epochs: 3,
            selftrain_epochs: 3,
            batch_size: 16,
            max_seq_len: 24,
            // The skip-gram stage is cheap and its quality gates the whole
            // pipeline; keep it strong even in the test preset.
            skipgram: SkipGramConfig { window: 5, epochs: 6, ..Default::default() },
            ..Self::fast(k_clusters)
        }
    }

    /// Returns a copy with a different loss mode (Table IV ablations).
    pub fn with_loss_mode(mut self, mode: LossMode) -> Self {
        self.loss_mode = mode;
        self
    }

    /// Returns a copy with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns a copy with periodic checkpointing enabled: a training
    /// snapshot lands in `dir` after every `every` completed epochs.
    pub fn with_checkpointing(mut self, dir: impl Into<String>, every: usize) -> Self {
        self.checkpoint_dir = Some(dir.into());
        self.checkpoint_every = every.max(1);
        self
    }

    /// Rollback learning-rate backoff with the zero-value fallback applied
    /// (configs deserialized from pre-v3 checkpoints carry `0.0`).
    pub fn effective_lr_backoff(&self) -> f32 {
        if self.guard_lr_backoff > 0.0 {
            self.guard_lr_backoff
        } else {
            0.5
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_preset_matches_section_vii_b() {
        let cfg = E2dtcConfig::paper(7);
        assert_eq!(cfg.cell_meters, 300.0);
        assert_eq!(cfg.layers, 3);
        assert!((cfg.lr - 1e-4).abs() < 1e-9);
        assert_eq!(cfg.max_grad_norm, 5.0);
        assert_eq!(cfg.augment.pairs_per_trajectory(), 16);
        assert_eq!(cfg.loss_mode, LossMode::L2);
    }

    #[test]
    fn loss_mode_names() {
        assert_eq!(LossMode::L0.name(), "L0");
        assert_eq!(LossMode::L1.name(), "L1");
        assert_eq!(LossMode::L2.name(), "L2");
    }

    #[test]
    fn with_helpers_override_fields() {
        let cfg = E2dtcConfig::fast(5).with_loss_mode(LossMode::L0).with_seed(9);
        assert_eq!(cfg.loss_mode, LossMode::L0);
        assert_eq!(cfg.seed, 9);
        assert_eq!(cfg.k_clusters, 5);
    }
}
