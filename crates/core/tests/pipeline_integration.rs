//! Integration tests spanning the whole workspace: synthetic city →
//! Algorithm 2 ground truth → E²DTC / baselines → quality metrics.

use e2dtc::{t2vec_kmeans, E2dtc, E2dtcConfig, LossMode, Phase};
use traj_data::ground_truth::generate_ground_truth;
use traj_data::{GroundTruthConfig, LabeledDataset, SynthSpec};
use traj_cluster::{nmi, uacc};

fn small_city(n: usize, seed: u64) -> LabeledDataset {
    let mut spec = SynthSpec::hangzhou_like(n, seed);
    spec.num_clusters = 4;
    spec.len_range = (30, 60);
    spec.outlier_fraction = 0.0;
    let city = spec.generate();
    let (labelled, _) =
        generate_ground_truth(&city.dataset, &city.pois, GroundTruthConfig::default());
    labelled
}

#[test]
fn full_pipeline_beats_random_assignment() {
    let data = small_city(180, 3);
    let mut cfg = E2dtcConfig::tiny(data.num_clusters);
    // The tiny preset trades accuracy for speed; give this end-to-end
    // check a little more capacity and training than the unit tests use.
    cfg.hidden_dim = 32;
    cfg.pretrain_epochs = 4;
    cfg.skipgram.epochs = 8;
    let mut model = E2dtc::new(&data.dataset, cfg);
    let fit = model.fit(&data.dataset);
    let acc = uacc(&fit.assignments, &data.labels);
    // Random assignment over 4 clusters scores ≈ the largest-cluster share
    // (after Hungarian matching, ≈ 0.3-0.4 here); the trained pipeline must
    // clear that with margin even in the tiny test configuration.
    assert!(acc > 0.5, "pipeline UACC {acc} not better than chance");
}

#[test]
fn pipeline_is_reproducible_under_fixed_seed() {
    let data = small_city(60, 4);
    let run = |seed| {
        let mut model =
            E2dtc::new(&data.dataset, E2dtcConfig::tiny(data.num_clusters).with_seed(seed));
        model.fit(&data.dataset)
    };
    let a = run(11);
    let b = run(11);
    assert_eq!(a.assignments, b.assignments);
    assert_eq!(a.embeddings, b.embeddings);
    let c = run(12);
    assert_ne!(
        a.embeddings, c.embeddings,
        "different seeds should give different embeddings"
    );
}

#[test]
fn self_training_does_not_hurt_a_pretrained_model() {
    // L2 (full E²DTC) vs L0 (t2vec + k-means) under the same seed: the
    // self-training phase should preserve or improve NMI. Allow a small
    // tolerance — tiny test configs are noisy.
    let data = small_city(100, 5);
    let cfg = E2dtcConfig::tiny(data.num_clusters).with_seed(21);
    let l0 = t2vec_kmeans(&data.dataset, cfg.clone());
    let mut full = E2dtc::new(&data.dataset, cfg);
    let l2 = full.fit(&data.dataset);
    let nmi_l0 = nmi(&l0.assignments, &data.labels);
    let nmi_l2 = nmi(&l2.assignments, &data.labels);
    assert!(
        nmi_l2 >= nmi_l0 - 0.1,
        "self-training collapsed quality: L0 {nmi_l0:.3} -> L2 {nmi_l2:.3}"
    );
}

#[test]
fn history_records_both_phases_and_decreasing_recon_loss() {
    let data = small_city(60, 6);
    let mut cfg = E2dtcConfig::tiny(data.num_clusters);
    cfg.pretrain_epochs = 3;
    let mut model = E2dtc::new(&data.dataset, cfg);
    let fit = model.fit(&data.dataset);
    let pre: Vec<f32> = fit
        .history
        .iter()
        .filter(|r| r.phase == Phase::Pretrain)
        .map(|r| r.recon_loss)
        .collect();
    assert_eq!(pre.len(), 3);
    assert!(
        pre.last() < pre.first(),
        "pre-training loss should drop: {pre:?}"
    );
    assert!(fit.history.iter().any(|r| r.phase == Phase::SelfTrain));
}

#[test]
fn embeddings_of_corrupted_trajectories_stay_close() {
    // The t2vec robustness claim: a downsampled/distorted variant embeds
    // near its original — much nearer than to a random other trajectory.
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use traj_data::augment::corrupt;
    use traj_data::{Dataset, Trajectory};

    let data = small_city(80, 7);
    let mut model = E2dtc::new(&data.dataset, E2dtcConfig::tiny(data.num_clusters));
    let _ = model.pretrain(&data.dataset, 3);

    let mut rng = StdRng::seed_from_u64(0);
    let mut near = 0usize;
    let total = 20usize;
    for i in 0..total {
        let orig: &Trajectory = &data.dataset.trajectories[i];
        let corrupted = corrupt(orig, 0.4, 0.4, 50.0, &mut rng);
        let other = data.dataset.trajectories[(i + 37) % data.dataset.len()].clone();
        let probe = Dataset::new(
            "probe",
            vec![orig.clone(), corrupted, other],
        );
        let emb = model.embed_dataset(&probe);
        let d_corrupt = emb.row_sq_dist(0, &emb, 1);
        let d_other = emb.row_sq_dist(0, &emb, 2);
        if d_corrupt < d_other {
            near += 1;
        }
    }
    assert!(
        near >= total * 3 / 4,
        "corrupted variant closer than random in only {near}/{total} cases"
    );
}

#[test]
fn loss_mode_ablation_ordering_is_sane() {
    // All three ablation modes must produce valid clusterings; the full
    // loss should not be materially worse than pre-training alone.
    let data = small_city(100, 8);
    let mut scores = Vec::new();
    for mode in [LossMode::L0, LossMode::L1, LossMode::L2] {
        let cfg = E2dtcConfig::tiny(data.num_clusters).with_seed(5).with_loss_mode(mode);
        let mut model = E2dtc::new(&data.dataset, cfg);
        let fit = model.fit(&data.dataset);
        assert!(fit.assignments.iter().all(|&c| c < data.num_clusters));
        scores.push(uacc(&fit.assignments, &data.labels));
    }
    assert!(
        scores[2] >= scores[0] - 0.1,
        "L2 ({}) much worse than L0 ({})",
        scores[2],
        scores[0]
    );
}

#[test]
fn trained_model_transfers_to_unseen_data_from_same_city() {
    let data = small_city(180, 9);
    let mut cfg = E2dtcConfig::tiny(data.num_clusters);
    cfg.pretrain_epochs = 4;
    let mut model = E2dtc::new(&data.dataset, cfg);
    let _ = model.fit(&data.dataset);
    // Fresh draws from the same generative process (different seed).
    // NOTE: the synthetic generator re-places POIs per seed, so "same
    // city" here means same distributional process; transfer therefore
    // uses the same seed's city with fresh trajectory draws.
    let fresh = small_city(60, 9 + 1000);
    let assignments = model.assign(&fresh.dataset);
    let acc = uacc(&assignments, &fresh.labels);
    assert!(
        acc > 0.4,
        "transfer accuracy {acc} barely above chance on unseen data"
    );
}

#[test]
fn reconstruction_stays_near_the_original_path() {
    // After pre-training, decoding from the latent representation should
    // produce cells near the original route — the autoencoding premise.
    let data = small_city(120, 14);
    let mut cfg = E2dtcConfig::tiny(data.num_clusters);
    // Six epochs: at four the tiny model sits right at the learning-curve
    // knee, where the pass/fail margin is a lottery on the exact RNG stream
    // and float rounding; six epochs clears the bar with a wide margin.
    cfg.pretrain_epochs = 6;
    let mut model = E2dtc::new(&data.dataset, cfg);
    let _ = model.pretrain(&data.dataset, 6);
    let recon = model.reconstruct(&data.dataset, 8);
    assert_eq!(recon.len(), data.len());
    let mut total_err = 0.0;
    let mut count = 0usize;
    for (t, rec) in data.dataset.trajectories.iter().zip(&recon) {
        for p in rec {
            // Distance from the reconstructed cell centre to the nearest
            // original point.
            let nearest = t
                .points
                .iter()
                .map(|q| q.haversine_m(p))
                .fold(f64::INFINITY, f64::min);
            total_err += nearest;
            count += 1;
        }
    }
    assert!(count > 0, "no cells decoded");
    let mean_err = total_err / count as f64;
    // Baseline: the expected error of emitting a *random vocabulary cell*
    // for every step. The tiny test model cannot reconstruct precisely,
    // but it must clearly beat that.
    let mut baseline = 0.0;
    let mut bcount = 0usize;
    for (i, t) in data.dataset.trajectories.iter().enumerate() {
        // Use another trajectory's first point as a "random" cell proxy.
        let other = &data.dataset.trajectories[(i + 41) % data.len()];
        let p = other.points[0];
        let nearest = t
            .points
            .iter()
            .map(|q| q.haversine_m(&p))
            .fold(f64::INFINITY, f64::min);
        baseline += nearest;
        bcount += 1;
    }
    let baseline = baseline / bcount as f64;
    assert!(
        mean_err < baseline * 0.8,
        "mean reconstruction error {mean_err:.0} m not better than the \
         random-cell baseline {baseline:.0} m"
    );
}

#[test]
fn attention_variant_trains_and_persists() {
    // The optional decoder attention (extension) must train end-to-end,
    // produce valid assignments, and survive a save/load round trip.
    let data = small_city(80, 15);
    let mut cfg = E2dtcConfig::tiny(data.num_clusters);
    cfg.attention = true;
    let mut model = E2dtc::new(&data.dataset, cfg);
    let fit = model.fit(&data.dataset);
    assert!(fit.assignments.iter().all(|&c| c < data.num_clusters));

    let dir = std::env::temp_dir().join("e2dtc_attn_test");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("attn_model.json");
    model.save(&path).expect("save");
    let loaded = e2dtc::E2dtc::load(&path).expect("load");
    assert_eq!(model.assign(&data.dataset), loaded.assign(&data.dataset));
    std::fs::remove_file(path).ok();
}
