//! Golden-run regression test: a fully seeded end-to-end pipeline
//! (synthetic city → pretrain → self-train → final assignment) compared
//! against a committed reference result.
//!
//! The comparison is tolerance-based, not bit-exact: the workspace builds
//! with `-C target-cpu=native`, so float rounding (FMA contraction, SIMD
//! width) may differ between the machine that produced the golden file
//! and the one running the test. Metrics must stay within a tolerance
//! band and the assignment must agree with the golden one on most
//! trajectories (up to cluster-id permutation).
//!
//! Regenerate after an *intentional* change to training dynamics with:
//!
//! ```text
//! GOLDEN_REGEN=1 cargo test -p e2dtc --test golden_run
//! ```

use e2dtc::{E2dtc, E2dtcConfig};
use serde::{Deserialize, Serialize};
use traj_data::ground_truth::generate_ground_truth;
use traj_data::{GroundTruthConfig, LabeledDataset, SynthSpec};
use traj_cluster::{nmi, uacc};

const GOLDEN_PATH: &str =
    concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/golden_run.json");
const SEED: u64 = 1234;
const N: usize = 120;

/// Committed reference outcome of the seeded run.
#[derive(Debug, Serialize, Deserialize)]
struct Golden {
    /// Seed the run was produced with (documents the fixture).
    seed: u64,
    /// Dataset size (documents the fixture).
    n: usize,
    /// Unsupervised clustering accuracy vs ground truth.
    uacc: f64,
    /// Normalized mutual information vs ground truth.
    nmi: f64,
    /// Final hard assignment, aligned with the dataset.
    assignments: Vec<usize>,
}

fn golden_city() -> LabeledDataset {
    let mut spec = SynthSpec::hangzhou_like(N, SEED);
    spec.num_clusters = 4;
    spec.len_range = (30, 60);
    spec.outlier_fraction = 0.0;
    let city = spec.generate();
    let (labelled, _) =
        generate_ground_truth(&city.dataset, &city.pois, GroundTruthConfig::default());
    labelled
}

fn run_pipeline(data: &LabeledDataset) -> (Vec<usize>, f64, f64) {
    // The bare tiny preset clusters at chance level on this city, which
    // would make the golden anchor meaningless; give it enough capacity
    // and pre-training to learn real structure (cf. the pipeline
    // integration tests) while staying a few seconds of runtime.
    let mut cfg = E2dtcConfig::tiny(data.num_clusters).with_seed(SEED);
    cfg.hidden_dim = 32;
    cfg.pretrain_epochs = 4;
    cfg.skipgram.epochs = 8;
    let mut model = E2dtc::new(&data.dataset, cfg);
    let fit = model.fit(&data.dataset);
    let u = uacc(&fit.assignments, &data.labels);
    let m = nmi(&fit.assignments, &data.labels);
    (fit.assignments, u, m)
}

#[test]
fn seeded_run_matches_committed_golden() {
    let data = golden_city();
    let (assignments, u, m) = run_pipeline(&data);

    if std::env::var_os("GOLDEN_REGEN").is_some() {
        let golden =
            Golden { seed: SEED, n: N, uacc: u, nmi: m, assignments: assignments.clone() };
        let dir = std::path::Path::new(GOLDEN_PATH).parent().unwrap();
        std::fs::create_dir_all(dir).expect("create golden dir");
        let json = serde_json::to_string_pretty(&golden).expect("serialize golden");
        std::fs::write(GOLDEN_PATH, json).expect("write golden file");
        eprintln!("golden file regenerated at {GOLDEN_PATH}");
        return;
    }

    let text = std::fs::read_to_string(GOLDEN_PATH).unwrap_or_else(|e| {
        panic!(
            "cannot read {GOLDEN_PATH}: {e}\n\
             (regenerate with GOLDEN_REGEN=1 cargo test -p e2dtc --test golden_run)"
        )
    });
    let golden: Golden = serde_json::from_str(&text).expect("parse golden file");
    assert_eq!(golden.seed, SEED, "golden file was produced with a different seed");
    assert_eq!(golden.n, N, "golden file was produced with a different dataset size");
    assert_eq!(
        golden.assignments.len(),
        assignments.len(),
        "golden assignment length mismatch"
    );

    // Quality metrics: tolerance absorbs cross-machine float rounding
    // under -C target-cpu=native, but catches real regressions (a
    // collapsed or shuffled clustering moves UACC/NMI by far more).
    const TOL: f64 = 0.12;
    assert!(
        (u - golden.uacc).abs() <= TOL,
        "UACC drifted from golden: got {u:.4}, golden {:.4} (tol {TOL})",
        golden.uacc
    );
    assert!(
        (m - golden.nmi).abs() <= TOL,
        "NMI drifted from golden: got {m:.4}, golden {:.4} (tol {TOL})",
        golden.nmi
    );

    // Assignment agreement up to cluster-id permutation: UACC against the
    // golden assignment *as labels* is exactly Hungarian-matched overlap.
    let agreement = uacc(&assignments, &golden.assignments);
    assert!(
        agreement >= 0.85,
        "only {:.0}% of trajectories keep their golden cluster (≥85% required)",
        agreement * 100.0
    );
}
