//! Fault-injection integration tests (require `--features fault-injection`).
//!
//! Each test injects a specific fault through [`e2dtc::fault::FaultPlan`]
//! and proves the corresponding recovery path end to end:
//!
//! - isolated NaN losses → guard skips the poisoned updates, training
//!   completes, counts surface in the history;
//! - a run of consecutive NaN losses → guard rolls back to the
//!   start-of-epoch snapshot, replays the epoch, training completes;
//! - a checkpoint save torn at the final path → `resume` detects the
//!   corruption and falls back to the previous good checkpoint, and the
//!   resumed run still reproduces the clean run's assignments;
//! - a save killed mid-write → the atomic protocol leaves the target
//!   path untouched and every surviving checkpoint valid.
#![cfg(feature = "fault-injection")]

use e2dtc::fault::FaultPlan;
use e2dtc::{E2dtc, E2dtcConfig};
use std::path::PathBuf;
use traj_data::SynthSpec;

fn city(n: usize) -> traj_data::GeneratedCity {
    let mut spec = SynthSpec::hangzhou_like(n, 99);
    spec.num_clusters = 3;
    spec.len_range = (8, 16);
    spec.outlier_fraction = 0.0;
    spec.generate()
}

fn test_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("e2dtc_fault_test").join(name);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

fn base_cfg() -> E2dtcConfig {
    let mut cfg = E2dtcConfig::tiny(3);
    cfg.delta = -1.0; // fixed epoch count: no early stop
    cfg
}

#[test]
fn isolated_nan_batches_are_skipped_not_fatal() {
    let city = city(40);
    // 40 trajectories / batch 16 = 3 batches per epoch. Poison one batch
    // in pretrain epoch 0 and one in epoch 1 — isolated trips, below the
    // patience of 3.
    let mut model = E2dtc::new(&city.dataset, base_cfg());
    model.set_fault_plan(FaultPlan::new().poison_loss_at(&[1, 4]));
    let fit = model.fit(&city.dataset);

    let skipped: usize = fit.history.iter().map(|r| r.skipped_batches).sum();
    assert_eq!(skipped, 2, "both poisoned batches must be skipped");
    assert!(fit.history.iter().all(|r| r.rollbacks == 0), "no rollback expected");
    assert_eq!(fit.history[0].skipped_batches, 1);
    assert_eq!(fit.history[1].skipped_batches, 1);
    // The model survived: parameters finite, assignments well-formed.
    assert!(!model.embed_dataset(&city.dataset).has_non_finite());
    assert_eq!(fit.assignments.len(), 40);
    assert!(fit.assignments.iter().all(|&c| c < 3));
}

#[test]
fn consecutive_nan_batches_trigger_rollback_and_replay() {
    let city = city(40);
    // Poison the first 3 batches — exactly the guard patience — so the
    // guard rolls back in pretrain epoch 0. The batch counter keeps
    // advancing across the replay, so the replayed epoch is clean.
    let mut model = E2dtc::new(&city.dataset, base_cfg());
    model.set_fault_plan(FaultPlan::new().poison_loss_run(0, 3));
    let fit = model.fit(&city.dataset);

    assert_eq!(fit.history[0].rollbacks, 1, "epoch 0 must record its rollback");
    assert_eq!(
        fit.history[0].skipped_batches, 0,
        "the replayed epoch ran clean (skips of the aborted attempt are discarded)"
    );
    assert!(fit.history.iter().skip(1).all(|r| r.rollbacks == 0));
    // Training completed through both phases despite the rollback.
    assert_eq!(fit.history.len(), 6);
    assert!(!model.embed_dataset(&city.dataset).has_non_finite());
    assert_eq!(fit.assignments.len(), 40);
}

#[test]
fn rollback_restores_last_good_parameters() {
    // Identical twin runs; one takes a poisoned, rolled-back first epoch.
    // After the rollback the epoch replays from the snapshot — the only
    // difference downstream is the halved learning rate, so epoch 0's
    // replay must start from the same parameters: its loss derives from
    // the same snapshot and the same RNG stream.
    let city = city(40);
    let mut clean = E2dtc::new(&city.dataset, base_cfg());
    let clean_fit = clean.fit(&city.dataset);

    let mut faulty = E2dtc::new(&city.dataset, base_cfg());
    faulty.set_fault_plan(FaultPlan::new().poison_loss_run(0, 3));
    let faulty_fit = faulty.fit(&city.dataset);

    // The replayed epoch 0 sees the same batches from the same restored
    // parameters; only the backed-off LR changes its updates, which does
    // not change the *first* batch's pre-update loss. With mean losses
    // over identical batch schedules, equality would need per-batch
    // records — instead assert the replay landed in the same ballpark
    // (same data, same init) rather than the NaN-poisoned one.
    assert!(faulty_fit.history[0].recon_loss.is_finite());
    let rel = (faulty_fit.history[0].recon_loss - clean_fit.history[0].recon_loss).abs()
        / clean_fit.history[0].recon_loss;
    assert!(
        rel < 0.2,
        "replayed epoch-0 loss {} far from clean {} — snapshot not restored?",
        faulty_fit.history[0].recon_loss,
        clean_fit.history[0].recon_loss
    );
}

#[test]
fn torn_checkpoint_save_falls_back_to_previous_good_one() {
    let city = city(40);
    let dir = test_dir("torn");
    let mut cfg = base_cfg().with_checkpointing(dir.to_string_lossy(), 1);
    cfg.checkpoint_keep_last = 0;

    let mut clean = E2dtc::new(&city.dataset, cfg.clone());
    let clean_fit = clean.fit(&city.dataset);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("mkdir");

    // Same run, but the last of the 6 checkpoint saves (index 5) leaves a
    // 100-byte torn file at the final path.
    let mut model = E2dtc::new(&city.dataset, cfg);
    model.set_fault_plan(FaultPlan::new().tear_save(5, 100));
    let fit = model.fit(&city.dataset);
    assert_eq!(fit.assignments, clean_fit.assignments, "fault plan must not alter training");

    let torn = dir.join("ckpt-000006.json");
    assert_eq!(std::fs::metadata(&torn).expect("torn file exists").len(), 100);
    assert!(E2dtc::load(&torn).is_err(), "torn file must not validate");

    // resume() skips the torn newest file and falls back to epoch 5.
    let mut resumed = E2dtc::resume(&dir).expect("fallback resume");
    assert_eq!(resumed.pending_training().expect("cursor").epochs_done, 5);
    let resumed_fit = resumed.fit(&city.dataset);
    assert_eq!(
        resumed_fit.assignments, clean_fit.assignments,
        "resume past the torn checkpoint must still reproduce the clean run"
    );
}

#[test]
fn killed_save_leaves_final_path_untouched() {
    let city = city(40);
    let dir = test_dir("killed");
    let mut cfg = base_cfg().with_checkpointing(dir.to_string_lossy(), 1);
    cfg.checkpoint_keep_last = 0;

    // Save #1 (the checkpoint after the second epoch) dies mid-tmp-write.
    let mut model = E2dtc::new(&city.dataset, cfg);
    model.set_fault_plan(FaultPlan::new().kill_save(1));
    let fit = model.fit(&city.dataset);
    assert_eq!(fit.history.len(), 6, "a failed checkpoint must not kill training");

    // The atomic protocol never touched the killed save's final path...
    assert!(!dir.join("ckpt-000002.json").exists());
    // ...its partial tmp file is what the crash left...
    assert!(dir.join("ckpt-000002.json.tmp").exists());
    // ...and every checkpoint that does exist validates.
    let ckpts = e2dtc::persist::list_checkpoints(&dir).expect("list");
    assert_eq!(ckpts.len(), 5);
    for ckpt in &ckpts {
        E2dtc::load(ckpt).unwrap_or_else(|e| panic!("{} invalid: {e}", ckpt.display()));
    }
}
