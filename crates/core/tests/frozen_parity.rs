//! Bit-parity between the training-path (tape) forward and the tape-free
//! frozen forward — the contract that lets inference skip autograd
//! entirely.
//!
//! Three paths must agree to the last bit for every trajectory:
//!
//! 1. `E2dtc::embed_dataset_training` — tape-based, RNG-consuming (the
//!    forward `fit` runs every epoch);
//! 2. `E2dtc::embed_dataset` — tape-free `&self` path;
//! 3. `FrozenEncoder::embed_dataset` — the same path through a frozen
//!    snapshot, including one round-tripped through a v3 checkpoint.
//!
//! Exactness holds because the eval kernels mirror the tape ops'
//! float-operation order exactly (see `traj_nn::infer`); any drift is a
//! kernel bug, not tolerance noise, so every comparison is `to_bits`.

use e2dtc::{E2dtc, E2dtcConfig, FrozenEncoder};
use traj_data::SynthSpec;

fn tiny_city(n: usize, k: usize) -> traj_data::GeneratedCity {
    let mut spec = SynthSpec::hangzhou_like(n, 99);
    spec.num_clusters = k;
    spec.len_range = (8, 16);
    spec.outlier_fraction = 0.0;
    spec.generate()
}

fn assert_bit_identical(a: &traj_nn::Tensor, b: &traj_nn::Tensor, what: &str) {
    assert_eq!(a.shape(), b.shape(), "{what}: shape mismatch");
    for (i, (x, y)) in a.data().iter().zip(b.data()).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: scalar {i} differs ({x} vs {y})"
        );
    }
}

#[test]
fn frozen_forward_is_bit_identical_to_tape_forward() {
    let city = tiny_city(30, 3);
    let mut model = E2dtc::new(&city.dataset, E2dtcConfig::tiny(3));
    // A couple of pre-training epochs so the weights are not the init.
    let _ = model.pretrain(&city.dataset, 2);

    let tape = model.embed_dataset_training(&city.dataset);
    let tape_free = model.embed_dataset(&city.dataset);
    assert_bit_identical(&tape, &tape_free, "tape vs E2dtc::embed_dataset");

    let frozen = model.freeze();
    let frozen_emb = frozen.embed_dataset(&city.dataset);
    assert_bit_identical(&tape, &frozen_emb, "tape vs FrozenEncoder");
}

#[test]
fn parity_survives_attention_configs() {
    // The attention branch exercises a separate eval mirror; pin it too.
    let city = tiny_city(20, 2);
    let mut cfg = E2dtcConfig::tiny(2);
    cfg.attention = true;
    let mut model = E2dtc::new(&city.dataset, cfg);
    let tape = model.embed_dataset_training(&city.dataset);
    let frozen = model.freeze().embed_dataset(&city.dataset);
    assert_bit_identical(&tape, &frozen, "attention config");
}

#[test]
fn checkpoint_roundtrip_preserves_frozen_forward_bitwise() {
    let city = tiny_city(25, 3);
    let mut model = E2dtc::new(&city.dataset, E2dtcConfig::tiny(3));
    let emb = model.embed_dataset(&city.dataset);
    model.init_centroids(&emb);
    let direct = model.freeze();

    let dir = std::env::temp_dir().join("e2dtc_frozen_parity");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("model.json");
    model.save(&path).expect("save");
    let loaded = FrozenEncoder::from_checkpoint(&path).expect("from_checkpoint");

    assert_bit_identical(
        &direct.embed_dataset(&city.dataset),
        &loaded.embed_dataset(&city.dataset),
        "freeze() vs from_checkpoint()",
    );
    let (a, b) = (
        direct.centroids().expect("centroids"),
        loaded.centroids().expect("centroids"),
    );
    assert_bit_identical(a, b, "centroids");

    // And both agree with the assignments of the mutable model.
    let q = model.soft_assignment(&city.dataset);
    assert_bit_identical(&q, &loaded.soft_assign(&emb), "soft assignment");
    std::fs::remove_file(&path).ok();
}

#[test]
fn frozen_result_is_independent_of_batch_size() {
    // Rows are computed batch-wise but must not depend on batch
    // composition: matmul visits k in a fixed order per row and every
    // other op is row-local.
    let city = tiny_city(17, 2);
    let mut cfg1 = E2dtcConfig::tiny(2);
    cfg1.batch_size = 1;
    let mut cfg2 = E2dtcConfig::tiny(2);
    cfg2.batch_size = 17;
    // Same seed → identical weights; only batching differs.
    let m1 = E2dtc::new(&city.dataset, cfg1);
    let m2 = E2dtc::new(&city.dataset, cfg2);
    assert_bit_identical(
        &m1.embed_dataset(&city.dataset),
        &m2.embed_dataset(&city.dataset),
        "batch size 1 vs 17",
    );
}
