//! Resume-equivalence integration tests: a training run interrupted at
//! any checkpoint and resumed must reproduce the uninterrupted run's
//! final assignments exactly.
//!
//! "Interrupted" is simulated by training a baseline with a checkpoint
//! after every epoch (keeping all of them), then resuming from an
//! intermediate file — byte-identical to what a crash right after that
//! checkpoint would have left behind.

use e2dtc::{E2dtc, E2dtcConfig, Phase};
use std::path::PathBuf;
use traj_data::SynthSpec;

fn city(n: usize) -> traj_data::GeneratedCity {
    let mut spec = SynthSpec::hangzhou_like(n, 99);
    spec.num_clusters = 3;
    spec.len_range = (8, 16);
    spec.outlier_fraction = 0.0;
    spec.generate()
}

fn test_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("e2dtc_resume_test").join(name);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

/// Tiny config with per-epoch checkpoints, all kept, and the stop rule
/// disabled so every run trains the same fixed number of epochs.
fn cfg(dir: &std::path::Path) -> E2dtcConfig {
    let mut cfg = E2dtcConfig::tiny(3).with_checkpointing(dir.to_string_lossy(), 1);
    cfg.checkpoint_keep_last = 0;
    cfg.delta = -1.0;
    cfg
}

#[test]
fn resume_reproduces_uninterrupted_run() {
    let city = city(40);
    let dir = test_dir("equivalence");

    let mut baseline = E2dtc::new(&city.dataset, cfg(&dir));
    let base_fit = baseline.fit(&city.dataset);
    // 3 pretrain + 3 selftrain epochs, one checkpoint each.
    let ckpts = e2dtc::persist::list_checkpoints(&dir).expect("list");
    assert_eq!(ckpts.len(), 6, "expected one checkpoint per epoch: {ckpts:?}");

    // Resume from a mid-pretrain kill (after epoch 2 of 3).
    let mut from_pretrain = E2dtc::resume(dir.join("ckpt-000002.json")).expect("resume");
    let st = from_pretrain.pending_training().expect("cursor").clone();
    assert_eq!(st.phase, Phase::Pretrain);
    assert_eq!(st.next_epoch, 2);
    let fit = from_pretrain.fit(&city.dataset);
    assert_eq!(fit.assignments, base_fit.assignments, "pretrain-resume diverged");
    assert_eq!(fit.embeddings, base_fit.embeddings);
    assert_eq!(fit.history.len(), base_fit.history.len());

    // Resume from a mid-self-training kill (after selftrain epoch 1).
    let mut from_selftrain = E2dtc::resume(dir.join("ckpt-000005.json")).expect("resume");
    let st = from_selftrain.pending_training().expect("cursor").clone();
    assert_eq!(st.phase, Phase::SelfTrain);
    assert_eq!(st.next_epoch, 2);
    let fit = from_selftrain.fit(&city.dataset);
    assert_eq!(fit.assignments, base_fit.assignments, "selftrain-resume diverged");
    assert_eq!(fit.embeddings, base_fit.embeddings);

    // The resumed history is the uninterrupted history: the checkpointed
    // prefix plus the replayed suffix, with identical losses.
    for (a, b) in fit.history.iter().zip(&base_fit.history) {
        assert_eq!(a.phase, b.phase);
        assert_eq!(a.epoch, b.epoch);
        assert_eq!(a.recon_loss, b.recon_loss);
    }
}

#[test]
fn resume_from_directory_picks_newest() {
    let city = city(30);
    let dir = test_dir("newest");
    let mut model = E2dtc::new(&city.dataset, cfg(&dir));
    let base_fit = model.fit(&city.dataset);

    let mut resumed = E2dtc::resume(&dir).expect("resume from dir");
    let st = resumed.pending_training().expect("cursor").clone();
    assert_eq!(st.epochs_done, 6, "newest checkpoint is the last epoch's");
    // Nothing left to train: fit just recomputes the final assignment.
    let fit = resumed.fit(&city.dataset);
    assert_eq!(fit.assignments, base_fit.assignments);
}

#[test]
fn rotation_policy_bounds_disk_usage() {
    let city = city(30);
    let dir = test_dir("rotation");
    let mut cfg = cfg(&dir);
    cfg.checkpoint_keep_last = 2;
    let mut model = E2dtc::new(&city.dataset, cfg);
    let _ = model.fit(&city.dataset);
    let ckpts = e2dtc::persist::list_checkpoints(&dir).expect("list");
    let names: Vec<_> =
        ckpts.iter().map(|p| p.file_name().unwrap().to_string_lossy().into_owned()).collect();
    assert_eq!(names, vec!["ckpt-000005.json", "ckpt-000006.json"]);
}

#[test]
fn checkpointing_does_not_change_the_trained_model() {
    // The checkpoint write path must be a pure observer: a run with
    // checkpoints enabled and one without produce identical results.
    let city = city(30);
    let dir = test_dir("observer");
    let mut with_ckpt = E2dtc::new(&city.dataset, cfg(&dir));
    let mut without = E2dtc::new(&city.dataset, {
        let mut c = E2dtcConfig::tiny(3);
        c.delta = -1.0;
        c
    });
    let a = with_ckpt.fit(&city.dataset);
    let b = without.fit(&city.dataset);
    assert_eq!(a.assignments, b.assignments);
    assert_eq!(a.embeddings, b.embeddings);
}
