//! End-to-end run-log test: drive the real `e2dtc` binary with
//! `--log-json` and validate the produced JSONL through the schema
//! parser — the acceptance path for the telemetry subsystem.

use std::process::Command;
use traj_obs::schema::parse_jsonl;
use traj_obs::Event;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_e2dtc")
}

#[test]
fn cli_train_with_log_json_produces_a_valid_complete_log() {
    let dir = std::env::temp_dir().join(format!("e2dtc_runlog_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let data = dir.join("data.json");
    let model = dir.join("model.json");
    let log = dir.join("run.jsonl");

    // Small seeded city; keep the run seconds-scale.
    let status = Command::new(bin())
        .args(["generate", "--kind", "hangzhou", "--n", "30", "--seed", "9"])
        .args(["--out", data.to_str().unwrap(), "--quiet"])
        .status()
        .expect("launch generate");
    assert!(status.success(), "generate failed");

    let out = Command::new(bin())
        .args(["train", "--data", data.to_str().unwrap()])
        .args(["--out", model.to_str().unwrap()])
        .args(["--seed", "9", "--quiet"])
        .args(["--log-json", log.to_str().unwrap()])
        .output()
        .expect("launch train");
    assert!(
        out.status.success(),
        "train failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        out.stdout.is_empty(),
        "--quiet must silence stdout, got: {}",
        String::from_utf8_lossy(&out.stdout)
    );

    let text = std::fs::read_to_string(&log).expect("run log exists");
    let v = parse_jsonl(&text).unwrap_or_else(|e| panic!("log failed validation: {e}"));
    assert!(v.complete, "a successful run must end with run_end and no open spans");

    // Header carries the run identity.
    let Event::RunHeader { name, seed, git, config, .. } = v.header() else {
        panic!("first event must be run_header");
    };
    assert_eq!(name, "train");
    assert_eq!(*seed, 9);
    assert!(!git.is_empty());
    assert!(
        config.get_field("data").is_some(),
        "header config must carry the parsed flags"
    );

    // Both phases logged their epochs with the three loss components.
    let epochs = v.epochs();
    assert!(!epochs.is_empty(), "no epoch events in the log");
    let phase_of = |e: &Event| match e {
        Event::Epoch { phase, .. } => phase.clone(),
        _ => unreachable!(),
    };
    assert!(epochs.iter().any(|e| phase_of(e) == "pretrain"));
    assert!(epochs.iter().any(|e| phase_of(e) == "selftrain"));
    for e in &epochs {
        let Event::Epoch { recon_loss, lr, .. } = e else { unreachable!() };
        assert!(recon_loss.is_finite(), "recon loss must be finite in a clean run");
        assert!(*lr > 0.0, "epoch events must carry the learning rate");
    }

    // The timed phases appear as closed spans nested under `fit`.
    for span in ["fit", "pretrain", "centroid_init", "selftrain"] {
        assert!(
            v.span_total_ms(span) > 0.0,
            "span `{span}` missing or never closed"
        );
    }

    // Kernel counters were snapshotted at the end of fit.
    let matmuls = v.final_counter("nn.matmul_calls").expect("matmul counter snapshot");
    assert!(matmuls > 0);
    assert!(v.final_counter("nn.gru_cell_steps").unwrap_or(0) > 0);
    assert!(v.final_counter("nn.adam_steps").unwrap_or(0) > 0);

    // Batch-time histograms for both phases.
    let hist_names: Vec<&str> = v
        .events
        .iter()
        .filter_map(|e| match e {
            Event::Histogram { name, .. } => Some(name.as_str()),
            _ => None,
        })
        .collect();
    assert!(hist_names.contains(&"pretrain.batch_ms"), "histograms: {hist_names:?}");
    assert!(hist_names.contains(&"selftrain.batch_ms"), "histograms: {hist_names:?}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cli_evaluate_logs_a_minimal_valid_run() {
    // A command that never trains still produces a schema-valid log.
    let dir = std::env::temp_dir().join(format!("e2dtc_runlog_eval_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let data = dir.join("data.json");
    let log = dir.join("eval.jsonl");

    let status = Command::new(bin())
        .args(["generate", "--kind", "hangzhou", "--n", "12", "--seed", "3"])
        .args(["--out", data.to_str().unwrap(), "--quiet"])
        .status()
        .expect("launch generate");
    assert!(status.success());

    // Evaluate the ground truth against itself via a hand-written
    // assignments file of the right length.
    let labels: Vec<usize> = {
        let labelled = traj_data::io::load_labeled_json(&data).expect("load");
        labelled.labels.clone()
    };
    let asg = dir.join("asg.json");
    std::fs::write(&asg, serde_json::to_string(&labels).unwrap()).unwrap();

    let status = Command::new(bin())
        .args(["evaluate", "--data", data.to_str().unwrap()])
        .args(["--assignments", asg.to_str().unwrap()])
        .args(["--log-json", log.to_str().unwrap()])
        .status()
        .expect("launch evaluate");
    assert!(status.success());

    let text = std::fs::read_to_string(&log).expect("run log exists");
    let v = parse_jsonl(&text).unwrap_or_else(|e| panic!("log failed validation: {e}"));
    assert!(v.complete);
    let Event::RunHeader { name, .. } = v.header() else { panic!("no header") };
    assert_eq!(name, "evaluate");
    // The metrics line is mirrored into the log as an info message.
    assert!(v.events.iter().any(|e| matches!(
        e,
        Event::Message { text, .. } if text.contains("UACC")
    )));

    std::fs::remove_dir_all(&dir).ok();
}
