//! # traj-tsne — exact t-SNE (van der Maaten & Hinton, JMLR 2008)
//!
//! The E²DTC paper visualizes embedding spaces with t-SNE on 1000-sample
//! subsets (Figs. 4–5). This crate implements the exact O(n²) algorithm —
//! entirely adequate at that size — with perplexity-calibrated conditional
//! affinities, early exaggeration, and momentum gradient descent.
//!
//! Inputs can be feature vectors (Euclidean affinities) or a precomputed
//! distance matrix (how the paper's *classic-metric* panels, Figs. 4a–4d,
//! must be produced, since EDR/LCSS/DTW/Hausdorff have no feature space).

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// t-SNE hyper-parameters.
#[derive(Clone, Copy, Debug)]
pub struct TsneConfig {
    /// Target perplexity of the conditional distributions (typical 5–50).
    pub perplexity: f64,
    /// Total gradient-descent iterations.
    pub iterations: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// Early-exaggeration factor applied for the first quarter of the run.
    pub exaggeration: f64,
    /// RNG seed for the initial layout.
    pub seed: u64,
}

impl Default for TsneConfig {
    fn default() -> Self {
        Self {
            perplexity: 30.0,
            iterations: 400,
            learning_rate: 100.0,
            exaggeration: 12.0,
            seed: 0,
        }
    }
}

/// Result of a t-SNE run.
#[derive(Clone, Debug)]
pub struct TsneResult {
    /// Flat `(n, 2)` output coordinates.
    pub coords: Vec<f64>,
    /// Final KL divergence of the embedding.
    pub kl: f64,
}

impl TsneResult {
    /// The 2-D position of point `i`.
    pub fn point(&self, i: usize) -> (f64, f64) {
        (self.coords[2 * i], self.coords[2 * i + 1])
    }
}

/// Runs t-SNE on `(n, d)` feature vectors (flat row-major `f32`).
///
/// # Panics
/// Panics if `data.len() != n * d` or `n < 3`.
pub fn tsne(data: &[f32], n: usize, d: usize, cfg: &TsneConfig) -> TsneResult {
    assert_eq!(data.len(), n * d, "buffer must be n × d");
    let sq = pairwise_sq_dists(data, n, d);
    tsne_from_sq_dists(&sq, n, cfg)
}

/// Runs t-SNE on a precomputed symmetric distance matrix (row-major,
/// distances not squared).
///
/// # Panics
/// Panics if `dist.len() != n * n` or `n < 3`.
pub fn tsne_from_distances(dist: &[f64], n: usize, cfg: &TsneConfig) -> TsneResult {
    assert_eq!(dist.len(), n * n, "matrix must be n × n");
    let sq: Vec<f64> = dist.iter().map(|&x| x * x).collect();
    tsne_from_sq_dists(&sq, n, cfg)
}

fn tsne_from_sq_dists(sq: &[f64], n: usize, cfg: &TsneConfig) -> TsneResult {
    assert!(n >= 3, "t-SNE needs at least 3 points");
    let p = joint_affinities(sq, n, cfg.perplexity);

    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut y: Vec<f64> = (0..2 * n).map(|_| (rng.gen::<f64>() - 0.5) * 1e-2).collect();
    let mut velocity = vec![0.0f64; 2 * n];
    let mut gains = vec![1.0f64; 2 * n];
    let exaggeration_end = cfg.iterations / 4;

    let mut q_num = vec![0.0f64; n * n];
    let mut kl = 0.0;
    for iter in 0..cfg.iterations {
        let exag = if iter < exaggeration_end { cfg.exaggeration } else { 1.0 };
        // Student-t numerators and their sum.
        let mut z = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                let dx = y[2 * i] - y[2 * j];
                let dy = y[2 * i + 1] - y[2 * j + 1];
                let num = 1.0 / (1.0 + dx * dx + dy * dy);
                q_num[i * n + j] = num;
                q_num[j * n + i] = num;
                z += 2.0 * num;
            }
        }
        let z = z.max(1e-12);

        // Gradient: 4 Σ_j (exag·p_ij − q_ij) num_ij (y_i − y_j)
        let momentum = if iter < 20 { 0.5 } else { 0.8 };
        kl = 0.0;
        for i in 0..n {
            let mut gx = 0.0;
            let mut gy = 0.0;
            for j in 0..n {
                if i == j {
                    continue;
                }
                let pij = p[i * n + j];
                let num = q_num[i * n + j];
                let qij = (num / z).max(1e-12);
                if pij > 0.0 {
                    kl += pij * (pij / qij).ln();
                }
                let mult = (exag * pij - qij) * num;
                gx += mult * (y[2 * i] - y[2 * j]);
                gy += mult * (y[2 * i + 1] - y[2 * j + 1]);
            }
            for (axis, g) in [(0usize, 4.0 * gx), (1usize, 4.0 * gy)] {
                let idx = 2 * i + axis;
                // Adaptive gains (classic vdM implementation detail).
                gains[idx] = if g.signum() != velocity[idx].signum() {
                    (gains[idx] + 0.2).min(10.0)
                } else {
                    (gains[idx] * 0.8).max(0.01)
                };
                velocity[idx] = momentum * velocity[idx] - cfg.learning_rate * gains[idx] * g;
            }
        }
        kl /= 2.0; // each pair visited twice above
        for (yi, v) in y.iter_mut().zip(&velocity) {
            *yi += v;
        }
        // Re-center to keep coordinates bounded.
        let (mx, my) = mean_xy(&y, n);
        for i in 0..n {
            y[2 * i] -= mx;
            y[2 * i + 1] -= my;
        }
    }
    TsneResult { coords: y, kl }
}

fn mean_xy(y: &[f64], n: usize) -> (f64, f64) {
    let mut mx = 0.0;
    let mut my = 0.0;
    for i in 0..n {
        mx += y[2 * i];
        my += y[2 * i + 1];
    }
    (mx / n as f64, my / n as f64)
}

/// Squared Euclidean pairwise distances of flat `f32` features.
fn pairwise_sq_dists(data: &[f32], n: usize, d: usize) -> Vec<f64> {
    let rows: Vec<Vec<f64>> = (0..n)
        .into_par_iter()
        .map(|i| {
            let a = &data[i * d..(i + 1) * d];
            (0..n)
                .map(|j| {
                    let b = &data[j * d..(j + 1) * d];
                    a.iter()
                        .zip(b)
                        .map(|(&x, &y)| {
                            let diff = (x - y) as f64;
                            diff * diff
                        })
                        .sum()
                })
                .collect()
        })
        .collect();
    rows.into_iter().flatten().collect()
}

/// Symmetrized joint affinities `P` with per-point bandwidths calibrated
/// to the target perplexity by binary search on `log(perplexity)`.
fn joint_affinities(sq: &[f64], n: usize, perplexity: f64) -> Vec<f64> {
    let target_entropy = perplexity.max(1.0).ln();
    let conditional: Vec<Vec<f64>> = (0..n)
        .into_par_iter()
        .map(|i| calibrate_row(sq, n, i, target_entropy))
        .collect();
    let mut p = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..n {
            p[i * n + j] = conditional[i][j];
        }
    }
    // Symmetrize and normalize to a joint distribution.
    let mut joint = vec![0.0f64; n * n];
    let norm = 1.0 / (2.0 * n as f64);
    for i in 0..n {
        for j in 0..n {
            joint[i * n + j] = (p[i * n + j] + p[j * n + i]) * norm;
        }
    }
    joint
}

fn calibrate_row(sq: &[f64], n: usize, i: usize, target_entropy: f64) -> Vec<f64> {
    let mut beta = 1.0f64; // 1 / (2 sigma^2)
    let (mut beta_min, mut beta_max) = (0.0f64, f64::INFINITY);
    let mut row = vec![0.0f64; n];
    for _ in 0..64 {
        let mut sum = 0.0;
        for (j, r) in row.iter_mut().enumerate() {
            *r = if j == i { 0.0 } else { (-beta * sq[i * n + j]).exp() };
            sum += *r;
        }
        if sum <= 0.0 {
            // Degenerate (all other points infinitely far): back off.
            beta /= 10.0;
            continue;
        }
        // Shannon entropy of the conditional distribution.
        let mut entropy = 0.0;
        for r in &mut row {
            *r /= sum;
            if *r > 0.0 {
                entropy -= *r * r.ln();
            }
        }
        let diff = entropy - target_entropy;
        if diff.abs() < 1e-5 {
            break;
        }
        if diff > 0.0 {
            beta_min = beta;
            beta = if beta_max.is_finite() { (beta + beta_max) / 2.0 } else { beta * 2.0 };
        } else {
            beta_max = beta;
            beta = (beta + beta_min) / 2.0;
        }
    }
    row
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob_data() -> (Vec<f32>, Vec<usize>, usize) {
        let mut rng = StdRng::seed_from_u64(3);
        let centers = [(0.0f32, 0.0f32, 0.0f32), (20.0, 0.0, 0.0), (0.0, 20.0, 0.0)];
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for (l, &(cx, cy, cz)) in centers.iter().enumerate() {
            for _ in 0..20 {
                data.push(cx + rng.gen::<f32>());
                data.push(cy + rng.gen::<f32>());
                data.push(cz + rng.gen::<f32>());
                labels.push(l);
            }
        }
        (data, labels, 60)
    }

    #[test]
    fn output_shape_and_determinism() {
        let (data, _, n) = blob_data();
        let cfg = TsneConfig { iterations: 50, ..Default::default() };
        let a = tsne(&data, n, 3, &cfg);
        let b = tsne(&data, n, 3, &cfg);
        assert_eq!(a.coords.len(), 2 * n);
        assert_eq!(a.coords, b.coords);
    }

    #[test]
    fn affinities_are_a_distribution() {
        let (data, _, n) = blob_data();
        let sq = pairwise_sq_dists(&data, n, 3);
        let p = joint_affinities(&sq, n, 15.0);
        let total: f64 = p.iter().sum();
        assert!((total - 1.0).abs() < 1e-6, "joint P sums to {total}");
        assert!(p.iter().all(|&x| x >= 0.0));
        // Symmetric.
        for i in 0..n {
            for j in 0..n {
                assert!((p[i * n + j] - p[j * n + i]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn separated_blobs_stay_separated_in_2d() {
        let (data, labels, n) = blob_data();
        let cfg = TsneConfig { iterations: 250, perplexity: 10.0, ..Default::default() };
        let res = tsne(&data, n, 3, &cfg);
        // Mean intra-cluster pairwise distance must be well below the mean
        // inter-cluster distance in the 2-D embedding.
        let mut intra = (0.0, 0usize);
        let mut inter = (0.0, 0usize);
        for i in 0..n {
            for j in (i + 1)..n {
                let (xi, yi) = res.point(i);
                let (xj, yj) = res.point(j);
                let dd = ((xi - xj).powi(2) + (yi - yj).powi(2)).sqrt();
                if labels[i] == labels[j] {
                    intra = (intra.0 + dd, intra.1 + 1);
                } else {
                    inter = (inter.0 + dd, inter.1 + 1);
                }
            }
        }
        let intra = intra.0 / intra.1 as f64;
        let inter = inter.0 / inter.1 as f64;
        assert!(inter > 2.0 * intra, "inter {inter:.2} vs intra {intra:.2}");
    }

    #[test]
    fn distance_matrix_entry_point_agrees_with_features() {
        // Feeding sqrt(pairwise sq dists) through the distance entry point
        // must reproduce the same joint affinities (up to the sqrt/square
        // round-trip rounding).
        let (data, _, n) = blob_data();
        let sq = pairwise_sq_dists(&data, n, 3);
        let dist: Vec<f64> = sq.iter().map(|&x| x.sqrt()).collect();
        let sq_back: Vec<f64> = dist.iter().map(|&x| x * x).collect();
        let p_feat = joint_affinities(&sq, n, 15.0);
        let p_dist = joint_affinities(&sq_back, n, 15.0);
        for (a, b) in p_feat.iter().zip(&p_dist) {
            assert!((a - b).abs() < 1e-7, "affinity mismatch: {a} vs {b}");
        }
        // And the distance entry point runs end-to-end.
        let cfg = TsneConfig { iterations: 40, ..Default::default() };
        let res = tsne_from_distances(&dist, n, &cfg);
        assert_eq!(res.coords.len(), 2 * n);
        assert!(res.kl.is_finite());
    }

    #[test]
    fn kl_is_finite_and_reasonable() {
        let (data, _, n) = blob_data();
        let cfg = TsneConfig { iterations: 150, ..Default::default() };
        let res = tsne(&data, n, 3, &cfg);
        assert!(res.kl.is_finite());
        assert!(res.kl >= 0.0);
        assert!(res.kl < 5.0, "KL unexpectedly high: {}", res.kl);
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn too_few_points_panics() {
        let data = vec![0.0f32, 0.0, 1.0, 1.0];
        let _ = tsne(&data, 2, 2, &TsneConfig::default());
    }
}
