//! Property-style invariants of the t-SNE implementation, exercised
//! through the public API.

use proptest::prelude::*;
use traj_tsne::{tsne, tsne_from_distances, TsneConfig};

fn small_cfg(seed: u64) -> TsneConfig {
    TsneConfig { iterations: 40, perplexity: 5.0, seed, ..Default::default() }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn output_is_finite_and_centered(
        values in prop::collection::vec(-5.0f32..5.0, 3 * 8..=3 * 8),
        seed in 0u64..50,
    ) {
        let res = tsne(&values, 8, 3, &small_cfg(seed));
        prop_assert_eq!(res.coords.len(), 16);
        prop_assert!(res.coords.iter().all(|x| x.is_finite()));
        prop_assert!(res.kl.is_finite() && res.kl >= -1e-6);
        // Re-centering keeps the mean at the origin.
        let mx: f64 = (0..8).map(|i| res.point(i).0).sum::<f64>() / 8.0;
        let my: f64 = (0..8).map(|i| res.point(i).1).sum::<f64>() / 8.0;
        prop_assert!(mx.abs() < 1e-6 && my.abs() < 1e-6);
    }

    #[test]
    fn deterministic_per_seed(
        values in prop::collection::vec(-5.0f32..5.0, 3 * 6..=3 * 6),
    ) {
        let a = tsne(&values, 6, 3, &small_cfg(3));
        let b = tsne(&values, 6, 3, &small_cfg(3));
        prop_assert_eq!(a.coords, b.coords);
        let c = tsne(&values, 6, 3, &small_cfg(4));
        prop_assert_ne!(a.coords, c.coords);
    }

    #[test]
    fn distance_input_matches_feature_input_shape(
        values in prop::collection::vec(0.0f32..5.0, 2 * 6..=2 * 6),
    ) {
        // Build the pairwise Euclidean matrix by hand and run the
        // distance entry point.
        let n = 6;
        let mut dist = vec![0.0f64; n * n];
        for i in 0..n {
            for j in 0..n {
                let dx = (values[2 * i] - values[2 * j]) as f64;
                let dy = (values[2 * i + 1] - values[2 * j + 1]) as f64;
                dist[i * n + j] = (dx * dx + dy * dy).sqrt();
            }
        }
        let res = tsne_from_distances(&dist, n, &small_cfg(9));
        prop_assert_eq!(res.coords.len(), 2 * n);
        prop_assert!(res.coords.iter().all(|x| x.is_finite()));
    }
}

#[test]
fn duplicate_points_do_not_produce_nan() {
    // Degenerate input: several identical points.
    let data = vec![1.0f32; 5 * 4];
    let res = tsne(&data, 5, 4, &small_cfg(0));
    assert!(res.coords.iter().all(|x| x.is_finite()));
}
