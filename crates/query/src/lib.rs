//! # traj-query — batched query serving over a frozen E²DTC encoder
//!
//! The paper's deployment story is train-once/serve-forever: "once finely
//! trained, it can be efficiently adopted for trajectory clustering
//! requests". This crate is that serving layer. A [`QueryEngine`] wraps
//! an `Arc<`[`FrozenEncoder`]`>` — the immutable, `Send + Sync` artifact
//! produced by `E2dtc::freeze()` or
//! [`FrozenEncoder::from_checkpoint`] — and answers batch requests:
//!
//! - [`QueryEngine::embed_batch`] — trajectory → representation vectors;
//! - [`QueryEngine::soft_assign`] / [`QueryEngine::hard_assign`] —
//!   Student-t cluster membership (paper Eq. 9) and its argmax;
//! - [`QueryEngine::nearest_centroids`] — per-trajectory centroid top-k
//!   by squared distance in representation space.
//!
//! Requests are tokenized, length-bucketed into micro-batches (so a
//! batch pays GRU steps for its longest member only), and — with
//! [`QueryConfig::parallel`] — fanned across the rayon worker pool. Each
//! worker thread keeps its own [`Scratch`] buffer pool, so steady-state
//! queries allocate nothing beyond the output tensor. The forward is the
//! tape-free eval path, bit-identical to the training-path forward;
//! results are byte-for-byte independent of batch size and thread count.
//!
//! Telemetry: the [`QUERY_TRAJS`] / [`QUERY_BATCHES`] counters accumulate
//! totals, and when a global `traj-obs` recorder is installed each call
//! records a per-micro-batch latency histogram under `query.batch_ms`.

#![warn(missing_docs)]

use e2dtc::batcher::length_buckets;
use e2dtc::FrozenEncoder;
use rayon::prelude::*;
use std::cell::RefCell;
use std::sync::Arc;
use traj_data::Trajectory;
use traj_nn::infer::Scratch;
use traj_nn::Tensor;
use traj_obs::Counter;

/// Total trajectories embedded through any [`QueryEngine`].
pub static QUERY_TRAJS: Counter = Counter::new("query.trajs");
/// Total micro-batches encoded by any [`QueryEngine`].
pub static QUERY_BATCHES: Counter = Counter::new("query.batches");

/// The engine's counters, in snapshot-friendly form (pass to
/// `traj_obs::Recorder::counters`).
pub fn counters() -> [&'static Counter; 2] {
    [&QUERY_TRAJS, &QUERY_BATCHES]
}

thread_local! {
    /// Per-thread buffer pool: every worker reuses its own scratch
    /// tensors across micro-batches and across calls.
    static SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::new());
}

/// Tuning knobs for a [`QueryEngine`].
#[derive(Clone, Copy, Debug)]
pub struct QueryConfig {
    /// Micro-batch size for the encoder forward. Larger batches amortize
    /// per-step overhead; smaller ones waste less padding on mixed
    /// lengths.
    pub batch_size: usize,
    /// Fan micro-batches across the rayon worker pool. Results are
    /// bit-identical either way; this only trades latency for cores.
    pub parallel: bool,
}

impl Default for QueryConfig {
    fn default() -> Self {
        Self { batch_size: 64, parallel: true }
    }
}

/// A shareable, read-only query front-end over a frozen encoder.
///
/// Cloning is cheap (the encoder is behind an `Arc`); the engine itself
/// is also `Send + Sync`, so one instance may serve many threads.
#[derive(Clone)]
pub struct QueryEngine {
    encoder: Arc<FrozenEncoder>,
    cfg: QueryConfig,
}

impl QueryEngine {
    /// Wraps a frozen encoder with the given configuration.
    pub fn new(encoder: Arc<FrozenEncoder>, cfg: QueryConfig) -> Self {
        Self { encoder, cfg }
    }

    /// The underlying frozen encoder.
    pub fn encoder(&self) -> &FrozenEncoder {
        &self.encoder
    }

    /// The configuration in force.
    pub fn config(&self) -> QueryConfig {
        self.cfg
    }

    /// Embeds a batch of trajectories, returning an `(n, hidden)` tensor
    /// aligned with the input order.
    pub fn embed_batch(&self, trajs: &[Trajectory]) -> Tensor {
        let sequences: Vec<Vec<usize>> =
            trajs.iter().map(|t| self.encoder.tokenize(t)).collect();
        self.embed_tokenized(&sequences)
    }

    /// Embeds already-tokenized sequences (the batch core of every other
    /// entry point). Length-buckets into micro-batches, encodes each —
    /// in parallel when configured — and scatters rows back to input
    /// order.
    pub fn embed_tokenized(&self, sequences: &[Vec<usize>]) -> Tensor {
        let n = sequences.len();
        let d = self.encoder.repr_dim();
        let mut out = Tensor::zeros(n, d);
        if n == 0 {
            return out;
        }
        let lens: Vec<usize> = sequences.iter().map(Vec::len).collect();
        let batches = length_buckets(&lens, self.cfg.batch_size);
        QUERY_TRAJS.add(n as u64);
        QUERY_BATCHES.add(batches.len() as u64);
        let recorder = traj_obs::global();
        let timed = recorder.enabled();

        // Each task copies its rows out and returns the scratch tensor to
        // its own thread's pool, keeping every pool at its allocation
        // fixed point regardless of which thread ran which batch.
        let encode = |batch: &Vec<usize>| -> (Vec<f32>, f64) {
            let t0 = timed.then(std::time::Instant::now);
            let refs: Vec<&[usize]> =
                batch.iter().map(|&i| sequences[i].as_slice()).collect();
            let data = SCRATCH.with(|cell| {
                let scratch = &mut *cell.borrow_mut();
                let repr = self.encoder.encode_sequences(&refs, scratch);
                let data = repr.data().to_vec();
                scratch.put(repr);
                data
            });
            (data, t0.map_or(0.0, |t| t.elapsed().as_secs_f64() * 1e3))
        };
        let results: Vec<(Vec<f32>, f64)> = if self.cfg.parallel {
            batches.par_iter().map(encode).collect()
        } else {
            batches.iter().map(encode).collect()
        };

        let mut hist = timed.then(traj_obs::Histogram::new);
        for (batch, (data, ms)) in batches.iter().zip(results) {
            for (row, &i) in batch.iter().enumerate() {
                out.row_mut(i).copy_from_slice(&data[row * d..(row + 1) * d]);
            }
            if let Some(h) = hist.as_mut() {
                h.record(ms);
            }
        }
        if let Some(h) = &hist {
            recorder.histogram("query.batch_ms", h);
        }
        out
    }

    /// Soft (Student-t) cluster assignment `Q` for a batch of
    /// trajectories, `(n, k)`.
    ///
    /// # Panics
    /// Panics when the encoder was frozen without centroids.
    pub fn soft_assign(&self, trajs: &[Trajectory]) -> Tensor {
        self.encoder.soft_assign(&self.embed_batch(trajs))
    }

    /// Hard cluster assignment (argmax of `Q`) for a batch of
    /// trajectories.
    ///
    /// # Panics
    /// Panics when the encoder was frozen without centroids.
    pub fn hard_assign(&self, trajs: &[Trajectory]) -> Vec<usize> {
        self.encoder.hard_assign(&self.embed_batch(trajs))
    }

    /// For each trajectory, the `k` nearest centroids as
    /// `(centroid index, squared distance)` pairs, nearest first.
    ///
    /// # Panics
    /// Panics when the encoder was frozen without centroids.
    pub fn nearest_centroids(
        &self,
        trajs: &[Trajectory],
        k: usize,
    ) -> Vec<Vec<(usize, f32)>> {
        self.encoder.centroid_topk(&self.embed_batch(trajs), k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use e2dtc::{E2dtc, E2dtcConfig};
    use traj_data::SynthSpec;

    fn tiny_city(n: usize, k: usize) -> traj_data::GeneratedCity {
        let mut spec = SynthSpec::hangzhou_like(n, 99);
        spec.num_clusters = k;
        spec.len_range = (8, 16);
        spec.outlier_fraction = 0.0;
        spec.generate()
    }

    /// A frozen encoder with centroids but without the cost of a full
    /// `fit`: k-means over the untrained embeddings.
    fn frozen_with_centroids(city: &traj_data::GeneratedCity) -> Arc<FrozenEncoder> {
        let mut model = E2dtc::new(&city.dataset, E2dtcConfig::tiny(3));
        let emb = model.embed_dataset(&city.dataset);
        model.init_centroids(&emb);
        Arc::new(model.freeze())
    }

    #[test]
    fn engine_matches_frozen_encoder_bitwise() {
        let city = tiny_city(30, 3);
        let frozen = frozen_with_centroids(&city);
        let reference = frozen.embed_dataset(&city.dataset);
        for parallel in [false, true] {
            let engine = QueryEngine::new(
                frozen.clone(),
                QueryConfig { batch_size: 7, parallel },
            );
            let got = engine.embed_batch(&city.dataset.trajectories);
            assert_eq!(got.shape(), reference.shape());
            for (a, b) in got.data().iter().zip(reference.data()) {
                assert_eq!(a.to_bits(), b.to_bits(), "parallel={parallel}");
            }
        }
    }

    #[test]
    fn assignments_are_consistent_with_soft_assign() {
        let city = tiny_city(25, 3);
        let frozen = frozen_with_centroids(&city);
        let engine = QueryEngine::new(frozen, QueryConfig::default());
        let q = engine.soft_assign(&city.dataset.trajectories);
        let hard = engine.hard_assign(&city.dataset.trajectories);
        let topk = engine.nearest_centroids(&city.dataset.trajectories, 2);
        assert_eq!(q.shape(), (25, 3));
        assert_eq!(hard.len(), 25);
        for (row, &c) in hard.iter().enumerate() {
            assert!(c < 3);
            // The hard assignment is the nearest centroid: Student-t
            // membership decreases monotonically with squared distance.
            assert_eq!(topk[row][0].0, c);
            assert_eq!(topk[row].len(), 2);
            assert!(topk[row][0].1 <= topk[row][1].1);
        }
    }

    #[test]
    fn shared_engine_across_threads_matches_single_thread() {
        let city = tiny_city(24, 3);
        let frozen = frozen_with_centroids(&city);
        let engine =
            QueryEngine::new(frozen, QueryConfig { batch_size: 5, parallel: false });
        let reference = engine.embed_batch(&city.dataset.trajectories);
        let reference_assign = engine.hard_assign(&city.dataset.trajectories);

        std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let engine = engine.clone();
                    let trajs = &city.dataset.trajectories;
                    s.spawn(move || (engine.embed_batch(trajs), engine.hard_assign(trajs)))
                })
                .collect();
            for h in handles {
                let (emb, assign) = h.join().expect("thread panicked");
                for (a, b) in emb.data().iter().zip(reference.data()) {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
                assert_eq!(assign, reference_assign);
            }
        });
    }

    #[test]
    fn counters_accumulate() {
        let city = tiny_city(10, 2);
        let mut model = E2dtc::new(&city.dataset, E2dtcConfig::tiny(2));
        let emb = model.embed_dataset(&city.dataset);
        model.init_centroids(&emb);
        let engine = QueryEngine::new(
            Arc::new(model.freeze()),
            QueryConfig { batch_size: 4, parallel: false },
        );
        let (t0, b0) = (QUERY_TRAJS.get(), QUERY_BATCHES.get());
        let _ = engine.embed_batch(&city.dataset.trajectories);
        assert_eq!(QUERY_TRAJS.get() - t0, 10);
        assert_eq!(QUERY_BATCHES.get() - b0, 3); // ceil(10 / 4)
    }

    #[test]
    fn empty_request_is_a_no_op() {
        let city = tiny_city(8, 2);
        let frozen = frozen_with_centroids(&city);
        let engine = QueryEngine::new(frozen, QueryConfig::default());
        let emb = engine.embed_batch(&[]);
        assert_eq!(emb.rows(), 0);
    }
}
