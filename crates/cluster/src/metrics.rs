//! Unsupervised clustering quality metrics (paper §VII-B).
//!
//! - **UACC** (Eq. 15): best-case accuracy after optimally relabelling
//!   predicted clusters via the Hungarian algorithm.
//! - **NMI** (Eq. 16): `I(C, C') / sqrt(H(C) · H(C'))`.
//! - **RI** (Eq. 17): `(TP + TN) / (N(N−1)/2)` over trajectory pairs.

use crate::hungarian::hungarian_max;

/// Contingency table between two labelings, plus marginals.
struct Contingency {
    /// `table[p * k_true + t]` = number of items with pred `p`, truth `t`.
    table: Vec<usize>,
    k_pred: usize,
    k_true: usize,
    pred_sizes: Vec<usize>,
    true_sizes: Vec<usize>,
    n: usize,
}

impl Contingency {
    fn build(pred: &[usize], truth: &[usize]) -> Self {
        assert_eq!(pred.len(), truth.len(), "labelings must have equal length");
        let k_pred = pred.iter().max().map_or(0, |&m| m + 1);
        let k_true = truth.iter().max().map_or(0, |&m| m + 1);
        let mut table = vec![0usize; k_pred * k_true];
        let mut pred_sizes = vec![0usize; k_pred];
        let mut true_sizes = vec![0usize; k_true];
        for (&p, &t) in pred.iter().zip(truth) {
            table[p * k_true + t] += 1;
            pred_sizes[p] += 1;
            true_sizes[t] += 1;
        }
        Self { table, k_pred, k_true, pred_sizes, true_sizes, n: pred.len() }
    }
}

/// Unsupervised clustering accuracy (paper Eq. 15): the fraction of items
/// whose predicted cluster, after the optimal Hungarian relabelling,
/// matches the ground truth.
///
/// # Panics
/// Panics on length mismatch.
pub fn uacc(pred: &[usize], truth: &[usize]) -> f64 {
    if pred.is_empty() {
        return 1.0;
    }
    let c = Contingency::build(pred, truth);
    // Square profit matrix of matched counts, padded with zeros.
    let k = c.k_pred.max(c.k_true);
    let mut profit = vec![0.0f64; k * k];
    for p in 0..c.k_pred {
        for t in 0..c.k_true {
            profit[p * k + t] = c.table[p * c.k_true + t] as f64;
        }
    }
    let asg = hungarian_max(&profit, k);
    let matched: f64 = asg
        .iter()
        .enumerate()
        .map(|(p, &t)| profit[p * k + t])
        .sum();
    matched / c.n as f64
}

/// Normalized mutual information (paper Eq. 16), in `[0, 1]`.
///
/// Returns 1 when both labelings are constant (zero entropy on both
/// sides: the degenerate perfect match), 0 when exactly one is constant.
pub fn nmi(pred: &[usize], truth: &[usize]) -> f64 {
    if pred.is_empty() {
        return 1.0;
    }
    let c = Contingency::build(pred, truth);
    let n = c.n as f64;
    let h = |sizes: &[usize]| -> f64 {
        sizes
            .iter()
            .filter(|&&s| s > 0)
            .map(|&s| {
                let p = s as f64 / n;
                -p * p.ln()
            })
            .sum()
    };
    let h_pred = h(&c.pred_sizes);
    let h_true = h(&c.true_sizes);
    if h_pred == 0.0 && h_true == 0.0 {
        return 1.0;
    }
    if h_pred == 0.0 || h_true == 0.0 {
        return 0.0;
    }
    let mut mi = 0.0;
    for p in 0..c.k_pred {
        for t in 0..c.k_true {
            let nij = c.table[p * c.k_true + t];
            if nij == 0 {
                continue;
            }
            let pij = nij as f64 / n;
            let pi = c.pred_sizes[p] as f64 / n;
            let pj = c.true_sizes[t] as f64 / n;
            mi += pij * (pij / (pi * pj)).ln();
        }
    }
    (mi / (h_pred * h_true).sqrt()).clamp(0.0, 1.0)
}

/// Rand index (paper Eq. 17): the fraction of item pairs on which the two
/// labelings agree (same/same or different/different), in `[0, 1]`.
pub fn rand_index(pred: &[usize], truth: &[usize]) -> f64 {
    let c = Contingency::build(pred, truth);
    let n = c.n;
    if n < 2 {
        return 1.0;
    }
    let choose2 = |x: usize| (x * x.saturating_sub(1) / 2) as f64;
    let sum_ij: f64 = c.table.iter().map(|&x| choose2(x)).sum();
    let sum_p: f64 = c.pred_sizes.iter().map(|&x| choose2(x)).sum();
    let sum_t: f64 = c.true_sizes.iter().map(|&x| choose2(x)).sum();
    let total = choose2(n);
    // TP = pairs together in both; TN = total − pairs together in either.
    let tp = sum_ij;
    let tn = total - sum_p - sum_t + sum_ij;
    (tp + tn) / total
}

/// Mean silhouette coefficient of a labelled point set (flat row-major
/// `f32` points). Used as the numeric stand-in for the paper's t-SNE
/// separation figures (Figs. 4–5): higher = tighter, better-separated
/// clusters. O(n²).
///
/// Singleton clusters contribute silhouette 0 (scikit-learn convention).
pub fn silhouette(data: &[f32], n: usize, d: usize, labels: &[usize]) -> f64 {
    assert_eq!(data.len(), n * d, "points buffer must be n × d");
    assert_eq!(labels.len(), n, "one label per point");
    if n == 0 {
        return 0.0;
    }
    let k = labels.iter().max().map_or(0, |&m| m + 1);
    let sizes = {
        let mut s = vec![0usize; k];
        for &l in labels {
            s[l] += 1;
        }
        s
    };
    let dist = |i: usize, j: usize| -> f64 {
        let a = &data[i * d..(i + 1) * d];
        let b = &data[j * d..(j + 1) * d];
        crate::points::sq_dist(a, b).sqrt()
    };
    let mut total = 0.0;
    for i in 0..n {
        let li = labels[i];
        if sizes[li] <= 1 {
            continue; // silhouette 0
        }
        // Mean distance to each cluster.
        let mut sums = vec![0.0f64; k];
        for j in 0..n {
            if j != i {
                sums[labels[j]] += dist(i, j);
            }
        }
        let a = sums[li] / (sizes[li] - 1) as f64;
        let b = (0..k)
            .filter(|&c| c != li && sizes[c] > 0)
            .map(|c| sums[c] / sizes[c] as f64)
            .fold(f64::INFINITY, f64::min);
        if b.is_finite() {
            total += (b - a) / a.max(b);
        }
    }
    total / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_clustering_scores_one() {
        let truth = vec![0, 0, 1, 1, 2, 2];
        assert_eq!(uacc(&truth, &truth), 1.0);
        assert!((nmi(&truth, &truth) - 1.0).abs() < 1e-12);
        assert_eq!(rand_index(&truth, &truth), 1.0);
    }

    #[test]
    fn label_permutation_does_not_hurt() {
        let truth = vec![0, 0, 1, 1, 2, 2];
        let pred = vec![2, 2, 0, 0, 1, 1];
        assert_eq!(uacc(&pred, &truth), 1.0);
        assert!((nmi(&pred, &truth) - 1.0).abs() < 1e-12);
        assert_eq!(rand_index(&pred, &truth), 1.0);
    }

    #[test]
    fn one_mislabeled_item() {
        let truth = vec![0, 0, 0, 1, 1, 1];
        let pred = vec![0, 0, 1, 1, 1, 1];
        assert!((uacc(&pred, &truth) - 5.0 / 6.0).abs() < 1e-9);
        let r = rand_index(&pred, &truth);
        assert!(r > 0.5 && r < 1.0);
        let m = nmi(&pred, &truth);
        assert!(m > 0.0 && m < 1.0);
    }

    #[test]
    fn constant_prediction_gets_zero_nmi() {
        let truth = vec![0, 0, 1, 1];
        let pred = vec![0, 0, 0, 0];
        assert_eq!(nmi(&pred, &truth), 0.0);
        assert_eq!(uacc(&pred, &truth), 0.5);
    }

    #[test]
    fn independent_labelings_score_low() {
        // Prediction splits orthogonally to the truth.
        let truth = vec![0, 0, 0, 0, 1, 1, 1, 1];
        let pred = vec![0, 1, 0, 1, 0, 1, 0, 1];
        assert!(nmi(&pred, &truth) < 0.05);
        assert!(uacc(&pred, &truth) <= 0.5 + 1e-12);
    }

    #[test]
    fn more_predicted_than_true_clusters() {
        let truth = vec![0, 0, 0, 1, 1, 1];
        let pred = vec![0, 0, 1, 2, 2, 2];
        let acc = uacc(&pred, &truth);
        assert!((acc - 5.0 / 6.0).abs() < 1e-9, "got {acc}");
    }

    #[test]
    fn rand_index_for_known_split() {
        // truth {a,b}{c}, pred {a}{b,c}: agree only on... pairs:
        // (a,b): T same, P diff -> disagree; (a,c): T diff, P diff -> agree;
        // (b,c): T diff, P same -> disagree. RI = 1/3.
        let truth = vec![0, 0, 1];
        let pred = vec![0, 1, 1];
        assert!((rand_index(&pred, &truth) - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn silhouette_separated_vs_mixed() {
        // Two tight, far-apart 1-D blobs.
        let good_pts = [0.0f32, 0.1, 10.0, 10.1];
        let labels = [0usize, 0, 1, 1];
        let s_good = silhouette(&good_pts, 4, 1, &labels);
        assert!(s_good > 0.9, "separated blobs should score near 1, got {s_good}");
        // Same points, labels scrambled across blobs.
        let bad = [0usize, 1, 0, 1];
        let s_bad = silhouette(&good_pts, 4, 1, &bad);
        assert!(s_bad < 0.0, "mixed labels should score negative, got {s_bad}");
    }

    #[test]
    fn empty_and_trivial_inputs() {
        assert_eq!(uacc(&[], &[]), 1.0);
        assert_eq!(nmi(&[], &[]), 1.0);
        assert_eq!(rand_index(&[0], &[0]), 1.0);
        assert_eq!(silhouette(&[], 0, 3, &[]), 0.0);
    }
}
