//! Hungarian algorithm (Kuhn–Munkres) for the optimal assignment problem.
//!
//! The paper's UACC metric (Eq. 15) maps predicted cluster ids to
//! ground-truth labels "by the Hungarian algorithm" (paper ref. 24). This is the
//! O(n³) shortest-augmenting-path formulation (Jonker–Volgenant style
//! potentials) for square cost matrices, minimizing total cost.

/// Solves the square assignment problem, minimizing total cost.
///
/// `cost` is row-major `n × n`; returns `assignment[row] = col` and is
/// guaranteed to be a permutation.
///
/// # Panics
/// Panics when `cost.len() != n * n`.
pub fn hungarian_min(cost: &[f64], n: usize) -> Vec<usize> {
    assert_eq!(cost.len(), n * n, "cost buffer must be n²");
    if n == 0 {
        return Vec::new();
    }
    // Potentials and matching, 1-based with a dummy 0 column/row as in the
    // classic e-maxx formulation.
    let mut u = vec![0.0f64; n + 1];
    let mut v = vec![0.0f64; n + 1];
    let mut p = vec![0usize; n + 1]; // p[col] = row matched to col
    let mut way = vec![0usize; n + 1];

    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![f64::INFINITY; n + 1];
        let mut used = vec![false; n + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = f64::INFINITY;
            let mut j1 = 0usize;
            for j in 1..=n {
                if used[j] {
                    continue;
                }
                let cur = cost[(i0 - 1) * n + (j - 1)] - u[i0] - v[j];
                if cur < minv[j] {
                    minv[j] = cur;
                    way[j] = j0;
                }
                if minv[j] < delta {
                    delta = minv[j];
                    j1 = j;
                }
            }
            for j in 0..=n {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        // Augment along the alternating path.
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    let mut assignment = vec![0usize; n];
    for j in 1..=n {
        if p[j] > 0 {
            assignment[p[j] - 1] = j - 1;
        }
    }
    assignment
}

/// Maximizes total profit by negating and minimizing.
pub fn hungarian_max(profit: &[f64], n: usize) -> Vec<usize> {
    let neg: Vec<f64> = profit.iter().map(|&x| -x).collect();
    hungarian_min(&neg, n)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn total(cost: &[f64], n: usize, asg: &[usize]) -> f64 {
        asg.iter().enumerate().map(|(r, &c)| cost[r * n + c]).sum()
    }

    fn brute_force_min(cost: &[f64], n: usize) -> f64 {
        fn rec(cost: &[f64], n: usize, row: usize, used: &mut Vec<bool>, acc: f64, best: &mut f64) {
            if row == n {
                *best = best.min(acc);
                return;
            }
            for c in 0..n {
                if !used[c] {
                    used[c] = true;
                    rec(cost, n, row + 1, used, acc + cost[row * n + c], best);
                    used[c] = false;
                }
            }
        }
        let mut best = f64::INFINITY;
        rec(cost, n, 0, &mut vec![false; n], 0.0, &mut best);
        best
    }

    #[test]
    fn identity_matrix_prefers_diagonal_zeros() {
        // Cost 0 on the diagonal, 1 elsewhere.
        let n = 4;
        let mut cost = vec![1.0; n * n];
        for i in 0..n {
            cost[i * n + i] = 0.0;
        }
        let asg = hungarian_min(&cost, n);
        assert_eq!(asg, vec![0, 1, 2, 3]);
    }

    #[test]
    fn classic_3x3_example() {
        // Known optimum: 1->2, 2->1, 3->0 style cross assignment.
        let cost = vec![4.0, 1.0, 3.0, 2.0, 0.0, 5.0, 3.0, 2.0, 2.0];
        let asg = hungarian_min(&cost, 3);
        assert!((total(&cost, 3, &asg) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn output_is_a_permutation() {
        let cost = vec![
            7.0, 3.0, 1.0, 9.0, 5.0, 2.0, 8.0, 6.0, 4.0, 4.0, 4.0, 4.0, 1.0, 2.0, 3.0, 4.0,
        ];
        let asg = hungarian_min(&cost, 4);
        let mut seen = [false; 4];
        for &c in &asg {
            assert!(!seen[c], "column used twice");
            seen[c] = true;
        }
    }

    #[test]
    fn matches_brute_force_on_random_matrices() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0);
        for n in 1..=6 {
            for _ in 0..10 {
                let cost: Vec<f64> = (0..n * n).map(|_| rng.gen_range(0.0..10.0)).collect();
                let asg = hungarian_min(&cost, n);
                let got = total(&cost, n, &asg);
                let want = brute_force_min(&cost, n);
                assert!((got - want).abs() < 1e-9, "n = {n}: got {got}, optimum {want}");
            }
        }
    }

    #[test]
    fn max_variant_maximizes() {
        let profit = vec![1.0, 9.0, 9.0, 1.0];
        let asg = hungarian_max(&profit, 2);
        assert_eq!(asg, vec![1, 0]);
    }

    #[test]
    fn empty_input() {
        assert!(hungarian_min(&[], 0).is_empty());
    }
}
