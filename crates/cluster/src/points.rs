//! Borrowed view over a flat row-major point set.

/// A borrowed `(n, d)` matrix of `f32` feature vectors.
///
/// The clustering algorithms in this crate operate on embeddings produced
/// by the neural pipeline (row-major `f32`), so this view avoids copies at
/// the crate boundary.
#[derive(Clone, Copy, Debug)]
pub struct Points<'a> {
    data: &'a [f32],
    n: usize,
    d: usize,
}

impl<'a> Points<'a> {
    /// Wraps a flat buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != n * d`.
    pub fn new(data: &'a [f32], n: usize, d: usize) -> Self {
        assert_eq!(data.len(), n * d, "buffer length must be n × d");
        Self { data, n, d }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when there are no points.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.d
    }

    /// Point `i` as a slice.
    #[inline]
    pub fn point(&self, i: usize) -> &[f32] {
        debug_assert!(i < self.n);
        &self.data[i * self.d..(i + 1) * self.d]
    }

    /// Squared Euclidean distance between point `i` and an arbitrary
    /// vector.
    #[inline]
    pub fn sq_dist_to(&self, i: usize, other: &[f32]) -> f64 {
        sq_dist(self.point(i), other)
    }
}

/// Squared Euclidean distance between two equal-length slices, accumulated
/// in `f64` for stability.
#[inline]
pub fn sq_dist(a: &[f32], b: &[f32]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(&x, &y)| {
            let d = (x - y) as f64;
            d * d
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn view_indexes_rows() {
        let buf = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let p = Points::new(&buf, 3, 2);
        assert_eq!(p.point(0), &[1.0, 2.0]);
        assert_eq!(p.point(2), &[5.0, 6.0]);
    }

    #[test]
    fn sq_dist_matches_manual() {
        assert_eq!(sq_dist(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
    }

    #[test]
    #[should_panic(expected = "n × d")]
    fn wrong_length_panics() {
        let buf = [1.0, 2.0, 3.0];
        let _ = Points::new(&buf, 2, 2);
    }
}
