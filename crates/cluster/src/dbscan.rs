//! DBSCAN over a precomputed distance matrix.
//!
//! Density-based clustering is the other classic family the trajectory
//! literature applies on raw distances (the paper's related work runs
//! DBSCAN per snapshot for co-movement detection). Unlike K-Medoids it
//! discovers the cluster count and marks outliers — useful as an
//! extension baseline and for screening the synthetic datasets.

/// Label assigned to noise points.
pub const NOISE: usize = usize::MAX;

/// DBSCAN parameters.
#[derive(Clone, Copy, Debug)]
pub struct DbscanConfig {
    /// Neighborhood radius (same units as the distance matrix).
    pub eps: f64,
    /// Minimum neighborhood size (including the point itself) for a core
    /// point.
    pub min_pts: usize,
}

/// DBSCAN result.
#[derive(Clone, Debug)]
pub struct DbscanResult {
    /// Cluster id per point, or [`NOISE`].
    pub labels: Vec<usize>,
    /// Number of clusters discovered.
    pub num_clusters: usize,
}

impl DbscanResult {
    /// Indices labelled as noise.
    pub fn noise_points(&self) -> Vec<usize> {
        self.labels
            .iter()
            .enumerate()
            .filter(|&(_, &l)| l == NOISE)
            .map(|(i, _)| i)
            .collect()
    }
}

/// Runs DBSCAN on a dense symmetric `n × n` distance matrix (row-major).
///
/// # Panics
/// Panics if `dist.len() != n * n` or `min_pts == 0`.
pub fn dbscan(dist: &[f64], n: usize, cfg: DbscanConfig) -> DbscanResult {
    assert_eq!(dist.len(), n * n, "distance buffer must be n²");
    assert!(cfg.min_pts >= 1, "min_pts must be positive");

    let neighbors = |i: usize| -> Vec<usize> {
        (0..n).filter(|&j| dist[i * n + j] <= cfg.eps).collect()
    };

    let mut labels = vec![NOISE; n];
    let mut visited = vec![false; n];
    let mut cluster = 0usize;
    for i in 0..n {
        if visited[i] {
            continue;
        }
        visited[i] = true;
        let seeds = neighbors(i);
        if seeds.len() < cfg.min_pts {
            continue; // stays noise unless later absorbed as a border point
        }
        labels[i] = cluster;
        // Expand the cluster (BFS over density-reachable points).
        let mut queue: Vec<usize> = seeds;
        let mut qi = 0;
        while qi < queue.len() {
            let j = queue[qi];
            qi += 1;
            if labels[j] == NOISE {
                labels[j] = cluster; // border or core point joins
            }
            if visited[j] {
                continue;
            }
            visited[j] = true;
            let j_neighbors = neighbors(j);
            if j_neighbors.len() >= cfg.min_pts {
                queue.extend(j_neighbors);
            }
        }
        cluster += 1;
    }
    DbscanResult { labels, num_clusters: cluster }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Distance matrix for 1-D points.
    fn matrix(xs: &[f64]) -> (Vec<f64>, usize) {
        let n = xs.len();
        let mut d = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                d[i * n + j] = (xs[i] - xs[j]).abs();
            }
        }
        (d, n)
    }

    #[test]
    fn finds_two_dense_groups_and_noise() {
        // Two tight groups plus one far outlier.
        let (d, n) = matrix(&[0.0, 0.1, 0.2, 10.0, 10.1, 10.2, 55.0]);
        let res = dbscan(&d, n, DbscanConfig { eps: 0.5, min_pts: 2 });
        assert_eq!(res.num_clusters, 2);
        assert_eq!(res.labels[0], res.labels[1]);
        assert_eq!(res.labels[1], res.labels[2]);
        assert_eq!(res.labels[3], res.labels[4]);
        assert_ne!(res.labels[0], res.labels[3]);
        assert_eq!(res.labels[6], NOISE);
        assert_eq!(res.noise_points(), vec![6]);
    }

    #[test]
    fn chain_connectivity_merges_into_one_cluster() {
        // A chain of points each within eps of the next: density-reachable
        // end to end.
        let (d, n) = matrix(&[0.0, 1.0, 2.0, 3.0, 4.0]);
        let res = dbscan(&d, n, DbscanConfig { eps: 1.1, min_pts: 2 });
        assert_eq!(res.num_clusters, 1);
        assert!(res.labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn all_noise_when_eps_too_small() {
        let (d, n) = matrix(&[0.0, 5.0, 10.0]);
        let res = dbscan(&d, n, DbscanConfig { eps: 0.1, min_pts: 2 });
        assert_eq!(res.num_clusters, 0);
        assert!(res.labels.iter().all(|&l| l == NOISE));
    }

    #[test]
    fn min_pts_one_makes_every_point_a_cluster() {
        let (d, n) = matrix(&[0.0, 5.0, 10.0]);
        let res = dbscan(&d, n, DbscanConfig { eps: 0.1, min_pts: 1 });
        assert_eq!(res.num_clusters, 3);
    }

    #[test]
    fn border_point_joins_first_reaching_cluster() {
        // Point at 2.0 is within eps of the dense left group but is not
        // itself core (its neighborhood has only 2 members < min_pts 3).
        let (d, n) = matrix(&[0.0, 0.5, 1.0, 2.0]);
        let res = dbscan(&d, n, DbscanConfig { eps: 1.0, min_pts: 3 });
        assert_eq!(res.num_clusters, 1);
        assert_eq!(res.labels[3], 0, "border point should be absorbed");
    }

    #[test]
    fn empty_input() {
        let res = dbscan(&[], 0, DbscanConfig { eps: 1.0, min_pts: 2 });
        assert_eq!(res.num_clusters, 0);
        assert!(res.labels.is_empty());
    }
}
