//! K-Medoids (PAM: BUILD + SWAP) over a precomputed distance matrix.
//!
//! The paper's classic baselines are "K-Medoids clustering methods by
//! considering different distance metrics" (§VII-A). PAM works directly on
//! pairwise distances, which is what makes it applicable to EDR / LCSS /
//! DTW / Hausdorff where no mean exists.

use rayon::prelude::*;

/// K-Medoids configuration.
#[derive(Clone, Copy, Debug)]
pub struct KMedoidsConfig {
    /// Number of clusters.
    pub k: usize,
    /// Maximum SWAP passes.
    pub max_iters: usize,
}

impl KMedoidsConfig {
    /// Default configuration for `k` clusters.
    pub fn new(k: usize) -> Self {
        Self { k, max_iters: 50 }
    }
}

/// K-Medoids result.
#[derive(Clone, Debug)]
pub struct KMedoidsResult {
    /// Indices of the chosen medoids.
    pub medoids: Vec<usize>,
    /// Cluster assignment per point (index into `medoids`).
    pub assignment: Vec<usize>,
    /// Total distance of points to their medoids.
    pub cost: f64,
    /// SWAP passes executed.
    pub iterations: usize,
}

/// Runs PAM on a dense symmetric `n × n` distance matrix (row-major).
///
/// # Panics
/// Panics when `dist.len() != n * n`, `k == 0`, or `k > n`.
pub fn kmedoids(dist: &[f64], n: usize, cfg: KMedoidsConfig) -> KMedoidsResult {
    assert_eq!(dist.len(), n * n, "distance buffer must be n²");
    let k = cfg.k;
    assert!(k >= 1, "k must be positive");
    assert!(k <= n, "k = {k} exceeds n = {n}");
    let d = |i: usize, j: usize| dist[i * n + j];

    // BUILD: greedily add the medoid that most reduces total cost.
    let mut medoids: Vec<usize> = Vec::with_capacity(k);
    // First medoid: the most central point. The O(n²) row-sum scan runs
    // in parallel; ties break toward the lower index, matching the
    // serial scan this replaces.
    let first = (0..n)
        .into_par_iter()
        .map(|a| ((0..n).map(|j| d(a, j)).sum::<f64>(), a))
        .min_by(|x, y| x.0.total_cmp(&y.0).then(x.1.cmp(&y.1)))
        .map(|(_, a)| a)
        .expect("n >= 1");
    medoids.push(first);
    let mut nearest: Vec<f64> = (0..n).map(|i| d(i, first)).collect();
    while medoids.len() < k {
        let cand = (0..n)
            .into_par_iter()
            .filter(|i| !medoids.contains(i))
            .map(|c| {
                let gain: f64 =
                    (0..n).map(|i| (nearest[i] - d(i, c)).max(0.0)).sum();
                (c, gain)
            })
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(c, _)| c)
            .expect("candidates remain while medoids < k <= n");
        for i in 0..n {
            nearest[i] = nearest[i].min(d(i, cand));
        }
        medoids.push(cand);
    }

    // SWAP: first-improvement passes until no swap helps.
    let mut iterations = 0;
    let mut cost = total_cost(dist, n, &medoids);
    for _ in 0..cfg.max_iters {
        iterations += 1;
        let mut improved = false;
        for mi in 0..k {
            // Best replacement for medoid `mi`, evaluated in parallel.
            let current = medoids.clone();
            let best = (0..n)
                .into_par_iter()
                .filter(|h| !current.contains(h))
                .map(|h| {
                    let mut trial = current.clone();
                    trial[mi] = h;
                    (h, total_cost(dist, n, &trial))
                })
                .min_by(|a, b| a.1.total_cmp(&b.1));
            if let Some((h, c)) = best {
                if c + 1e-12 < cost {
                    medoids[mi] = h;
                    cost = c;
                    improved = true;
                }
            }
        }
        if !improved {
            break;
        }
    }

    let assignment = assign(dist, n, &medoids);
    KMedoidsResult { medoids, assignment, cost, iterations }
}

/// Alternating ("Voronoi iteration") K-Medoids: random distinct medoids,
/// then assign-points / re-pick-medoid-per-cluster until stable.
///
/// This is the variant actually runnable at the paper's 80k-trajectory
/// scale (PAM's SWAP is O(k·n²) *per pass*), and the one large-scale
/// libraries implement. It converges to local optima that full PAM
/// escapes — the experiment harness uses it for the `<metric> + KM`
/// baselines for that reason; PAM remains available for ablation.
///
/// # Panics
/// Panics when `dist.len() != n * n`, `k == 0`, or `k > n`.
pub fn kmedoids_alternating(
    dist: &[f64],
    n: usize,
    cfg: KMedoidsConfig,
    rng: &mut impl rand::Rng,
) -> KMedoidsResult {
    assert_eq!(dist.len(), n * n, "distance buffer must be n²");
    let k = cfg.k;
    assert!(k >= 1, "k must be positive");
    assert!(k <= n, "k = {k} exceeds n = {n}");

    // Random distinct initial medoids (partial Fisher–Yates).
    let mut idx: Vec<usize> = (0..n).collect();
    for i in 0..k {
        let pick = rng.gen_range(i..n);
        idx.swap(i, pick);
    }
    let mut medoids: Vec<usize> = idx[..k].to_vec();

    let mut assignment = assign(dist, n, &medoids);
    let mut iterations = 0;
    for _ in 0..cfg.max_iters {
        iterations += 1;
        // Update: each cluster's new medoid minimizes intra-cluster cost.
        let mut changed = false;
        for c in 0..k {
            let members: Vec<usize> =
                (0..n).filter(|&i| assignment[i] == c).collect();
            if members.is_empty() {
                continue;
            }
            let best = members
                .par_iter()
                .map(|&cand| {
                    let cost: f64 = members.iter().map(|&i| dist[i * n + cand]).sum();
                    (cand, cost)
                })
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .map(|(cand, _)| cand)
                .expect("non-empty members");
            if best != medoids[c] {
                medoids[c] = best;
                changed = true;
            }
        }
        let new_assignment = assign(dist, n, &medoids);
        if !changed && new_assignment == assignment {
            break;
        }
        assignment = new_assignment;
    }
    let cost = total_cost(dist, n, &medoids);
    KMedoidsResult { medoids, assignment, cost, iterations }
}

fn total_cost(dist: &[f64], n: usize, medoids: &[usize]) -> f64 {
    (0..n)
        .map(|i| {
            medoids
                .iter()
                .map(|&m| dist[i * n + m])
                .fold(f64::INFINITY, f64::min)
        })
        .sum()
}

fn assign(dist: &[f64], n: usize, medoids: &[usize]) -> Vec<usize> {
    (0..n)
        .map(|i| {
            medoids
                .iter()
                .enumerate()
                .min_by(|a, b| dist[i * n + a.1].total_cmp(&dist[i * n + b.1]))
                .map(|(c, _)| c)
                .expect("at least one medoid")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Distance matrix for points on a line: 0, 1, 2, 10, 11, 12.
    fn line_matrix() -> (Vec<f64>, usize) {
        let xs = [0.0f64, 1.0, 2.0, 10.0, 11.0, 12.0];
        let n = xs.len();
        let mut d = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                d[i * n + j] = (xs[i] - xs[j]).abs();
            }
        }
        (d, n)
    }

    #[test]
    fn two_line_clusters_are_separated() {
        let (d, n) = line_matrix();
        let res = kmedoids(&d, n, KMedoidsConfig::new(2));
        assert_eq!(res.assignment[0], res.assignment[1]);
        assert_eq!(res.assignment[1], res.assignment[2]);
        assert_eq!(res.assignment[3], res.assignment[4]);
        assert_eq!(res.assignment[4], res.assignment[5]);
        assert_ne!(res.assignment[0], res.assignment[3]);
        // Optimal medoids are the group centers 1 and 11.
        let mut m = res.medoids.clone();
        m.sort_unstable();
        assert_eq!(m, vec![1, 4]);
        assert!((res.cost - 4.0).abs() < 1e-9);
    }

    #[test]
    fn k_one_picks_global_medoid() {
        let (d, n) = line_matrix();
        let res = kmedoids(&d, n, KMedoidsConfig::new(1));
        // Any of the central points minimizes total distance (index 2 or 3,
        // cost 30 each).
        assert!((res.cost - 30.0).abs() < 1e-9);
    }

    #[test]
    fn medoids_are_members_and_self_assigned() {
        let (d, n) = line_matrix();
        let res = kmedoids(&d, n, KMedoidsConfig::new(3));
        for (c, &m) in res.medoids.iter().enumerate() {
            assert!(m < n);
            assert_eq!(res.assignment[m], c, "medoid must belong to its own cluster");
        }
    }

    #[test]
    fn k_equals_n_zero_cost() {
        let (d, n) = line_matrix();
        let res = kmedoids(&d, n, KMedoidsConfig::new(n));
        assert_eq!(res.cost, 0.0);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn k_too_large_panics() {
        let (d, n) = line_matrix();
        let _ = kmedoids(&d, n, KMedoidsConfig::new(n + 1));
    }

    #[test]
    fn alternating_variant_converges_and_is_valid() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let (d, n) = line_matrix();
        let mut rng = StdRng::seed_from_u64(3);
        let res = kmedoids_alternating(&d, n, KMedoidsConfig::new(2), &mut rng);
        assert_eq!(res.assignment.len(), n);
        assert!(res.medoids.iter().all(|&m| m < n));
        assert!(res.cost.is_finite());
        // On this trivially-separated line it should still find the optimum.
        assert!((res.cost - 4.0).abs() < 1e-9, "cost {}", res.cost);
    }

    #[test]
    fn pam_cost_never_worse_than_alternating_on_average() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        // Random metric-ish matrices: PAM (BUILD+SWAP) should on average
        // match or beat the alternating local search.
        let mut rng = StdRng::seed_from_u64(9);
        let n = 24;
        let mut worse = 0;
        for trial in 0..5 {
            let xs: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..10.0)).collect();
            let mut d = vec![0.0; n * n];
            for i in 0..n {
                for j in 0..n {
                    d[i * n + j] = (xs[i] - xs[j]).abs();
                }
            }
            let pam = kmedoids(&d, n, KMedoidsConfig::new(4));
            let mut arng = StdRng::seed_from_u64(trial);
            let alt = kmedoids_alternating(&d, n, KMedoidsConfig::new(4), &mut arng);
            if pam.cost > alt.cost + 1e-9 {
                worse += 1;
            }
        }
        assert!(worse <= 1, "PAM worse than alternating in {worse}/5 trials");
    }
}
