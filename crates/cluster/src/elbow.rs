//! Elbow-method support for choosing `k` (paper §VII-G, Fig. 6a).
//!
//! The paper sweeps `k` from 2 to 22, records `E_k` (the sum of distances
//! from samples to their nearest centroid), and picks the elbow — which
//! lands on `k = 7` for the Hangzhou dataset.

use crate::kmeans::{kmeans, KMeansConfig};
use crate::points::Points;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One point of the elbow curve.
#[derive(Clone, Copy, Debug)]
pub struct ElbowPoint {
    /// Number of clusters.
    pub k: usize,
    /// Within-cluster sum of squared distances `E_k`.
    pub inertia: f64,
}

/// Computes `E_k` for every `k` in `k_range` (inclusive), running k-means
/// `restarts` times per `k` and keeping the best inertia.
pub fn elbow_curve(
    data: &[f32],
    n: usize,
    d: usize,
    k_range: std::ops::RangeInclusive<usize>,
    restarts: usize,
    seed: u64,
) -> Vec<ElbowPoint> {
    let points = Points::new(data, n, d);
    k_range
        .map(|k| {
            let best = (0..restarts.max(1))
                .map(|r| {
                    let mut rng = StdRng::seed_from_u64(seed ^ (k as u64) << 8 ^ r as u64);
                    kmeans(points, KMeansConfig::new(k), &mut rng).inertia
                })
                .fold(f64::INFINITY, f64::min);
            ElbowPoint { k, inertia: best }
        })
        .collect()
}

/// Picks the elbow as the `k` with the maximum distance from the line
/// joining the curve's endpoints (the "kneedle" construction), which is
/// robust to the overall scale of `E_k`.
///
/// Returns `None` for curves with fewer than 3 points.
pub fn detect_elbow(curve: &[ElbowPoint]) -> Option<usize> {
    if curve.len() < 3 {
        return None;
    }
    let (x0, y0) = (curve[0].k as f64, curve[0].inertia);
    let (x1, y1) = (
        curve[curve.len() - 1].k as f64,
        curve[curve.len() - 1].inertia,
    );
    let len = ((x1 - x0).powi(2) + (y1 - y0).powi(2)).sqrt();
    if len == 0.0 {
        return None;
    }
    curve[1..curve.len() - 1]
        .iter()
        .max_by(|a, b| {
            let da = point_line_distance(a.k as f64, a.inertia, x0, y0, x1, y1, len);
            let db = point_line_distance(b.k as f64, b.inertia, x0, y0, x1, y1, len);
            da.total_cmp(&db)
        })
        .map(|p| p.k)
}

#[allow(clippy::too_many_arguments)]
fn point_line_distance(px: f64, py: f64, x0: f64, y0: f64, x1: f64, y1: f64, len: f64) -> f64 {
    ((x1 - x0) * (y0 - py) - (x0 - px) * (y1 - y0)).abs() / len
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    /// `true_k` well-separated 2-D blobs.
    fn blobs(true_k: usize, per: usize, seed: u64) -> (Vec<f32>, usize) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut data = Vec::new();
        for c in 0..true_k {
            let cx = (c % 3) as f32 * 20.0;
            let cy = (c / 3) as f32 * 20.0;
            for _ in 0..per {
                data.push(cx + rng.gen::<f32>());
                data.push(cy + rng.gen::<f32>());
            }
        }
        (data, true_k * per)
    }

    #[test]
    fn curve_is_monotone_decreasing_on_blobs() {
        let (data, n) = blobs(4, 25, 0);
        let curve = elbow_curve(&data, n, 2, 1..=8, 3, 42);
        for w in curve.windows(2) {
            assert!(
                w[1].inertia <= w[0].inertia + 1e-6,
                "inertia rose from k={} to k={}",
                w[0].k,
                w[1].k
            );
        }
    }

    #[test]
    fn elbow_lands_on_true_k() {
        let (data, n) = blobs(4, 25, 1);
        let curve = elbow_curve(&data, n, 2, 1..=9, 4, 7);
        assert_eq!(detect_elbow(&curve), Some(4));
    }

    #[test]
    fn detect_elbow_needs_three_points() {
        let short = vec![
            ElbowPoint { k: 1, inertia: 10.0 },
            ElbowPoint { k: 2, inertia: 1.0 },
        ];
        assert_eq!(detect_elbow(&short), None);
    }
}
