//! Lloyd's k-means with k-means++ initialization.
//!
//! Used twice in the paper: to seed the self-training centroids from the
//! pre-trained embeddings (§V-C, "a standard k-means clustering algorithm
//! is applied in the feature space Z"), and as the second stage of the
//! `t2vec + k-means` baseline.

use crate::points::{sq_dist, Points};
use rand::Rng;

/// k-means configuration.
#[derive(Clone, Copy, Debug)]
pub struct KMeansConfig {
    /// Number of clusters.
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iters: usize,
    /// Convergence threshold on total centroid movement (squared).
    pub tol: f64,
    /// Use k-means++ seeding (vs. uniform random points).
    pub plus_plus: bool,
}

impl KMeansConfig {
    /// Default configuration for `k` clusters.
    pub fn new(k: usize) -> Self {
        Self { k, max_iters: 100, tol: 1e-8, plus_plus: true }
    }

    /// Switches to uniform random initialization (the ablation in
    /// `bench_cluster`).
    pub fn random_init(mut self) -> Self {
        self.plus_plus = false;
        self
    }
}

/// k-means result.
#[derive(Clone, Debug)]
pub struct KMeansResult {
    /// Flat `(k, d)` centroid matrix.
    pub centroids: Vec<f32>,
    /// Cluster assignment per point.
    pub assignment: Vec<usize>,
    /// Final within-cluster sum of squared distances (the `E_k` of the
    /// paper's elbow analysis, Fig. 6a).
    pub inertia: f64,
    /// Lloyd iterations executed.
    pub iterations: usize,
}

/// Runs k-means.
///
/// # Panics
/// Panics when `k` is zero or exceeds the number of points.
pub fn kmeans(points: Points<'_>, cfg: KMeansConfig, rng: &mut impl Rng) -> KMeansResult {
    let (n, d, k) = (points.len(), points.dim(), cfg.k);
    assert!(k >= 1, "k must be positive");
    assert!(k <= n, "k = {k} exceeds the number of points {n}");

    let mut centroids = if cfg.plus_plus {
        init_plus_plus(points, k, rng)
    } else {
        init_random(points, k, rng)
    };

    let mut assignment = vec![0usize; n];
    let mut iterations = 0;
    for _ in 0..cfg.max_iters {
        iterations += 1;
        // Assignment step.
        for i in 0..n {
            assignment[i] = nearest_centroid(points, i, &centroids, k, d).0;
        }
        // Update step (f64 accumulation).
        let mut sums = vec![0.0f64; k * d];
        let mut counts = vec![0usize; k];
        for i in 0..n {
            let c = assignment[i];
            counts[c] += 1;
            for (s, &x) in sums[c * d..(c + 1) * d].iter_mut().zip(points.point(i)) {
                *s += x as f64;
            }
        }
        let mut movement = 0.0;
        for c in 0..k {
            if counts[c] == 0 {
                // Re-seed an empty cluster at the point farthest from its
                // centroid (standard empty-cluster repair).
                let far = (0..n)
                    .max_by(|&a, &b| {
                        let da = points.sq_dist_to(a, centroid(&centroids, assignment[a], d));
                        let db = points.sq_dist_to(b, centroid(&centroids, assignment[b], d));
                        da.total_cmp(&db)
                    })
                    .expect("non-empty point set");
                let new: Vec<f32> = points.point(far).to_vec();
                movement += sq_dist(centroid(&centroids, c, d), &new);
                centroids[c * d..(c + 1) * d].copy_from_slice(&new);
                continue;
            }
            let inv = 1.0 / counts[c] as f64;
            let mut delta = 0.0;
            for j in 0..d {
                let new = (sums[c * d + j] * inv) as f32;
                let old = centroids[c * d + j];
                let diff = (new - old) as f64;
                delta += diff * diff;
                centroids[c * d + j] = new;
            }
            movement += delta;
        }
        if movement <= cfg.tol {
            break;
        }
    }

    // Final assignment + inertia under the converged centroids.
    let mut inertia = 0.0;
    for i in 0..n {
        let (c, dist) = nearest_centroid(points, i, &centroids, k, d);
        assignment[i] = c;
        inertia += dist;
    }
    KMeansResult { centroids, assignment, inertia, iterations }
}

fn centroid(centroids: &[f32], c: usize, d: usize) -> &[f32] {
    &centroids[c * d..(c + 1) * d]
}

fn nearest_centroid(
    points: Points<'_>,
    i: usize,
    centroids: &[f32],
    k: usize,
    d: usize,
) -> (usize, f64) {
    let mut best = (0usize, f64::INFINITY);
    for c in 0..k {
        let dist = points.sq_dist_to(i, centroid(centroids, c, d));
        if dist < best.1 {
            best = (c, dist);
        }
    }
    best
}

fn init_random(points: Points<'_>, k: usize, rng: &mut impl Rng) -> Vec<f32> {
    let n = points.len();
    let d = points.dim();
    // Sample k distinct indices (partial Fisher–Yates over an index vec).
    let mut idx: Vec<usize> = (0..n).collect();
    for i in 0..k {
        let pick = rng.gen_range(i..n);
        idx.swap(i, pick);
    }
    let mut out = Vec::with_capacity(k * d);
    for &i in &idx[..k] {
        out.extend_from_slice(points.point(i));
    }
    out
}

fn init_plus_plus(points: Points<'_>, k: usize, rng: &mut impl Rng) -> Vec<f32> {
    let n = points.len();
    let d = points.dim();
    let mut out = Vec::with_capacity(k * d);
    let first = rng.gen_range(0..n);
    out.extend_from_slice(points.point(first));
    let mut min_dist: Vec<f64> =
        (0..n).map(|i| points.sq_dist_to(i, &out[..d])).collect();
    for c in 1..k {
        let total: f64 = min_dist.iter().sum();
        let pick = if total <= 0.0 {
            // All remaining points coincide with chosen centroids.
            rng.gen_range(0..n)
        } else {
            let mut x = rng.gen::<f64>() * total;
            let mut chosen = n - 1;
            for (i, &dd) in min_dist.iter().enumerate() {
                x -= dd;
                if x <= 0.0 {
                    chosen = i;
                    break;
                }
            }
            chosen
        };
        out.extend_from_slice(points.point(pick));
        let new = &out[c * d..(c + 1) * d];
        // `new` borrows out; copy to appease the borrow checker.
        let new: Vec<f32> = new.to_vec();
        for i in 0..n {
            min_dist[i] = min_dist[i].min(points.sq_dist_to(i, &new));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Three well-separated 2-D blobs.
    fn blobs() -> (Vec<f32>, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(0);
        let centers = [(0.0f32, 0.0f32), (10.0, 0.0), (0.0, 10.0)];
        let mut data = Vec::new();
        let mut truth = Vec::new();
        for (label, &(cx, cy)) in centers.iter().enumerate() {
            for _ in 0..30 {
                data.push(cx + rng.gen::<f32>() - 0.5);
                data.push(cy + rng.gen::<f32>() - 0.5);
                truth.push(label);
            }
        }
        (data, truth)
    }

    #[test]
    fn recovers_separated_blobs() {
        let (data, truth) = blobs();
        let points = Points::new(&data, 90, 2);
        let mut rng = StdRng::seed_from_u64(1);
        let res = kmeans(points, KMeansConfig::new(3), &mut rng);
        // Every ground-truth blob must map to exactly one k-means cluster.
        for blob in 0..3 {
            let members: Vec<usize> = (0..90).filter(|&i| truth[i] == blob).collect();
            let first = res.assignment[members[0]];
            assert!(members.iter().all(|&i| res.assignment[i] == first));
        }
    }

    #[test]
    fn inertia_decreases_with_k() {
        let (data, _) = blobs();
        let points = Points::new(&data, 90, 2);
        let mut prev = f64::INFINITY;
        for k in 1..=5 {
            let mut rng = StdRng::seed_from_u64(2);
            let res = kmeans(points, KMeansConfig::new(k), &mut rng);
            assert!(res.inertia <= prev + 1e-6, "inertia rose at k = {k}");
            prev = res.inertia;
        }
    }

    #[test]
    fn k_equals_n_gives_zero_inertia() {
        let data = vec![0.0f32, 0.0, 1.0, 1.0, 2.0, 2.0];
        let points = Points::new(&data, 3, 2);
        let mut rng = StdRng::seed_from_u64(3);
        let res = kmeans(points, KMeansConfig::new(3), &mut rng);
        assert!(res.inertia < 1e-9);
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let (data, _) = blobs();
        let points = Points::new(&data, 90, 2);
        let a = kmeans(points, KMeansConfig::new(3), &mut StdRng::seed_from_u64(7));
        let b = kmeans(points, KMeansConfig::new(3), &mut StdRng::seed_from_u64(7));
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.centroids, b.centroids);
    }

    #[test]
    fn plus_plus_init_is_no_worse_than_random_on_average() {
        let (data, _) = blobs();
        let points = Points::new(&data, 90, 2);
        let mean = |random: bool| -> f64 {
            (0..10)
                .map(|s| {
                    let mut rng = StdRng::seed_from_u64(s);
                    let cfg = if random {
                        KMeansConfig::new(3).random_init()
                    } else {
                        KMeansConfig::new(3)
                    };
                    kmeans(points, cfg, &mut rng).inertia
                })
                .sum::<f64>()
                / 10.0
        };
        let pp = mean(false);
        let rand_init = mean(true);
        assert!(pp.is_finite() && rand_init.is_finite());
        assert!(pp <= rand_init + 1e-6, "k-means++ ({pp}) worse than random ({rand_init})");
    }

    #[test]
    #[should_panic(expected = "exceeds the number of points")]
    fn k_greater_than_n_panics() {
        let data = vec![0.0f32, 0.0];
        let mut rng = StdRng::seed_from_u64(0);
        let _ = kmeans(Points::new(&data, 1, 2), KMeansConfig::new(2), &mut rng);
    }
}
