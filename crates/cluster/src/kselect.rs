//! Automatic selection of the cluster count `k`.
//!
//! The paper's §VII-G uses the elbow method (see [`crate::elbow`]); this
//! module adds the two other standard selectors so the robustness analysis
//! can be cross-checked: the **silhouette scan** (pick the `k` maximizing
//! the mean silhouette coefficient) and the **gap statistic** (Tibshirani,
//! Walther, Hastie 2001 — compare log-inertia against a uniform reference
//! distribution).

use crate::kmeans::{kmeans, KMeansConfig};
use crate::metrics::silhouette;
use crate::points::Points;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One evaluated candidate `k`.
#[derive(Clone, Copy, Debug)]
pub struct KCandidate {
    /// Cluster count.
    pub k: usize,
    /// Selector score (higher = better for both selectors here).
    pub score: f64,
}

/// Scans `k_range`, scoring each `k` by the mean silhouette of the best
/// (lowest-inertia) of `restarts` k-means runs. Returns all candidates and
/// the argmax.
pub fn silhouette_scan(
    data: &[f32],
    n: usize,
    d: usize,
    k_range: std::ops::RangeInclusive<usize>,
    restarts: usize,
    seed: u64,
) -> (Vec<KCandidate>, usize) {
    let points = Points::new(data, n, d);
    let candidates: Vec<KCandidate> = k_range
        .filter(|&k| k >= 2 && k < n)
        .map(|k| {
            let best = (0..restarts.max(1))
                .map(|r| {
                    let mut rng = StdRng::seed_from_u64(seed ^ (k as u64) << 10 ^ r as u64);
                    kmeans(points, KMeansConfig::new(k), &mut rng)
                })
                .min_by(|a, b| a.inertia.total_cmp(&b.inertia))
                .expect("restarts >= 1");
            KCandidate { k, score: silhouette(data, n, d, &best.assignment) }
        })
        .collect();
    let best_k = candidates
        .iter()
        .max_by(|a, b| a.score.total_cmp(&b.score))
        .map_or(2, |c| c.k);
    (candidates, best_k)
}

/// Gap statistic: `gap(k) = E[log W_k | uniform reference] − log W_k`.
/// Returns the candidates (score = gap) and the smallest `k` satisfying
/// the standard one-standard-error rule `gap(k) ≥ gap(k+1) − s_{k+1}`
/// (falling back to the argmax).
pub fn gap_statistic(
    data: &[f32],
    n: usize,
    d: usize,
    k_range: std::ops::RangeInclusive<usize>,
    references: usize,
    seed: u64,
) -> (Vec<KCandidate>, usize) {
    assert!(n >= 2 && d >= 1, "need a non-trivial point set");
    let points = Points::new(data, n, d);
    // Bounding box of the data for the uniform reference distribution.
    let mut lo = vec![f32::INFINITY; d];
    let mut hi = vec![f32::NEG_INFINITY; d];
    for i in 0..n {
        for (j, &x) in points.point(i).iter().enumerate() {
            lo[j] = lo[j].min(x);
            hi[j] = hi[j].max(x);
        }
    }

    let ks: Vec<usize> = k_range.filter(|&k| k >= 1 && k < n).collect();
    let mut gaps = Vec::with_capacity(ks.len());
    let mut errs = Vec::with_capacity(ks.len());
    for &k in &ks {
        let mut rng = StdRng::seed_from_u64(seed ^ (k as u64) << 16);
        let observed = kmeans(points, KMeansConfig::new(k), &mut rng).inertia.max(1e-12).ln();
        let ref_logs: Vec<f64> = (0..references.max(1))
            .map(|r| {
                let mut rr = StdRng::seed_from_u64(seed ^ (k as u64) << 16 ^ (r as u64 + 1));
                let sample: Vec<f32> = (0..n * d)
                    .map(|idx| {
                        let j = idx % d;
                        if hi[j] > lo[j] {
                            rr.gen_range(lo[j]..hi[j])
                        } else {
                            lo[j]
                        }
                    })
                    .collect();
                let rp = Points::new(&sample, n, d);
                kmeans(rp, KMeansConfig::new(k), &mut rr).inertia.max(1e-12).ln()
            })
            .collect();
        let mean_ref = ref_logs.iter().sum::<f64>() / ref_logs.len() as f64;
        let var = ref_logs.iter().map(|&x| (x - mean_ref).powi(2)).sum::<f64>()
            / ref_logs.len() as f64;
        let s = var.sqrt() * (1.0 + 1.0 / ref_logs.len() as f64).sqrt();
        gaps.push(KCandidate { k, score: mean_ref - observed });
        errs.push(s);
    }

    // Parsimony rule: the smallest k whose gap comes within one standard
    // error of the maximum gap. (The textbook local rule
    // `gap(k) ≥ gap(k+1) − s` can stop on an early plateau before the
    // real jump; anchoring to the global maximum is the robust variant.)
    let (max_idx, max_gap) = gaps
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.score.total_cmp(&b.1.score))
        .map(|(i, c)| (i, c.score))
        .expect("non-empty k range");
    let threshold = max_gap - errs[max_idx];
    let best = gaps
        .iter()
        .find(|c| c.score >= threshold)
        .map_or(gaps[max_idx].k, |c| c.k);
    (gaps, best)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(true_k: usize, per: usize, seed: u64) -> (Vec<f32>, usize) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut data = Vec::new();
        for c in 0..true_k {
            let cx = (c % 3) as f32 * 30.0;
            let cy = (c / 3) as f32 * 30.0;
            for _ in 0..per {
                data.push(cx + rng.gen::<f32>());
                data.push(cy + rng.gen::<f32>());
            }
        }
        (data, true_k * per)
    }

    #[test]
    fn silhouette_scan_finds_true_k() {
        let (data, n) = blobs(4, 25, 0);
        let (cands, best) = silhouette_scan(&data, n, 2, 2..=8, 3, 7);
        assert_eq!(best, 4, "candidates: {cands:?}");
        assert!(cands.iter().all(|c| (-1.0..=1.0).contains(&c.score)));
    }

    #[test]
    fn gap_statistic_finds_true_k_on_clean_blobs() {
        let (data, n) = blobs(3, 30, 1);
        let (cands, best) = gap_statistic(&data, n, 2, 1..=6, 5, 3);
        assert_eq!(best, 3, "candidates: {cands:?}");
    }

    #[test]
    fn selectors_are_consistent_on_blobs() {
        use crate::elbow::{detect_elbow, elbow_curve};
        let (data, n) = blobs(5, 20, 2);
        let (_, sil_k) = silhouette_scan(&data, n, 2, 2..=9, 8, 11);
        let curve = elbow_curve(&data, n, 2, 1..=9, 3, 11);
        let elbow_k = detect_elbow(&curve).expect("curve long enough");
        // Silhouette nails the exact k; the elbow heuristic is known to
        // under-shoot on grid-arranged blobs, so only require the right
        // neighbourhood from it.
        assert_eq!(sil_k, 5);
        assert!((3..=6).contains(&elbow_k), "elbow picked {elbow_k}");
    }

    #[test]
    fn degenerate_single_blob_prefers_small_k() {
        let (data, n) = blobs(1, 40, 3);
        let (_, best) = gap_statistic(&data, n, 2, 1..=5, 5, 5);
        assert!(best <= 2, "one blob should not pick a large k (got {best})");
    }
}
