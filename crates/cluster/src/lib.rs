//! # traj-cluster — clustering algorithms and quality metrics
//!
//! The classical clustering substrate of the E²DTC reproduction:
//!
//! - [`kmeans()`]: Lloyd's algorithm with k-means++ seeding — used to
//!   initialize the self-training centroids (§V-C) and as the second stage
//!   of the `t2vec + k-means` baseline;
//! - [`kmedoids()`]: PAM over a precomputed distance matrix — the paper's
//!   classic `<metric> + KM` baselines (§VII-A);
//! - [`hungarian`]: Kuhn–Munkres optimal assignment, needed by UACC;
//! - [`metrics`]: UACC / NMI / Rand-index (Eqs. 15–17) plus the silhouette
//!   coefficient used to quantify the paper's t-SNE separation figures;
//! - [`elbow`]: the `E_k` curve and elbow detection of §VII-G (Fig. 6a).

#![warn(missing_docs)]
// Parallel-array index loops are idiomatic in the numeric kernels here;
// iterator-zip rewrites obscure them.
#![allow(clippy::needless_range_loop)]

pub mod dbscan;
pub mod elbow;
pub mod hungarian;
pub mod kmeans;
pub mod kmedoids;
pub mod kselect;
pub mod metrics;
pub mod points;

pub use dbscan::{dbscan, DbscanConfig, DbscanResult};
pub use kmeans::{kmeans, KMeansConfig, KMeansResult};
pub use kmedoids::{kmedoids, kmedoids_alternating, KMedoidsConfig, KMedoidsResult};
pub use metrics::{nmi, rand_index, silhouette, uacc};
pub use points::Points;
