//! Property-based invariants of the clustering algorithms and quality
//! metrics.

use proptest::prelude::*;
use traj_cluster::hungarian::{hungarian_max, hungarian_min};
use traj_cluster::{kmeans, nmi, rand_index, uacc, KMeansConfig, Points};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn labeling(n: usize, k: usize) -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(0..k, n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn metrics_are_within_unit_interval(
        pred in labeling(30, 4),
        truth in labeling(30, 4),
    ) {
        for v in [uacc(&pred, &truth), nmi(&pred, &truth), rand_index(&pred, &truth)] {
            prop_assert!((0.0..=1.0 + 1e-12).contains(&v), "metric out of range: {v}");
        }
    }

    #[test]
    fn metrics_perfect_on_equal_labelings(truth in labeling(30, 4)) {
        prop_assert_eq!(uacc(&truth, &truth), 1.0);
        prop_assert_eq!(rand_index(&truth, &truth), 1.0);
        prop_assert!(nmi(&truth, &truth) > 0.999 || truth.iter().all(|&x| x == truth[0]));
    }

    #[test]
    fn metrics_invariant_under_label_permutation(
        truth in labeling(40, 4),
        swap_a in 0usize..4,
        swap_b in 0usize..4,
    ) {
        let permuted: Vec<usize> = truth
            .iter()
            .map(|&l| {
                if l == swap_a { swap_b } else if l == swap_b { swap_a } else { l }
            })
            .collect();
        prop_assert!((uacc(&permuted, &truth) - 1.0).abs() < 1e-12);
        prop_assert!((rand_index(&permuted, &truth) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rand_index_symmetric(pred in labeling(25, 3), truth in labeling(25, 3)) {
        prop_assert!((rand_index(&pred, &truth) - rand_index(&truth, &pred)).abs() < 1e-12);
    }

    #[test]
    fn nmi_symmetric(pred in labeling(25, 3), truth in labeling(25, 3)) {
        prop_assert!((nmi(&pred, &truth) - nmi(&truth, &pred)).abs() < 1e-9);
    }

    #[test]
    fn hungarian_matches_bruteforce(
        n in 1usize..5,
        values in prop::collection::vec(0.0f64..10.0, 25),
    ) {
        let cost = &values[..n * n];
        let asg = hungarian_min(cost, n);
        let total: f64 = asg.iter().enumerate().map(|(r, &c)| cost[r * n + c]).sum();
        // brute force
        fn rec(cost: &[f64], n: usize, row: usize, used: &mut Vec<bool>, acc: f64, best: &mut f64) {
            if row == n { *best = best.min(acc); return; }
            for c in 0..n {
                if !used[c] {
                    used[c] = true;
                    rec(cost, n, row + 1, used, acc + cost[row * n + c], best);
                    used[c] = false;
                }
            }
        }
        let mut best = f64::INFINITY;
        rec(cost, n, 0, &mut vec![false; n], 0.0, &mut best);
        prop_assert!((total - best).abs() < 1e-9, "hungarian {total} vs brute {best}");
    }

    #[test]
    fn hungarian_max_is_min_of_negation(
        n in 1usize..5,
        values in prop::collection::vec(0.0f64..10.0, 25),
    ) {
        let profit = &values[..n * n];
        let neg: Vec<f64> = profit.iter().map(|&x| -x).collect();
        prop_assert_eq!(hungarian_max(profit, n), hungarian_min(&neg, n));
    }

    #[test]
    fn kmeans_assignment_is_nearest_centroid(
        seed in 0u64..1000,
        k in 1usize..5,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 40;
        let d = 3;
        let data: Vec<f32> = (0..n * d).map(|i| ((i * 37 + seed as usize) % 101) as f32 / 10.0).collect();
        let points = Points::new(&data, n, d);
        let res = kmeans(points, KMeansConfig::new(k), &mut rng);
        for i in 0..n {
            let assigned = res.assignment[i];
            let d_assigned = points.sq_dist_to(i, &res.centroids[assigned * d..(assigned + 1) * d]);
            for c in 0..k {
                let dc = points.sq_dist_to(i, &res.centroids[c * d..(c + 1) * d]);
                prop_assert!(d_assigned <= dc + 1e-4, "point {i} not assigned to nearest");
            }
        }
    }

    #[test]
    fn kmeans_inertia_consistent_with_assignment(seed in 0u64..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 30;
        let d = 2;
        let data: Vec<f32> = (0..n * d).map(|i| ((i * 13) % 17) as f32).collect();
        let points = Points::new(&data, n, d);
        let res = kmeans(points, KMeansConfig::new(3), &mut rng);
        let recomputed: f64 = (0..n)
            .map(|i| {
                let c = res.assignment[i];
                points.sq_dist_to(i, &res.centroids[c * d..(c + 1) * d])
            })
            .sum();
        prop_assert!((res.inertia - recomputed).abs() < 1e-3);
    }
}

mod dbscan_properties {
    use proptest::prelude::*;
    use traj_cluster::dbscan::{dbscan, DbscanConfig, NOISE};

    fn line_matrix(xs: &[f64]) -> Vec<f64> {
        let n = xs.len();
        let mut d = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                d[i * n + j] = (xs[i] - xs[j]).abs();
            }
        }
        d
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn labels_are_valid(
            xs in prop::collection::vec(0.0f64..100.0, 2..20),
            eps in 0.5f64..20.0,
            min_pts in 1usize..4,
        ) {
            let d = line_matrix(&xs);
            let res = dbscan(&d, xs.len(), DbscanConfig { eps, min_pts });
            for &l in &res.labels {
                prop_assert!(l == NOISE || l < res.num_clusters);
            }
            // Every discovered cluster id is used.
            for c in 0..res.num_clusters {
                prop_assert!(res.labels.contains(&c));
            }
        }

        #[test]
        fn growing_eps_never_increases_noise(
            xs in prop::collection::vec(0.0f64..100.0, 3..15),
        ) {
            let d = line_matrix(&xs);
            let small = dbscan(&d, xs.len(), DbscanConfig { eps: 1.0, min_pts: 2 });
            let large = dbscan(&d, xs.len(), DbscanConfig { eps: 10.0, min_pts: 2 });
            prop_assert!(large.noise_points().len() <= small.noise_points().len());
        }

        #[test]
        fn min_pts_one_has_no_noise(
            xs in prop::collection::vec(0.0f64..100.0, 2..15),
        ) {
            let d = line_matrix(&xs);
            let res = dbscan(&d, xs.len(), DbscanConfig { eps: 1.0, min_pts: 1 });
            prop_assert!(res.noise_points().is_empty());
        }
    }
}
