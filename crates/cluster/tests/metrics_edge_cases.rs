//! Degenerate-input guards for the quality metrics: empty predicted
//! clusters, singleton clusters, non-contiguous label ids. None of these
//! may panic, and every score must stay inside its documented range —
//! self-training can produce all of them transiently (a cluster drained
//! by churn, a lone outlier trajectory) and the metrics run inside the
//! training loop's stop rule.

use traj_cluster::{nmi, rand_index, silhouette, uacc};

#[test]
fn silhouette_tolerates_an_empty_predicted_cluster() {
    // Cluster id 1 exists in the id space but owns no points (a cluster
    // drained mid-self-training). Mean-distance denominators must skip it.
    let pts = [0.0f32, 0.1, 10.0, 10.1];
    let labels = [0usize, 0, 2, 2];
    let s = silhouette(&pts, 4, 1, &labels);
    assert!(s.is_finite());
    assert!(s > 0.9, "two tight far-apart blobs should still score near 1, got {s}");
}

#[test]
fn silhouette_of_all_singleton_clusters_is_zero() {
    let pts = [0.0f32, 1.0, 2.0, 3.0];
    let labels = [0usize, 1, 2, 3];
    assert_eq!(silhouette(&pts, 4, 1, &labels), 0.0);
}

#[test]
fn silhouette_of_a_single_cluster_is_zero() {
    // No "other" cluster exists, so b is undefined for every point; the
    // scikit-learn convention scores the whole labelling 0.
    let pts = [0.0f32, 0.5, 1.0];
    let labels = [0usize, 0, 0];
    assert_eq!(silhouette(&pts, 3, 1, &labels), 0.0);
}

#[test]
fn silhouette_mixes_singletons_with_real_clusters() {
    // Point 4 is a singleton (contributes 0); the two blobs still count.
    let pts = [0.0f32, 0.1, 10.0, 10.1, 100.0];
    let labels = [0usize, 0, 1, 1, 2];
    let s = silhouette(&pts, 5, 1, &labels);
    assert!(s.is_finite());
    assert!(s > 0.0, "real blobs must dominate the singleton's zero, got {s}");
}

#[test]
fn uacc_and_nmi_tolerate_all_singleton_predictions() {
    // Every trajectory its own cluster — the maximally fragmented
    // prediction a collapsing run can emit.
    let pred = [0usize, 1, 2, 3];
    let truth = [0usize, 0, 1, 1];
    let u = uacc(&pred, &truth);
    let m = nmi(&pred, &truth);
    let r = rand_index(&pred, &truth);
    // Hungarian matching keeps one member per true cluster.
    assert!((u - 0.5).abs() < 1e-12, "got {u}");
    assert!((0.0..=1.0).contains(&m), "NMI out of range: {m}");
    assert!((0.0..=1.0).contains(&r), "RI out of range: {r}");
}

#[test]
fn uacc_and_nmi_of_identical_singleton_labelings_are_perfect() {
    let labels = [0usize, 1, 2, 3];
    assert_eq!(uacc(&labels, &labels), 1.0);
    assert!((nmi(&labels, &labels) - 1.0).abs() < 1e-12);
    assert_eq!(rand_index(&labels, &labels), 1.0);
}

#[test]
fn metrics_tolerate_non_contiguous_cluster_ids() {
    // Ids with gaps (cluster 1..4 empty): the contingency table grows to
    // the max id and the Hungarian matrix pads square — no panic.
    let pred = [0usize, 5, 5, 0];
    let truth = [0usize, 1, 1, 0];
    assert_eq!(uacc(&pred, &truth), 1.0);
    assert!((nmi(&pred, &truth) - 1.0).abs() < 1e-12);
    assert_eq!(rand_index(&pred, &truth), 1.0);
}

#[test]
fn single_point_dataset_is_trivially_perfect() {
    assert_eq!(uacc(&[3], &[0]), 1.0);
    assert!((0.0..=1.0).contains(&nmi(&[3], &[0])));
    assert_eq!(rand_index(&[3], &[0]), 1.0);
    assert_eq!(silhouette(&[1.0f32, 2.0], 1, 2, &[0]), 0.0);
}
