//! Property-based invariants of the tensor algebra and the DEC math.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use traj_nn::tape::{student_t_assignment, target_distribution};
use traj_nn::{ParamStore, Tape, Tensor};

fn tensor(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    prop::collection::vec(-3.0f32..3.0, rows * cols)
        .prop_map(move |v| Tensor::from_vec(rows, cols, v))
}

/// Random tensor of a shape decided at runtime (shapes themselves are
/// generated per case, which `prop::collection::vec` can't express).
fn random_tensor(rows: usize, cols: usize, rng: &mut StdRng) -> Tensor {
    Tensor::from_vec(rows, cols, (0..rows * cols).map(|_| rng.gen_range(-3.0f32..3.0)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matmul_distributes_over_addition(
        a in tensor(3, 4),
        b in tensor(4, 2),
        c in tensor(4, 2),
    ) {
        // a(b + c) == ab + ac
        let lhs = a.matmul(&b.add(&c));
        let rhs = a.matmul(&b).add(&a.matmul(&c));
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    #[test]
    fn transpose_reverses_matmul(a in tensor(3, 4), b in tensor(4, 2)) {
        // (ab)^T == b^T a^T
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn fused_transpose_products_match_explicit(a in tensor(3, 4), b in tensor(3, 2)) {
        let fused = a.matmul_tn(&b);
        let explicit = a.transpose().matmul(&b);
        for (x, y) in fused.data().iter().zip(explicit.data()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn parallel_matmul_is_bit_identical_to_serial(
        m in 0usize..9,
        k in 0usize..9,
        n in 0usize..9,
        seed in 0u64..1_000_000,
    ) {
        // Small shapes sweep every degenerate case (0 rows, 0 inner dim,
        // 0/1 columns) and every MR-remainder. Bit-for-bit equality, not
        // approximate: the parallel path must accumulate in the same order.
        let mut rng = StdRng::seed_from_u64(seed);
        let a = random_tensor(m, k, &mut rng);
        let b = random_tensor(k, n, &mut rng);
        prop_assert_eq!(a.matmul_with(&b, false), a.matmul_with(&b, true));
        prop_assert_eq!(a.matmul(&b), a.matmul_with(&b, false));
        let bt = random_tensor(n, k, &mut rng);
        prop_assert_eq!(a.matmul_nt_with(&bt, false), a.matmul_nt_with(&bt, true));
        let at = random_tensor(k, m, &mut rng);
        prop_assert_eq!(at.matmul_tn_with(&b, false), at.matmul_tn_with(&b, true));
    }

    #[test]
    fn parallel_matmul_matches_serial_across_chunk_boundaries(
        m in 30usize..90,
        k in 1usize..40,
        n in 1usize..40,
        seed in 0u64..1_000_000,
    ) {
        // Larger row counts split into several worker chunks with ragged
        // trailing blocks; results must still be bit-identical.
        let mut rng = StdRng::seed_from_u64(seed ^ 0xA5A5);
        let a = random_tensor(m, k, &mut rng);
        let b = random_tensor(k, n, &mut rng);
        prop_assert_eq!(a.matmul_with(&b, false), a.matmul_with(&b, true));
        let bt = random_tensor(n, k, &mut rng);
        prop_assert_eq!(a.matmul_nt_with(&bt, false), a.matmul_nt_with(&bt, true));
        let at = random_tensor(k, m, &mut rng);
        prop_assert_eq!(at.matmul_tn_with(&b, false), at.matmul_tn_with(&b, true));
    }

    #[test]
    fn softmax_rows_are_distributions(a in tensor(4, 6)) {
        let s = a.softmax_rows();
        for r in 0..4 {
            let sum: f32 = s.row(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(s.row(r).iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn softmax_invariant_to_row_shift(a in tensor(2, 5), shift in -10.0f32..10.0) {
        let shifted = a.map(|x| x + shift);
        let s1 = a.softmax_rows();
        let s2 = shifted.softmax_rows();
        for (x, y) in s1.data().iter().zip(s2.data()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn student_t_q_rows_are_distributions(v in tensor(6, 3), c in tensor(3, 3)) {
        let q = student_t_assignment(&v, &c);
        prop_assert_eq!(q.shape(), (6, 3));
        for r in 0..6 {
            let sum: f32 = q.row(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(q.row(r).iter().all(|&p| p > 0.0));
        }
    }

    #[test]
    fn target_distribution_preserves_argmax_dominance(v in tensor(8, 3), c in tensor(2, 3)) {
        // P sharpens Q, so a strictly dominant assignment stays dominant.
        let q = student_t_assignment(&v, &c);
        let p = target_distribution(&q);
        for r in 0..8 {
            let q_arg = if q.get(r, 0) > q.get(r, 1) { 0 } else { 1 };
            let sum: f32 = p.row(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            // P rows remain valid distributions; dominance may flip only
            // when the soft frequencies differ wildly, so just check
            // positivity here and dominance when frequencies are balanced.
            prop_assert!(p.row(r).iter().all(|&x| x >= 0.0));
            let f0: f32 = (0..8).map(|i| q.get(i, 0)).sum();
            let f1: f32 = (0..8).map(|i| q.get(i, 1)).sum();
            if (f0 - f1).abs() < 0.1 && (q.get(r, 0) - q.get(r, 1)).abs() > 0.05 {
                let p_arg = if p.get(r, 0) > p.get(r, 1) { 0 } else { 1 };
                prop_assert_eq!(p_arg, q_arg);
            }
        }
    }

    #[test]
    fn backward_of_sum_is_ones(rows in 1usize..4, cols in 1usize..4) {
        let mut store = ParamStore::new();
        let id = store.add("w", Tensor::full(rows, cols, 0.5));
        let mut tape = Tape::new();
        let w = tape.param(&store, id);
        let loss = tape.sum_all(w);
        tape.backward(loss, &mut store);
        prop_assert!(store.grad(id).data().iter().all(|&g| (g - 1.0).abs() < 1e-6));
    }

    #[test]
    fn gradient_accumulates_linearly(scale in 0.1f32..5.0) {
        // loss = scale * sum(w) => grad = scale everywhere.
        let mut store = ParamStore::new();
        let id = store.add("w", Tensor::full(2, 2, 1.0));
        let mut tape = Tape::new();
        let w = tape.param(&store, id);
        let s = tape.scale(w, scale);
        let loss = tape.sum_all(s);
        tape.backward(loss, &mut store);
        prop_assert!(store
            .grad(id)
            .data()
            .iter()
            .all(|&g| (g - scale).abs() < 1e-5));
    }
}
