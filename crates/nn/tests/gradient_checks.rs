//! Finite-difference validation of every autograd op and layer.
//!
//! Uses f32 central differences with eps = 1e-2 and a 2e-2 relative
//! tolerance — loose enough for single precision, tight enough to catch any
//! sign/transpose/factor-of-two mistake in a backward rule.

use rand::rngs::StdRng;
use rand::SeedableRng;
use traj_nn::gradcheck::assert_grads_close;
use traj_nn::init::Init;
use traj_nn::layers::{Embedding, Gru, GruCell, Linear};
use traj_nn::tape::{student_t_assignment, target_distribution};
use traj_nn::{ParamStore, Tensor};

const EPS: f32 = 1e-2;
const TOL: f32 = 2e-2;

fn seeded_param(store: &mut ParamStore, name: &str, rows: usize, cols: usize, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    store.add_init(name, rows, cols, Init::Uniform(0.8), &mut rng);
}

#[test]
fn matmul_grads() {
    let mut store = ParamStore::new();
    seeded_param(&mut store, "a", 3, 4, 1);
    seeded_param(&mut store, "b", 4, 2, 2);
    let ids: Vec<_> = store.ids().collect();
    assert_grads_close(&mut store, EPS, TOL, |tape, store| {
        let a = tape.param(store, ids[0]);
        let b = tape.param(store, ids[1]);
        let c = tape.matmul(a, b);
        tape.mean_all(c)
    });
}

#[test]
fn add_sub_hadamard_grads() {
    let mut store = ParamStore::new();
    seeded_param(&mut store, "a", 2, 3, 3);
    seeded_param(&mut store, "b", 2, 3, 4);
    let ids: Vec<_> = store.ids().collect();
    assert_grads_close(&mut store, EPS, TOL, |tape, store| {
        let a = tape.param(store, ids[0]);
        let b = tape.param(store, ids[1]);
        let s = tape.add(a, b);
        let d = tape.sub(s, b);
        let h = tape.hadamard(d, b);
        tape.sum_all(h)
    });
}

#[test]
fn broadcast_and_affine_grads() {
    let mut store = ParamStore::new();
    seeded_param(&mut store, "m", 3, 2, 5);
    seeded_param(&mut store, "row", 1, 2, 6);
    let ids: Vec<_> = store.ids().collect();
    assert_grads_close(&mut store, EPS, TOL, |tape, store| {
        let m = tape.param(store, ids[0]);
        let row = tape.param(store, ids[1]);
        let b = tape.add_row_broadcast(m, row);
        let a = tape.affine(b, 1.7, -0.3);
        tape.mean_all(a)
    });
}

#[test]
fn sigmoid_tanh_grads() {
    let mut store = ParamStore::new();
    seeded_param(&mut store, "x", 2, 4, 7);
    let ids: Vec<_> = store.ids().collect();
    assert_grads_close(&mut store, EPS, TOL, |tape, store| {
        let x = tape.param(store, ids[0]);
        let s = tape.sigmoid(x);
        let t = tape.tanh(s);
        tape.sum_all(t)
    });
}

#[test]
fn concat_grads() {
    let mut store = ParamStore::new();
    seeded_param(&mut store, "a", 2, 2, 8);
    seeded_param(&mut store, "b", 2, 3, 9);
    let ids: Vec<_> = store.ids().collect();
    assert_grads_close(&mut store, EPS, TOL, |tape, store| {
        let a = tape.param(store, ids[0]);
        let b = tape.param(store, ids[1]);
        let c = tape.concat_cols(a, b);
        let sq = tape.hadamard(c, c);
        tape.mean_all(sq)
    });
}

#[test]
fn gather_rows_grads() {
    let mut store = ParamStore::new();
    seeded_param(&mut store, "table", 5, 3, 10);
    let ids: Vec<_> = store.ids().collect();
    assert_grads_close(&mut store, EPS, TOL, |tape, store| {
        let t = tape.param(store, ids[0]);
        let g = tape.gather_rows(t, &[0, 3, 3, 4]);
        let sq = tape.hadamard(g, g);
        tape.sum_all(sq)
    });
}

#[test]
fn weighted_softmax_nll_grads() {
    let mut store = ParamStore::new();
    seeded_param(&mut store, "logits", 3, 6, 11);
    let ids: Vec<_> = store.ids().collect();
    // kNN-style sparse targets: a few weighted cells per row, summing to 1.
    let targets = vec![
        vec![(0, 0.7), (1, 0.2), (2, 0.1)],
        vec![(3, 1.0)],
        vec![(4, 0.5), (5, 0.5)],
    ];
    assert_grads_close(&mut store, EPS, TOL, |tape, store| {
        let l = tape.param(store, ids[0]);
        tape.weighted_softmax_nll(l, targets.clone())
    });
}

#[test]
fn dec_kl_grads_wrt_embeddings_and_centroids() {
    let mut store = ParamStore::new();
    seeded_param(&mut store, "v", 6, 3, 12);
    seeded_param(&mut store, "c", 2, 3, 13);
    let ids: Vec<_> = store.ids().collect();
    // Fix the target distribution P from the initial Q (it is a constant
    // during each self-training interval, per the paper).
    let p = {
        let q = student_t_assignment(store.get(ids[0]), store.get(ids[1]));
        target_distribution(&q)
    };
    assert_grads_close(&mut store, EPS, TOL, |tape, store| {
        let v = tape.param(store, ids[0]);
        let c = tape.param(store, ids[1]);
        tape.dec_kl(v, c, p.clone())
    });
}

#[test]
fn triplet_grads() {
    let mut store = ParamStore::new();
    seeded_param(&mut store, "a", 4, 3, 14);
    seeded_param(&mut store, "p", 4, 3, 15);
    seeded_param(&mut store, "n", 4, 3, 16);
    let ids: Vec<_> = store.ids().collect();
    // Large margin so every triplet is active (the hinge is non-smooth at
    // the boundary, which would foil finite differences).
    assert_grads_close(&mut store, EPS, TOL, |tape, store| {
        let a = tape.param(store, ids[0]);
        let p = tape.param(store, ids[1]);
        let n = tape.param(store, ids[2]);
        tape.triplet(a, p, n, 50.0)
    });
}

#[test]
fn linear_layer_grads() {
    let mut rng = StdRng::seed_from_u64(17);
    let mut store = ParamStore::new();
    let layer = Linear::new(&mut store, "fc", 3, 2, true, &mut rng);
    let x = Tensor::from_rows(&[vec![0.3, -0.2, 0.5], vec![-0.4, 0.8, 0.1]]);
    assert_grads_close(&mut store, EPS, TOL, move |tape, store| {
        let xv = tape.constant(x.clone());
        let y = layer.forward(tape, store, xv);
        let sq = tape.hadamard(y, y);
        tape.mean_all(sq)
    });
}

#[test]
fn embedding_layer_grads() {
    let mut rng = StdRng::seed_from_u64(18);
    let mut store = ParamStore::new();
    let emb = Embedding::new(&mut store, "emb", 6, 4, &mut rng);
    assert_grads_close(&mut store, EPS, TOL, move |tape, store| {
        let e = emb.forward(tape, store, &[1, 1, 5]);
        let sq = tape.hadamard(e, e);
        tape.sum_all(sq)
    });
}

#[test]
fn gru_cell_grads() {
    let mut rng = StdRng::seed_from_u64(19);
    let mut store = ParamStore::new();
    let cell = GruCell::new(&mut store, "cell", 2, 3, &mut rng);
    let x = Tensor::from_rows(&[vec![0.5, -0.7]]);
    let h = Tensor::from_rows(&[vec![0.1, 0.2, -0.3]]);
    assert_grads_close(&mut store, EPS, TOL, move |tape, store| {
        let xv = tape.constant(x.clone());
        let hv = tape.constant(h.clone());
        let h2 = cell.step(tape, store, xv, hv);
        let sq = tape.hadamard(h2, h2);
        tape.sum_all(sq)
    });
}

#[test]
fn multilayer_gru_bptt_grads() {
    let mut rng = StdRng::seed_from_u64(20);
    let mut store = ParamStore::new();
    let gru = Gru::new(&mut store, "gru", 2, 3, 2, &mut rng);
    let inputs: Vec<Tensor> = (0..4)
        .map(|t| Tensor::from_rows(&[vec![0.2 * t as f32, -0.1 * t as f32]]))
        .collect();
    assert_grads_close(&mut store, EPS, TOL, move |tape, store| {
        let mut state = gru.zero_state(tape, 1);
        let mut rng2 = StdRng::seed_from_u64(0);
        let mut last = None;
        for x in &inputs {
            let xv = tape.constant(x.clone());
            last = Some(gru.step(tape, store, xv, &mut state, false, &mut rng2));
        }
        let h = last.expect("non-empty sequence");
        let sq = tape.hadamard(h, h);
        tape.sum_all(sq)
    });
}

#[test]
fn row_sum_and_col_broadcast_grads() {
    let mut store = ParamStore::new();
    seeded_param(&mut store, "m", 3, 4, 21);
    seeded_param(&mut store, "col_src", 3, 4, 22);
    let ids: Vec<_> = store.ids().collect();
    assert_grads_close(&mut store, EPS, TOL, |tape, store| {
        let m = tape.param(store, ids[0]);
        let c_src = tape.param(store, ids[1]);
        let col = tape.row_sum(c_src);
        let scaled = tape.col_broadcast_mul(m, col);
        tape.mean_all(scaled)
    });
}

#[test]
fn softmax_grads() {
    let mut store = ParamStore::new();
    seeded_param(&mut store, "x", 2, 5, 23);
    seeded_param(&mut store, "w", 2, 5, 24);
    let ids: Vec<_> = store.ids().collect();
    assert_grads_close(&mut store, EPS, TOL, |tape, store| {
        let x = tape.param(store, ids[0]);
        let w = tape.param(store, ids[1]);
        let s = tape.softmax(x);
        // Weighted so the gradient is not trivially zero.
        let prod = tape.hadamard(s, w);
        tape.sum_all(prod)
    });
}

#[test]
fn slice_cols_grads() {
    let mut store = ParamStore::new();
    seeded_param(&mut store, "a", 3, 6, 25);
    let ids: Vec<_> = store.ids().collect();
    assert_grads_close(&mut store, EPS, TOL, |tape, store| {
        let a = tape.param(store, ids[0]);
        let left = tape.slice_cols(a, 0, 2);
        let right = tape.slice_cols(a, 3, 6);
        let sq_l = tape.hadamard(left, left);
        let sum_l = tape.sum_all(sq_l);
        let sum_r = tape.mean_all(right);
        tape.add(sum_l, sum_r)
    });
}

#[test]
fn dot_attention_grads() {
    use traj_nn::layers::DotAttention;
    let mut rng = StdRng::seed_from_u64(26);
    let mut store = ParamStore::new();
    let attn = DotAttention::new(&mut store, "attn", 3, &mut rng);
    seeded_param(&mut store, "q", 2, 3, 27);
    seeded_param(&mut store, "e0", 2, 3, 28);
    seeded_param(&mut store, "e1", 2, 3, 29);
    let ids: Vec<_> = store.ids().collect();
    let n = ids.len();
    assert_grads_close(&mut store, EPS, TOL, move |tape, store| {
        let q = tape.param(store, ids[n - 3]);
        let e0 = tape.param(store, ids[n - 2]);
        let e1 = tape.param(store, ids[n - 1]);
        let out = attn.attend(tape, store, q, &[e0, e1]);
        let sq = tape.hadamard(out, out);
        tape.sum_all(sq)
    });
}
