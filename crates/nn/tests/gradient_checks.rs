//! Finite-difference validation of every autograd op and layer.
//!
//! Uses f32 central differences with eps = 1e-2 and a 2e-2 relative
//! tolerance — loose enough for single precision, tight enough to catch any
//! sign/transpose/factor-of-two mistake in a backward rule.

use rand::rngs::StdRng;
use rand::SeedableRng;
use traj_nn::gradcheck::assert_grads_close;
use traj_nn::init::Init;
use traj_nn::layers::{Embedding, Gru, GruCell, Linear};
use traj_nn::tape::{student_t_assignment, target_distribution};
use traj_nn::{ParamStore, Tensor};

const EPS: f32 = 1e-2;
const TOL: f32 = 2e-2;

fn seeded_param(store: &mut ParamStore, name: &str, rows: usize, cols: usize, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    store.add_init(name, rows, cols, Init::Uniform(0.8), &mut rng);
}

#[test]
fn matmul_grads() {
    let mut store = ParamStore::new();
    seeded_param(&mut store, "a", 3, 4, 1);
    seeded_param(&mut store, "b", 4, 2, 2);
    let ids: Vec<_> = store.ids().collect();
    assert_grads_close(&mut store, EPS, TOL, |tape, store| {
        let a = tape.param(store, ids[0]);
        let b = tape.param(store, ids[1]);
        let c = tape.matmul(a, b);
        tape.mean_all(c)
    });
}

#[test]
fn add_sub_hadamard_grads() {
    let mut store = ParamStore::new();
    seeded_param(&mut store, "a", 2, 3, 3);
    seeded_param(&mut store, "b", 2, 3, 4);
    let ids: Vec<_> = store.ids().collect();
    assert_grads_close(&mut store, EPS, TOL, |tape, store| {
        let a = tape.param(store, ids[0]);
        let b = tape.param(store, ids[1]);
        let s = tape.add(a, b);
        let d = tape.sub(s, b);
        let h = tape.hadamard(d, b);
        tape.sum_all(h)
    });
}

#[test]
fn broadcast_and_affine_grads() {
    let mut store = ParamStore::new();
    seeded_param(&mut store, "m", 3, 2, 5);
    seeded_param(&mut store, "row", 1, 2, 6);
    let ids: Vec<_> = store.ids().collect();
    assert_grads_close(&mut store, EPS, TOL, |tape, store| {
        let m = tape.param(store, ids[0]);
        let row = tape.param(store, ids[1]);
        let b = tape.add_row_broadcast(m, row);
        let a = tape.affine(b, 1.7, -0.3);
        tape.mean_all(a)
    });
}

#[test]
fn sigmoid_tanh_grads() {
    let mut store = ParamStore::new();
    seeded_param(&mut store, "x", 2, 4, 7);
    let ids: Vec<_> = store.ids().collect();
    assert_grads_close(&mut store, EPS, TOL, |tape, store| {
        let x = tape.param(store, ids[0]);
        let s = tape.sigmoid(x);
        let t = tape.tanh(s);
        tape.sum_all(t)
    });
}

#[test]
fn concat_grads() {
    let mut store = ParamStore::new();
    seeded_param(&mut store, "a", 2, 2, 8);
    seeded_param(&mut store, "b", 2, 3, 9);
    let ids: Vec<_> = store.ids().collect();
    assert_grads_close(&mut store, EPS, TOL, |tape, store| {
        let a = tape.param(store, ids[0]);
        let b = tape.param(store, ids[1]);
        let c = tape.concat_cols(a, b);
        let sq = tape.hadamard(c, c);
        tape.mean_all(sq)
    });
}

#[test]
fn gather_rows_grads() {
    let mut store = ParamStore::new();
    seeded_param(&mut store, "table", 5, 3, 10);
    let ids: Vec<_> = store.ids().collect();
    assert_grads_close(&mut store, EPS, TOL, |tape, store| {
        let t = tape.param(store, ids[0]);
        let g = tape.gather_rows(t, &[0, 3, 3, 4]);
        let sq = tape.hadamard(g, g);
        tape.sum_all(sq)
    });
}

#[test]
fn weighted_softmax_nll_grads() {
    let mut store = ParamStore::new();
    seeded_param(&mut store, "logits", 3, 6, 11);
    let ids: Vec<_> = store.ids().collect();
    // kNN-style sparse targets: a few weighted cells per row, summing to 1.
    let targets = vec![
        vec![(0, 0.7), (1, 0.2), (2, 0.1)],
        vec![(3, 1.0)],
        vec![(4, 0.5), (5, 0.5)],
    ];
    assert_grads_close(&mut store, EPS, TOL, |tape, store| {
        let l = tape.param(store, ids[0]);
        tape.weighted_softmax_nll(l, targets.clone())
    });
}

#[test]
fn dec_kl_grads_wrt_embeddings_and_centroids() {
    let mut store = ParamStore::new();
    seeded_param(&mut store, "v", 6, 3, 12);
    seeded_param(&mut store, "c", 2, 3, 13);
    let ids: Vec<_> = store.ids().collect();
    // Fix the target distribution P from the initial Q (it is a constant
    // during each self-training interval, per the paper).
    let p = {
        let q = student_t_assignment(store.get(ids[0]), store.get(ids[1]));
        target_distribution(&q)
    };
    assert_grads_close(&mut store, EPS, TOL, |tape, store| {
        let v = tape.param(store, ids[0]);
        let c = tape.param(store, ids[1]);
        tape.dec_kl(v, c, p.clone())
    });
}

#[test]
fn triplet_grads() {
    let mut store = ParamStore::new();
    seeded_param(&mut store, "a", 4, 3, 14);
    seeded_param(&mut store, "p", 4, 3, 15);
    seeded_param(&mut store, "n", 4, 3, 16);
    let ids: Vec<_> = store.ids().collect();
    // Large margin so every triplet is active (the hinge is non-smooth at
    // the boundary, which would foil finite differences).
    assert_grads_close(&mut store, EPS, TOL, |tape, store| {
        let a = tape.param(store, ids[0]);
        let p = tape.param(store, ids[1]);
        let n = tape.param(store, ids[2]);
        tape.triplet(a, p, n, 50.0)
    });
}

#[test]
fn linear_layer_grads() {
    let mut rng = StdRng::seed_from_u64(17);
    let mut store = ParamStore::new();
    let layer = Linear::new(&mut store, "fc", 3, 2, true, &mut rng);
    let x = Tensor::from_rows(&[vec![0.3, -0.2, 0.5], vec![-0.4, 0.8, 0.1]]);
    assert_grads_close(&mut store, EPS, TOL, move |tape, store| {
        let xv = tape.constant(x.clone());
        let y = layer.forward(tape, store, xv);
        let sq = tape.hadamard(y, y);
        tape.mean_all(sq)
    });
}

#[test]
fn embedding_layer_grads() {
    let mut rng = StdRng::seed_from_u64(18);
    let mut store = ParamStore::new();
    let emb = Embedding::new(&mut store, "emb", 6, 4, &mut rng);
    assert_grads_close(&mut store, EPS, TOL, move |tape, store| {
        let e = emb.forward(tape, store, &[1, 1, 5]);
        let sq = tape.hadamard(e, e);
        tape.sum_all(sq)
    });
}

#[test]
fn gru_cell_grads() {
    let mut rng = StdRng::seed_from_u64(19);
    let mut store = ParamStore::new();
    let cell = GruCell::new(&mut store, "cell", 2, 3, &mut rng);
    let x = Tensor::from_rows(&[vec![0.5, -0.7]]);
    let h = Tensor::from_rows(&[vec![0.1, 0.2, -0.3]]);
    assert_grads_close(&mut store, EPS, TOL, move |tape, store| {
        let xv = tape.constant(x.clone());
        let hv = tape.constant(h.clone());
        let h2 = cell.step(tape, store, xv, hv);
        let sq = tape.hadamard(h2, h2);
        tape.sum_all(sq)
    });
}

#[test]
fn multilayer_gru_bptt_grads() {
    let mut rng = StdRng::seed_from_u64(20);
    let mut store = ParamStore::new();
    let gru = Gru::new(&mut store, "gru", 2, 3, 2, &mut rng);
    let inputs: Vec<Tensor> = (0..4)
        .map(|t| Tensor::from_rows(&[vec![0.2 * t as f32, -0.1 * t as f32]]))
        .collect();
    assert_grads_close(&mut store, EPS, TOL, move |tape, store| {
        let mut state = gru.zero_state(tape, 1);
        let mut rng2 = StdRng::seed_from_u64(0);
        let mut last = None;
        for x in &inputs {
            let xv = tape.constant(x.clone());
            last = Some(gru.step(tape, store, xv, &mut state, false, &mut rng2));
        }
        let h = last.expect("non-empty sequence");
        let sq = tape.hadamard(h, h);
        tape.sum_all(sq)
    });
}

#[test]
fn row_sum_and_col_broadcast_grads() {
    let mut store = ParamStore::new();
    seeded_param(&mut store, "m", 3, 4, 21);
    seeded_param(&mut store, "col_src", 3, 4, 22);
    let ids: Vec<_> = store.ids().collect();
    assert_grads_close(&mut store, EPS, TOL, |tape, store| {
        let m = tape.param(store, ids[0]);
        let c_src = tape.param(store, ids[1]);
        let col = tape.row_sum(c_src);
        let scaled = tape.col_broadcast_mul(m, col);
        tape.mean_all(scaled)
    });
}

#[test]
fn softmax_grads() {
    let mut store = ParamStore::new();
    seeded_param(&mut store, "x", 2, 5, 23);
    seeded_param(&mut store, "w", 2, 5, 24);
    let ids: Vec<_> = store.ids().collect();
    assert_grads_close(&mut store, EPS, TOL, |tape, store| {
        let x = tape.param(store, ids[0]);
        let w = tape.param(store, ids[1]);
        let s = tape.softmax(x);
        // Weighted so the gradient is not trivially zero.
        let prod = tape.hadamard(s, w);
        tape.sum_all(prod)
    });
}

#[test]
fn slice_cols_grads() {
    let mut store = ParamStore::new();
    seeded_param(&mut store, "a", 3, 6, 25);
    let ids: Vec<_> = store.ids().collect();
    assert_grads_close(&mut store, EPS, TOL, |tape, store| {
        let a = tape.param(store, ids[0]);
        let left = tape.slice_cols(a, 0, 2);
        let right = tape.slice_cols(a, 3, 6);
        let sq_l = tape.hadamard(left, left);
        let sum_l = tape.sum_all(sq_l);
        let sum_r = tape.mean_all(right);
        tape.add(sum_l, sum_r)
    });
}

#[test]
fn dot_attention_grads() {
    use traj_nn::layers::DotAttention;
    let mut rng = StdRng::seed_from_u64(26);
    let mut store = ParamStore::new();
    let attn = DotAttention::new(&mut store, "attn", 3, &mut rng);
    seeded_param(&mut store, "q", 2, 3, 27);
    seeded_param(&mut store, "e0", 2, 3, 28);
    seeded_param(&mut store, "e1", 2, 3, 29);
    let ids: Vec<_> = store.ids().collect();
    let n = ids.len();
    assert_grads_close(&mut store, EPS, TOL, move |tape, store| {
        let q = tape.param(store, ids[n - 3]);
        let e0 = tape.param(store, ids[n - 2]);
        let e1 = tape.param(store, ids[n - 1]);
        let out = attn.attend(tape, store, q, &[e0, e1]);
        let sq = tape.hadamard(out, out);
        tape.sum_all(sq)
    });
}

/// The fused-gate cell must be mathematically identical to the textbook
/// unfused formulation. Builds the unfused graph from primitive ops with
/// per-gate weights sliced out of the fused tensors, and compares both the
/// forward output and every parameter gradient block.
#[test]
fn fused_gru_matches_unfused_reference() {
    use traj_nn::tape::Tape;

    let (input, hidden, batch) = (3usize, 4usize, 2usize);
    let mut rng = StdRng::seed_from_u64(30);
    let mut store = ParamStore::new();
    let cell = GruCell::new(&mut store, "cell", input, hidden, &mut rng);

    // Give the biases non-trivial values so their gradients are exercised
    // at a generic point. The r/z blocks of b_h stay zero — that is the
    // fused encoding of the unfused form, which has no such biases.
    {
        let mut bias_rng = StdRng::seed_from_u64(31);
        let bx = Init::Uniform(0.5).tensor(1, 3 * hidden, &mut bias_rng);
        *store.get_mut(cell.b_x()) = bx;
        let bh = store.get_mut(cell.b_h());
        for c in 2 * hidden..3 * hidden {
            bh.set(0, c, 0.3 * (c as f32 - 10.0) / 4.0);
        }
    }

    let x = Init::Uniform(0.9).tensor(batch, input, &mut StdRng::seed_from_u64(32));
    let h0 = Init::Uniform(0.9).tensor(batch, hidden, &mut StdRng::seed_from_u64(33));

    // --- fused pass ---
    let mut tape = Tape::new();
    let xv = tape.constant(x.clone());
    let hv = tape.constant(h0.clone());
    let h1 = cell.step(&mut tape, &store, xv, hv);
    let fused_out = tape.value(h1).clone();
    let loss = tape.mean_all(h1);
    tape.backward(loss, &mut store);

    let col_block = |t: &Tensor, lo: usize, hi: usize| -> Tensor {
        let mut out = Tensor::zeros(t.rows(), hi - lo);
        for r in 0..t.rows() {
            out.row_mut(r).copy_from_slice(&t.row(r)[lo..hi]);
        }
        out
    };
    let h3 = 3 * hidden;
    let wx = store.get(cell.w_x()).clone();
    let wh = store.get(cell.w_h()).clone();
    let bx = store.get(cell.b_x()).clone();
    let bh = store.get(cell.b_h()).clone();

    // --- unfused reference: per-gate params carved out of the fused ones ---
    let mut rstore = ParamStore::new();
    let w_xr = rstore.add("w_xr", col_block(&wx, 0, hidden));
    let w_xz = rstore.add("w_xz", col_block(&wx, hidden, 2 * hidden));
    let w_xn = rstore.add("w_xn", col_block(&wx, 2 * hidden, h3));
    let w_hr = rstore.add("w_hr", col_block(&wh, 0, hidden));
    let w_hz = rstore.add("w_hz", col_block(&wh, hidden, 2 * hidden));
    let w_hn = rstore.add("w_hn", col_block(&wh, 2 * hidden, h3));
    let b_r = rstore.add("b_r", col_block(&bx, 0, hidden));
    let b_z = rstore.add("b_z", col_block(&bx, hidden, 2 * hidden));
    let b_xn = rstore.add("b_xn", col_block(&bx, 2 * hidden, h3));
    let b_hn = rstore.add("b_hn", col_block(&bh, 2 * hidden, h3));

    let mut rtape = Tape::new();
    let xv = rtape.constant(x);
    let hv = rtape.constant(h0);
    let gate = |tape: &mut Tape, store: &ParamStore, wxi, whi, bi| {
        let wxv = tape.param(store, wxi);
        let whv = tape.param(store, whi);
        let bv = tape.param(store, bi);
        let xs = tape.matmul(xv, wxv);
        let hs = tape.matmul(hv, whv);
        let sum = tape.add(xs, hs);
        tape.add_row_broadcast(sum, bv)
    };
    let r_pre = gate(&mut rtape, &rstore, w_xr, w_hr, b_r);
    let r = rtape.sigmoid(r_pre);
    let z_pre = gate(&mut rtape, &rstore, w_xz, w_hz, b_z);
    let z = rtape.sigmoid(z_pre);
    let wxnv = rtape.param(&rstore, w_xn);
    let bxnv = rtape.param(&rstore, b_xn);
    let whnv = rtape.param(&rstore, w_hn);
    let bhnv = rtape.param(&rstore, b_hn);
    let xn = rtape.matmul(xv, wxnv);
    let xn = rtape.add_row_broadcast(xn, bxnv);
    let hn = rtape.matmul(hv, whnv);
    let hn = rtape.add_row_broadcast(hn, bhnv);
    let rh = rtape.hadamard(r, hn);
    let n_pre = rtape.add(xn, rh);
    let n = rtape.tanh(n_pre);
    let omz = rtape.one_minus(z);
    let a = rtape.hadamard(omz, n);
    let b = rtape.hadamard(z, hv);
    let h1_ref = rtape.add(a, b);
    let ref_out = rtape.value(h1_ref).clone();
    let rloss = rtape.mean_all(h1_ref);
    rtape.backward(rloss, &mut rstore);

    // Forward outputs agree.
    for (f, r) in fused_out.data().iter().zip(ref_out.data()) {
        assert!((f - r).abs() < 1e-6, "fused forward {f} vs unfused {r}");
    }

    // Each fused gradient block agrees with its per-gate counterpart.
    let assert_block = |fused: &Tensor, lo: usize, hi: usize, reference: &Tensor, what: &str| {
        let block = col_block(fused, lo, hi);
        for (i, (f, r)) in block.data().iter().zip(reference.data()).enumerate() {
            assert!((f - r).abs() < 1e-3, "{what} grad mismatch at {i}: fused {f} vs unfused {r}");
        }
    };
    let gwx = store.grad(cell.w_x()).clone();
    let gwh = store.grad(cell.w_h()).clone();
    let gbx = store.grad(cell.b_x()).clone();
    let gbh = store.grad(cell.b_h()).clone();
    assert_block(&gwx, 0, hidden, rstore.grad(w_xr), "w_xr");
    assert_block(&gwx, hidden, 2 * hidden, rstore.grad(w_xz), "w_xz");
    assert_block(&gwx, 2 * hidden, h3, rstore.grad(w_xn), "w_xn");
    assert_block(&gwh, 0, hidden, rstore.grad(w_hr), "w_hr");
    assert_block(&gwh, hidden, 2 * hidden, rstore.grad(w_hz), "w_hz");
    assert_block(&gwh, 2 * hidden, h3, rstore.grad(w_hn), "w_hn");
    assert_block(&gbx, 0, hidden, rstore.grad(b_r), "b_r");
    assert_block(&gbx, hidden, 2 * hidden, rstore.grad(b_z), "b_z");
    assert_block(&gbx, 2 * hidden, h3, rstore.grad(b_xn), "b_xn");
    assert_block(&gbh, 2 * hidden, h3, rstore.grad(b_hn), "b_hn");
    // The r/z blocks of b_h feed the same pre-activations as b_x's, so
    // their gradients must match b_r / b_z as well.
    assert_block(&gbh, 0, hidden, rstore.grad(b_r), "b_h[r]");
    assert_block(&gbh, hidden, 2 * hidden, rstore.grad(b_z), "b_h[z]");
}
