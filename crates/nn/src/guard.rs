//! Non-finite training guards.
//!
//! DEC-style self-training objectives are numerically touchy: one NaN
//! batch poisons every parameter it touches and silently destroys the
//! whole pretrain + self-training investment. [`NonFiniteGuard`] sits
//! between `backward` and the optimizer step: it inspects the batch loss
//! and every accumulated gradient, and tells the training loop whether to
//! apply the update ([`GuardVerdict::Proceed`]), drop the poisoned update
//! ([`GuardVerdict::Skip`]), or — after too many consecutive poisoned
//! batches — restore the last known-good parameter snapshot
//! ([`GuardVerdict::Rollback`]).
//!
//! The guard itself never mutates parameters; skipping and rolling back
//! are the caller's job (it owns the snapshot). This keeps the guard a
//! pure detector that any training loop can adopt.

use crate::params::ParamStore;

/// What the training loop should do with the current batch's update.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GuardVerdict {
    /// Loss and gradients are finite: apply the optimizer step.
    Proceed,
    /// Non-finite loss or gradient: zero the gradients and skip the step.
    Skip,
    /// `patience` consecutive poisoned batches: restore the last good
    /// snapshot (and back off the learning rate) before continuing.
    Rollback,
}

/// Per-batch NaN/Inf detector with consecutive-trip escalation.
#[derive(Clone, Debug)]
pub struct NonFiniteGuard {
    /// Consecutive poisoned batches that trigger a rollback; `0` disables
    /// escalation (the guard only ever skips).
    patience: usize,
    consecutive: usize,
    skipped: usize,
    rollbacks: usize,
}

impl NonFiniteGuard {
    /// Creates a guard that requests a rollback after `patience`
    /// consecutive non-finite batches (`0` = skip-only, never roll back).
    pub fn new(patience: usize) -> Self {
        Self { patience, consecutive: 0, skipped: 0, rollbacks: 0 }
    }

    /// Inspects one batch: `loss` is the scalar training loss, `store`
    /// holds the gradients accumulated by `backward`. Must be called
    /// after `backward` and before the optimizer step.
    pub fn observe(&mut self, loss: f32, store: &ParamStore) -> GuardVerdict {
        if loss.is_finite() && !store.grads_non_finite() {
            self.consecutive = 0;
            return GuardVerdict::Proceed;
        }
        self.skipped += 1;
        self.consecutive += 1;
        if self.patience > 0 && self.consecutive >= self.patience {
            self.consecutive = 0;
            self.rollbacks += 1;
            GuardVerdict::Rollback
        } else {
            GuardVerdict::Skip
        }
    }

    /// Clears the consecutive-trip counter (call after restoring a
    /// snapshot, so the replayed epoch starts with a clean slate).
    pub fn reset_streak(&mut self) {
        self.consecutive = 0;
    }

    /// Total batches skipped over the guard's lifetime.
    pub fn skipped(&self) -> usize {
        self.skipped
    }

    /// Total rollbacks requested over the guard's lifetime.
    pub fn rollbacks(&self) -> usize {
        self.rollbacks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;

    fn store_with_grad(g: f32) -> ParamStore {
        let mut store = ParamStore::new();
        let id = store.add("w", Tensor::zeros(1, 1));
        store.grad_mut(id).set(0, 0, g);
        store
    }

    #[test]
    fn finite_batch_proceeds() {
        let mut guard = NonFiniteGuard::new(3);
        let store = store_with_grad(0.5);
        assert_eq!(guard.observe(1.0, &store), GuardVerdict::Proceed);
        assert_eq!(guard.skipped(), 0);
    }

    #[test]
    fn nan_loss_skips() {
        let mut guard = NonFiniteGuard::new(3);
        let store = store_with_grad(0.5);
        assert_eq!(guard.observe(f32::NAN, &store), GuardVerdict::Skip);
        assert_eq!(guard.skipped(), 1);
    }

    #[test]
    fn inf_gradient_skips_even_with_finite_loss() {
        let mut guard = NonFiniteGuard::new(3);
        let store = store_with_grad(f32::INFINITY);
        assert_eq!(guard.observe(1.0, &store), GuardVerdict::Skip);
    }

    #[test]
    fn patience_trips_rollback_and_resets() {
        let mut guard = NonFiniteGuard::new(3);
        let store = store_with_grad(0.5);
        assert_eq!(guard.observe(f32::NAN, &store), GuardVerdict::Skip);
        assert_eq!(guard.observe(f32::NAN, &store), GuardVerdict::Skip);
        assert_eq!(guard.observe(f32::NAN, &store), GuardVerdict::Rollback);
        assert_eq!(guard.rollbacks(), 1);
        // Streak restarts after the rollback.
        assert_eq!(guard.observe(f32::NAN, &store), GuardVerdict::Skip);
    }

    #[test]
    fn finite_batch_breaks_the_streak() {
        let mut guard = NonFiniteGuard::new(2);
        let store = store_with_grad(0.5);
        assert_eq!(guard.observe(f32::NAN, &store), GuardVerdict::Skip);
        assert_eq!(guard.observe(1.0, &store), GuardVerdict::Proceed);
        assert_eq!(guard.observe(f32::NAN, &store), GuardVerdict::Skip);
        assert_eq!(guard.observe(f32::NAN, &store), GuardVerdict::Rollback);
    }

    #[test]
    fn zero_patience_never_rolls_back() {
        let mut guard = NonFiniteGuard::new(0);
        let store = store_with_grad(0.5);
        for _ in 0..10 {
            assert_eq!(guard.observe(f32::NAN, &store), GuardVerdict::Skip);
        }
        assert_eq!(guard.rollbacks(), 0);
        assert_eq!(guard.skipped(), 10);
    }
}
