//! Trainable-parameter storage.
//!
//! Parameters live outside the autograd [`Tape`](crate::tape::Tape) so that a
//! fresh tape can be built per mini-batch while the weights (and their
//! accumulated gradients / optimizer state) persist across steps.

use crate::init::Init;
use crate::tensor::Tensor;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Opaque handle to a parameter inside a [`ParamStore`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ParamId(pub(crate) usize);

impl ParamId {
    /// Index of the parameter inside its store.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Container for all trainable tensors of a model plus their gradients.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ParamStore {
    params: Vec<Tensor>,
    grads: Vec<Tensor>,
    names: Vec<String>,
}

impl ParamStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a tensor as a trainable parameter.
    pub fn add(&mut self, name: impl Into<String>, tensor: Tensor) -> ParamId {
        let id = ParamId(self.params.len());
        self.grads.push(Tensor::zeros(tensor.rows(), tensor.cols()));
        self.params.push(tensor);
        self.names.push(name.into());
        id
    }

    /// Registers a randomly-initialized parameter.
    pub fn add_init(
        &mut self,
        name: impl Into<String>,
        rows: usize,
        cols: usize,
        init: Init,
        rng: &mut impl Rng,
    ) -> ParamId {
        self.add(name, init.tensor(rows, cols, rng))
    }

    /// Number of registered parameters (tensors, not scalars).
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// True when no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Total number of scalar weights.
    pub fn num_scalars(&self) -> usize {
        self.params.iter().map(Tensor::len).sum()
    }

    /// Immutable access to a parameter value.
    pub fn get(&self, id: ParamId) -> &Tensor {
        &self.params[id.0]
    }

    /// Mutable access to a parameter value.
    pub fn get_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.params[id.0]
    }

    /// Immutable access to a parameter's accumulated gradient.
    pub fn grad(&self, id: ParamId) -> &Tensor {
        &self.grads[id.0]
    }

    /// Mutable access to a parameter's accumulated gradient.
    pub fn grad_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.grads[id.0]
    }

    /// Name given at registration time.
    pub fn name(&self, id: ParamId) -> &str {
        &self.names[id.0]
    }

    /// All parameter handles in registration order.
    pub fn ids(&self) -> impl Iterator<Item = ParamId> {
        (0..self.params.len()).map(ParamId)
    }

    /// Resets every gradient to zero. Call once per optimization step.
    pub fn zero_grads(&mut self) {
        for g in &mut self.grads {
            g.fill(0.0);
        }
    }

    /// Global L2 norm over all gradients (used for max-norm clipping).
    pub fn grad_global_norm(&self) -> f32 {
        self.grads
            .iter()
            .map(|g| g.data().iter().map(|&x| x * x).sum::<f32>())
            .sum::<f32>()
            .sqrt()
    }

    /// True when any accumulated gradient holds a NaN or infinity.
    pub fn grads_non_finite(&self) -> bool {
        self.grads.iter().any(Tensor::has_non_finite)
    }

    /// Name of the first parameter whose *value* holds a NaN or infinity,
    /// if any (used to validate loaded checkpoints).
    pub fn first_non_finite_param(&self) -> Option<&str> {
        self.params
            .iter()
            .position(Tensor::has_non_finite)
            .map(|i| self.names[i].as_str())
    }

    /// Scales every gradient so the global norm does not exceed `max_norm`.
    ///
    /// This is the "clip the gradients by enforcing a maximum gradient norm
    /// constraint" step from the paper's training parameters (set to 5).
    /// Returns the pre-clip norm.
    pub fn clip_grad_norm(&mut self, max_norm: f32) -> f32 {
        let norm = self.grad_global_norm();
        if norm > max_norm && norm > 0.0 {
            let scale = max_norm / norm;
            for g in &mut self.grads {
                for x in g.data_mut() {
                    *x *= scale;
                }
            }
        }
        norm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_lookup_roundtrip() {
        let mut store = ParamStore::new();
        let id = store.add("w", Tensor::from_rows(&[vec![1.0, 2.0]]));
        assert_eq!(store.get(id).get(0, 1), 2.0);
        assert_eq!(store.name(id), "w");
        assert_eq!(store.grad(id).shape(), (1, 2));
        assert_eq!(store.num_scalars(), 2);
    }

    #[test]
    fn zero_grads_clears_accumulation() {
        let mut store = ParamStore::new();
        let id = store.add("w", Tensor::zeros(1, 2));
        store.grad_mut(id).set(0, 0, 3.0);
        store.zero_grads();
        assert_eq!(store.grad(id).get(0, 0), 0.0);
    }

    #[test]
    fn clip_grad_norm_scales_to_max() {
        let mut store = ParamStore::new();
        let id = store.add("w", Tensor::zeros(1, 2));
        store.grad_mut(id).set(0, 0, 3.0);
        store.grad_mut(id).set(0, 1, 4.0);
        let pre = store.clip_grad_norm(1.0);
        assert!((pre - 5.0).abs() < 1e-6);
        assert!((store.grad_global_norm() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn clip_grad_norm_is_noop_under_threshold() {
        let mut store = ParamStore::new();
        let id = store.add("w", Tensor::zeros(1, 1));
        store.grad_mut(id).set(0, 0, 0.5);
        store.clip_grad_norm(5.0);
        assert_eq!(store.grad(id).get(0, 0), 0.5);
    }
}
