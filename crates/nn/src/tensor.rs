//! Dense row-major 2-D `f32` tensor.
//!
//! Everything in the E²DTC training stack is expressible with 2-D tensors:
//! a batch of hidden states is `(batch, hidden)`, an embedding table is
//! `(vocab, dim)`, a single vector is `(1, dim)`. Keeping the representation
//! flat and two-dimensional keeps the hot loops simple enough for the
//! compiler to vectorize.

use serde::{Deserialize, Serialize};

/// A dense row-major matrix of `f32` values.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a tensor filled with a constant.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self { rows, cols, data: vec![value; rows * cols] }
    }

    /// Creates a tensor from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match shape ({rows}, {cols})",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Creates a `(1, n)` row vector.
    pub fn row_vector(data: Vec<f32>) -> Self {
        let cols = data.len();
        Self { rows: 1, cols, data }
    }

    /// Creates a tensor from nested rows (convenient in tests).
    ///
    /// # Panics
    /// Panics if the rows are ragged.
    pub fn from_rows(rows: &[Vec<f32>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Self { rows: r, cols: c, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the flat row-major buffer.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the flat row-major buffer.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Immutable view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Fills every element with `value`.
    pub fn fill(&mut self, value: f32) {
        self.data.fill(value);
    }

    /// Matrix product `self @ other`.
    ///
    /// Straightforward ikj-ordered triple loop: the inner loop runs over
    /// contiguous memory in both the output row and the `other` row, which
    /// auto-vectorizes well at the (≤ a few hundred) dimensions used here.
    ///
    /// # Panics
    /// Panics on an inner-dimension mismatch.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: ({}, {}) @ ({}, {})",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Tensor::zeros(self.rows, other.cols);
        let n = other.cols;
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = out.row_mut(i);
            for (k, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = &other.data[k * n..(k + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self^T @ other` without materializing the transpose.
    pub fn matmul_tn(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.rows, other.rows,
            "matmul_tn shape mismatch: ({}, {})^T @ ({}, {})",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Tensor::zeros(self.cols, other.cols);
        let n = other.cols;
        for k in 0..self.rows {
            let a_row = self.row(k);
            let b_row = &other.data[k * n..(k + 1) * n];
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[i * n..(i + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self @ other^T` without materializing the transpose.
    pub fn matmul_nt(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.cols, other.cols,
            "matmul_nt shape mismatch: ({}, {}) @ ({}, {})^T",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Tensor::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = out.row_mut(i);
            for (j, o) in out_row.iter_mut().enumerate() {
                let b_row = other.row(j);
                let mut acc = 0.0;
                for (&a, &b) in a_row.iter().zip(b_row) {
                    acc += a * b;
                }
                *o = acc;
            }
        }
        out
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Element-wise map.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// In-place element-wise `self += other`.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "add_assign shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// In-place `self += scale * other`.
    pub fn add_scaled(&mut self, other: &Tensor, scale: f32) {
        assert_eq!(self.shape(), other.shape(), "add_scaled shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += scale * b;
        }
    }

    /// Element-wise sum, returning a new tensor.
    pub fn add(&self, other: &Tensor) -> Tensor {
        let mut out = self.clone();
        out.add_assign(other);
        out
    }

    /// Element-wise difference.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape(), other.shape(), "sub shape mismatch");
        let mut out = self.clone();
        for (a, &b) in out.data.iter_mut().zip(&other.data) {
            *a -= b;
        }
        out
    }

    /// Element-wise (Hadamard) product.
    pub fn hadamard(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape(), other.shape(), "hadamard shape mismatch");
        let mut out = self.clone();
        for (a, &b) in out.data.iter_mut().zip(&other.data) {
            *a *= b;
        }
        out
    }

    /// Scalar multiple.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|x| x * s)
    }

    /// Adds a `(1, cols)` row vector to every row.
    pub fn add_row_broadcast(&self, row: &Tensor) -> Tensor {
        assert_eq!(row.rows, 1, "broadcast operand must be a row vector");
        assert_eq!(row.cols, self.cols, "broadcast width mismatch");
        let mut out = self.clone();
        for r in 0..out.rows {
            let dst = &mut out.data[r * out.cols..(r + 1) * out.cols];
            for (d, &b) in dst.iter_mut().zip(&row.data) {
                *d += b;
            }
        }
        out
    }

    /// Sum over rows, producing a `(1, cols)` row vector.
    pub fn sum_rows(&self) -> Tensor {
        let mut out = Tensor::zeros(1, self.cols);
        for r in 0..self.rows {
            let src = self.row(r);
            for (o, &x) in out.data.iter_mut().zip(src) {
                *o += x;
            }
        }
        out
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Frobenius (L2) norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum::<f32>().sqrt()
    }

    /// Squared L2 distance between row `r` of `self` and row `s` of `other`.
    pub fn row_sq_dist(&self, r: usize, other: &Tensor, s: usize) -> f32 {
        assert_eq!(self.cols, other.cols, "row_sq_dist width mismatch");
        self.row(r)
            .iter()
            .zip(other.row(s))
            .map(|(&a, &b)| {
                let d = a - b;
                d * d
            })
            .sum()
    }

    /// Horizontal concatenation `[self | other]`.
    pub fn concat_cols(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rows, other.rows, "concat_cols row mismatch");
        let mut out = Tensor::zeros(self.rows, self.cols + other.cols);
        for r in 0..self.rows {
            let dst = out.row_mut(r);
            dst[..self.cols].copy_from_slice(self.row(r));
            dst[self.cols..].copy_from_slice(other.row(r));
        }
        out
    }

    /// Vertical concatenation (stacking rows).
    pub fn concat_rows(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.cols, other.cols, "concat_rows col mismatch");
        let mut data = Vec::with_capacity(self.data.len() + other.data.len());
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Tensor { rows: self.rows + other.rows, cols: self.cols, data }
    }

    /// Copies the given rows into a new tensor (gather).
    pub fn gather_rows(&self, indices: &[usize]) -> Tensor {
        let mut out = Tensor::zeros(indices.len(), self.cols);
        for (i, &idx) in indices.iter().enumerate() {
            assert!(idx < self.rows, "gather_rows index {idx} out of range {}", self.rows);
            out.row_mut(i).copy_from_slice(self.row(idx));
        }
        out
    }

    /// Row-wise softmax, numerically stabilized by the row max.
    pub fn softmax_rows(&self) -> Tensor {
        let mut out = self.clone();
        for r in 0..out.rows {
            softmax_in_place(out.row_mut(r));
        }
        out
    }

    /// True when any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|x| !x.is_finite())
    }
}

/// Numerically-stable in-place softmax over a slice.
pub fn softmax_in_place(row: &mut [f32]) {
    if row.is_empty() {
        return;
    }
    let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for x in row.iter_mut() {
        *x = (*x - max).exp();
        sum += *x;
    }
    if sum > 0.0 {
        for x in row.iter_mut() {
            *x /= sum;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_expected_shape_and_content() {
        let t = Tensor::zeros(2, 3);
        assert_eq!(t.shape(), (2, 3));
        assert!(t.data().iter().all(|&x| x == 0.0));
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_rejects_wrong_length() {
        let _ = Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Tensor::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Tensor::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Tensor::from_rows(&[vec![19.0, 22.0], vec![43.0, 50.0]]));
    }

    #[test]
    fn matmul_tn_equals_explicit_transpose() {
        let a = Tensor::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let b = Tensor::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0]]);
        assert_eq!(a.matmul_tn(&b), a.transpose().matmul(&b));
    }

    #[test]
    fn matmul_nt_equals_explicit_transpose() {
        let a = Tensor::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Tensor::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0], vec![9.0, 10.0]]);
        assert_eq!(a.matmul_nt(&b), a.matmul(&b.transpose()));
    }

    #[test]
    fn transpose_involution() {
        let a = Tensor::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let a = Tensor::from_rows(&[vec![1.0, 2.0, 3.0], vec![-10.0, 0.0, 10.0]]);
        let s = a.softmax_rows();
        for r in 0..2 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
            assert!(s.row(r).iter().all(|&p| p >= 0.0));
        }
    }

    #[test]
    fn softmax_is_stable_for_large_logits() {
        let a = Tensor::row_vector(vec![1000.0, 1000.0]);
        let s = a.softmax_rows();
        assert!((s.get(0, 0) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn broadcast_add_applies_row_to_each_row() {
        let a = Tensor::from_rows(&[vec![1.0, 1.0], vec![2.0, 2.0]]);
        let b = Tensor::row_vector(vec![10.0, 20.0]);
        let c = a.add_row_broadcast(&b);
        assert_eq!(c, Tensor::from_rows(&[vec![11.0, 21.0], vec![12.0, 22.0]]));
    }

    #[test]
    fn sum_rows_collapses_to_row_vector() {
        let a = Tensor::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(a.sum_rows(), Tensor::row_vector(vec![4.0, 6.0]));
    }

    #[test]
    fn gather_rows_copies_selected_rows() {
        let a = Tensor::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let g = a.gather_rows(&[2, 0, 2]);
        assert_eq!(g, Tensor::from_rows(&[vec![5.0, 6.0], vec![1.0, 2.0], vec![5.0, 6.0]]));
    }

    #[test]
    fn concat_cols_widths_add() {
        let a = Tensor::from_rows(&[vec![1.0], vec![2.0]]);
        let b = Tensor::from_rows(&[vec![3.0, 4.0], vec![5.0, 6.0]]);
        let c = a.concat_cols(&b);
        assert_eq!(c, Tensor::from_rows(&[vec![1.0, 3.0, 4.0], vec![2.0, 5.0, 6.0]]));
    }

    #[test]
    fn row_sq_dist_matches_manual() {
        let a = Tensor::from_rows(&[vec![0.0, 0.0], vec![3.0, 4.0]]);
        assert_eq!(a.row_sq_dist(0, &a, 1), 25.0);
    }

    #[test]
    fn norm_is_frobenius() {
        let a = Tensor::from_rows(&[vec![3.0, 0.0], vec![0.0, 4.0]]);
        assert!((a.norm() - 5.0).abs() < 1e-6);
    }
}
