//! Dense row-major 2-D `f32` tensor.
//!
//! Everything in the E²DTC training stack is expressible with 2-D tensors:
//! a batch of hidden states is `(batch, hidden)`, an embedding table is
//! `(vocab, dim)`, a single vector is `(1, dim)`. Keeping the representation
//! flat and two-dimensional keeps the hot loops simple enough for the
//! compiler to vectorize.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Multiply-add count above which a matmul is split across the rayon pool.
///
/// Below this the whole product runs on the calling thread: pool dispatch
/// costs a few microseconds, so parallelising e.g. a GRU-step `(32, 48) @
/// (48, 144)` product (~220k madds, tens of microseconds of work) would
/// mostly buy overhead. The decoder vocabulary projection and the batched
/// backward products sit comfortably above the threshold.
const PAR_FLOP_THRESHOLD: usize = 1 << 19;

/// Output rows fused per pass in the register-blocked micro-kernels.
///
/// Grouping rows lets one streamed load of a `b` row feed several
/// accumulator rows. Per output element the `k` accumulation order is
/// unchanged, so any row grouping produces bit-identical results.
const MR: usize = 4;

/// Output columns per register tile in the matmul micro-kernels. An
/// `MR x NR` f32 accumulator block (4x16) fits comfortably in SIMD
/// registers on AVX2 and AVX-512.
const NR: usize = 16;

/// Square tile edge for the cache-blocked transpose.
const TRANSPOSE_BLOCK: usize = 32;

/// Branch-free single-precision `e^x` (Cephes polynomial over a reduced
/// range plus an exponent rebuild through the float bit pattern).
///
/// Accurate to ~2 ulp over the finite range and clamped outside it. Every
/// step is a SIMD-friendly primitive, so `map`-style loops over a buffer
/// auto-vectorize where libm's `expf` would stay a scalar call.
#[inline]
pub(crate) fn fast_exp(x: f32) -> f32 {
    let x = x.clamp(-88.376_26, 88.376_26);
    let fx = (x * std::f32::consts::LOG2_E + 0.5).floor();
    // Two-part ln(2) split keeps the range reduction exact in f32.
    let x = x - fx * 0.693_359_4 - fx * -2.121_944_4e-4;
    let z = x * x;
    let mut y = 1.987_569_2e-4f32;
    y = y * x + 1.398_199_9e-3;
    y = y * x + 8.333_452e-3;
    y = y * x + 4.166_579_6e-2;
    y = y * x + 1.666_666_5e-1;
    y = y * x + 5e-1;
    y = y * z + x + 1.0;
    let pow2n = f32::from_bits((((fx as i32) + 127) << 23) as u32);
    y * pow2n
}

/// Logistic sigmoid built on [`fast_exp`].
#[inline]
pub(crate) fn fast_sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + fast_exp(-x))
}

/// `tanh` built on [`fast_exp`]: `1 − 2 / (e^{2x} + 1)`.
///
/// Absolute error stays at the ~1e-7 level everywhere (the formulation
/// avoids computing `e^{2x} − 1`, so there is no cancellation blow-up
/// near zero), which is below f32 round-off noise for network activations.
#[inline]
pub(crate) fn fast_tanh(x: f32) -> f32 {
    1.0 - 2.0 / (fast_exp(2.0 * x) + 1.0)
}

/// Row count per parallel task: a multiple of [`MR`], sized for a few
/// tasks per worker so the atomic-counter scheduler can balance load.
fn par_row_chunk(m: usize) -> usize {
    let threads = rayon::current_num_threads().max(1);
    let target = m.div_ceil(threads * 2).max(1);
    target.div_ceil(MR) * MR
}

/// Computes a block of output rows of `A @ B` into `out`.
///
/// `a` holds the matching rows of `A` (`out.len() / n` rows of `k_dim`
/// values); `b` is all of `B` (`k_dim x n`). Each output element
/// accumulates over `k` in increasing order with one fused
/// multiply-per-step, so serial, tiled and row-parallel invocations agree
/// bit-for-bit.
fn mm_nn_block(a: &[f32], k_dim: usize, b: &[f32], n: usize, out: &mut [f32]) {
    if n == 0 {
        return;
    }
    let rows = out.len() / n;
    let mut r = 0;
    while r + MR <= rows {
        // Full MR x NR tiles: the 4x16 accumulator block lives in
        // registers across the whole k loop, so output elements are
        // touched once instead of read-modified-written per k step.
        let mut j = 0;
        while j + NR <= n {
            let mut acc = [[0.0f32; NR]; MR];
            for k in 0..k_dim {
                let bv = &b[k * n + j..k * n + j + NR];
                for (i, acc_row) in acc.iter_mut().enumerate() {
                    let c = a[(r + i) * k_dim + k];
                    for (slot, &bx) in acc_row.iter_mut().zip(bv) {
                        *slot += c * bx;
                    }
                }
            }
            for (i, acc_row) in acc.iter().enumerate() {
                let dst = &mut out[(r + i) * n + j..(r + i) * n + j + NR];
                for (o, &v) in dst.iter_mut().zip(acc_row) {
                    *o += v;
                }
            }
            j += NR;
        }
        // Ragged column tail: stream b rows through the remaining columns.
        if j < n {
            for k in 0..k_dim {
                let b_tail = &b[k * n + j..(k + 1) * n];
                for i in 0..MR {
                    let c = a[(r + i) * k_dim + k];
                    let dst = &mut out[(r + i) * n + j..(r + i + 1) * n];
                    for (o, &bv) in dst.iter_mut().zip(b_tail) {
                        *o += c * bv;
                    }
                }
            }
        }
        r += MR;
    }
    while r < rows {
        let out_row = &mut out[r * n..(r + 1) * n];
        let a_row = &a[r * k_dim..(r + 1) * k_dim];
        for (k, &c) in a_row.iter().enumerate() {
            let b_row = &b[k * n..(k + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += c * bv;
            }
        }
        r += 1;
    }
}

/// Computes output rows `[row0, row0 + out.len() / n)` of `A^T @ B` into
/// `out`, where `a` is the untransposed `(k_dim, a_cols)` matrix.
///
/// Same register blocking and `k` ordering as [`mm_nn_block`]; the
/// coefficients are just gathered down a column of `a` instead of along a
/// row.
fn mm_tn_block(a: &[f32], a_cols: usize, row0: usize, k_dim: usize, b: &[f32], n: usize, out: &mut [f32]) {
    if n == 0 {
        return;
    }
    let rows = out.len() / n;
    let mut r = 0;
    while r + MR <= rows {
        let mut j = 0;
        while j + NR <= n {
            let mut acc = [[0.0f32; NR]; MR];
            for k in 0..k_dim {
                let bv = &b[k * n + j..k * n + j + NR];
                let base = k * a_cols + row0 + r;
                for (i, acc_row) in acc.iter_mut().enumerate() {
                    let c = a[base + i];
                    for (slot, &bx) in acc_row.iter_mut().zip(bv) {
                        *slot += c * bx;
                    }
                }
            }
            for (i, acc_row) in acc.iter().enumerate() {
                let dst = &mut out[(r + i) * n + j..(r + i) * n + j + NR];
                for (o, &v) in dst.iter_mut().zip(acc_row) {
                    *o += v;
                }
            }
            j += NR;
        }
        if j < n {
            for k in 0..k_dim {
                let b_tail = &b[k * n + j..(k + 1) * n];
                let base = k * a_cols + row0 + r;
                for i in 0..MR {
                    let c = a[base + i];
                    let dst = &mut out[(r + i) * n + j..(r + i + 1) * n];
                    for (o, &bv) in dst.iter_mut().zip(b_tail) {
                        *o += c * bv;
                    }
                }
            }
        }
        r += MR;
    }
    while r < rows {
        let out_row = &mut out[r * n..(r + 1) * n];
        for k in 0..k_dim {
            let c = a[k * a_cols + row0 + r];
            let b_row = &b[k * n..(k + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += c * bv;
            }
        }
        r += 1;
    }
}

/// A dense row-major matrix of `f32` values.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a tensor filled with a constant.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self { rows, cols, data: vec![value; rows * cols] }
    }

    /// Creates a tensor from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match shape ({rows}, {cols})",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Creates a `(1, n)` row vector.
    pub fn row_vector(data: Vec<f32>) -> Self {
        let cols = data.len();
        Self { rows: 1, cols, data }
    }

    /// Creates a tensor from nested rows (convenient in tests).
    ///
    /// # Panics
    /// Panics if the rows are ragged.
    pub fn from_rows(rows: &[Vec<f32>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Self { rows: r, cols: c, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the flat row-major buffer.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the flat row-major buffer.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Immutable view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Fills every element with `value`.
    pub fn fill(&mut self, value: f32) {
        self.data.fill(value);
    }

    /// Matrix product `self @ other`.
    ///
    /// Register-blocked [`MR`]-row micro-kernel; large products are split
    /// over output-row blocks on the rayon pool. Per output element the
    /// `k` accumulation order is fixed, so the serial and parallel paths
    /// return bit-identical tensors.
    ///
    /// # Panics
    /// Panics on an inner-dimension mismatch.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: ({}, {}) @ ({}, {})",
            self.rows, self.cols, other.rows, other.cols
        );
        let (m, k, n) = (self.rows, self.cols, other.cols);
        self.matmul_with(other, m * k * n >= PAR_FLOP_THRESHOLD)
    }

    /// [`Tensor::matmul`] with the kernel path chosen explicitly. The two
    /// paths are bit-identical; tests exercise both on the same inputs.
    pub fn matmul_with(&self, other: &Tensor, parallel: bool) -> Tensor {
        let mut out = Tensor::zeros(self.rows, other.cols);
        self.matmul_into(other, &mut out, parallel);
        out
    }

    /// `out += self @ other` without allocating a temporary.
    ///
    /// Gradient accumulation sites call this to fold a product straight
    /// into an existing buffer, skipping the zeroed temporary and the
    /// extra add pass. The kernels always accumulate into `out`, so this
    /// is the same code path as [`Tensor::matmul`] minus the fresh zeros.
    ///
    /// # Panics
    /// Panics on inner-dimension or output-shape mismatch.
    pub fn matmul_acc(&self, other: &Tensor, out: &mut Tensor) {
        assert_eq!(self.cols, other.rows, "matmul_acc inner dimension mismatch");
        assert_eq!(out.shape(), (self.rows, other.cols), "matmul_acc output shape mismatch");
        let (m, k, n) = (self.rows, self.cols, other.cols);
        self.matmul_into(other, out, m * k * n >= PAR_FLOP_THRESHOLD);
    }

    fn matmul_into(&self, other: &Tensor, out: &mut Tensor, parallel: bool) {
        let (m, k, n) = (self.rows, self.cols, other.cols);
        crate::telemetry::MATMUL_CALLS.inc();
        crate::telemetry::MATMUL_FLOPS.add(2 * (m * k * n) as u64);
        if parallel && m > 0 && n > 0 {
            let chunk_rows = par_row_chunk(m);
            out.data.par_chunks_mut(chunk_rows * n).enumerate_for_each(|idx, chunk| {
                let row0 = idx * chunk_rows;
                mm_nn_block(&self.data[row0 * k..], k, &other.data, n, chunk);
            });
        } else {
            mm_nn_block(&self.data, k, &other.data, n, &mut out.data);
        }
    }

    /// `self^T @ other` without materializing the transpose.
    pub fn matmul_tn(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.rows, other.rows,
            "matmul_tn shape mismatch: ({}, {})^T @ ({}, {})",
            self.rows, self.cols, other.rows, other.cols
        );
        let (k, m, n) = (self.rows, self.cols, other.cols);
        self.matmul_tn_with(other, m * k * n >= PAR_FLOP_THRESHOLD)
    }

    /// [`Tensor::matmul_tn`] with the kernel path chosen explicitly.
    pub fn matmul_tn_with(&self, other: &Tensor, parallel: bool) -> Tensor {
        let mut out = Tensor::zeros(self.cols, other.cols);
        self.matmul_tn_into(other, &mut out, parallel);
        out
    }

    /// `out += selfᵀ @ other` without allocating a temporary (the
    /// transpose-A analogue of [`Tensor::matmul_acc`]).
    ///
    /// # Panics
    /// Panics on inner-dimension or output-shape mismatch.
    pub fn matmul_tn_acc(&self, other: &Tensor, out: &mut Tensor) {
        assert_eq!(self.rows, other.rows, "matmul_tn_acc inner dimension mismatch");
        assert_eq!(out.shape(), (self.cols, other.cols), "matmul_tn_acc output shape mismatch");
        let (k, m, n) = (self.rows, self.cols, other.cols);
        self.matmul_tn_into(other, out, m * k * n >= PAR_FLOP_THRESHOLD);
    }

    fn matmul_tn_into(&self, other: &Tensor, out: &mut Tensor, parallel: bool) {
        let (k, m, n) = (self.rows, self.cols, other.cols);
        crate::telemetry::MATMUL_CALLS.inc();
        crate::telemetry::MATMUL_FLOPS.add(2 * (m * k * n) as u64);
        if parallel && m > 0 && n > 0 {
            let chunk_rows = par_row_chunk(m);
            out.data.par_chunks_mut(chunk_rows * n).enumerate_for_each(|idx, chunk| {
                mm_tn_block(&self.data, m, idx * chunk_rows, k, &other.data, n, chunk);
            });
        } else {
            mm_tn_block(&self.data, m, 0, k, &other.data, n, &mut out.data);
        }
    }

    /// `self @ other^T` without materializing the transpose.
    pub fn matmul_nt(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.cols, other.cols,
            "matmul_nt shape mismatch: ({}, {}) @ ({}, {})^T",
            self.rows, self.cols, other.rows, other.cols
        );
        let (m, k, n) = (self.rows, self.cols, other.rows);
        self.matmul_nt_with(other, m * k * n >= PAR_FLOP_THRESHOLD)
    }

    /// [`Tensor::matmul_nt`] with the kernel path chosen explicitly.
    pub fn matmul_nt_with(&self, other: &Tensor, parallel: bool) -> Tensor {
        let (m, k, n) = (self.rows, self.cols, other.rows);
        crate::telemetry::MATMUL_CALLS.inc();
        crate::telemetry::MATMUL_FLOPS.add(2 * (m * k * n) as u64);
        // One blocked transpose of `other` turns the k-reduction dots —
        // which serialize on FMA latency — into the streaming row-update
        // form of `mm_nn_block`. The nn kernel accumulates each element
        // over k in increasing order, exactly the plain dot-product order,
        // so the rewrite (and the row split) changes no bits.
        let bt = other.transpose();
        let mut out = Tensor::zeros(m, n);
        if parallel && m > 0 && n > 0 {
            let chunk_rows = par_row_chunk(m);
            out.data.par_chunks_mut(chunk_rows * n).enumerate_for_each(|idx, chunk| {
                let row0 = idx * chunk_rows;
                mm_nn_block(&self.data[row0 * k..], k, &bt.data, n, chunk);
            });
        } else {
            mm_nn_block(&self.data, k, &bt.data, n, &mut out.data);
        }
        out
    }

    /// Returns the transpose, copying in [`TRANSPOSE_BLOCK`]-square tiles
    /// so both the read and write sides stay within a cache-friendly
    /// footprint even for tall or wide matrices.
    pub fn transpose(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        const B: usize = TRANSPOSE_BLOCK;
        let mut rb = 0;
        while rb < self.rows {
            let r_end = (rb + B).min(self.rows);
            let mut cb = 0;
            while cb < self.cols {
                let c_end = (cb + B).min(self.cols);
                for r in rb..r_end {
                    for c in cb..c_end {
                        out.data[c * self.rows + r] = self.data[r * self.cols + c];
                    }
                }
                cb = c_end;
            }
            rb = r_end;
        }
        out
    }

    /// Element-wise map.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Element-wise map over two same-shape tensors in a single pass.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn zip_map(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(self.shape(), other.shape(), "zip_map shape mismatch");
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(&other.data).map(|(&a, &b)| f(a, b)).collect(),
        }
    }

    /// In-place element-wise `self += other`.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "add_assign shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// In-place `self += scale * other`.
    pub fn add_scaled(&mut self, other: &Tensor, scale: f32) {
        assert_eq!(self.shape(), other.shape(), "add_scaled shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += scale * b;
        }
    }

    /// Element-wise sum, returning a new tensor.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a + b)
    }

    /// Element-wise difference.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    pub fn hadamard(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a * b)
    }

    /// Scalar multiple.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|x| x * s)
    }

    /// Adds a `(1, cols)` row vector to every row.
    pub fn add_row_broadcast(&self, row: &Tensor) -> Tensor {
        assert_eq!(row.rows, 1, "broadcast operand must be a row vector");
        assert_eq!(row.cols, self.cols, "broadcast width mismatch");
        let mut out = self.clone();
        for r in 0..out.rows {
            let dst = &mut out.data[r * out.cols..(r + 1) * out.cols];
            for (d, &b) in dst.iter_mut().zip(&row.data) {
                *d += b;
            }
        }
        out
    }

    /// Sum over rows, producing a `(1, cols)` row vector.
    pub fn sum_rows(&self) -> Tensor {
        let mut out = Tensor::zeros(1, self.cols);
        for r in 0..self.rows {
            let src = self.row(r);
            for (o, &x) in out.data.iter_mut().zip(src) {
                *o += x;
            }
        }
        out
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Frobenius (L2) norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum::<f32>().sqrt()
    }

    /// Squared L2 distance between row `r` of `self` and row `s` of `other`.
    pub fn row_sq_dist(&self, r: usize, other: &Tensor, s: usize) -> f32 {
        assert_eq!(self.cols, other.cols, "row_sq_dist width mismatch");
        self.row(r)
            .iter()
            .zip(other.row(s))
            .map(|(&a, &b)| {
                let d = a - b;
                d * d
            })
            .sum()
    }

    /// Horizontal concatenation `[self | other]`.
    pub fn concat_cols(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rows, other.rows, "concat_cols row mismatch");
        let mut out = Tensor::zeros(self.rows, self.cols + other.cols);
        for r in 0..self.rows {
            let dst = out.row_mut(r);
            dst[..self.cols].copy_from_slice(self.row(r));
            dst[self.cols..].copy_from_slice(other.row(r));
        }
        out
    }

    /// Vertical concatenation (stacking rows).
    pub fn concat_rows(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.cols, other.cols, "concat_rows col mismatch");
        let mut data = Vec::with_capacity(self.data.len() + other.data.len());
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Tensor { rows: self.rows + other.rows, cols: self.cols, data }
    }

    /// Copies the given rows into a new tensor (gather).
    pub fn gather_rows(&self, indices: &[usize]) -> Tensor {
        let mut out = Tensor::zeros(indices.len(), self.cols);
        for (i, &idx) in indices.iter().enumerate() {
            assert!(idx < self.rows, "gather_rows index {idx} out of range {}", self.rows);
            out.row_mut(i).copy_from_slice(self.row(idx));
        }
        out
    }

    /// Row-wise softmax, numerically stabilized by the row max.
    pub fn softmax_rows(&self) -> Tensor {
        let mut out = self.clone();
        for r in 0..out.rows {
            softmax_in_place(out.row_mut(r));
        }
        out
    }

    /// True when any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|x| !x.is_finite())
    }
}

/// Numerically-stable in-place softmax over a slice.
pub fn softmax_in_place(row: &mut [f32]) {
    if row.is_empty() {
        return;
    }
    let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for x in row.iter_mut() {
        *x = fast_exp(*x - max);
        sum += *x;
    }
    if sum > 0.0 {
        for x in row.iter_mut() {
            *x /= sum;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_expected_shape_and_content() {
        let t = Tensor::zeros(2, 3);
        assert_eq!(t.shape(), (2, 3));
        assert!(t.data().iter().all(|&x| x == 0.0));
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_rejects_wrong_length() {
        let _ = Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Tensor::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Tensor::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Tensor::from_rows(&[vec![19.0, 22.0], vec![43.0, 50.0]]));
    }

    #[test]
    fn matmul_tn_equals_explicit_transpose() {
        let a = Tensor::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let b = Tensor::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0]]);
        assert_eq!(a.matmul_tn(&b), a.transpose().matmul(&b));
    }

    #[test]
    fn matmul_nt_equals_explicit_transpose() {
        let a = Tensor::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Tensor::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0], vec![9.0, 10.0]]);
        assert_eq!(a.matmul_nt(&b), a.matmul(&b.transpose()));
    }

    #[test]
    fn transpose_involution() {
        let a = Tensor::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
    }

    /// Deterministic pseudo-random fill that exercises non-trivial float
    /// values without needing an RNG dependency in unit tests.
    fn varied(rows: usize, cols: usize, salt: u32) -> Tensor {
        let data = (0..rows * cols)
            .map(|i| {
                let h = (i as u32).wrapping_mul(2654435761).wrapping_add(salt);
                (h % 2000) as f32 / 313.0 - 3.0
            })
            .collect();
        Tensor::from_vec(rows, cols, data)
    }

    #[test]
    fn serial_and_parallel_matmul_are_bit_identical() {
        // Shapes straddle the MR blocking and chunk boundaries.
        for &(m, k, n) in &[(1, 7, 5), (4, 4, 4), (33, 17, 29), (70, 23, 41)] {
            let a = varied(m, k, 1);
            let b = varied(k, n, 2);
            let bt = varied(n, k, 3);
            assert_eq!(a.matmul_with(&b, false), a.matmul_with(&b, true), "nn {m}x{k}x{n}");
            assert_eq!(a.matmul_nt_with(&bt, false), a.matmul_nt_with(&bt, true), "nt {m}x{k}x{n}");
            let at = varied(k, m, 4);
            assert_eq!(at.matmul_tn_with(&b, false), at.matmul_tn_with(&b, true), "tn {m}x{k}x{n}");
        }
    }

    #[test]
    fn matmul_handles_degenerate_dims() {
        let a = Tensor::zeros(0, 5);
        let b = Tensor::zeros(5, 3);
        assert_eq!(a.matmul(&b).shape(), (0, 3));
        let a = Tensor::zeros(3, 0);
        let b = Tensor::zeros(0, 2);
        assert_eq!(a.matmul(&b), Tensor::zeros(3, 2));
        let a = Tensor::zeros(2, 4);
        let b = Tensor::zeros(4, 0);
        assert_eq!(a.matmul(&b).shape(), (2, 0));
    }

    #[test]
    fn large_matmul_crosses_parallel_threshold_and_matches_serial() {
        // 96 * 80 * 96 = 737k madds > PAR_FLOP_THRESHOLD, so plain
        // matmul takes the pool path; compare against the forced-serial one.
        const _: () = assert!(96 * 80 * 96 >= super::PAR_FLOP_THRESHOLD);
        let a = varied(96, 80, 7);
        let b = varied(80, 96, 8);
        assert_eq!(a.matmul(&b), a.matmul_with(&b, false));
    }

    #[test]
    fn blocked_transpose_matches_naive_beyond_one_tile() {
        // 70x45 spans multiple TRANSPOSE_BLOCK tiles with ragged edges.
        let a = varied(70, 45, 9);
        let t = a.transpose();
        assert_eq!(t.shape(), (45, 70));
        for r in 0..70 {
            for c in 0..45 {
                assert_eq!(t.get(c, r), a.get(r, c));
            }
        }
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let a = Tensor::from_rows(&[vec![1.0, 2.0, 3.0], vec![-10.0, 0.0, 10.0]]);
        let s = a.softmax_rows();
        for r in 0..2 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
            assert!(s.row(r).iter().all(|&p| p >= 0.0));
        }
    }

    #[test]
    fn softmax_is_stable_for_large_logits() {
        let a = Tensor::row_vector(vec![1000.0, 1000.0]);
        let s = a.softmax_rows();
        assert!((s.get(0, 0) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn broadcast_add_applies_row_to_each_row() {
        let a = Tensor::from_rows(&[vec![1.0, 1.0], vec![2.0, 2.0]]);
        let b = Tensor::row_vector(vec![10.0, 20.0]);
        let c = a.add_row_broadcast(&b);
        assert_eq!(c, Tensor::from_rows(&[vec![11.0, 21.0], vec![12.0, 22.0]]));
    }

    #[test]
    fn sum_rows_collapses_to_row_vector() {
        let a = Tensor::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(a.sum_rows(), Tensor::row_vector(vec![4.0, 6.0]));
    }

    #[test]
    fn gather_rows_copies_selected_rows() {
        let a = Tensor::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let g = a.gather_rows(&[2, 0, 2]);
        assert_eq!(g, Tensor::from_rows(&[vec![5.0, 6.0], vec![1.0, 2.0], vec![5.0, 6.0]]));
    }

    #[test]
    fn concat_cols_widths_add() {
        let a = Tensor::from_rows(&[vec![1.0], vec![2.0]]);
        let b = Tensor::from_rows(&[vec![3.0, 4.0], vec![5.0, 6.0]]);
        let c = a.concat_cols(&b);
        assert_eq!(c, Tensor::from_rows(&[vec![1.0, 3.0, 4.0], vec![2.0, 5.0, 6.0]]));
    }

    #[test]
    fn row_sq_dist_matches_manual() {
        let a = Tensor::from_rows(&[vec![0.0, 0.0], vec![3.0, 4.0]]);
        assert_eq!(a.row_sq_dist(0, &a, 1), 25.0);
    }

    #[test]
    fn norm_is_frobenius() {
        let a = Tensor::from_rows(&[vec![3.0, 0.0], vec![0.0, 4.0]]);
        assert!((a.norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn fast_activations_track_libm() {
        // Dense sweep over the range activations actually see. The tape's
        // gradient checks tolerate ~1e-2; the polynomial approximations
        // must sit orders of magnitude below that.
        let mut x = -20.0f32;
        while x <= 20.0 {
            let e = fast_exp(x);
            if x.abs() <= 8.0 {
                let rel = (e - x.exp()).abs() / x.exp().max(f32::MIN_POSITIVE);
                assert!(rel < 3e-7, "exp({x}): rel err {rel}");
            }
            let s = fast_sigmoid(x);
            assert!((s - 1.0 / (1.0 + (-x).exp())).abs() < 1e-6, "sigmoid({x})");
            assert!((0.0..=1.0).contains(&s), "sigmoid({x}) out of range");
            let t = fast_tanh(x);
            assert!((t - x.tanh()).abs() < 1e-6, "tanh({x})");
            assert!((-1.0..=1.0).contains(&t), "tanh({x}) out of range");
            x += 0.0037;
        }
        // Saturation and edge behaviour.
        assert_eq!(fast_tanh(0.0), 0.0);
        assert_eq!(fast_sigmoid(0.0), 0.5);
        assert!((fast_tanh(100.0) - 1.0).abs() < 1e-6);
        assert!((fast_tanh(-100.0) + 1.0).abs() < 1e-6);
        assert!(fast_exp(-200.0) >= 0.0 && fast_exp(-200.0) < 1e-30);
        assert!(fast_exp(200.0).is_finite(), "clamped, must not overflow to inf bits");
    }
}
