//! Weight-initialization schemes.

use crate::tensor::Tensor;
use rand::Rng;

/// Initialization scheme for a parameter tensor.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Init {
    /// All zeros (typical for biases).
    Zeros,
    /// All elements equal to the given constant.
    Constant(f32),
    /// Uniform in `[-a, a]`.
    Uniform(f32),
    /// Xavier/Glorot uniform: `U(-sqrt(6/(fan_in+fan_out)), +sqrt(..))`.
    XavierUniform,
    /// Gaussian with the given standard deviation (Box–Muller).
    Normal(f32),
}

impl Init {
    /// Materializes a `(rows, cols)` tensor drawn from this scheme.
    pub fn tensor(self, rows: usize, cols: usize, rng: &mut impl Rng) -> Tensor {
        let n = rows * cols;
        let data = match self {
            Init::Zeros => vec![0.0; n],
            Init::Constant(c) => vec![c; n],
            Init::Uniform(a) => (0..n).map(|_| rng.gen_range(-a..=a)).collect(),
            Init::XavierUniform => {
                let a = (6.0 / (rows + cols) as f32).sqrt();
                (0..n).map(|_| rng.gen_range(-a..=a)).collect()
            }
            Init::Normal(std) => (0..n).map(|_| normal_sample(rng) * std).collect(),
        };
        Tensor::from_vec(rows, cols, data)
    }
}

/// One standard-normal sample via the Box–Muller transform.
///
/// Hand-rolled to avoid pulling in `rand_distr` for a single distribution.
pub fn normal_sample(rng: &mut impl Rng) -> f32 {
    // Guard u1 away from 0 so ln() is finite.
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zeros_and_constant() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(Init::Zeros.tensor(2, 2, &mut rng).data().iter().all(|&x| x == 0.0));
        assert!(Init::Constant(1.5).tensor(2, 2, &mut rng).data().iter().all(|&x| x == 1.5));
    }

    #[test]
    fn xavier_respects_bound() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = Init::XavierUniform.tensor(10, 10, &mut rng);
        let a = (6.0 / 20.0_f32).sqrt();
        assert!(t.data().iter().all(|&x| x.abs() <= a + 1e-6));
    }

    #[test]
    fn normal_sample_statistics_are_plausible() {
        let mut rng = StdRng::seed_from_u64(2);
        let samples: Vec<f32> = (0..20_000).map(|_| normal_sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f32>() / samples.len() as f32;
        let var =
            samples.iter().map(|&x| (x - mean) * (x - mean)).sum::<f32>() / samples.len() as f32;
        assert!(mean.abs() < 0.03, "mean {mean} too far from 0");
        assert!((var - 1.0).abs() < 0.05, "variance {var} too far from 1");
    }

    #[test]
    fn normal_samples_are_finite() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!((0..10_000).all(|_| normal_sample(&mut rng).is_finite()));
    }
}
