//! Optimizers.
//!
//! The paper trains with "Adam stochastic gradient descent with an initial
//! learning rate of 0.0001" and clips gradients to a maximum global norm of
//! 5 (§VII-B). [`Adam`] implements exactly that recipe.

use crate::params::ParamStore;
use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Adam optimizer (Kingma & Ba, 2014) with optional global-norm clipping.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    /// Max global gradient norm; `None` disables clipping.
    max_grad_norm: Option<f32>,
    step: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Creates an Adam optimizer with the given learning rate and the
    /// standard (0.9, 0.999, 1e-8) moment hyper-parameters.
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            max_grad_norm: None,
            step: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// The paper's configuration: lr = 1e-4, max grad norm = 5.
    pub fn paper() -> Self {
        Self::new(1e-4).with_max_grad_norm(5.0)
    }

    /// Enables global-norm gradient clipping.
    pub fn with_max_grad_norm(mut self, max_norm: f32) -> Self {
        self.max_grad_norm = Some(max_norm);
        self
    }

    /// Overrides the moment decay rates.
    pub fn with_betas(mut self, beta1: f32, beta2: f32) -> Self {
        self.beta1 = beta1;
        self.beta2 = beta2;
        self
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Replaces the learning rate (for schedules).
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Number of optimizer steps taken.
    pub fn steps_taken(&self) -> u64 {
        self.step
    }

    /// Applies one update using the gradients accumulated in `store`, then
    /// zeroes them. Returns the (pre-clip) global gradient norm.
    pub fn step(&mut self, store: &mut ParamStore) -> f32 {
        // Lazily size the moment buffers; parameters may have been added
        // after the optimizer was constructed.
        while self.m.len() < store.len() {
            let id = crate::params::ParamId(self.m.len());
            let (r, c) = store.get(id).shape();
            self.m.push(Tensor::zeros(r, c));
            self.v.push(Tensor::zeros(r, c));
        }

        crate::telemetry::ADAM_STEPS.inc();
        let pre_clip_norm = match self.max_grad_norm {
            Some(max) => store.clip_grad_norm(max),
            None => store.grad_global_norm(),
        };

        self.step += 1;
        let bc1 = 1.0 - self.beta1.powi(self.step as i32);
        let bc2 = 1.0 - self.beta2.powi(self.step as i32);

        for id in store.ids().collect::<Vec<_>>() {
            let idx = id.index();
            // Move grad out to appease the borrow checker (single pass).
            let grad = std::mem::replace(
                store.grad_mut(id),
                Tensor::zeros(0, 0),
            );
            let m = &mut self.m[idx];
            let v = &mut self.v[idx];
            let param = store.get_mut(id);
            for ((p, &g), (mi, vi)) in param
                .data_mut()
                .iter_mut()
                .zip(grad.data())
                .zip(m.data_mut().iter_mut().zip(v.data_mut().iter_mut()))
            {
                *mi = self.beta1 * *mi + (1.0 - self.beta1) * g;
                *vi = self.beta2 * *vi + (1.0 - self.beta2) * g * g;
                let m_hat = *mi / bc1;
                let v_hat = *vi / bc2;
                *p -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
            // Restore a zeroed gradient buffer of the right shape.
            let (r, c) = store.get(id).shape();
            *store.grad_mut(id) = Tensor::zeros(r, c);
        }
        pre_clip_norm
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ParamStore;

    #[test]
    fn adam_descends_a_quadratic() {
        // Minimize f(w) = (w - 3)^2 by feeding grad = 2(w - 3).
        let mut store = ParamStore::new();
        let id = store.add("w", Tensor::from_vec(1, 1, vec![0.0]));
        let mut opt = Adam::new(0.1);
        for _ in 0..500 {
            let w = store.get(id).get(0, 0);
            store.grad_mut(id).set(0, 0, 2.0 * (w - 3.0));
            opt.step(&mut store);
        }
        let w = store.get(id).get(0, 0);
        assert!((w - 3.0).abs() < 0.05, "converged to {w}, expected 3");
    }

    #[test]
    fn step_zeroes_gradients() {
        let mut store = ParamStore::new();
        let id = store.add("w", Tensor::from_vec(1, 1, vec![1.0]));
        store.grad_mut(id).set(0, 0, 1.0);
        let mut opt = Adam::new(0.01);
        opt.step(&mut store);
        assert_eq!(store.grad(id).get(0, 0), 0.0);
    }

    #[test]
    fn clipping_reports_preclip_norm() {
        let mut store = ParamStore::new();
        let id = store.add("w", Tensor::from_vec(1, 2, vec![0.0, 0.0]));
        store.grad_mut(id).set(0, 0, 30.0);
        store.grad_mut(id).set(0, 1, 40.0);
        let mut opt = Adam::new(0.01).with_max_grad_norm(5.0);
        let norm = opt.step(&mut store);
        assert!((norm - 50.0).abs() < 1e-4);
    }

    #[test]
    fn params_added_after_construction_are_tracked() {
        let mut store = ParamStore::new();
        let a = store.add("a", Tensor::from_vec(1, 1, vec![0.0]));
        let mut opt = Adam::new(0.1);
        store.grad_mut(a).set(0, 0, 1.0);
        opt.step(&mut store);
        let b = store.add("b", Tensor::from_vec(1, 1, vec![0.0]));
        store.grad_mut(b).set(0, 0, 1.0);
        opt.step(&mut store); // must not panic and must update b
        assert!(store.get(b).get(0, 0) < 0.0);
    }

    #[test]
    fn paper_config_matches_section_vii_b() {
        let opt = Adam::paper();
        assert!((opt.lr() - 1e-4).abs() < 1e-9);
        assert_eq!(opt.max_grad_norm, Some(5.0));
    }
}
