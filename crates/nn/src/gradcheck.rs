//! Finite-difference gradient checking.
//!
//! Every op and layer in this crate is validated against central finite
//! differences (see `tests/gradient_checks.rs`). The checker perturbs each
//! scalar of each parameter, rebuilds the forward pass, and compares the
//! numeric slope against the analytic gradient from [`Tape::backward`].

use crate::params::{ParamId, ParamStore};
use crate::tape::{Tape, Var};

/// Result of a gradient check for one parameter.
#[derive(Clone, Debug)]
pub struct GradCheckReport {
    /// Parameter that was checked.
    pub id: ParamId,
    /// Worst relative error across all scalars of the parameter.
    pub max_rel_err: f32,
    /// Flat index of the worst scalar.
    pub worst_index: usize,
    /// Analytic gradient at the worst scalar.
    pub analytic: f32,
    /// Numeric gradient at the worst scalar.
    pub numeric: f32,
}

/// Checks the analytic gradients of `build` (a closure that constructs the
/// forward pass on a fresh tape and returns the scalar loss node) against
/// central finite differences, for every parameter in `store`.
///
/// Returns one report per parameter. A typical tolerance for `f32` with
/// `eps = 1e-2`-ish smooth losses is `max_rel_err < 1e-2`.
pub fn gradient_check(
    store: &mut ParamStore,
    eps: f32,
    mut build: impl FnMut(&mut Tape, &ParamStore) -> Var,
) -> Vec<GradCheckReport> {
    // Analytic pass.
    store.zero_grads();
    let mut tape = Tape::new();
    let loss = build(&mut tape, store);
    tape.backward(loss, store);
    let analytic: Vec<Vec<f32>> =
        store.ids().map(|id| store.grad(id).data().to_vec()).collect();

    let mut eval = |tape_store: &ParamStore| -> f32 {
        let mut t = Tape::new();
        let l = build_loss(&mut t, tape_store, &mut build);
        t.value(l).get(0, 0)
    };

    let mut reports = Vec::new();
    for id in store.ids().collect::<Vec<_>>() {
        let n = store.get(id).len();
        // Near-zero entries can't be checked in relative terms with f32
        // arithmetic; judge them against the parameter's overall gradient
        // scale instead.
        let grad_scale = analytic[id.index()]
            .iter()
            .fold(0.0f32, |m, &g| m.max(g.abs()));
        let floor = (0.05 * grad_scale).max(1e-4);
        let mut max_rel_err = 0.0f32;
        let mut worst = (0usize, 0.0f32, 0.0f32);
        for i in 0..n {
            let orig = store.get(id).data()[i];
            store.get_mut(id).data_mut()[i] = orig + eps;
            let up = eval(store);
            store.get_mut(id).data_mut()[i] = orig - eps;
            let down = eval(store);
            store.get_mut(id).data_mut()[i] = orig;
            let numeric = (up - down) / (2.0 * eps);
            let a = analytic[id.index()][i];
            let denom = a.abs().max(numeric.abs()).max(floor);
            let rel = (a - numeric).abs() / denom;
            if rel > max_rel_err {
                max_rel_err = rel;
                worst = (i, a, numeric);
            }
        }
        reports.push(GradCheckReport {
            id,
            max_rel_err,
            worst_index: worst.0,
            analytic: worst.1,
            numeric: worst.2,
        });
    }
    reports
}

fn build_loss(
    tape: &mut Tape,
    store: &ParamStore,
    build: &mut impl FnMut(&mut Tape, &ParamStore) -> Var,
) -> Var {
    build(tape, store)
}

/// Asserts that every parameter's gradient check passes the tolerance.
///
/// # Panics
/// Panics (with the offending parameter's report) on failure.
pub fn assert_grads_close(
    store: &mut ParamStore,
    eps: f32,
    tol: f32,
    build: impl FnMut(&mut Tape, &ParamStore) -> Var,
) {
    let reports = gradient_check(store, eps, build);
    for r in reports {
        assert!(
            r.max_rel_err < tol,
            "gradient check failed for param {} ({}): rel err {} at index {} \
             (analytic {}, numeric {})",
            r.id.index(),
            store.name(r.id),
            r.max_rel_err,
            r.worst_index,
            r.analytic,
            r.numeric,
        );
    }
}
