//! # traj-nn — minimal deep-learning substrate for E²DTC
//!
//! The E²DTC paper trains a seq2seq GRU autoencoder jointly with a
//! DEC-style clustering head. The original implementation sits on
//! PyTorch + CUDA; this crate is the from-scratch CPU substitute: a dense
//! 2-D [`Tensor`], a tape-based reverse-mode autodiff engine
//! ([`tape::Tape`]), the layers the paper needs ([`layers::Embedding`],
//! [`layers::Linear`], multi-layer [`layers::Gru`]), the three specialized
//! loss ops (spatial-proximity-aware softmax NLL — Eq. 8; DEC KL clustering
//! loss — Eqs. 9–11; triplet margin loss — Eq. 13), and the paper's exact
//! optimizer recipe ([`optim::Adam`] with lr 1e-4 and global-norm-5
//! clipping).
//!
//! Everything is deterministic given a seeded `rand::Rng`, and every op's
//! backward pass is validated against central finite differences in
//! `tests/gradient_checks.rs`.
//!
//! ```
//! use traj_nn::{ParamStore, Tape, Tensor, layers::Linear, optim::Adam};
//! use rand::{SeedableRng, rngs::StdRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let mut store = ParamStore::new();
//! let layer = Linear::new(&mut store, "fc", 2, 1, true, &mut rng);
//! let mut opt = Adam::new(0.05);
//!
//! // Fit y = x0 + x1 on a couple of points.
//! for _ in 0..200 {
//!     let mut tape = Tape::new();
//!     let x = tape.constant(Tensor::from_rows(&[vec![1.0, 2.0], vec![3.0, 1.0]]));
//!     let target = tape.constant(Tensor::from_rows(&[vec![3.0], vec![4.0]]));
//!     let pred = layer.forward(&mut tape, &store, x);
//!     let err = tape.sub(pred, target);
//!     let sq = tape.hadamard(err, err);
//!     let loss = tape.mean_all(sq);
//!     tape.backward(loss, &mut store);
//!     opt.step(&mut store);
//! }
//! ```

#![warn(missing_docs)]
// Parallel-array index loops are idiomatic in the numeric kernels here;
// iterator-zip rewrites obscure them.
#![allow(clippy::needless_range_loop)]

pub mod gradcheck;
pub mod guard;
pub mod infer;
pub mod init;
pub mod layers;
pub mod optim;
pub mod params;
pub mod tape;
pub mod telemetry;
pub mod tensor;

pub use guard::{GuardVerdict, NonFiniteGuard};
pub use infer::Scratch;
pub use params::{ParamId, ParamStore};
pub use tape::{student_t_assignment, target_distribution, Tape, Var};
pub use tensor::Tensor;
