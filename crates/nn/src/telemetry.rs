//! Kernel-level telemetry counters.
//!
//! The hot paths of this crate (matmul micro-kernels, GRU cell steps,
//! Adam updates) cannot afford spans — a span takes two clock reads and
//! an event per call. What they *can* afford is a relaxed atomic add per
//! kernel invocation, which is noise next to the thousands of FLOPs each
//! call performs. These statics are always on; sinks receive snapshots
//! when a run harness calls [`counters`] and hands them to a
//! `traj_obs::Recorder`.
//!
//! Values are cumulative per process, so two snapshots bracket a region:
//! `matmul FLOPs of fit = snapshot_after - snapshot_before`.

use traj_obs::Counter;

/// Matrix-product kernel invocations (all of `matmul`/`matmul_tn`/
/// `matmul_nt` and their accumulate variants).
pub static MATMUL_CALLS: Counter = Counter::new("nn.matmul_calls");

/// Floating-point operations issued by matrix-product kernels
/// (`2·m·k·n` per call).
pub static MATMUL_FLOPS: Counter = Counter::new("nn.matmul_flops");

/// Single-layer GRU cell recurrence steps.
pub static GRU_CELL_STEPS: Counter = Counter::new("nn.gru_cell_steps");

/// Adam optimizer updates applied.
pub static ADAM_STEPS: Counter = Counter::new("nn.adam_steps");

/// Every counter this crate maintains, for bulk snapshotting.
pub fn counters() -> [&'static Counter; 4] {
    [&MATMUL_CALLS, &MATMUL_FLOPS, &GRU_CELL_STEPS, &ADAM_STEPS]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tensor;

    #[test]
    fn matmul_bumps_call_and_flop_counters() {
        let calls0 = MATMUL_CALLS.get();
        let flops0 = MATMUL_FLOPS.get();
        let a = Tensor::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Tensor::from_rows(&[vec![5.0], vec![6.0]]);
        let _ = a.matmul(&b);
        assert_eq!(MATMUL_CALLS.get() - calls0, 1);
        // 2 * m * k * n = 2 * 2 * 2 * 1 = 8 FLOPs.
        assert_eq!(MATMUL_FLOPS.get() - flops0, 8);
    }

    #[test]
    fn counter_names_are_namespaced() {
        for c in counters() {
            assert!(c.name().starts_with("nn."), "{}", c.name());
        }
    }
}
