//! Tape-free inference path.
//!
//! Training forwards go through [`crate::tape::Tape`], which interns every
//! intermediate (and a *clone of every parameter tensor*, once per
//! [`Tape::clear`](crate::tape::Tape::clear) cycle) so the backward sweep
//! can revisit them. Serving an embedding needs none of that: no node
//! bookkeeping, no saved activations, no gradient buffers, and no copy of
//! the embedding table per batch. This module provides `eval` twins of the
//! layer forwards that read [`ParamStore`] weights in place and stage every
//! intermediate in a caller-owned [`Scratch`] pool, so steady-state batched
//! inference performs zero heap allocation.
//!
//! # Bit parity with the tape
//!
//! The eval twins are *mirrors*, not reimplementations: each one replays
//! the training forward's exact kernel sequence —
//!
//! * matrix products call the same register-tiled kernel with the same
//!   serial/parallel threshold ([`Tensor::matmul_acc`] into a zeroed
//!   scratch buffer is the same code path as [`Tensor::matmul`] minus the
//!   fresh allocation);
//! * element-wise chains reproduce the tape's per-element expression tree,
//!   including rounding order — e.g. the GRU update keeps the tape's
//!   literal `(-1.0 * z + 1.0)` for `1 − z` (from `Tape::one_minus`) and
//!   rounds each product before the final add, and the masked step keeps
//!   `new ⊙ m + old ⊙ (1.0 − m)` as two separately-rounded products;
//! * nonlinearities call the same [`fast_sigmoid`]/[`fast_tanh`]
//!   polynomials.
//!
//! Scalar Rust never contracts `a * b + c` into an FMA, so these sequences
//! are reproducible element for element; `tests` and the cross-crate parity
//! suite (`e2dtc/tests/frozen_parity.rs`) pin the outputs down to the bit.
//!
//! # Scratch lifecycle
//!
//! [`Scratch`] is a free list of `Vec<f32>` buffers. [`Scratch::take`]
//! pops one (or starts empty), clears it, zero-fills it to the requested
//! shape — reusing its capacity — and wraps it in a [`Tensor`];
//! [`Scratch::put`] returns a tensor's buffer to the list. Callers that
//! keep one `Scratch` per thread (e.g. `thread_local!` in a rayon pool)
//! reach a fixed point after the first batch: every `take` is served from
//! the free list and the inference loop stops touching the allocator.
//! `Scratch` is deliberately `!Sync` — each thread owns its pool, which is
//! what makes sharing the *model* (`&ParamStore`, read-only) across
//! threads race-free.

use crate::layers::{DotAttention, Embedding, GruCell, Linear};
use crate::params::ParamStore;
use crate::tensor::{fast_sigmoid, fast_tanh, softmax_in_place, Tensor};

/// Reusable pool of tensor buffers for allocation-free inference.
#[derive(Debug, Default)]
pub struct Scratch {
    free: Vec<Vec<f32>>,
}

impl Scratch {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Hands out a zeroed `(rows, cols)` tensor, reusing a pooled buffer's
    /// capacity when one is available.
    pub fn take(&mut self, rows: usize, cols: usize) -> Tensor {
        let mut buf = self.free.pop().unwrap_or_default();
        buf.clear();
        buf.resize(rows * cols, 0.0);
        Tensor::from_vec(rows, cols, buf)
    }

    /// Returns a tensor's buffer to the pool for reuse.
    pub fn put(&mut self, t: Tensor) {
        self.free.push(t.into_vec());
    }

    /// Number of buffers currently parked in the pool.
    pub fn pooled(&self) -> usize {
        self.free.len()
    }
}

impl Embedding {
    /// Tape-free twin of [`Embedding::forward`]: looks up a batch of token
    /// ids, producing `(ids.len(), dim)` from the scratch pool.
    ///
    /// # Panics
    /// Panics if an id is out of vocabulary range.
    pub fn eval(&self, store: &ParamStore, ids: &[usize], scratch: &mut Scratch) -> Tensor {
        assert!(
            ids.iter().all(|&i| i < self.vocab()),
            "token id out of range (vocab = {})",
            self.vocab()
        );
        let table = store.get(self.table());
        let mut out = scratch.take(ids.len(), self.dim());
        for (i, &idx) in ids.iter().enumerate() {
            out.row_mut(i).copy_from_slice(table.row(idx));
        }
        out
    }
}

impl Linear {
    /// Tape-free twin of [`Linear::forward`] for a `(batch, in)` input.
    pub fn eval(&self, store: &ParamStore, x: &Tensor, scratch: &mut Scratch) -> Tensor {
        debug_assert_eq!(x.cols(), self.in_dim(), "linear input width mismatch");
        let w = store.get(self.weight());
        let mut y = scratch.take(x.rows(), self.out_dim());
        x.matmul_acc(w, &mut y);
        if let Some(b) = self.bias() {
            let bias = store.get(b);
            for r in 0..y.rows() {
                for (d, &bv) in y.row_mut(r).iter_mut().zip(bias.data()) {
                    *d += bv;
                }
            }
        }
        y
    }
}

impl GruCell {
    /// Tape-free twin of [`GruCell::step`]:
    /// `(x: (batch, input), h: (batch, hidden)) -> h'`.
    pub fn eval_step(
        &self,
        store: &ParamStore,
        x: &Tensor,
        h: &Tensor,
        scratch: &mut Scratch,
    ) -> Tensor {
        debug_assert_eq!(x.cols(), self.input_dim(), "GRU input width mismatch");
        debug_assert_eq!(h.cols(), self.hidden_dim(), "GRU hidden width mismatch");
        crate::telemetry::GRU_CELL_STEPS.inc();
        let hd = self.hidden_dim();
        let batch = x.rows();

        // Same two fused products as the tape step, accumulated into
        // zeroed scratch (bit-identical to `matmul` + row-broadcast add).
        let mut gx = scratch.take(batch, 3 * hd);
        x.matmul_acc(store.get(self.w_x()), &mut gx);
        let b_x = store.get(self.b_x());
        for r in 0..batch {
            for (d, &b) in gx.row_mut(r).iter_mut().zip(b_x.data()) {
                *d += b;
            }
        }
        let mut gh = scratch.take(batch, 3 * hd);
        h.matmul_acc(store.get(self.w_h()), &mut gh);
        let b_h = store.get(self.b_h());
        for r in 0..batch {
            for (d, &b) in gh.row_mut(r).iter_mut().zip(b_h.data()) {
                *d += b;
            }
        }

        // Gate math, rounded exactly as the tape's op chain rounds it.
        let mut out = scratch.take(batch, hd);
        for r in 0..batch {
            let gx_row = &gx.data()[r * 3 * hd..(r + 1) * 3 * hd];
            let gh_row = &gh.data()[r * 3 * hd..(r + 1) * 3 * hd];
            let h_row = &h.data()[r * hd..(r + 1) * hd];
            let start = r * hd;
            for j in 0..hd {
                let rr = fast_sigmoid(gx_row[j] + gh_row[j]);
                let z = fast_sigmoid(gx_row[hd + j] + gh_row[hd + j]);
                let rh = rr * gh_row[2 * hd + j];
                let n = fast_tanh(gx_row[2 * hd + j] + rh);
                // Tape spells 1 − z as `-1.0 * z + 1.0` (Tape::one_minus);
                // keep the literal form so rounding matches.
                #[allow(clippy::neg_multiply)]
                let one_minus_z = -1.0 * z + 1.0;
                let a = one_minus_z * n;
                let b = z * h_row[j];
                out.data_mut()[start + j] = a + b;
            }
        }
        scratch.put(gx);
        scratch.put(gh);
        out
    }
}

impl crate::layers::Gru {
    /// Tape-free twin of [`Gru::step`](crate::layers::Gru::step): one step
    /// through the full stack in eval mode (no dropout, no RNG use).
    /// `state` holds one `(batch, hidden)` tensor per layer and is updated
    /// in place; displaced state buffers are returned to `scratch`.
    pub fn eval_step(
        &self,
        store: &ParamStore,
        x: &Tensor,
        state: &mut [Tensor],
        scratch: &mut Scratch,
    ) {
        assert_eq!(state.len(), self.layers(), "state/layer count mismatch");
        for (l, cell) in self.cells().iter().enumerate() {
            // Layer l reads the previous layer's fresh hidden as input
            // (eval mode applies no dropout and consumes no RNG).
            let h_new = if l == 0 {
                cell.eval_step(store, x, &state[0], scratch)
            } else {
                let (done, rest) = state.split_at(l);
                cell.eval_step(store, &done[l - 1], &rest[0], scratch)
            };
            let old = std::mem::replace(&mut state[l], h_new);
            scratch.put(old);
        }
    }

    /// Tape-free twin of [`Gru::step_masked`](crate::layers::Gru::step_masked):
    /// runs the full unmasked stack, then folds each layer's state as
    /// `new ⊙ mask + old ⊙ (1 − mask)` with the tape's exact rounding, so
    /// ended (padding) rows carry their previous hidden state forward.
    pub fn eval_step_masked(
        &self,
        store: &ParamStore,
        x: &Tensor,
        state: &mut [Tensor],
        mask: &Tensor,
        scratch: &mut Scratch,
    ) {
        assert_eq!(state.len(), self.layers(), "state/layer count mismatch");
        // The unmasked step must see the *pre-step* states, and the mask
        // fold needs them afterwards too — stage copies in scratch.
        let mut carry: Option<Tensor> = None;
        for (l, cell) in self.cells().iter().enumerate() {
            let input: &Tensor = carry.as_ref().unwrap_or(x);
            let mut h_new = cell.eval_step(store, input, &state[l], scratch);
            if let Some(prev) = carry.take() {
                scratch.put(prev);
            }
            // The next layer consumes the unmasked output.
            let mut next_input = scratch.take(h_new.rows(), h_new.cols());
            next_input.data_mut().copy_from_slice(h_new.data());
            // Masked fold into the layer state: mirrors the tape's
            // `mask_mul(new, m) + mask_mul(old, 1 − m)` chain.
            for (d, (&o, &m)) in
                h_new.data_mut().iter_mut().zip(state[l].data().iter().zip(mask.data()))
            {
                let kept_new = *d * m;
                let kept_old = o * (1.0 - m);
                *d = kept_new + kept_old;
            }
            let old = std::mem::replace(&mut state[l], h_new);
            scratch.put(old);
            carry = Some(next_input);
        }
        if let Some(prev) = carry.take() {
            scratch.put(prev);
        }
    }

    /// Zero initial hidden states (one per layer) from the scratch pool.
    pub fn eval_zero_state(&self, batch: usize, scratch: &mut Scratch) -> Vec<Tensor> {
        self.cells().iter().map(|c| scratch.take(batch, c.hidden_dim())).collect()
    }
}

impl DotAttention {
    /// Tape-free twin of [`DotAttention::attend`]: attends `query`
    /// (`(batch, hidden)`) over `T` encoder outputs of the same shape.
    ///
    /// # Panics
    /// Panics on an empty encoder sequence or width mismatch.
    pub fn eval(
        &self,
        store: &ParamStore,
        query: &Tensor,
        encoder_outputs: &[Tensor],
        scratch: &mut Scratch,
    ) -> Tensor {
        assert!(!encoder_outputs.is_empty(), "attention needs encoder outputs");
        assert_eq!(query.cols(), self.hidden(), "query width mismatch");
        let (batch, hidden) = query.shape();
        let steps = encoder_outputs.len();

        // Scores: rowwise dot products q·h_enc_t, left-to-right sums to
        // match the tape's `hadamard` → `row_sum` accumulation order.
        let mut alpha = scratch.take(batch, steps);
        for (t, h_enc) in encoder_outputs.iter().enumerate() {
            for r in 0..batch {
                let s: f32 =
                    query.row(r).iter().zip(h_enc.row(r)).map(|(&a, &b)| a * b).sum();
                alpha.data_mut()[r * steps + t] = s;
            }
        }
        for r in 0..batch {
            softmax_in_place(alpha.row_mut(r));
        }

        // Context: Σ_t α_t ⊙ h_enc_t. The tape starts the accumulator at
        // the t = 0 term (not at zero), so assign first, then add.
        let mut context = scratch.take(batch, hidden);
        for (t, h_enc) in encoder_outputs.iter().enumerate() {
            for r in 0..batch {
                let a_t = alpha.get(r, t);
                let dst = context.row_mut(r);
                if t == 0 {
                    for (d, &h) in dst.iter_mut().zip(h_enc.row(r)) {
                        *d = h * a_t;
                    }
                } else {
                    for (d, &h) in dst.iter_mut().zip(h_enc.row(r)) {
                        *d += h * a_t;
                    }
                }
            }
        }
        scratch.put(alpha);

        // h~ = tanh(W_c [context | query])
        let mut cat = scratch.take(batch, 2 * hidden);
        for r in 0..batch {
            let dst = cat.row_mut(r);
            dst[..hidden].copy_from_slice(context.row(r));
            dst[hidden..].copy_from_slice(query.row(r));
        }
        scratch.put(context);
        let mut out = self.combine().eval(store, &cat, scratch);
        scratch.put(cat);
        for v in out.data_mut() {
            *v = fast_tanh(*v);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::Init;
    use crate::layers::Gru;
    use crate::tape::Tape;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn bits(t: &Tensor) -> Vec<u32> {
        t.data().iter().map(|v| v.to_bits()).collect()
    }

    #[test]
    fn linear_eval_matches_tape_bitwise() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut store = ParamStore::new();
        let layer = Linear::new(&mut store, "fc", 5, 3, true, &mut rng);
        let x = Init::Normal(0.7).tensor(4, 5, &mut rng);

        let mut tape = Tape::new();
        let xv = tape.constant(x.clone());
        let y_tape = layer.forward(&mut tape, &store, xv);

        let mut scratch = Scratch::new();
        let y = layer.eval(&store, &x, &mut scratch);
        assert_eq!(bits(tape.value(y_tape)), bits(&y));
    }

    #[test]
    fn embedding_eval_matches_tape_bitwise() {
        let mut rng = StdRng::seed_from_u64(12);
        let mut store = ParamStore::new();
        let emb = Embedding::new(&mut store, "emb", 9, 4, &mut rng);
        let ids = [3usize, 0, 8, 3];

        let mut tape = Tape::new();
        let y_tape = emb.forward(&mut tape, &store, &ids);

        let mut scratch = Scratch::new();
        let y = emb.eval(&store, &ids, &mut scratch);
        assert_eq!(bits(tape.value(y_tape)), bits(&y));
    }

    #[test]
    fn gru_eval_step_matches_tape_bitwise() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut store = ParamStore::new();
        let gru = Gru::new(&mut store, "gru", 4, 6, 3, &mut rng);
        let x = Init::Normal(0.5).tensor(3, 4, &mut rng);

        let mut tape = Tape::new();
        let xv = tape.constant(x.clone());
        let mut tape_state = gru.zero_state(&mut tape, 3);
        for _ in 0..4 {
            gru.step(&mut tape, &store, xv, &mut tape_state, false, &mut rng);
        }

        let mut scratch = Scratch::new();
        let mut state = gru.eval_zero_state(3, &mut scratch);
        for _ in 0..4 {
            gru.eval_step(&store, &x, &mut state, &mut scratch);
        }
        for (l, s) in state.iter().enumerate() {
            assert_eq!(bits(tape.value(tape_state[l])), bits(s), "layer {l}");
        }
    }

    #[test]
    fn gru_eval_step_masked_matches_tape_bitwise() {
        let mut rng = StdRng::seed_from_u64(14);
        let mut store = ParamStore::new();
        let gru = Gru::new(&mut store, "gru", 3, 5, 2, &mut rng);
        let x = Init::Normal(0.5).tensor(4, 3, &mut rng);
        // Rows 1 and 3 have ended (mask 0): they must carry state forward.
        let mask = Tensor::from_vec(
            4,
            5,
            (0..4).flat_map(|r| [if r % 2 == 0 { 1.0f32 } else { 0.0 }; 5]).collect(),
        );

        let mut tape = Tape::new();
        let xv = tape.constant(x.clone());
        let mut tape_state = gru.zero_state(&mut tape, 4);
        gru.step(&mut tape, &store, xv, &mut tape_state, false, &mut rng);
        gru.step_masked(&mut tape, &store, xv, &mut tape_state, &mask, false, &mut rng);

        let mut scratch = Scratch::new();
        let mut state = gru.eval_zero_state(4, &mut scratch);
        gru.eval_step(&store, &x, &mut state, &mut scratch);
        gru.eval_step_masked(&store, &x, &mut state, &mask, &mut scratch);
        for (l, s) in state.iter().enumerate() {
            assert_eq!(bits(tape.value(tape_state[l])), bits(s), "layer {l}");
        }
    }

    #[test]
    fn attention_eval_matches_tape_bitwise() {
        let mut rng = StdRng::seed_from_u64(15);
        let mut store = ParamStore::new();
        let attn = DotAttention::new(&mut store, "attn", 6, &mut rng);
        let q = Init::Normal(0.5).tensor(3, 6, &mut rng);
        let enc: Vec<Tensor> = (0..4).map(|_| Init::Normal(0.5).tensor(3, 6, &mut rng)).collect();

        let mut tape = Tape::new();
        let qv = tape.constant(q.clone());
        let enc_vars: Vec<_> = enc.iter().map(|e| tape.constant(e.clone())).collect();
        let y_tape = attn.attend(&mut tape, &store, qv, &enc_vars);

        let mut scratch = Scratch::new();
        let y = attn.eval(&store, &q, &enc, &mut scratch);
        assert_eq!(bits(tape.value(y_tape)), bits(&y));
    }

    #[test]
    fn scratch_reaches_allocation_fixed_point() {
        let mut rng = StdRng::seed_from_u64(16);
        let mut store = ParamStore::new();
        let gru = Gru::new(&mut store, "gru", 4, 6, 2, &mut rng);
        let x = Init::Normal(0.5).tensor(3, 4, &mut rng);
        let mut scratch = Scratch::new();

        // Warm-up batch populates the pool…
        let mut state = gru.eval_zero_state(3, &mut scratch);
        for _ in 0..3 {
            gru.eval_step(&store, &x, &mut state, &mut scratch);
        }
        for s in state {
            scratch.put(s);
        }
        let pooled = scratch.pooled();
        // …after which the pool size is steady across whole batches.
        for _ in 0..5 {
            let mut state = gru.eval_zero_state(3, &mut scratch);
            for _ in 0..3 {
                gru.eval_step(&store, &x, &mut state, &mut scratch);
            }
            for s in state {
                scratch.put(s);
            }
            assert_eq!(scratch.pooled(), pooled, "pool should not grow at steady state");
        }
    }
}
