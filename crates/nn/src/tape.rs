//! Reverse-mode automatic differentiation on a tape of 2-D tensors.
//!
//! A [`Tape`] records a dynamic computation graph: every operation appends a
//! node holding its forward value and an op descriptor naming its inputs.
//! [`Tape::backward`] walks the nodes in reverse, accumulating gradients, and
//! finally scatters gradients of parameter nodes back into the
//! [`ParamStore`]. A fresh tape is built per mini-batch; parameters persist
//! in the store across batches.
//!
//! Ops are a closed enum (rather than boxed closures) so the backward pass
//! is a single exhaustive `match` — easy to audit and to test op-by-op with
//! finite differences (see `crate::gradcheck`).

use crate::params::{ParamId, ParamStore};
use crate::tensor::Tensor;
use std::collections::HashMap;

/// Handle to a node on a [`Tape`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Var(usize);

/// One recorded operation. Inputs are earlier tape nodes.
enum Op {
    /// Constant input; no gradient flows into it.
    Constant,
    /// Trainable parameter; gradient is scattered into the store.
    Param(ParamId),
    /// `a @ b`
    MatMul(Var, Var),
    /// `a + b` (same shape)
    Add(Var, Var),
    /// `a - b` (same shape)
    Sub(Var, Var),
    /// matrix + row-vector broadcast over rows
    AddRowBroadcast(Var, Var),
    /// element-wise product
    Hadamard(Var, Var),
    /// `mul * a + add` element-wise
    Affine { a: Var, mul: f32 },
    /// logistic sigmoid
    Sigmoid(Var),
    /// hyperbolic tangent
    Tanh(Var),
    /// `[a | b]` horizontal concatenation
    ConcatCols { a: Var, b: Var, split: usize },
    /// row gather (embedding lookup)
    GatherRows { table: Var, indices: Vec<usize> },
    /// mean over all elements, producing `(1, 1)`
    MeanAll(Var),
    /// sum over all elements, producing `(1, 1)`
    SumAll(Var),
    /// element-wise product with a fixed mask (dropout: mask already scaled)
    MaskMul { a: Var, mask: Tensor },
    /// row-wise sum: `(r, c) -> (r, 1)`
    RowSum(Var),
    /// row-wise softmax (differentiable; the fused NLL below is preferred
    /// for classification losses)
    Softmax(Var),
    /// broadcast multiply of a matrix by a `(r, 1)` column vector
    ColBroadcastMul { m: Var, col: Var },
    /// column slice `[start, end)`
    SliceCols { a: Var, start: usize, end: usize },
    /// Spatial-proximity-aware softmax NLL (paper Eq. 8). For each row of
    /// `logits`, `targets[row]` is a sparse distribution over columns
    /// (the kNN cell weights `w`). Loss = mean over rows of
    /// `-Σ_j w_j · log softmax(logits)_j`. `probs` caches the forward
    /// softmax for the backward pass.
    WeightedSoftmaxNll { logits: Var, targets: Vec<Vec<(usize, f32)>>, probs: Tensor },
    /// DEC clustering loss `KL(P ‖ Q)` with Student-t soft assignment
    /// (paper Eqs. 9–11). Differentiable w.r.t. both the embeddings `v`
    /// (n × d) and the centroids `c` (k × d). `q` caches the forward
    /// soft assignment.
    DecKl { v: Var, c: Var, p: Tensor, q: Tensor },
    /// Triplet margin loss (paper Eq. 13) over row-aligned anchor /
    /// positive / negative matrices; mean over rows.
    Triplet { anchor: Var, positive: Var, negative: Var, active: Vec<bool> },
}

struct Node {
    value: Tensor,
    op: Op,
}

/// A dynamic reverse-mode autodiff tape.
#[derive(Default)]
pub struct Tape {
    nodes: Vec<Node>,
    /// One node per parameter per tape, so a parameter used in many ops
    /// (e.g. the decoder projection at each timestep) is cloned only once.
    param_nodes: HashMap<ParamId, Var>,
}

impl Tape {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the tape has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Empties the tape for reuse while keeping the node buffer's
    /// allocation, so building one graph per mini-batch stops re-growing
    /// the vector from scratch every step. Any [`Var`] handle issued
    /// before the call is invalidated.
    pub fn clear(&mut self) {
        self.nodes.clear();
        self.param_nodes.clear();
    }

    fn push(&mut self, value: Tensor, op: Op) -> Var {
        debug_assert!(!value.has_non_finite(), "non-finite forward value");
        self.nodes.push(Node { value, op });
        Var(self.nodes.len() - 1)
    }

    /// Forward value of a node.
    pub fn value(&self, v: Var) -> &Tensor {
        &self.nodes[v.0].value
    }

    /// Records a constant (non-trainable) input.
    pub fn constant(&mut self, t: Tensor) -> Var {
        self.push(t, Op::Constant)
    }

    /// Records (or reuses) a parameter node.
    pub fn param(&mut self, store: &ParamStore, id: ParamId) -> Var {
        if let Some(&v) = self.param_nodes.get(&id) {
            return v;
        }
        let v = self.push(store.get(id).clone(), Op::Param(id));
        self.param_nodes.insert(id, v);
        v
    }

    /// `a @ b`
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).matmul(self.value(b));
        self.push(value, Op::MatMul(a, b))
    }

    /// `a + b` (same shape)
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).add(self.value(b));
        self.push(value, Op::Add(a, b))
    }

    /// `a - b` (same shape)
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).sub(self.value(b));
        self.push(value, Op::Sub(a, b))
    }

    /// Adds a `(1, cols)` row vector to every row of `m`.
    pub fn add_row_broadcast(&mut self, m: Var, row: Var) -> Var {
        let value = self.value(m).add_row_broadcast(self.value(row));
        self.push(value, Op::AddRowBroadcast(m, row))
    }

    /// Element-wise product.
    pub fn hadamard(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).hadamard(self.value(b));
        self.push(value, Op::Hadamard(a, b))
    }

    /// `mul * a + add`, element-wise.
    pub fn affine(&mut self, a: Var, mul: f32, add: f32) -> Var {
        let value = self.value(a).map(|x| mul * x + add);
        self.push(value, Op::Affine { a, mul })
    }

    /// Scalar multiple.
    pub fn scale(&mut self, a: Var, s: f32) -> Var {
        self.affine(a, s, 0.0)
    }

    /// `1 - a`, element-wise (used by the GRU update gate).
    pub fn one_minus(&mut self, a: Var) -> Var {
        self.affine(a, -1.0, 1.0)
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let value = self.value(a).map(crate::tensor::fast_sigmoid);
        self.push(value, Op::Sigmoid(a))
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: Var) -> Var {
        let value = self.value(a).map(crate::tensor::fast_tanh);
        self.push(value, Op::Tanh(a))
    }

    /// `[a | b]` column concatenation.
    pub fn concat_cols(&mut self, a: Var, b: Var) -> Var {
        let split = self.value(a).cols();
        let value = self.value(a).concat_cols(self.value(b));
        self.push(value, Op::ConcatCols { a, b, split })
    }

    /// Row gather (embedding lookup): output row `i` is `table` row
    /// `indices[i]`.
    pub fn gather_rows(&mut self, table: Var, indices: &[usize]) -> Var {
        let value = self.value(table).gather_rows(indices);
        self.push(value, Op::GatherRows { table, indices: indices.to_vec() })
    }

    /// Mean over all elements, producing a `(1, 1)` scalar node.
    pub fn mean_all(&mut self, a: Var) -> Var {
        let value = Tensor::from_vec(1, 1, vec![self.value(a).mean()]);
        self.push(value, Op::MeanAll(a))
    }

    /// Sum over all elements, producing a `(1, 1)` scalar node.
    pub fn sum_all(&mut self, a: Var) -> Var {
        let value = Tensor::from_vec(1, 1, vec![self.value(a).sum()]);
        self.push(value, Op::SumAll(a))
    }

    /// Element-wise multiply by a fixed (non-differentiable) mask.
    ///
    /// For inverted dropout pass a 0/`1/keep_prob` mask.
    pub fn mask_mul(&mut self, a: Var, mask: Tensor) -> Var {
        let value = self.value(a).hadamard(&mask);
        self.push(value, Op::MaskMul { a, mask })
    }

    /// Row-wise sum, producing a `(rows, 1)` column vector.
    pub fn row_sum(&mut self, a: Var) -> Var {
        let src = self.value(a);
        let data: Vec<f32> = (0..src.rows()).map(|r| src.row(r).iter().sum()).collect();
        let value = Tensor::from_vec(src.rows(), 1, data);
        self.push(value, Op::RowSum(a))
    }

    /// Row-wise softmax (differentiable).
    pub fn softmax(&mut self, a: Var) -> Var {
        let value = self.value(a).softmax_rows();
        self.push(value, Op::Softmax(a))
    }

    /// Broadcast multiply: each row of `m` scaled by the matching entry of
    /// the `(rows, 1)` column vector `col`.
    pub fn col_broadcast_mul(&mut self, m: Var, col: Var) -> Var {
        let mv = self.value(m);
        let cv = self.value(col);
        assert_eq!(cv.cols(), 1, "broadcast operand must be a column vector");
        assert_eq!(cv.rows(), mv.rows(), "broadcast height mismatch");
        let mut out = mv.clone();
        for r in 0..out.rows() {
            let s = cv.get(r, 0);
            for x in out.row_mut(r) {
                *x *= s;
            }
        }
        self.push(out, Op::ColBroadcastMul { m, col })
    }

    /// Column slice `[start, end)`.
    ///
    /// # Panics
    /// Panics on an out-of-range or empty slice.
    pub fn slice_cols(&mut self, a: Var, start: usize, end: usize) -> Var {
        let src = self.value(a);
        assert!(start < end && end <= src.cols(), "invalid column slice {start}..{end}");
        let mut out = Tensor::zeros(src.rows(), end - start);
        for r in 0..src.rows() {
            out.row_mut(r).copy_from_slice(&src.row(r)[start..end]);
        }
        self.push(out, Op::SliceCols { a, start, end })
    }

    /// Spatial-proximity-aware softmax NLL (paper Eq. 8).
    ///
    /// `targets` holds, per row of `logits`, the sparse cell-weight
    /// distribution `w` over vocabulary columns (the kNN weights of the
    /// ground-truth cell). Each row's weights should sum to 1; the backward
    /// pass then reduces to `softmax(logits) − w`, matching standard
    /// cross-entropy when `w` is one-hot (the α→0 limit in the paper).
    ///
    /// Rows with an *empty* target list are padding: they contribute
    /// neither loss nor gradient, and the mean is taken over active rows
    /// only.
    pub fn weighted_softmax_nll(&mut self, logits: Var, targets: Vec<Vec<(usize, f32)>>) -> Var {
        let l = self.value(logits);
        assert_eq!(l.rows(), targets.len(), "one target distribution per logit row");
        let probs = l.softmax_rows();
        let mut loss = 0.0;
        let mut active = 0usize;
        for (r, tgt) in targets.iter().enumerate() {
            if tgt.is_empty() {
                continue;
            }
            active += 1;
            let p = probs.row(r);
            for &(j, w) in tgt {
                // Clamp to avoid -inf when a kNN weight lands on a ~0 prob.
                loss -= w * p[j].max(1e-12).ln();
            }
        }
        let n = active.max(1) as f32;
        let value = Tensor::from_vec(1, 1, vec![loss / n]);
        self.push(value, Op::WeightedSoftmaxNll { logits, targets, probs })
    }

    /// DEC clustering loss `L_c = KL(P ‖ Q)` (paper Eqs. 9–11).
    ///
    /// `v` is the `(n, d)` embedding matrix, `c` the `(k, d)` centroid
    /// matrix, and `p` the fixed `(n, k)` target distribution (computed from
    /// a detached `Q` via [`target_distribution`]). Returns the scalar loss;
    /// the forward soft assignment is retrievable with [`Tape::dec_q`].
    pub fn dec_kl(&mut self, v: Var, c: Var, p: Tensor) -> Var {
        let q = student_t_assignment(self.value(v), self.value(c));
        assert_eq!(p.shape(), q.shape(), "P/Q shape mismatch");
        let mut loss = 0.0;
        for (pi, qi) in p.data().iter().zip(q.data()) {
            if *pi > 0.0 {
                loss += pi * (pi / qi.max(1e-12)).ln();
            }
        }
        let value = Tensor::from_vec(1, 1, vec![loss]);
        self.push(value, Op::DecKl { v, c, p, q })
    }

    /// The cached soft assignment `Q` of a [`Tape::dec_kl`] node.
    ///
    /// # Panics
    /// Panics if `node` is not a `dec_kl` node.
    pub fn dec_q(&self, node: Var) -> &Tensor {
        match &self.nodes[node.0].op {
            Op::DecKl { q, .. } => q,
            _ => panic!("dec_q called on a non-DecKl node"),
        }
    }

    /// Triplet margin loss (paper Eq. 13), mean over row-aligned triplets:
    /// `mean_i [ ‖a_i − p_i‖² − ‖a_i − n_i‖² + margin ]₊`.
    pub fn triplet(&mut self, anchor: Var, positive: Var, negative: Var, margin: f32) -> Var {
        let a = self.value(anchor);
        let p = self.value(positive);
        let n = self.value(negative);
        assert_eq!(a.shape(), p.shape(), "triplet shape mismatch");
        assert_eq!(a.shape(), n.shape(), "triplet shape mismatch");
        let rows = a.rows();
        let mut active = vec![false; rows];
        let mut loss = 0.0;
        for i in 0..rows {
            let dap = a.row_sq_dist(i, p, i);
            let dan = a.row_sq_dist(i, n, i);
            let l = dap - dan + margin;
            if l > 0.0 {
                active[i] = true;
                loss += l;
            }
        }
        let value = Tensor::from_vec(1, 1, vec![loss / rows.max(1) as f32]);
        self.push(value, Op::Triplet { anchor, positive, negative, active })
    }

    /// Reverse pass from a scalar `(1, 1)` loss node.
    ///
    /// Accumulates parameter gradients into `store` (adding to whatever is
    /// already there, so several losses/batches can be accumulated before an
    /// optimizer step).
    ///
    /// # Panics
    /// Panics if `loss` is not scalar-shaped.
    pub fn backward(&mut self, loss: Var, store: &mut ParamStore) {
        assert_eq!(self.value(loss).shape(), (1, 1), "backward expects a scalar loss");
        let mut grads: Vec<Option<Tensor>> = (0..self.nodes.len()).map(|_| None).collect();
        grads[loss.0] = Some(Tensor::from_vec(1, 1, vec![1.0]));
        // Transposed right operands of matmuls, memoized per backward pass.
        // Parameters dedupe to a single node per tape, so a weight used at
        // every timestep of a recurrence is transposed once here instead of
        // once per step. `matmul(g, bᵀ)` runs the same kernel on the same
        // buffer `matmul_nt(g, b)` would build internally, bit for bit.
        let mut bt_cache: HashMap<usize, Tensor> = HashMap::new();

        for idx in (0..=loss.0).rev() {
            let Some(g) = grads[idx].take() else { continue };
            // Split borrows: the node being differentiated vs. the gradient
            // slots of its (strictly earlier) inputs.
            let node = &self.nodes[idx];
            match &node.op {
                Op::Constant => {}
                Op::Param(id) => store.grad_mut(*id).add_assign(&g),
                Op::MatMul(a, b) => {
                    let bt = bt_cache
                        .entry(b.0)
                        .or_insert_with(|| self.nodes[b.0].value.transpose());
                    // Accumulate straight into existing gradient buffers:
                    // in a recurrence the weight-grad slot exists from the
                    // first (latest-timestep) step onward, so the other 23
                    // steps skip a zeroed temporary plus an add pass each.
                    match &mut grads[a.0] {
                        Some(existing) => g.matmul_acc(bt, existing),
                        slot @ None => *slot = Some(g.matmul(bt)),
                    }
                    let a_val = &self.nodes[a.0].value;
                    match &mut grads[b.0] {
                        Some(existing) => a_val.matmul_tn_acc(&g, existing),
                        slot @ None => *slot = Some(a_val.matmul_tn(&g)),
                    }
                }
                Op::Add(a, b) => {
                    accumulate_ref(&mut grads, *a, &g);
                    accumulate(&mut grads, *b, g);
                }
                Op::Sub(a, b) => {
                    accumulate(&mut grads, *b, g.scale(-1.0));
                    accumulate(&mut grads, *a, g);
                }
                Op::AddRowBroadcast(m, row) => {
                    accumulate(&mut grads, *row, g.sum_rows());
                    accumulate(&mut grads, *m, g);
                }
                Op::Hadamard(a, b) => {
                    let ga = g.hadamard(&self.nodes[b.0].value);
                    let gb = g.hadamard(&self.nodes[a.0].value);
                    accumulate(&mut grads, *a, ga);
                    accumulate(&mut grads, *b, gb);
                }
                Op::Affine { a, mul, .. } => {
                    accumulate(&mut grads, *a, g.scale(*mul));
                }
                Op::Sigmoid(a) => {
                    // y' = y(1-y), fused into one pass over g and y.
                    let y = &node.value;
                    let ga = g.zip_map(y, |gv, yv| gv * yv * (1.0 - yv));
                    accumulate(&mut grads, *a, ga);
                }
                Op::Tanh(a) => {
                    // y' = 1 - y^2, fused into one pass over g and y.
                    let y = &node.value;
                    let ga = g.zip_map(y, |gv, yv| gv * (1.0 - yv * yv));
                    accumulate(&mut grads, *a, ga);
                }
                Op::ConcatCols { a, b, split } => {
                    let rows = g.rows();
                    let cols_a = *split;
                    let cols_b = g.cols() - cols_a;
                    let mut ga = Tensor::zeros(rows, cols_a);
                    let mut gb = Tensor::zeros(rows, cols_b);
                    for r in 0..rows {
                        let src = g.row(r);
                        ga.row_mut(r).copy_from_slice(&src[..cols_a]);
                        gb.row_mut(r).copy_from_slice(&src[cols_a..]);
                    }
                    accumulate(&mut grads, *a, ga);
                    accumulate(&mut grads, *b, gb);
                }
                Op::GatherRows { table, indices } => {
                    let t = &self.nodes[table.0].value;
                    let mut gt = Tensor::zeros(t.rows(), t.cols());
                    for (i, &idx) in indices.iter().enumerate() {
                        let src = g.row(i);
                        let dst = gt.row_mut(idx);
                        for (d, &s) in dst.iter_mut().zip(src) {
                            *d += s;
                        }
                    }
                    accumulate(&mut grads, *table, gt);
                }
                Op::MeanAll(a) => {
                    let src = &self.nodes[a.0].value;
                    let gv = g.get(0, 0) / src.len().max(1) as f32;
                    accumulate(&mut grads, *a, Tensor::full(src.rows(), src.cols(), gv));
                }
                Op::SumAll(a) => {
                    let src = &self.nodes[a.0].value;
                    accumulate(
                        &mut grads,
                        *a,
                        Tensor::full(src.rows(), src.cols(), g.get(0, 0)),
                    );
                }
                Op::MaskMul { a, mask } => {
                    accumulate(&mut grads, *a, g.hadamard(mask));
                }
                Op::RowSum(a) => {
                    let src = &self.nodes[a.0].value;
                    let mut ga = Tensor::zeros(src.rows(), src.cols());
                    for r in 0..src.rows() {
                        let gv = g.get(r, 0);
                        ga.row_mut(r).fill(gv);
                    }
                    accumulate(&mut grads, *a, ga);
                }
                Op::Softmax(a) => {
                    // dL/dx = y ⊙ (g − Σ_j g_j y_j) per row.
                    let y = &node.value;
                    let mut ga = Tensor::zeros(y.rows(), y.cols());
                    for r in 0..y.rows() {
                        let dot: f32 =
                            g.row(r).iter().zip(y.row(r)).map(|(&gi, &yi)| gi * yi).sum();
                        for ((o, &gi), &yi) in
                            ga.row_mut(r).iter_mut().zip(g.row(r)).zip(y.row(r))
                        {
                            *o = yi * (gi - dot);
                        }
                    }
                    accumulate(&mut grads, *a, ga);
                }
                Op::ColBroadcastMul { m, col } => {
                    let mv = &self.nodes[m.0].value;
                    let cv = &self.nodes[col.0].value;
                    // gm = g scaled per row by col; gcol = rowwise dot(g, m).
                    // g is not needed afterwards, so scale it in place.
                    let mut gm = g;
                    let mut gc = Tensor::zeros(cv.rows(), 1);
                    for r in 0..mv.rows() {
                        let s = cv.get(r, 0);
                        let mut dot = 0.0;
                        for (x, &mvx) in gm.row_mut(r).iter_mut().zip(mv.row(r)) {
                            dot += *x * mvx;
                            *x *= s;
                        }
                        gc.set(r, 0, dot);
                    }
                    accumulate(&mut grads, *m, gm);
                    accumulate(&mut grads, *col, gc);
                }
                Op::SliceCols { a, start, end } => {
                    // Add into the source's gradient columns in place when
                    // it already exists; sibling slices of one fused gate
                    // tensor then share a single full-width buffer instead
                    // of each materializing a mostly-zero copy.
                    let src = &self.nodes[a.0].value;
                    let ga = grads[a.0].get_or_insert_with(|| {
                        Tensor::zeros(src.rows(), src.cols())
                    });
                    for r in 0..src.rows() {
                        for (o, &gv) in
                            ga.row_mut(r)[*start..*end].iter_mut().zip(g.row(r))
                        {
                            *o += gv;
                        }
                    }
                }
                Op::WeightedSoftmaxNll { logits, targets, probs } => {
                    // d loss / d logits = (softmax - w) / n_active for
                    // active rows, 0 for padding rows.
                    let active = targets.iter().filter(|t| !t.is_empty()).count();
                    let gscale = g.get(0, 0) / active.max(1) as f32;
                    let mut gl = Tensor::zeros(probs.rows(), probs.cols());
                    for (r, tgt) in targets.iter().enumerate() {
                        if tgt.is_empty() {
                            continue;
                        }
                        let row = gl.row_mut(r);
                        row.copy_from_slice(probs.row(r));
                        for x in row.iter_mut() {
                            *x *= gscale;
                        }
                        for &(j, w) in tgt {
                            row[j] -= w * gscale;
                        }
                    }
                    accumulate(&mut grads, *logits, gl);
                }
                Op::DecKl { v, c, p, q } => {
                    let (gv, gc) =
                        dec_kl_grads(&self.nodes[v.0].value, &self.nodes[c.0].value, p, q);
                    let s = g.get(0, 0);
                    accumulate(&mut grads, *v, gv.scale(s));
                    accumulate(&mut grads, *c, gc.scale(s));
                }
                Op::Triplet { anchor, positive, negative, active, .. } => {
                    let a = &self.nodes[anchor.0].value;
                    let p = &self.nodes[positive.0].value;
                    let n = &self.nodes[negative.0].value;
                    let rows = a.rows();
                    let scale = g.get(0, 0) / rows.max(1) as f32;
                    let mut ga = Tensor::zeros(rows, a.cols());
                    let mut gp = Tensor::zeros(rows, a.cols());
                    let mut gn = Tensor::zeros(rows, a.cols());
                    for i in 0..rows {
                        if !active[i] {
                            continue;
                        }
                        for j in 0..a.cols() {
                            let av = a.get(i, j);
                            let pv = p.get(i, j);
                            let nv = n.get(i, j);
                            // d/da (|a-p|^2 - |a-n|^2) = 2(n - p)
                            ga.set(i, j, 2.0 * scale * (nv - pv));
                            gp.set(i, j, -2.0 * scale * (av - pv));
                            gn.set(i, j, 2.0 * scale * (av - nv));
                        }
                    }
                    accumulate(&mut grads, *anchor, ga);
                    accumulate(&mut grads, *positive, gp);
                    accumulate(&mut grads, *negative, gn);
                }
            }
        }
    }
}

fn accumulate(grads: &mut [Option<Tensor>], v: Var, g: Tensor) {
    match &mut grads[v.0] {
        Some(existing) => existing.add_assign(&g),
        slot @ None => *slot = Some(g),
    }
}

/// Like [`accumulate`], but adds into an existing buffer without taking
/// ownership; the tensor is cloned only when `v` has no gradient yet.
/// Lets ops that fan one upstream gradient into several inputs skip an
/// unconditional `g.clone()`.
fn accumulate_ref(grads: &mut [Option<Tensor>], v: Var, g: &Tensor) {
    match &mut grads[v.0] {
        Some(existing) => existing.add_assign(g),
        slot @ None => *slot = Some(g.clone()),
    }
}

/// Student-t soft cluster assignment (paper Eq. 9):
/// `q_ij = (1 + ‖v_i − c_j‖²)⁻¹ / Σ_j' (1 + ‖v_i − c_j'‖²)⁻¹`.
pub fn student_t_assignment(v: &Tensor, c: &Tensor) -> Tensor {
    assert_eq!(v.cols(), c.cols(), "embedding/centroid dimensionality mismatch");
    let (n, k) = (v.rows(), c.rows());
    let mut q = Tensor::zeros(n, k);
    for i in 0..n {
        let row = q.row_mut(i);
        let mut sum = 0.0;
        for (j, slot) in row.iter_mut().enumerate() {
            let s = 1.0 / (1.0 + v.row_sq_dist(i, c, j));
            *slot = s;
            sum += s;
        }
        for slot in row.iter_mut() {
            *slot /= sum;
        }
    }
    q
}

/// Auxiliary target distribution (paper Eq. 10):
/// `p_ij = (q_ij² / f_j) / Σ_j' (q_ij'² / f_j')` with `f_j = Σ_i q_ij`.
pub fn target_distribution(q: &Tensor) -> Tensor {
    let (n, k) = q.shape();
    let mut freq = vec![0.0f32; k];
    for i in 0..n {
        for (f, &x) in freq.iter_mut().zip(q.row(i)) {
            *f += x;
        }
    }
    let mut p = Tensor::zeros(n, k);
    for i in 0..n {
        let src = q.row(i);
        let dst = p.row_mut(i);
        let mut sum = 0.0;
        for j in 0..k {
            let v = src[j] * src[j] / freq[j].max(1e-12);
            dst[j] = v;
            sum += v;
        }
        for d in dst.iter_mut() {
            *d /= sum.max(1e-12);
        }
    }
    p
}

/// Analytic gradients of `KL(P‖Q)` w.r.t. embeddings and centroids
/// (Xie et al., ICML 2016, with Student-t dof α = 1):
/// `∂L/∂v_i = 2 Σ_j (1+‖v_i−c_j‖²)⁻¹ (p_ij − q_ij)(v_i − c_j)`
/// `∂L/∂c_j = −2 Σ_i (1+‖v_i−c_j‖²)⁻¹ (p_ij − q_ij)(v_i − c_j)`
fn dec_kl_grads(v: &Tensor, c: &Tensor, p: &Tensor, q: &Tensor) -> (Tensor, Tensor) {
    let (n, d) = v.shape();
    let k = c.rows();
    let mut gv = Tensor::zeros(n, d);
    let mut gc = Tensor::zeros(k, d);
    for i in 0..n {
        for j in 0..k {
            let s = 1.0 / (1.0 + v.row_sq_dist(i, c, j));
            let coef = 2.0 * s * (p.get(i, j) - q.get(i, j));
            for t in 0..d {
                let diff = v.get(i, t) - c.get(j, t);
                *gv.row_mut(i).get_mut(t).expect("in range") += coef * diff;
                *gc.row_mut(j).get_mut(t).expect("in range") -= coef * diff;
            }
        }
    }
    (gv, gc)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scalar(t: &Tensor) -> f32 {
        t.get(0, 0)
    }

    #[test]
    fn constant_forward_value_is_preserved() {
        let mut tape = Tape::new();
        let c = tape.constant(Tensor::row_vector(vec![1.0, 2.0]));
        assert_eq!(tape.value(c).data(), &[1.0, 2.0]);
    }

    #[test]
    fn param_nodes_are_deduplicated() {
        let mut store = ParamStore::new();
        let id = store.add("w", Tensor::zeros(1, 1));
        let mut tape = Tape::new();
        let a = tape.param(&store, id);
        let b = tape.param(&store, id);
        assert_eq!(a, b);
        assert_eq!(tape.len(), 1);
    }

    #[test]
    fn backward_linear_chain_matches_hand_gradient() {
        // loss = mean( (x @ w) * 3 + 1 ), x = [1, 2], w = [[2], [3]]
        // pre-affine y = 8, loss = 25; dloss/dw = 3 * x^T = [3, 6]^T
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::from_rows(&[vec![2.0], vec![3.0]]));
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::row_vector(vec![1.0, 2.0]));
        let wv = tape.param(&store, w);
        let y = tape.matmul(x, wv);
        let z = tape.affine(y, 3.0, 1.0);
        let loss = tape.mean_all(z);
        assert!((scalar(tape.value(loss)) - 25.0).abs() < 1e-5);
        tape.backward(loss, &mut store);
        assert!((store.grad(w).get(0, 0) - 3.0).abs() < 1e-5);
        assert!((store.grad(w).get(1, 0) - 6.0).abs() < 1e-5);
    }

    #[test]
    fn backward_accumulates_across_reused_param() {
        // loss = sum(w + w) => dloss/dw = 2 everywhere
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::from_rows(&[vec![1.0, 1.0]]));
        let mut tape = Tape::new();
        let wv = tape.param(&store, w);
        let s = tape.add(wv, wv);
        let loss = tape.sum_all(s);
        tape.backward(loss, &mut store);
        assert_eq!(store.grad(w).data(), &[2.0, 2.0]);
    }

    #[test]
    fn clear_retains_capacity_and_allows_reuse() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::from_rows(&[vec![1.0, 1.0]]));
        let mut tape = Tape::new();
        for _ in 0..3 {
            tape.clear();
            let wv = tape.param(&store, w);
            let s = tape.add(wv, wv);
            let loss = tape.sum_all(s);
            tape.backward(loss, &mut store);
        }
        // Three backward passes of d(sum(w + w))/dw = 2 accumulate to 6,
        // and the cleared tape re-registers the param node each time.
        assert_eq!(store.grad(w).data(), &[6.0, 6.0]);
        assert_eq!(tape.len(), 3);
    }

    #[test]
    fn student_t_assignment_rows_are_distributions() {
        let v = Tensor::from_rows(&[vec![0.0, 0.0], vec![5.0, 5.0]]);
        let c = Tensor::from_rows(&[vec![0.0, 0.0], vec![5.0, 5.0], vec![10.0, 0.0]]);
        let q = student_t_assignment(&v, &c);
        for i in 0..2 {
            let sum: f32 = q.row(i).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
        // Each point is closest to its own centroid.
        assert!(q.get(0, 0) > q.get(0, 1) && q.get(0, 0) > q.get(0, 2));
        assert!(q.get(1, 1) > q.get(1, 0) && q.get(1, 1) > q.get(1, 2));
    }

    #[test]
    fn target_distribution_sharpens_confident_assignments() {
        let q = Tensor::from_rows(&[vec![0.9, 0.1], vec![0.6, 0.4]]);
        let p = target_distribution(&q);
        // Rows remain distributions.
        for i in 0..2 {
            let sum: f32 = p.row(i).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
        // High-confidence assignment gets sharper.
        assert!(p.get(0, 0) > q.get(0, 0));
    }

    #[test]
    fn weighted_softmax_nll_reduces_to_cross_entropy_for_one_hot() {
        let mut tape = Tape::new();
        let logits = tape.constant(Tensor::from_rows(&[vec![2.0, 0.0, -1.0]]));
        let loss = tape.weighted_softmax_nll(logits, vec![vec![(0, 1.0)]]);
        let expected = {
            let p = Tensor::from_rows(&[vec![2.0, 0.0, -1.0]]).softmax_rows();
            -p.get(0, 0).ln()
        };
        assert!((scalar(tape.value(loss)) - expected).abs() < 1e-5);
    }

    #[test]
    fn dec_kl_is_zero_when_p_equals_q() {
        let v = Tensor::from_rows(&[vec![0.0, 0.0], vec![4.0, 4.0]]);
        let c = Tensor::from_rows(&[vec![0.0, 0.0], vec![4.0, 4.0]]);
        let q = student_t_assignment(&v, &c);
        let mut tape = Tape::new();
        let vv = tape.constant(v);
        let cv = tape.constant(c);
        let loss = tape.dec_kl(vv, cv, q);
        assert!(scalar(tape.value(loss)).abs() < 1e-6);
    }

    #[test]
    fn triplet_loss_is_zero_when_margin_satisfied() {
        let mut tape = Tape::new();
        let a = tape.constant(Tensor::from_rows(&[vec![0.0, 0.0]]));
        let p = tape.constant(Tensor::from_rows(&[vec![0.1, 0.0]]));
        let n = tape.constant(Tensor::from_rows(&[vec![10.0, 0.0]]));
        let loss = tape.triplet(a, p, n, 1.0);
        assert_eq!(scalar(tape.value(loss)), 0.0);
    }

    #[test]
    fn triplet_loss_positive_when_violated() {
        let mut tape = Tape::new();
        let a = tape.constant(Tensor::from_rows(&[vec![0.0, 0.0]]));
        let p = tape.constant(Tensor::from_rows(&[vec![3.0, 0.0]]));
        let n = tape.constant(Tensor::from_rows(&[vec![1.0, 0.0]]));
        let loss = tape.triplet(a, p, n, 0.5);
        // |a-p|^2 = 9, |a-n|^2 = 1, margin 0.5 -> 8.5
        assert!((scalar(tape.value(loss)) - 8.5).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "scalar loss")]
    fn backward_rejects_non_scalar_loss() {
        let mut store = ParamStore::new();
        let mut tape = Tape::new();
        let c = tape.constant(Tensor::zeros(2, 2));
        tape.backward(c, &mut store);
    }
}
