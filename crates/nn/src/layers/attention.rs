//! Luong-style dot-product attention (Luong, Pham, Manning — EMNLP 2015).
//!
//! An optional decoder enhancement for the seq2seq model (not used by the
//! E²DTC paper itself; provided as the natural extension — follow-up
//! trajectory-representation work such as Liu et al. TKDE'20 adds
//! attention to the t2vec architecture):
//!
//! ```text
//! score_t = h_dec · h_enc_t            (per batch row)
//! α       = softmax(score_1 … score_T)
//! context = Σ_t α_t · h_enc_t
//! h~      = tanh(W_c [context | h_dec])
//! ```

use crate::params::ParamStore;
use crate::tape::{Tape, Var};
use rand::Rng;

/// Dot-product attention with the Luong output projection.
#[derive(Clone, Copy, Debug)]
pub struct DotAttention {
    combine: super::Linear,
    hidden: usize,
}

impl DotAttention {
    /// Registers the `W_c: (2·hidden, hidden)` combination projection.
    pub fn new(store: &mut ParamStore, name: &str, hidden: usize, rng: &mut impl Rng) -> Self {
        let combine =
            super::Linear::new(store, &format!("{name}.combine"), 2 * hidden, hidden, false, rng);
        Self { combine, hidden }
    }

    /// Hidden width this attention operates on.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// The `W_c` output projection.
    pub fn combine(&self) -> &super::Linear {
        &self.combine
    }

    /// One attention step: attends `query` (`(batch, hidden)`) over the
    /// encoder outputs (`T` tensors of `(batch, hidden)`), returning the
    /// attentional hidden state `h~` of the same shape.
    ///
    /// # Panics
    /// Panics on an empty encoder sequence or width mismatch.
    pub fn attend(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        query: Var,
        encoder_outputs: &[Var],
    ) -> Var {
        assert!(!encoder_outputs.is_empty(), "attention needs encoder outputs");
        assert_eq!(tape.value(query).cols(), self.hidden, "query width mismatch");

        // Scores: rowwise dot products, assembled into (batch, T).
        let mut scores: Option<Var> = None;
        for &h_enc in encoder_outputs {
            let prod = tape.hadamard(query, h_enc);
            let s = tape.row_sum(prod); // (batch, 1)
            scores = Some(match scores {
                Some(acc) => tape.concat_cols(acc, s),
                None => s,
            });
        }
        let scores = scores.expect("non-empty");
        let alpha = tape.softmax(scores); // (batch, T)

        // Context: Σ_t α_t ⊙ h_enc_t.
        let mut context: Option<Var> = None;
        for (t, &h_enc) in encoder_outputs.iter().enumerate() {
            let a_t = tape.slice_cols(alpha, t, t + 1); // (batch, 1)
            let weighted = tape.col_broadcast_mul(h_enc, a_t);
            context = Some(match context {
                Some(acc) => tape.add(acc, weighted),
                None => weighted,
            });
        }
        let context = context.expect("non-empty");

        // h~ = tanh(W_c [context | query])
        let cat = tape.concat_cols(context, query);
        let proj = self.combine.forward(tape, store, cat);
        tape.tanh(proj)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::Init;
    use crate::tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(hidden: usize) -> (ParamStore, DotAttention, StdRng) {
        let mut rng = StdRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let attn = DotAttention::new(&mut store, "attn", hidden, &mut rng);
        (store, attn, rng)
    }

    #[test]
    fn output_shape_matches_query() {
        let (store, attn, mut rng) = setup(6);
        let mut tape = Tape::new();
        let q = tape.constant(Init::Normal(0.5).tensor(3, 6, &mut rng));
        let enc: Vec<Var> = (0..4)
            .map(|_| tape.constant(Init::Normal(0.5).tensor(3, 6, &mut rng)))
            .collect();
        let out = attn.attend(&mut tape, &store, q, &enc);
        assert_eq!(tape.value(out).shape(), (3, 6));
    }

    #[test]
    fn attention_weights_favor_the_matching_timestep() {
        // With a single strong match, the context should be dominated by
        // that encoder state. We verify indirectly: the attended output
        // differs sharply between a query matching step 0 vs step 2.
        let (store, attn, _) = setup(2);
        let mut tape = Tape::new();
        let e0 = tape.constant(Tensor::from_rows(&[vec![5.0, 0.0]]));
        let e1 = tape.constant(Tensor::from_rows(&[vec![0.0, 5.0]]));
        let q0 = tape.constant(Tensor::from_rows(&[vec![5.0, 0.0]]));
        let q1 = tape.constant(Tensor::from_rows(&[vec![0.0, 5.0]]));
        let o0 = attn.attend(&mut tape, &store, q0, &[e0, e1]);
        let o1 = attn.attend(&mut tape, &store, q1, &[e0, e1]);
        let diff: f32 = tape
            .value(o0)
            .data()
            .iter()
            .zip(tape.value(o1).data())
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(diff > 1e-3, "attention output insensitive to the query");
    }

    #[test]
    fn single_timestep_attention_is_fully_concentrated() {
        let (store, attn, mut rng) = setup(4);
        let mut tape = Tape::new();
        let q = tape.constant(Init::Normal(0.5).tensor(2, 4, &mut rng));
        let e = tape.constant(Init::Normal(0.5).tensor(2, 4, &mut rng));
        // With one timestep, softmax gives weight 1 — output = tanh(W[e|q]).
        let out = attn.attend(&mut tape, &store, q, &[e]);
        let cat = tape.concat_cols(e, q);
        let proj = attn.combine.forward(&mut tape, &store, cat);
        let expect = tape.tanh(proj);
        assert_eq!(tape.value(out), tape.value(expect));
    }

    #[test]
    #[should_panic(expected = "needs encoder outputs")]
    fn empty_encoder_sequence_panics() {
        let (store, attn, mut rng) = setup(4);
        let mut tape = Tape::new();
        let q = tape.constant(Init::Normal(0.5).tensor(2, 4, &mut rng));
        let _ = attn.attend(&mut tape, &store, q, &[]);
    }
}
