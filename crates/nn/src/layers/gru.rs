//! Gated Recurrent Unit layers.
//!
//! The paper's encoder/decoder use a 3-layer GRU ("because it has a better
//! embedding performance compared with the LSTM network", §VII-B). We
//! implement the standard GRU cell
//!
//! ```text
//! r_t = σ(x_t W_xr + h_{t-1} W_hr + b_r)
//! z_t = σ(x_t W_xz + h_{t-1} W_hz + b_z)
//! n_t = tanh(x_t W_xn + b_xn + r_t ⊙ (h_{t-1} W_hn + b_hn))
//! h_t = (1 − z_t) ⊙ n_t + z_t ⊙ h_{t-1}
//! ```
//!
//! composed from the primitive tape ops, so the whole recurrence is
//! differentiated automatically through time (BPTT).
//!
//! The three gates share their matmuls: per direction the cell stores one
//! fused weight `[W_r | W_z | W_n]` of width `3 * hidden`, so a step costs
//! two matrix products (`x @ W_x`, `h @ W_h`) instead of six, with the
//! per-gate pre-activations recovered by column slicing (the cuDNN/PyTorch
//! fused-gate layout). The candidate's recurrent bias lives in the third
//! block of `b_h` so that `n = tanh(gx_n + r ⊙ gh_n)` keeps the paper's
//! `r ⊙ (h W_hn + b_hn)` form; the r/z blocks of `b_h` stay zero and fold
//! into `b_x`.

use crate::init::Init;
use crate::params::{ParamId, ParamStore};
use crate::tape::{Tape, Var};
use crate::tensor::Tensor;
use rand::Rng;

/// Draws the two fused weights `[W_xr|W_xz|W_xn]` and `[W_hr|W_hz|W_hn]`.
/// Each block keeps its own Xavier bound, so the fan-in / fan-out statistics
/// match separate `(rows, hidden)` gate matrices; the blocks are drawn in
/// the pre-fusion order (xr, hr, xz, hz, xn, hn) so a seeded run realizes
/// bit-identical initial weights to the unfused layout.
fn fused_gate_init(input: usize, hidden: usize, rng: &mut impl Rng) -> (Tensor, Tensor) {
    let xavier = Init::XavierUniform;
    let xr = xavier.tensor(input, hidden, rng);
    let hr = xavier.tensor(hidden, hidden, rng);
    let xz = xavier.tensor(input, hidden, rng);
    let hz = xavier.tensor(hidden, hidden, rng);
    let xn = xavier.tensor(input, hidden, rng);
    let hn = xavier.tensor(hidden, hidden, rng);
    (xr.concat_cols(&xz).concat_cols(&xn), hr.concat_cols(&hz).concat_cols(&hn))
}

/// One GRU cell (a single layer's recurrence step) with fused gate weights.
#[derive(Clone, Copy, Debug)]
pub struct GruCell {
    /// `(input, 3 * hidden)` fused `[W_xr | W_xz | W_xn]`.
    w_x: ParamId,
    /// `(hidden, 3 * hidden)` fused `[W_hr | W_hz | W_hn]`.
    w_h: ParamId,
    /// `(1, 3 * hidden)` fused `[b_r | b_z | b_xn]`.
    b_x: ParamId,
    /// `(1, 3 * hidden)` fused `[0 | 0 | b_hn]`.
    b_h: ParamId,
    input_dim: usize,
    hidden_dim: usize,
}

impl GruCell {
    /// Registers a GRU cell's four fused parameter tensors.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        input_dim: usize,
        hidden_dim: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let (wx_init, wh_init) = fused_gate_init(input_dim, hidden_dim, rng);
        let w_x = store.add(format!("{name}.w_x"), wx_init);
        let w_h = store.add(format!("{name}.w_h"), wh_init);
        let b_x = store.add(format!("{name}.b_x"), Tensor::zeros(1, 3 * hidden_dim));
        let b_h = store.add(format!("{name}.b_h"), Tensor::zeros(1, 3 * hidden_dim));
        Self { w_x, w_h, b_x, b_h, input_dim, hidden_dim }
    }

    /// One recurrence step: `(x: (batch, input), h: (batch, hidden)) -> h'`.
    pub fn step(&self, tape: &mut Tape, store: &ParamStore, x: Var, h: Var) -> Var {
        debug_assert_eq!(tape.value(x).cols(), self.input_dim, "GRU input width mismatch");
        debug_assert_eq!(tape.value(h).cols(), self.hidden_dim, "GRU hidden width mismatch");
        crate::telemetry::GRU_CELL_STEPS.inc();
        let hd = self.hidden_dim;

        // All six per-gate products collapse into two fused matmuls.
        let w_x = tape.param(store, self.w_x);
        let w_h = tape.param(store, self.w_h);
        let b_x = tape.param(store, self.b_x);
        let b_h = tape.param(store, self.b_h);
        let gx = tape.matmul(x, w_x);
        let gx = tape.add_row_broadcast(gx, b_x);
        let gh = tape.matmul(h, w_h);
        let gh = tape.add_row_broadcast(gh, b_h);

        // r = σ(gx_r + gh_r), z = σ(gx_z + gh_z)
        let gx_r = tape.slice_cols(gx, 0, hd);
        let gh_r = tape.slice_cols(gh, 0, hd);
        let r_pre = tape.add(gx_r, gh_r);
        let r = tape.sigmoid(r_pre);
        let gx_z = tape.slice_cols(gx, hd, 2 * hd);
        let gh_z = tape.slice_cols(gh, hd, 2 * hd);
        let z_pre = tape.add(gx_z, gh_z);
        let z = tape.sigmoid(z_pre);

        // candidate: n = tanh(gx_n + r ⊙ gh_n)
        let gx_n = tape.slice_cols(gx, 2 * hd, 3 * hd);
        let gh_n = tape.slice_cols(gh, 2 * hd, 3 * hd);
        let rh = tape.hadamard(r, gh_n);
        let n_pre = tape.add(gx_n, rh);
        let n = tape.tanh(n_pre);

        // h' = (1 - z) ⊙ n + z ⊙ h
        let one_minus_z = tape.one_minus(z);
        let a = tape.hadamard(one_minus_z, n);
        let b = tape.hadamard(z, h);
        tape.add(a, b)
    }

    /// Input dimensionality.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Hidden-state dimensionality.
    pub fn hidden_dim(&self) -> usize {
        self.hidden_dim
    }

    /// Fused `(input, 3 * hidden)` input-to-hidden weight `[W_xr|W_xz|W_xn]`.
    pub fn w_x(&self) -> ParamId {
        self.w_x
    }

    /// Fused `(hidden, 3 * hidden)` recurrent weight `[W_hr|W_hz|W_hn]`.
    pub fn w_h(&self) -> ParamId {
        self.w_h
    }

    /// Fused `(1, 3 * hidden)` input-side bias `[b_r|b_z|b_xn]`.
    pub fn b_x(&self) -> ParamId {
        self.b_x
    }

    /// Fused `(1, 3 * hidden)` recurrent-side bias `[0|0|b_hn]`.
    pub fn b_h(&self) -> ParamId {
        self.b_h
    }
}

/// A stack of GRU cells (the paper uses 3 layers).
#[derive(Clone, Debug)]
pub struct Gru {
    cells: Vec<GruCell>,
    dropout: f32,
}

impl Gru {
    /// Registers a multi-layer GRU. Layer 0 consumes `input_dim`, deeper
    /// layers consume the previous layer's hidden state.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        input_dim: usize,
        hidden_dim: usize,
        layers: usize,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(layers >= 1, "GRU needs at least one layer");
        let cells = (0..layers)
            .map(|l| {
                let in_dim = if l == 0 { input_dim } else { hidden_dim };
                GruCell::new(store, &format!("{name}.layer{l}"), in_dim, hidden_dim, rng)
            })
            .collect();
        Self { cells, dropout: 0.0 }
    }

    /// Enables inter-layer inverted dropout during training-mode forwards.
    pub fn with_dropout(mut self, p: f32) -> Self {
        assert!((0.0..1.0).contains(&p), "dropout probability must be in [0, 1)");
        self.dropout = p;
        self
    }

    /// Number of stacked layers.
    pub fn layers(&self) -> usize {
        self.cells.len()
    }

    /// The per-layer cells, bottom (input-consuming) layer first.
    pub fn cells(&self) -> &[GruCell] {
        &self.cells
    }

    /// Hidden dimensionality.
    pub fn hidden_dim(&self) -> usize {
        self.cells[0].hidden_dim()
    }

    /// Zero initial hidden states (one per layer) for a batch.
    pub fn zero_state(&self, tape: &mut Tape, batch: usize) -> Vec<Var> {
        self.cells
            .iter()
            .map(|c| tape.constant(Tensor::zeros(batch, c.hidden_dim())))
            .collect()
    }

    /// One step through the full stack. `state` holds one hidden Var per
    /// layer and is updated in place; returns the top layer's new hidden.
    ///
    /// When `train` is set and dropout is enabled, inverted dropout is
    /// applied between layers (never to the recurrent state itself).
    pub fn step(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        x: Var,
        state: &mut [Var],
        train: bool,
        rng: &mut impl Rng,
    ) -> Var {
        assert_eq!(state.len(), self.cells.len(), "state/layer count mismatch");
        let mut input = x;
        for (l, cell) in self.cells.iter().enumerate() {
            let h_new = cell.step(tape, store, input, state[l]);
            state[l] = h_new;
            input = h_new;
            if train && self.dropout > 0.0 && l + 1 < self.cells.len() {
                let keep = 1.0 - self.dropout;
                let v = tape.value(input);
                let (r, c) = v.shape();
                let mask = Tensor::from_vec(
                    r,
                    c,
                    (0..r * c)
                        .map(|_| if rng.gen::<f32>() < keep { 1.0 / keep } else { 0.0 })
                        .collect(),
                );
                input = tape.mask_mul(input, mask);
            }
        }
        input
    }

    /// Like [`Gru::step`], but only updates the hidden state of *active*
    /// batch rows: `mask` is a `(batch, hidden)` tensor whose rows are all
    /// 1.0 for active sequences and all 0.0 for sequences that have already
    /// ended (padding). Ended rows carry their previous hidden state
    /// forward unchanged, so variable-length sequences can share a batch.
    #[allow(clippy::too_many_arguments)]
    pub fn step_masked(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        x: Var,
        state: &mut [Var],
        mask: &Tensor,
        train: bool,
        rng: &mut impl Rng,
    ) -> Var {
        let old_state: Vec<Var> = state.to_vec();
        let top = self.step(tape, store, x, state, train, rng);
        let inv = mask.map(|m| 1.0 - m);
        for (l, old) in old_state.into_iter().enumerate() {
            let kept_new = tape.mask_mul(state[l], mask.clone());
            let kept_old = tape.mask_mul(old, inv.clone());
            state[l] = tape.add(kept_new, kept_old);
        }
        let _ = top;
        state[self.cells.len() - 1]
    }

    /// Runs a full sequence of pre-embedded inputs (`seq[t]` is the
    /// `(batch, input)` Var at time t); returns the top-layer hidden at each
    /// step and leaves `state` at the final hidden states.
    pub fn run(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        seq: &[Var],
        state: &mut [Var],
        train: bool,
        rng: &mut impl Rng,
    ) -> Vec<Var> {
        seq.iter().map(|&x| self.step(tape, store, x, state, train, rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn step_preserves_shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let gru = Gru::new(&mut store, "gru", 4, 8, 2, &mut rng);
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::zeros(3, 4));
        let mut state = gru.zero_state(&mut tape, 3);
        let h = gru.step(&mut tape, &store, x, &mut state, false, &mut rng);
        assert_eq!(tape.value(h).shape(), (3, 8));
        assert_eq!(state.len(), 2);
    }

    #[test]
    fn zero_input_zero_state_gives_zero_candidate_mix() {
        // With zero input, zero state, and zero biases, n = tanh(0) = 0 and
        // h' = (1-z)*0 + z*0 = 0 regardless of the weights.
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let cell = GruCell::new(&mut store, "cell", 2, 3, &mut rng);
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::zeros(1, 2));
        let h = tape.constant(Tensor::zeros(1, 3));
        let h2 = cell.step(&mut tape, &store, x, h);
        assert!(tape.value(h2).data().iter().all(|&v| v.abs() < 1e-7));
    }

    #[test]
    fn hidden_state_is_bounded_by_one() {
        // h_t is a convex combination of tanh outputs and previous h, so
        // starting from zero state all activations stay in (-1, 1).
        let mut rng = StdRng::seed_from_u64(2);
        let mut store = ParamStore::new();
        let gru = Gru::new(&mut store, "gru", 3, 5, 3, &mut rng);
        let mut tape = Tape::new();
        let mut state = gru.zero_state(&mut tape, 2);
        let mut last = None;
        for t in 0..10 {
            let x = tape.constant(Tensor::full(2, 3, (t as f32).sin() * 3.0));
            last = Some(gru.step(&mut tape, &store, x, &mut state, false, &mut rng));
        }
        let h = tape.value(last.expect("ran steps"));
        assert!(h.data().iter().all(|&v| v.abs() < 1.0));
    }

    #[test]
    fn gradients_flow_through_time() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut store = ParamStore::new();
        let gru = Gru::new(&mut store, "gru", 2, 4, 1, &mut rng);
        let mut tape = Tape::new();
        let seq: Vec<Var> = (0..5)
            .map(|t| tape.constant(Tensor::full(1, 2, 0.3 * (t as f32 + 1.0))))
            .collect();
        let mut state = gru.zero_state(&mut tape, 1);
        let outs = gru.run(&mut tape, &store, &seq, &mut state, false, &mut rng);
        let last = *outs.last().expect("non-empty");
        let loss = tape.mean_all(last);
        tape.backward(loss, &mut store);
        let total: f32 = store.ids().map(|id| store.grad(id).norm()).sum();
        assert!(total > 0.0, "no gradient reached the GRU parameters");
    }

    #[test]
    fn dropout_masks_apply_only_in_train_mode() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut store = ParamStore::new();
        let gru = Gru::new(&mut store, "gru", 2, 4, 2, &mut rng).with_dropout(0.9);
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::full(1, 2, 1.0));
        // Eval mode: two identical calls produce identical outputs.
        let mut s1 = gru.zero_state(&mut tape, 1);
        let h1 = gru.step(&mut tape, &store, x, &mut s1, false, &mut rng);
        let mut s2 = gru.zero_state(&mut tape, 1);
        let h2 = gru.step(&mut tape, &store, x, &mut s2, false, &mut rng);
        assert_eq!(tape.value(h1).data(), tape.value(h2).data());
    }
}
