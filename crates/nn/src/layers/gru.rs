//! Gated Recurrent Unit layers.
//!
//! The paper's encoder/decoder use a 3-layer GRU ("because it has a better
//! embedding performance compared with the LSTM network", §VII-B). We
//! implement the standard GRU cell
//!
//! ```text
//! r_t = σ(x_t W_xr + h_{t-1} W_hr + b_r)
//! z_t = σ(x_t W_xz + h_{t-1} W_hz + b_z)
//! n_t = tanh(x_t W_xn + b_xn + r_t ⊙ (h_{t-1} W_hn + b_hn))
//! h_t = (1 − z_t) ⊙ n_t + z_t ⊙ h_{t-1}
//! ```
//!
//! composed from the primitive tape ops, so the whole recurrence is
//! differentiated automatically through time (BPTT).

use crate::init::Init;
use crate::params::{ParamId, ParamStore};
use crate::tape::{Tape, Var};
use crate::tensor::Tensor;
use rand::Rng;

/// One GRU cell (a single layer's recurrence step).
#[derive(Clone, Copy, Debug)]
pub struct GruCell {
    w_xr: ParamId,
    w_hr: ParamId,
    b_r: ParamId,
    w_xz: ParamId,
    w_hz: ParamId,
    b_z: ParamId,
    w_xn: ParamId,
    b_xn: ParamId,
    w_hn: ParamId,
    b_hn: ParamId,
    input_dim: usize,
    hidden_dim: usize,
}

impl GruCell {
    /// Registers a GRU cell's ten parameter tensors.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        input_dim: usize,
        hidden_dim: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let xavier = Init::XavierUniform;
        let w_xr = store.add_init(format!("{name}.w_xr"), input_dim, hidden_dim, xavier, rng);
        let w_hr = store.add_init(format!("{name}.w_hr"), hidden_dim, hidden_dim, xavier, rng);
        let w_xz = store.add_init(format!("{name}.w_xz"), input_dim, hidden_dim, xavier, rng);
        let w_hz = store.add_init(format!("{name}.w_hz"), hidden_dim, hidden_dim, xavier, rng);
        let w_xn = store.add_init(format!("{name}.w_xn"), input_dim, hidden_dim, xavier, rng);
        let w_hn = store.add_init(format!("{name}.w_hn"), hidden_dim, hidden_dim, xavier, rng);
        let b_r = store.add_init(format!("{name}.b_r"), 1, hidden_dim, Init::Zeros, rng);
        let b_z = store.add_init(format!("{name}.b_z"), 1, hidden_dim, Init::Zeros, rng);
        let b_xn = store.add_init(format!("{name}.b_xn"), 1, hidden_dim, Init::Zeros, rng);
        let b_hn = store.add_init(format!("{name}.b_hn"), 1, hidden_dim, Init::Zeros, rng);
        Self { w_xr, w_hr, b_r, w_xz, w_hz, b_z, w_xn, b_xn, w_hn, b_hn, input_dim, hidden_dim }
    }

    /// One recurrence step: `(x: (batch, input), h: (batch, hidden)) -> h'`.
    pub fn step(&self, tape: &mut Tape, store: &ParamStore, x: Var, h: Var) -> Var {
        debug_assert_eq!(tape.value(x).cols(), self.input_dim, "GRU input width mismatch");
        debug_assert_eq!(tape.value(h).cols(), self.hidden_dim, "GRU hidden width mismatch");

        let gate = |tape: &mut Tape, wx: ParamId, wh: ParamId, b: ParamId| {
            let wxv = tape.param(store, wx);
            let whv = tape.param(store, wh);
            let bv = tape.param(store, b);
            let xs = tape.matmul(x, wxv);
            let hs = tape.matmul(h, whv);
            let sum = tape.add(xs, hs);
            tape.add_row_broadcast(sum, bv)
        };

        let r_pre = gate(tape, self.w_xr, self.w_hr, self.b_r);
        let r = tape.sigmoid(r_pre);
        let z_pre = gate(tape, self.w_xz, self.w_hz, self.b_z);
        let z = tape.sigmoid(z_pre);

        // candidate: tanh(x W_xn + b_xn + r ⊙ (h W_hn + b_hn))
        let w_xn = tape.param(store, self.w_xn);
        let b_xn = tape.param(store, self.b_xn);
        let w_hn = tape.param(store, self.w_hn);
        let b_hn = tape.param(store, self.b_hn);
        let xn = tape.matmul(x, w_xn);
        let xn = tape.add_row_broadcast(xn, b_xn);
        let hn = tape.matmul(h, w_hn);
        let hn = tape.add_row_broadcast(hn, b_hn);
        let rh = tape.hadamard(r, hn);
        let n_pre = tape.add(xn, rh);
        let n = tape.tanh(n_pre);

        // h' = (1 - z) ⊙ n + z ⊙ h
        let one_minus_z = tape.one_minus(z);
        let a = tape.hadamard(one_minus_z, n);
        let b = tape.hadamard(z, h);
        tape.add(a, b)
    }

    /// Input dimensionality.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Hidden-state dimensionality.
    pub fn hidden_dim(&self) -> usize {
        self.hidden_dim
    }
}

/// A stack of GRU cells (the paper uses 3 layers).
#[derive(Clone, Debug)]
pub struct Gru {
    cells: Vec<GruCell>,
    dropout: f32,
}

impl Gru {
    /// Registers a multi-layer GRU. Layer 0 consumes `input_dim`, deeper
    /// layers consume the previous layer's hidden state.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        input_dim: usize,
        hidden_dim: usize,
        layers: usize,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(layers >= 1, "GRU needs at least one layer");
        let cells = (0..layers)
            .map(|l| {
                let in_dim = if l == 0 { input_dim } else { hidden_dim };
                GruCell::new(store, &format!("{name}.layer{l}"), in_dim, hidden_dim, rng)
            })
            .collect();
        Self { cells, dropout: 0.0 }
    }

    /// Enables inter-layer inverted dropout during training-mode forwards.
    pub fn with_dropout(mut self, p: f32) -> Self {
        assert!((0.0..1.0).contains(&p), "dropout probability must be in [0, 1)");
        self.dropout = p;
        self
    }

    /// Number of stacked layers.
    pub fn layers(&self) -> usize {
        self.cells.len()
    }

    /// Hidden dimensionality.
    pub fn hidden_dim(&self) -> usize {
        self.cells[0].hidden_dim()
    }

    /// Zero initial hidden states (one per layer) for a batch.
    pub fn zero_state(&self, tape: &mut Tape, batch: usize) -> Vec<Var> {
        self.cells
            .iter()
            .map(|c| tape.constant(Tensor::zeros(batch, c.hidden_dim())))
            .collect()
    }

    /// One step through the full stack. `state` holds one hidden Var per
    /// layer and is updated in place; returns the top layer's new hidden.
    ///
    /// When `train` is set and dropout is enabled, inverted dropout is
    /// applied between layers (never to the recurrent state itself).
    pub fn step(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        x: Var,
        state: &mut [Var],
        train: bool,
        rng: &mut impl Rng,
    ) -> Var {
        assert_eq!(state.len(), self.cells.len(), "state/layer count mismatch");
        let mut input = x;
        for (l, cell) in self.cells.iter().enumerate() {
            let h_new = cell.step(tape, store, input, state[l]);
            state[l] = h_new;
            input = h_new;
            if train && self.dropout > 0.0 && l + 1 < self.cells.len() {
                let keep = 1.0 - self.dropout;
                let v = tape.value(input);
                let (r, c) = v.shape();
                let mask = Tensor::from_vec(
                    r,
                    c,
                    (0..r * c)
                        .map(|_| if rng.gen::<f32>() < keep { 1.0 / keep } else { 0.0 })
                        .collect(),
                );
                input = tape.mask_mul(input, mask);
            }
        }
        input
    }

    /// Like [`Gru::step`], but only updates the hidden state of *active*
    /// batch rows: `mask` is a `(batch, hidden)` tensor whose rows are all
    /// 1.0 for active sequences and all 0.0 for sequences that have already
    /// ended (padding). Ended rows carry their previous hidden state
    /// forward unchanged, so variable-length sequences can share a batch.
    #[allow(clippy::too_many_arguments)]
    pub fn step_masked(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        x: Var,
        state: &mut [Var],
        mask: &Tensor,
        train: bool,
        rng: &mut impl Rng,
    ) -> Var {
        let old_state: Vec<Var> = state.to_vec();
        let top = self.step(tape, store, x, state, train, rng);
        let inv = mask.map(|m| 1.0 - m);
        for (l, old) in old_state.into_iter().enumerate() {
            let kept_new = tape.mask_mul(state[l], mask.clone());
            let kept_old = tape.mask_mul(old, inv.clone());
            state[l] = tape.add(kept_new, kept_old);
        }
        let _ = top;
        state[self.cells.len() - 1]
    }

    /// Runs a full sequence of pre-embedded inputs (`seq[t]` is the
    /// `(batch, input)` Var at time t); returns the top-layer hidden at each
    /// step and leaves `state` at the final hidden states.
    pub fn run(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        seq: &[Var],
        state: &mut [Var],
        train: bool,
        rng: &mut impl Rng,
    ) -> Vec<Var> {
        seq.iter().map(|&x| self.step(tape, store, x, state, train, rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn step_preserves_shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let gru = Gru::new(&mut store, "gru", 4, 8, 2, &mut rng);
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::zeros(3, 4));
        let mut state = gru.zero_state(&mut tape, 3);
        let h = gru.step(&mut tape, &store, x, &mut state, false, &mut rng);
        assert_eq!(tape.value(h).shape(), (3, 8));
        assert_eq!(state.len(), 2);
    }

    #[test]
    fn zero_input_zero_state_gives_zero_candidate_mix() {
        // With zero input, zero state, and zero biases, n = tanh(0) = 0 and
        // h' = (1-z)*0 + z*0 = 0 regardless of the weights.
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let cell = GruCell::new(&mut store, "cell", 2, 3, &mut rng);
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::zeros(1, 2));
        let h = tape.constant(Tensor::zeros(1, 3));
        let h2 = cell.step(&mut tape, &store, x, h);
        assert!(tape.value(h2).data().iter().all(|&v| v.abs() < 1e-7));
    }

    #[test]
    fn hidden_state_is_bounded_by_one() {
        // h_t is a convex combination of tanh outputs and previous h, so
        // starting from zero state all activations stay in (-1, 1).
        let mut rng = StdRng::seed_from_u64(2);
        let mut store = ParamStore::new();
        let gru = Gru::new(&mut store, "gru", 3, 5, 3, &mut rng);
        let mut tape = Tape::new();
        let mut state = gru.zero_state(&mut tape, 2);
        let mut last = None;
        for t in 0..10 {
            let x = tape.constant(Tensor::full(2, 3, (t as f32).sin() * 3.0));
            last = Some(gru.step(&mut tape, &store, x, &mut state, false, &mut rng));
        }
        let h = tape.value(last.expect("ran steps"));
        assert!(h.data().iter().all(|&v| v.abs() < 1.0));
    }

    #[test]
    fn gradients_flow_through_time() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut store = ParamStore::new();
        let gru = Gru::new(&mut store, "gru", 2, 4, 1, &mut rng);
        let mut tape = Tape::new();
        let seq: Vec<Var> = (0..5)
            .map(|t| tape.constant(Tensor::full(1, 2, 0.3 * (t as f32 + 1.0))))
            .collect();
        let mut state = gru.zero_state(&mut tape, 1);
        let outs = gru.run(&mut tape, &store, &seq, &mut state, false, &mut rng);
        let last = *outs.last().expect("non-empty");
        let loss = tape.mean_all(last);
        tape.backward(loss, &mut store);
        let total: f32 = store.ids().map(|id| store.grad(id).norm()).sum();
        assert!(total > 0.0, "no gradient reached the GRU parameters");
    }

    #[test]
    fn dropout_masks_apply_only_in_train_mode() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut store = ParamStore::new();
        let gru = Gru::new(&mut store, "gru", 2, 4, 2, &mut rng).with_dropout(0.9);
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::full(1, 2, 1.0));
        // Eval mode: two identical calls produce identical outputs.
        let mut s1 = gru.zero_state(&mut tape, 1);
        let h1 = gru.step(&mut tape, &store, x, &mut s1, false, &mut rng);
        let mut s2 = gru.zero_state(&mut tape, 1);
        let h2 = gru.step(&mut tape, &store, x, &mut s2, false, &mut rng);
        assert_eq!(tape.value(h1).data(), tape.value(h2).data());
    }
}
