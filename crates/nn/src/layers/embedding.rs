//! Token-embedding lookup table.

use crate::init::Init;
use crate::params::{ParamId, ParamStore};
use crate::tape::{Tape, Var};
use crate::tensor::Tensor;
use rand::Rng;

/// A `(vocab, dim)` trainable lookup table mapping token ids to rows.
#[derive(Clone, Copy, Debug)]
pub struct Embedding {
    table: ParamId,
    vocab: usize,
    dim: usize,
}

impl Embedding {
    /// Registers a new randomly-initialized embedding table.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        vocab: usize,
        dim: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let table =
            store.add_init(format!("{name}.table"), vocab, dim, Init::Normal(0.1), rng);
        Self { table, vocab, dim }
    }

    /// Registers an embedding with pre-trained weights (e.g. the skip-gram
    /// cell vectors from the paper's trajectory-embedding phase).
    pub fn from_pretrained(store: &mut ParamStore, name: &str, weights: Tensor) -> Self {
        let (vocab, dim) = weights.shape();
        let table = store.add(format!("{name}.table"), weights);
        Self { table, vocab, dim }
    }

    /// Looks up a batch of token ids, producing `(ids.len(), dim)`.
    ///
    /// # Panics
    /// Panics if an id is out of vocabulary range.
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, ids: &[usize]) -> Var {
        assert!(
            ids.iter().all(|&i| i < self.vocab),
            "token id out of range (vocab = {})",
            self.vocab
        );
        let table = tape.param(store, self.table);
        tape.gather_rows(table, ids)
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Handle of the underlying table parameter.
    pub fn table(&self) -> ParamId {
        self.table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn lookup_returns_table_rows() {
        let mut store = ParamStore::new();
        let table = Tensor::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let emb = Embedding::from_pretrained(&mut store, "emb", table);
        let mut tape = Tape::new();
        let out = emb.forward(&mut tape, &store, &[2, 0]);
        assert_eq!(tape.value(out).data(), &[5.0, 6.0, 1.0, 2.0]);
    }

    #[test]
    fn gradient_flows_only_into_looked_up_rows() {
        let mut store = ParamStore::new();
        let table = Tensor::from_rows(&[vec![1.0, 1.0], vec![2.0, 2.0], vec![3.0, 3.0]]);
        let emb = Embedding::from_pretrained(&mut store, "emb", table);
        let mut tape = Tape::new();
        let out = emb.forward(&mut tape, &store, &[1, 1]);
        let loss = tape.sum_all(out);
        tape.backward(loss, &mut store);
        let g = store.grad(emb.table());
        assert_eq!(g.row(0), &[0.0, 0.0]);
        assert_eq!(g.row(1), &[2.0, 2.0]); // looked up twice
        assert_eq!(g.row(2), &[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_vocab_id_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let emb = Embedding::new(&mut store, "emb", 4, 2, &mut rng);
        let mut tape = Tape::new();
        let _ = emb.forward(&mut tape, &store, &[4]);
    }
}
