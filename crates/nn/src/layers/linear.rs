//! Fully-connected layer.

use crate::init::Init;
use crate::params::{ParamId, ParamStore};
use crate::tape::{Tape, Var};
use rand::Rng;

/// `y = x @ W + b` with `W: (in, out)`, `b: (1, out)`.
#[derive(Clone, Copy, Debug)]
pub struct Linear {
    weight: ParamId,
    bias: Option<ParamId>,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Registers a Xavier-initialized linear layer in `store`.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        bias: bool,
        rng: &mut impl Rng,
    ) -> Self {
        let weight =
            store.add_init(format!("{name}.weight"), in_dim, out_dim, Init::XavierUniform, rng);
        let bias = bias.then(|| store.add_init(format!("{name}.bias"), 1, out_dim, Init::Zeros, rng));
        Self { weight, bias, in_dim, out_dim }
    }

    /// Forward pass for a `(batch, in)` input, producing `(batch, out)`.
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, x: Var) -> Var {
        debug_assert_eq!(tape.value(x).cols(), self.in_dim, "linear input width mismatch");
        let w = tape.param(store, self.weight);
        let y = tape.matmul(x, w);
        match self.bias {
            Some(b) => {
                let bv = tape.param(store, b);
                tape.add_row_broadcast(y, bv)
            }
            None => y,
        }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Weight parameter handle.
    pub fn weight(&self) -> ParamId {
        self.weight
    }

    /// Bias parameter handle, if the layer has one.
    pub fn bias(&self) -> Option<ParamId> {
        self.bias
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_shape_and_bias() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let layer = Linear::new(&mut store, "fc", 3, 2, true, &mut rng);
        // Make the weights deterministic for the check.
        *store.get_mut(layer.weight()) =
            Tensor::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 1.0]]);
        *store.get_mut(layer.bias().expect("bias enabled")) = Tensor::row_vector(vec![10.0, 20.0]);
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::from_rows(&[vec![1.0, 2.0, 3.0]]));
        let y = layer.forward(&mut tape, &store, x);
        assert_eq!(tape.value(y).data(), &[14.0, 25.0]);
    }

    #[test]
    fn no_bias_variant_skips_bias_param() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let layer = Linear::new(&mut store, "fc", 4, 4, false, &mut rng);
        assert!(layer.bias().is_none());
        assert_eq!(store.len(), 1);
    }
}
