//! Neural-network layers built on the autograd tape.

mod attention;
mod embedding;
mod gru;
mod linear;

pub use attention::DotAttention;
pub use embedding::Embedding;
pub use gru::{Gru, GruCell};
pub use linear::Linear;
