//! No-op-sink overhead guard: instrumenting a micro "training loop" with
//! a disabled recorder and hot-path counters must stay within 2% of the
//! identical uninstrumented loop.
//!
//! The loop mirrors the granularity of the real instrumentation: per
//! batch, a kernel-sized chunk of floating-point work plus the two
//! relaxed counter bumps `traj-nn` kernels pay per matmul call; per
//! epoch (one in [`BATCHES_PER_EPOCH`] batches), the `enabled()` branch
//! and inert span guard that `fit` pays. Timing uses interleaved
//! min-of-rounds so a one-off scheduler hiccup cannot fail the build.

use std::hint::black_box;
use std::time::Instant;
use traj_obs::{Counter, Recorder};

/// The per-batch numeric work: a small dot-product kernel, roughly the
/// cost scale of one instrumented matmul call in `traj-nn`.
#[inline(never)]
fn batch_work(x: &mut [f32; 1024], scale: f32) -> f32 {
    let mut acc = 0.0f32;
    for i in 0..x.len() {
        x[i] = x[i].mul_add(scale, 0.001);
        acc += x[i] * x[(i * 7 + 1) % 1024];
    }
    acc
}

const BATCHES: usize = 8_192;
const BATCHES_PER_EPOCH: usize = 64;

fn run_uninstrumented() -> f64 {
    let mut x = [1.0f32; 1024];
    let t0 = Instant::now();
    let mut acc = 0.0f32;
    for b in 0..BATCHES {
        acc += batch_work(&mut x, 1.0 + (b % 3) as f32 * 1e-6);
    }
    black_box(acc);
    t0.elapsed().as_secs_f64()
}

fn run_instrumented(rec: &Recorder, counter: &Counter) -> f64 {
    let mut x = [1.0f32; 1024];
    let t0 = Instant::now();
    let mut acc = 0.0f32;
    for b in 0..BATCHES {
        if b % BATCHES_PER_EPOCH == 0 {
            // The per-epoch costs in `fit`: an inert span guard and the
            // enabled() branch in front of event construction.
            let span = rec.span("epoch");
            if rec.enabled() {
                rec.info("never reached under the no-op sink");
            }
            drop(span);
        }
        // The per-kernel-call costs: two relaxed counter bumps, exactly
        // what the instrumented matmuls in `traj-nn` do.
        counter.inc();
        counter.add(2 * 1024);
        acc += batch_work(&mut x, 1.0 + (b % 3) as f32 * 1e-6);
    }
    black_box(acc);
    t0.elapsed().as_secs_f64()
}

#[test]
fn noop_sink_overhead_is_within_two_percent() {
    static C: Counter = Counter::new("overhead.batches");
    let rec = Recorder::disabled();
    assert!(!rec.enabled());

    // Warm-up: fault in code paths and let the CPU settle.
    run_uninstrumented();
    run_instrumented(&rec, &C);

    // Interleaved rounds; min-of-rounds estimates the true cost of each
    // variant with the noise floor stripped.
    const ROUNDS: usize = 7;
    let mut best_base = f64::INFINITY;
    let mut best_instr = f64::INFINITY;
    for _ in 0..ROUNDS {
        best_base = best_base.min(run_uninstrumented());
        best_instr = best_instr.min(run_instrumented(&rec, &C));
    }

    assert!(C.get() >= (BATCHES * (ROUNDS + 1)) as u64, "counter must have counted");
    let ratio = best_instr / best_base;
    assert!(
        ratio <= 1.02,
        "no-op telemetry overhead {:.2}% exceeds the 2% budget \
         (instrumented {best_instr:.4}s vs baseline {best_base:.4}s)",
        (ratio - 1.0) * 100.0
    );
}
