//! Property-based invariants of the telemetry primitives: histogram
//! merging is order-invariant, counters are monotone, arbitrarily nested
//! spans close LIFO, and anything the JSONL sink writes round-trips
//! through the schema parser.

use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use traj_obs::event::SCHEMA_VERSION;
use traj_obs::schema::parse_jsonl;
use traj_obs::{Counter, Event, Histogram, JsonlSink, MemorySink, Recorder};

/// A fresh temp-file path per proptest case (cases run concurrently
/// across test binaries, so the name carries pid + a process counter).
fn temp_log_path() -> std::path::PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir()
        .join(format!("traj_obs_prop_{}_{n}.jsonl", std::process::id()))
}

fn header() -> Event {
    Event::RunHeader {
        schema: SCHEMA_VERSION,
        ts_ms: 0,
        name: "prop".into(),
        seed: 7,
        git: "test".into(),
        config: serde::Value::Object(vec![]),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Splitting a sample stream at any point and merging the two halves
    /// gives the same histogram as recording everything into one —
    /// exactly for buckets/count/min/max, up to rounding for the sum.
    #[test]
    fn histogram_merge_is_order_invariant(
        samples in prop::collection::vec(0.0f64..1e9, 0..40),
        split in 0usize..41,
    ) {
        let split = split.min(samples.len());
        let (first, second) = samples.split_at(split);
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut all = Histogram::new();
        for &s in first {
            a.record(s);
            all.record(s);
        }
        for &s in second {
            b.record(s);
            all.record(s);
        }
        // Merge in both orders: a+b and b+a must agree with each other
        // and with the single-stream histogram.
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(ab.buckets(), all.buckets());
        prop_assert_eq!(ba.buckets(), all.buckets());
        prop_assert_eq!(ab.count(), all.count());
        prop_assert_eq!(ab.min(), all.min());
        prop_assert_eq!(ab.max(), all.max());
        let tol = 1e-9 * (1.0 + all.sum().abs());
        prop_assert!((ab.sum() - all.sum()).abs() <= tol);
        prop_assert!((ab.sum() - ba.sum()).abs() <= tol);
    }

    /// A counter only ever moves forward, and its final value is the sum
    /// of every increment applied to it.
    #[test]
    fn counters_are_monotone(increments in prop::collection::vec(0u64..1000, 0..50)) {
        static C: Counter = Counter::new("prop.monotone");
        // The static is shared across proptest cases, so assert on deltas
        // rather than absolute values.
        let start = C.get();
        let mut last = start;
        for &inc in &increments {
            C.add(inc);
            let now = C.get();
            prop_assert!(now >= last, "counter went backwards: {last} -> {now}");
            last = now;
        }
        prop_assert_eq!(last - start, increments.iter().sum::<u64>());
    }

    /// Arbitrary push/pop span sequences produce an event stream the
    /// schema validator accepts: parents correct, closes LIFO.
    #[test]
    fn nested_spans_always_close_lifo(ops in prop::collection::vec(0usize..2, 0..60)) {
        let sink = Arc::new(MemorySink::new());
        let rec = Recorder::new(sink.clone());
        let mut stack = Vec::new();
        for (i, &op) in ops.iter().enumerate() {
            let push = op == 1;
            if push {
                stack.push(rec.span(&format!("s{i}")));
            } else {
                stack.pop(); // dropping the guard closes the span
            }
        }
        while stack.pop().is_some() {}

        // Serialize the captured stream behind a header and let the
        // validator re-check parent/LIFO structure from the wire form.
        let mut log = serde_json::to_string(&header()).expect("serialize");
        for e in sink.events() {
            log.push('\n');
            log.push_str(&serde_json::to_string(&e).expect("serialize"));
        }
        let v = parse_jsonl(&log).expect("span stream must validate");
        prop_assert_eq!(v.events.len(), 1 + sink.events().len());
    }

    /// Whatever mix of events a recorder emits, the JSONL file the sink
    /// writes parses back into the identical event sequence.
    #[test]
    fn jsonl_sink_roundtrips_through_schema_parser(
        choices in prop::collection::vec((0usize..4, 0.0f64..100.0), 0..30),
    ) {
        let path = temp_log_path();
        let sink = Arc::new(JsonlSink::create(&path).expect("create log"));
        let rec = Recorder::new(sink);
        rec.emit(&header());
        let mut counter_total = 0u64;
        for (i, &(kind, x)) in choices.iter().enumerate() {
            match kind {
                0 => rec.emit(&Event::Epoch {
                    phase: "pretrain".into(),
                    epoch: i as u64,
                    recon_loss: x,
                    cluster_loss: x / 2.0,
                    triplet_loss: 0.0,
                    grad_norm: x / 3.0,
                    lr: 1e-3,
                    label_change: if i % 2 == 0 { Some(x / 100.0) } else { None },
                    skipped_batches: i as u64,
                    rollbacks: 0,
                }),
                1 => {
                    counter_total += x as u64;
                    rec.emit(&Event::Counter {
                        name: "prop.c".into(),
                        value: counter_total,
                    });
                }
                2 => {
                    let mut h = Histogram::new();
                    h.record(x);
                    h.record(x + 1.0);
                    rec.histogram("prop.h", &h);
                }
                _ => rec.info(format!("message {i}")),
            }
        }
        rec.emit(&Event::RunEnd { status: "ok".into(), wall_ms: 1.0 });
        rec.flush();

        let text = std::fs::read_to_string(&path).expect("read log back");
        std::fs::remove_file(&path).ok();
        let v = parse_jsonl(&text).expect("sink output must validate");
        prop_assert!(v.complete);
        // header + chosen events + run_end, byte-for-byte round-tripped.
        prop_assert_eq!(v.events.len(), choices.len() + 2);
        prop_assert_eq!(&v.events[0], &header());
    }
}

/// Non-finite floats cross the wire as `null` and come back as NaN — a
/// deterministic edge the random generators above never hit.
#[test]
fn nan_loss_survives_the_wire_as_nan() {
    let e = Event::Epoch {
        phase: "selftrain".into(),
        epoch: 3,
        recon_loss: f64::NAN,
        cluster_loss: f64::INFINITY,
        triplet_loss: 1.0,
        grad_norm: f64::NAN,
        lr: 1e-4,
        label_change: None,
        skipped_batches: 9,
        rollbacks: 1,
    };
    let line = serde_json::to_string(&e).expect("serialize");
    assert!(line.contains("null"), "non-finite floats must encode as null: {line}");
    let back: Event = serde_json::from_str(&line).expect("parse");
    let Event::Epoch { recon_loss, cluster_loss, grad_norm, triplet_loss, .. } = back else {
        panic!("wrong variant");
    };
    assert!(recon_loss.is_nan());
    assert!(cluster_loss.is_nan(), "infinity also encodes as null, reads back NaN");
    assert!(grad_norm.is_nan());
    assert_eq!(triplet_loss, 1.0);
}
