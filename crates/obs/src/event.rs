//! The run-log event schema (one JSON object per JSONL line).
//!
//! Every event is a JSON object whose `"type"` field names the variant;
//! the remaining fields are flat. The schema is versioned by the
//! `schema` field of [`Event::RunHeader`] (currently 1). `Serialize` /
//! `Deserialize` are written by hand against the serde value tree so the
//! on-disk layout is an explicit contract rather than a derive artifact —
//! `schema::parse_jsonl` round-trips through these impls.
//!
//! JSON cannot represent non-finite floats; the serializer writes them as
//! `null`, and the parser reads a `null` numeric field back as NaN (or
//! `None` for optional fields).

use serde::{Deserialize, Error, Serialize, Value};

/// Current schema version stamped into run headers.
pub const SCHEMA_VERSION: u64 = 1;

/// Severity of a [`Event::Message`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Level {
    /// Informational progress (replaces stdout chatter).
    Info,
    /// Something degraded but the run continues (replaces `eprintln!`).
    Warn,
}

impl Level {
    /// Wire name of the level.
    pub fn name(self) -> &'static str {
        match self {
            Level::Info => "info",
            Level::Warn => "warn",
        }
    }

    fn parse(s: &str) -> Result<Self, Error> {
        match s {
            "info" => Ok(Level::Info),
            "warn" => Ok(Level::Warn),
            other => Err(Error::custom(format!("unknown message level `{other}`"))),
        }
    }
}

/// One run-log event. See DESIGN.md §11 for the field-by-field contract.
#[derive(Clone, Debug, PartialEq)]
pub enum Event {
    /// First line of every log: identifies the run.
    RunHeader {
        /// Schema version ([`SCHEMA_VERSION`]).
        schema: u64,
        /// Unix milliseconds at run start.
        ts_ms: u64,
        /// Human name of the run (e.g. `train`, `all_experiments`).
        name: String,
        /// Master RNG seed of the run.
        seed: u64,
        /// `git describe --always --dirty` of the producing tree.
        git: String,
        /// Arbitrary configuration tree (e.g. the full `E2dtcConfig`).
        config: Value,
    },
    /// A timed region began. `id`s are unique within a log; `parent` is
    /// the id of the enclosing open span, if any.
    SpanOpen {
        /// Unique span id.
        id: u64,
        /// Id of the enclosing open span.
        parent: Option<u64>,
        /// Span name (e.g. `fit`, `pretrain`, `dist.matrix`).
        name: String,
        /// Unix milliseconds at open.
        ts_ms: u64,
    },
    /// A timed region ended. Spans close in LIFO order.
    SpanClose {
        /// Id of the span being closed (must be the innermost open one).
        id: u64,
        /// Name repeated for grep-ability of flat logs.
        name: String,
        /// Wall time between open and close, milliseconds.
        wall_ms: f64,
    },
    /// One completed training epoch (the unit the paper's loss-dynamics
    /// analysis works in).
    Epoch {
        /// `pretrain` or `selftrain`.
        phase: String,
        /// Epoch index within its phase.
        epoch: u64,
        /// Mean reconstruction loss `L_r` over non-skipped batches.
        recon_loss: f64,
        /// Mean clustering loss `L_c` (0 when inactive).
        cluster_loss: f64,
        /// Mean triplet loss `L_t` (0 when inactive).
        triplet_loss: f64,
        /// Mean pre-clip global gradient norm over optimizer steps.
        grad_norm: f64,
        /// Learning rate in force during the epoch.
        lr: f64,
        /// Fraction of trajectories that changed cluster at the epoch
        /// start (self-training only) — the DEC churn / stop-rule signal.
        label_change: Option<f64>,
        /// Batches dropped by the non-finite guard.
        skipped_batches: u64,
        /// Snapshot rollbacks consumed while (re)running the epoch.
        rollbacks: u64,
    },
    /// Point-in-time snapshot of a monotone counter.
    Counter {
        /// Counter name (e.g. `nn.matmul_calls`).
        name: String,
        /// Cumulative value at snapshot time.
        value: u64,
    },
    /// Snapshot of a [`crate::Histogram`].
    Histogram {
        /// Histogram name (e.g. `batch_ms`).
        name: String,
        /// Number of recorded samples.
        count: u64,
        /// Sum of recorded samples.
        sum: f64,
        /// Smallest recorded sample (0 when empty).
        min: f64,
        /// Largest recorded sample (0 when empty).
        max: f64,
        /// Power-of-two bucket counts, trailing zeros trimmed (see
        /// [`crate::hist`] for the bucket boundaries).
        buckets: Vec<u64>,
    },
    /// Free-form diagnostic line routed through the sink.
    Message {
        /// Severity.
        level: Level,
        /// Message text.
        text: String,
    },
    /// Last line of a complete log.
    RunEnd {
        /// `ok`, or a short failure description.
        status: String,
        /// Total run wall time, milliseconds.
        wall_ms: f64,
    },
}

impl Event {
    /// The wire name in the `"type"` field.
    pub fn type_name(&self) -> &'static str {
        match self {
            Event::RunHeader { .. } => "run_header",
            Event::SpanOpen { .. } => "span_open",
            Event::SpanClose { .. } => "span_close",
            Event::Epoch { .. } => "epoch",
            Event::Counter { .. } => "counter",
            Event::Histogram { .. } => "histogram",
            Event::Message { .. } => "message",
            Event::RunEnd { .. } => "run_end",
        }
    }
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn opt_u64(v: Option<u64>) -> Value {
    match v {
        Some(x) => Value::UInt(x),
        None => Value::Null,
    }
}

fn opt_f64(v: Option<f64>) -> Value {
    match v {
        Some(x) => Value::Float(x),
        None => Value::Null,
    }
}

impl Serialize for Event {
    fn to_value(&self) -> Value {
        let tag = |rest: Vec<(&str, Value)>| {
            let mut fields = vec![("type", Value::Str(self.type_name().to_string()))];
            fields.extend(rest);
            obj(fields)
        };
        match self {
            Event::RunHeader { schema, ts_ms, name, seed, git, config } => tag(vec![
                ("schema", Value::UInt(*schema)),
                ("ts_ms", Value::UInt(*ts_ms)),
                ("name", Value::Str(name.clone())),
                ("seed", Value::UInt(*seed)),
                ("git", Value::Str(git.clone())),
                ("config", config.clone()),
            ]),
            Event::SpanOpen { id, parent, name, ts_ms } => tag(vec![
                ("id", Value::UInt(*id)),
                ("parent", opt_u64(*parent)),
                ("name", Value::Str(name.clone())),
                ("ts_ms", Value::UInt(*ts_ms)),
            ]),
            Event::SpanClose { id, name, wall_ms } => tag(vec![
                ("id", Value::UInt(*id)),
                ("name", Value::Str(name.clone())),
                ("wall_ms", Value::Float(*wall_ms)),
            ]),
            Event::Epoch {
                phase,
                epoch,
                recon_loss,
                cluster_loss,
                triplet_loss,
                grad_norm,
                lr,
                label_change,
                skipped_batches,
                rollbacks,
            } => tag(vec![
                ("phase", Value::Str(phase.clone())),
                ("epoch", Value::UInt(*epoch)),
                ("recon_loss", Value::Float(*recon_loss)),
                ("cluster_loss", Value::Float(*cluster_loss)),
                ("triplet_loss", Value::Float(*triplet_loss)),
                ("grad_norm", Value::Float(*grad_norm)),
                ("lr", Value::Float(*lr)),
                ("label_change", opt_f64(*label_change)),
                ("skipped_batches", Value::UInt(*skipped_batches)),
                ("rollbacks", Value::UInt(*rollbacks)),
            ]),
            Event::Counter { name, value } => tag(vec![
                ("name", Value::Str(name.clone())),
                ("value", Value::UInt(*value)),
            ]),
            Event::Histogram { name, count, sum, min, max, buckets } => tag(vec![
                ("name", Value::Str(name.clone())),
                ("count", Value::UInt(*count)),
                ("sum", Value::Float(*sum)),
                ("min", Value::Float(*min)),
                ("max", Value::Float(*max)),
                ("buckets", buckets.to_value()),
            ]),
            Event::Message { level, text } => tag(vec![
                ("level", Value::Str(level.name().to_string())),
                ("text", Value::Str(text.clone())),
            ]),
            Event::RunEnd { status, wall_ms } => tag(vec![
                ("status", Value::Str(status.clone())),
                ("wall_ms", Value::Float(*wall_ms)),
            ]),
        }
    }
}

fn field<'a>(v: &'a Value, name: &str) -> Result<&'a Value, Error> {
    v.get_field(name).ok_or_else(|| Error::missing_field(name))
}

fn get_u64(v: &Value, name: &str) -> Result<u64, Error> {
    u64::from_value(field(v, name)?)
}

/// Numeric field tolerant of the shim's non-finite-as-null encoding.
fn get_f64(v: &Value, name: &str) -> Result<f64, Error> {
    match field(v, name)? {
        Value::Null => Ok(f64::NAN),
        other => f64::from_value(other),
    }
}

fn get_str(v: &Value, name: &str) -> Result<String, Error> {
    String::from_value(field(v, name)?)
}

fn get_opt_u64(v: &Value, name: &str) -> Result<Option<u64>, Error> {
    match v.get_field(name) {
        None | Some(Value::Null) => Ok(None),
        Some(other) => u64::from_value(other).map(Some),
    }
}

fn get_opt_f64(v: &Value, name: &str) -> Result<Option<f64>, Error> {
    match v.get_field(name) {
        None | Some(Value::Null) => Ok(None),
        Some(other) => f64::from_value(other).map(Some),
    }
}

impl Deserialize for Event {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let ty = get_str(v, "type")?;
        match ty.as_str() {
            "run_header" => Ok(Event::RunHeader {
                schema: get_u64(v, "schema")?,
                ts_ms: get_u64(v, "ts_ms")?,
                name: get_str(v, "name")?,
                seed: get_u64(v, "seed")?,
                git: get_str(v, "git")?,
                config: field(v, "config")?.clone(),
            }),
            "span_open" => Ok(Event::SpanOpen {
                id: get_u64(v, "id")?,
                parent: get_opt_u64(v, "parent")?,
                name: get_str(v, "name")?,
                ts_ms: get_u64(v, "ts_ms")?,
            }),
            "span_close" => Ok(Event::SpanClose {
                id: get_u64(v, "id")?,
                name: get_str(v, "name")?,
                wall_ms: get_f64(v, "wall_ms")?,
            }),
            "epoch" => Ok(Event::Epoch {
                phase: get_str(v, "phase")?,
                epoch: get_u64(v, "epoch")?,
                recon_loss: get_f64(v, "recon_loss")?,
                cluster_loss: get_f64(v, "cluster_loss")?,
                triplet_loss: get_f64(v, "triplet_loss")?,
                grad_norm: get_f64(v, "grad_norm")?,
                lr: get_f64(v, "lr")?,
                label_change: get_opt_f64(v, "label_change")?,
                skipped_batches: get_u64(v, "skipped_batches")?,
                rollbacks: get_u64(v, "rollbacks")?,
            }),
            "counter" => Ok(Event::Counter {
                name: get_str(v, "name")?,
                value: get_u64(v, "value")?,
            }),
            "histogram" => Ok(Event::Histogram {
                name: get_str(v, "name")?,
                count: get_u64(v, "count")?,
                sum: get_f64(v, "sum")?,
                min: get_f64(v, "min")?,
                max: get_f64(v, "max")?,
                buckets: Vec::<u64>::from_value(field(v, "buckets")?)?,
            }),
            "message" => Ok(Event::Message {
                level: Level::parse(&get_str(v, "level")?)?,
                text: get_str(v, "text")?,
            }),
            "run_end" => Ok(Event::RunEnd {
                status: get_str(v, "status")?,
                wall_ms: get_f64(v, "wall_ms")?,
            }),
            other => Err(Error::custom(format!("unknown event type `{other}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(e: &Event) -> Event {
        let json = serde_json::to_string(e).expect("serialize");
        serde_json::from_str(&json).expect("deserialize")
    }

    #[test]
    fn all_variants_roundtrip() {
        let events = vec![
            Event::RunHeader {
                schema: SCHEMA_VERSION,
                ts_ms: 1_700_000_000_000,
                name: "train".into(),
                seed: 42,
                git: "abc123-dirty".into(),
                config: obj(vec![("k_clusters", Value::UInt(7))]),
            },
            Event::SpanOpen { id: 1, parent: None, name: "fit".into(), ts_ms: 5 },
            Event::SpanOpen { id: 2, parent: Some(1), name: "pretrain".into(), ts_ms: 6 },
            Event::SpanClose { id: 2, name: "pretrain".into(), wall_ms: 12.5 },
            Event::Epoch {
                phase: "selftrain".into(),
                epoch: 3,
                recon_loss: 1.25,
                cluster_loss: 0.5,
                triplet_loss: 0.125,
                grad_norm: 4.0,
                lr: 1e-4,
                label_change: Some(0.03),
                skipped_batches: 1,
                rollbacks: 0,
            },
            Event::Counter { name: "nn.matmul_calls".into(), value: 999 },
            Event::Histogram {
                name: "batch_ms".into(),
                count: 3,
                sum: 7.5,
                min: 1.5,
                max: 4.0,
                buckets: vec![0, 2, 1],
            },
            Event::Message { level: Level::Warn, text: "checkpoint write failed".into() },
            Event::RunEnd { status: "ok".into(), wall_ms: 321.0 },
        ];
        for e in &events {
            assert_eq!(&roundtrip(e), e, "round-trip changed {e:?}");
        }
    }

    #[test]
    fn type_field_leads_each_line() {
        let json = serde_json::to_string(&Event::Counter { name: "c".into(), value: 1 })
            .expect("serialize");
        assert!(json.starts_with("{\"type\":\"counter\""), "got {json}");
    }

    #[test]
    fn unknown_type_is_rejected() {
        let err = serde_json::from_str::<Event>("{\"type\":\"mystery\"}");
        assert!(err.is_err());
    }

    #[test]
    fn missing_field_is_rejected() {
        let err = serde_json::from_str::<Event>("{\"type\":\"counter\",\"name\":\"c\"}");
        assert!(err.is_err());
    }

    #[test]
    fn non_finite_floats_survive_as_nan() {
        let e = Event::SpanClose { id: 1, name: "s".into(), wall_ms: f64::NAN };
        let json = serde_json::to_string(&e).expect("serialize");
        assert!(json.contains("null"), "non-finite must encode as null: {json}");
        match serde_json::from_str::<Event>(&json).expect("deserialize") {
            Event::SpanClose { wall_ms, .. } => assert!(wall_ms.is_nan()),
            other => panic!("wrong variant {other:?}"),
        }
    }

    #[test]
    fn label_change_none_roundtrips() {
        let e = Event::Epoch {
            phase: "pretrain".into(),
            epoch: 0,
            recon_loss: 1.0,
            cluster_loss: 0.0,
            triplet_loss: 0.0,
            grad_norm: 2.0,
            lr: 1e-3,
            label_change: None,
            skipped_batches: 0,
            rollbacks: 0,
        };
        assert_eq!(roundtrip(&e), e);
    }
}
