//! Mergeable power-of-two histograms.
//!
//! Built for wall-time distributions (batch milliseconds, span
//! durations): fixed log₂ buckets trade resolution for a merge that is a
//! plain element-wise add, so per-thread or per-epoch histograms combine
//! into run totals in any order without coordination.

use crate::event::Event;

/// Number of buckets. Bucket `i` counts samples in
/// `[2^(i + MIN_EXP - 1), 2^(i + MIN_EXP))` except bucket 0, which also
/// absorbs everything below its upper bound (including zero and
/// negatives, which timing data should never produce anyway).
pub const NUM_BUCKETS: usize = 64;

/// Exponent of bucket 0's upper bound: samples below `2^MIN_EXP` = 2⁻²⁰
/// (≈ 1 µs when samples are in milliseconds) land in bucket 0.
pub const MIN_EXP: i32 = -20;

/// A fixed-layout log₂ histogram with count/sum/min/max summary stats.
#[derive(Clone, Debug, PartialEq)]
pub struct Histogram {
    buckets: [u64; NUM_BUCKETS],
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Bucket index for a sample.
fn bucket_index(v: f64) -> usize {
    if !(v.is_finite() && v > 0.0) {
        return 0;
    }
    let exp = v.log2().floor() as i64;
    (exp - i64::from(MIN_EXP) + 1).clamp(0, NUM_BUCKETS as i64 - 1) as usize
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: [0; NUM_BUCKETS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one sample. Non-finite samples are counted in bucket 0 and
    /// excluded from `sum`/`min`/`max` so one NaN cannot poison the
    /// summary.
    pub fn record(&mut self, v: f64) {
        self.buckets[bucket_index(v)] += 1;
        self.count += 1;
        if v.is_finite() {
            self.sum += v;
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of finite recorded samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of finite recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest finite sample (0 when none).
    pub fn min(&self) -> f64 {
        if self.min.is_finite() {
            self.min
        } else {
            0.0
        }
    }

    /// Largest finite sample (0 when none).
    pub fn max(&self) -> f64 {
        if self.max.is_finite() {
            self.max
        } else {
            0.0
        }
    }

    /// Raw bucket counts.
    pub fn buckets(&self) -> &[u64; NUM_BUCKETS] {
        &self.buckets
    }

    /// Folds `other` into `self`. Bucket counts, `count`, `min`, and
    /// `max` are exactly order-invariant; `sum` is order-invariant up to
    /// floating-point rounding (pinned by the property tests).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Snapshot as a schema event. Trailing zero buckets are trimmed on
    /// the wire; [`Histogram::from_event_parts`] pads them back.
    pub fn snapshot(&self, name: &str) -> Event {
        let last = self.buckets.iter().rposition(|&c| c > 0).map_or(0, |i| i + 1);
        Event::Histogram {
            name: name.to_string(),
            count: self.count,
            sum: self.sum,
            min: self.min(),
            max: self.max(),
            buckets: self.buckets[..last].to_vec(),
        }
    }

    /// Rebuilds a histogram from the fields of an [`Event::Histogram`].
    /// Returns `None` if the bucket list is longer than [`NUM_BUCKETS`]
    /// or its total disagrees with `count`.
    pub fn from_event_parts(
        count: u64,
        sum: f64,
        min: f64,
        max: f64,
        wire_buckets: &[u64],
    ) -> Option<Self> {
        if wire_buckets.len() > NUM_BUCKETS || wire_buckets.iter().sum::<u64>() != count {
            return None;
        }
        let mut buckets = [0u64; NUM_BUCKETS];
        buckets[..wire_buckets.len()].copy_from_slice(wire_buckets);
        Some(Self {
            buckets,
            count,
            sum,
            min: if count == 0 { f64::INFINITY } else { min },
            max: if count == 0 { f64::NEG_INFINITY } else { max },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(-3.0), 0);
        assert_eq!(bucket_index(f64::NAN), 0);
        // 1.0 = 2^0 lands in the bucket for [2^0, 2^1).
        assert_eq!(bucket_index(1.0), (0 - MIN_EXP + 1) as usize);
        assert_eq!(bucket_index(1.5), bucket_index(1.0));
        assert_eq!(bucket_index(2.0), bucket_index(1.0) + 1);
        // Huge values clamp to the last bucket instead of overflowing.
        assert_eq!(bucket_index(1e300), NUM_BUCKETS - 1);
    }

    #[test]
    fn record_updates_summary() {
        let mut h = Histogram::new();
        assert_eq!(h.mean(), 0.0);
        h.record(2.0);
        h.record(4.0);
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 6.0);
        assert_eq!(h.mean(), 3.0);
        assert_eq!(h.min(), 2.0);
        assert_eq!(h.max(), 4.0);
    }

    #[test]
    fn nan_does_not_poison_summary() {
        let mut h = Histogram::new();
        h.record(1.0);
        h.record(f64::NAN);
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 1.0);
        assert_eq!(h.min(), 1.0);
        assert_eq!(h.max(), 1.0);
    }

    #[test]
    fn merge_equals_recording_everything_in_one() {
        // Dyadic samples so every partial sum is exact and the `PartialEq`
        // comparison below can include `sum`.
        let samples_a = [0.5, 3.0, 100.0];
        let samples_b = [0.125, 7.0];
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut all = Histogram::new();
        for &s in &samples_a {
            a.record(s);
            all.record(s);
        }
        for &s in &samples_b {
            b.record(s);
            all.record(s);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn snapshot_roundtrips_through_event_parts() {
        let mut h = Histogram::new();
        for &s in &[0.25, 1.0, 1.0, 9.0] {
            h.record(s);
        }
        let Event::Histogram { count, sum, min, max, buckets, .. } = h.snapshot("t") else {
            panic!("wrong event type");
        };
        let back = Histogram::from_event_parts(count, sum, min, max, &buckets)
            .expect("valid parts");
        assert_eq!(back, h);
    }

    #[test]
    fn from_event_parts_rejects_inconsistent_count() {
        assert!(Histogram::from_event_parts(3, 1.0, 1.0, 1.0, &[1, 1]).is_none());
        assert!(Histogram::from_event_parts(0, 0.0, 0.0, 0.0, &[]).is_some());
    }
}
