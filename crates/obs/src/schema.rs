//! Parsing and validation of finished JSONL run logs.
//!
//! [`parse_jsonl`] is the read side of the contract [`crate::JsonlSink`]
//! writes: every line must deserialize into a known [`Event`], and the
//! event stream as a whole must be well-formed:
//!
//! 1. the first event is a `run_header` with a known schema version;
//! 2. span ids are unique, every `span_close` matches the innermost open
//!    span (LIFO), and `span_open.parent` names the span that was
//!    innermost at open time;
//! 3. successive `counter` snapshots of the same name never decrease;
//! 4. `histogram` events are internally consistent (bucket totals match
//!    `count`);
//! 5. a `run_end`, when present, is the last event.
//!
//! Unclosed spans are *not* an error: a crashed run's log is truncated
//! mid-stream and must still parse (that is half the point of writing
//! JSONL instead of one big document). [`Validated::complete`] reports
//! whether the log ends with a clean `run_end`.

use crate::event::{Event, SCHEMA_VERSION};
use crate::hist::Histogram;
use std::collections::HashMap;
use std::fmt;

/// A structurally-valid run log.
#[derive(Clone, Debug)]
pub struct Validated {
    /// Every event, in file order (the run header is `events[0]`).
    pub events: Vec<Event>,
    /// True when the log ends with a `run_end` and no span is left open.
    pub complete: bool,
}

impl Validated {
    /// The run header fields (guaranteed present by validation).
    pub fn header(&self) -> &Event {
        &self.events[0]
    }

    /// All epoch events, in order.
    pub fn epochs(&self) -> Vec<&Event> {
        self.events.iter().filter(|e| matches!(e, Event::Epoch { .. })).collect()
    }

    /// Final snapshot value of a counter, if one was emitted.
    pub fn final_counter(&self, name: &str) -> Option<u64> {
        self.events
            .iter()
            .rev()
            .find_map(|e| match e {
                Event::Counter { name: n, value } if n == name => Some(*value),
                _ => None,
            })
    }

    /// Total wall time of every closed span with the given name, ms.
    pub fn span_total_ms(&self, name: &str) -> f64 {
        self.events
            .iter()
            .filter_map(|e| match e {
                Event::SpanClose { name: n, wall_ms, .. } if n == name => Some(*wall_ms),
                _ => None,
            })
            .sum()
    }
}

/// Why a log failed to parse or validate. Carries the 1-based line number
/// (0 for stream-level failures).
#[derive(Clone, Debug)]
pub struct SchemaError {
    /// 1-based JSONL line the failure anchors to (0 = whole stream).
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "run log invalid: {}", self.message)
        } else {
            write!(f, "run log line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for SchemaError {}

fn err(line: usize, message: impl Into<String>) -> SchemaError {
    SchemaError { line, message: message.into() }
}

/// Parses a whole JSONL document and validates the event stream.
pub fn parse_jsonl(text: &str) -> Result<Validated, SchemaError> {
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let event: Event = serde_json::from_str(line)
            .map_err(|e| err(i + 1, format!("unparseable event: {e}")))?;
        events.push((i + 1, event));
    }
    validate(events)
}

/// Validates an already-parsed event stream (line numbers for messages).
fn validate(numbered: Vec<(usize, Event)>) -> Result<Validated, SchemaError> {
    if numbered.is_empty() {
        return Err(err(0, "empty log (expected at least a run_header)"));
    }
    match &numbered[0].1 {
        Event::RunHeader { schema, .. } if *schema == SCHEMA_VERSION => {}
        Event::RunHeader { schema, .. } => {
            return Err(err(
                numbered[0].0,
                format!("unsupported schema version {schema} (expected {SCHEMA_VERSION})"),
            ));
        }
        other => {
            return Err(err(
                numbered[0].0,
                format!("log must start with run_header, found {}", other.type_name()),
            ));
        }
    }

    let mut open_spans: Vec<u64> = Vec::new();
    let mut seen_span_ids: HashMap<u64, usize> = HashMap::new();
    let mut counter_last: HashMap<String, u64> = HashMap::new();
    let mut ended = false;

    for (line, event) in numbered.iter().skip(1) {
        if ended {
            return Err(err(*line, "event after run_end"));
        }
        match event {
            Event::RunHeader { .. } => {
                return Err(err(*line, "duplicate run_header"));
            }
            Event::SpanOpen { id, parent, .. } => {
                if let Some(prev) = seen_span_ids.insert(*id, *line) {
                    return Err(err(
                        *line,
                        format!("span id {id} reused (first opened on line {prev})"),
                    ));
                }
                if *parent != open_spans.last().copied() {
                    return Err(err(
                        *line,
                        format!(
                            "span {id} claims parent {parent:?} but innermost open span is {:?}",
                            open_spans.last()
                        ),
                    ));
                }
                open_spans.push(*id);
            }
            Event::SpanClose { id, .. } => match open_spans.last() {
                Some(&top) if top == *id => {
                    open_spans.pop();
                }
                Some(&top) => {
                    return Err(err(
                        *line,
                        format!("span {id} closed out of order (innermost open is {top})"),
                    ));
                }
                None => {
                    return Err(err(*line, format!("span {id} closed but no span is open")));
                }
            },
            Event::Counter { name, value } => {
                if let Some(&prev) = counter_last.get(name) {
                    if *value < prev {
                        return Err(err(
                            *line,
                            format!("counter `{name}` went backwards ({prev} -> {value})"),
                        ));
                    }
                }
                counter_last.insert(name.clone(), *value);
            }
            Event::Histogram { name, count, sum, min, max, buckets } => {
                if Histogram::from_event_parts(*count, *sum, *min, *max, buckets).is_none() {
                    return Err(err(
                        *line,
                        format!("histogram `{name}` is inconsistent (buckets vs count)"),
                    ));
                }
            }
            Event::RunEnd { .. } => {
                ended = true;
            }
            Event::Epoch { .. } | Event::Message { .. } => {}
        }
    }

    Ok(Validated {
        complete: ended && open_spans.is_empty(),
        events: numbered.into_iter().map(|(_, e)| e).collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Value;
    use serde_json::to_string;

    fn header() -> String {
        to_string(&Event::RunHeader {
            schema: SCHEMA_VERSION,
            ts_ms: 1,
            name: "t".into(),
            seed: 0,
            git: "g".into(),
            config: Value::Object(vec![]),
        })
        .expect("serialize")
    }

    fn lines(events: &[Event]) -> String {
        let mut out = header();
        for e in events {
            out.push('\n');
            out.push_str(&to_string(e).expect("serialize"));
        }
        out
    }

    #[test]
    fn minimal_complete_log_validates() {
        let log = lines(&[
            Event::SpanOpen { id: 1, parent: None, name: "fit".into(), ts_ms: 2 },
            Event::SpanClose { id: 1, name: "fit".into(), wall_ms: 1.0 },
            Event::RunEnd { status: "ok".into(), wall_ms: 2.0 },
        ]);
        let v = parse_jsonl(&log).expect("valid");
        assert!(v.complete);
        assert_eq!(v.events.len(), 4);
        assert_eq!(v.span_total_ms("fit"), 1.0);
    }

    #[test]
    fn truncated_log_is_valid_but_incomplete() {
        let log = lines(&[Event::SpanOpen { id: 1, parent: None, name: "fit".into(), ts_ms: 2 }]);
        let v = parse_jsonl(&log).expect("truncated logs still parse");
        assert!(!v.complete);
    }

    #[test]
    fn missing_header_is_rejected() {
        let log = to_string(&Event::RunEnd { status: "ok".into(), wall_ms: 0.0 }).unwrap();
        let e = parse_jsonl(&log).expect_err("must fail");
        assert!(e.to_string().contains("run_header"), "{e}");
    }

    #[test]
    fn out_of_order_close_is_rejected() {
        let log = lines(&[
            Event::SpanOpen { id: 1, parent: None, name: "a".into(), ts_ms: 0 },
            Event::SpanOpen { id: 2, parent: Some(1), name: "b".into(), ts_ms: 0 },
            Event::SpanClose { id: 1, name: "a".into(), wall_ms: 0.0 },
        ]);
        let e = parse_jsonl(&log).expect_err("must fail");
        assert!(e.to_string().contains("out of order"), "{e}");
    }

    #[test]
    fn wrong_parent_is_rejected() {
        let log = lines(&[
            Event::SpanOpen { id: 1, parent: None, name: "a".into(), ts_ms: 0 },
            Event::SpanOpen { id: 2, parent: None, name: "b".into(), ts_ms: 0 },
        ]);
        let e = parse_jsonl(&log).expect_err("must fail");
        assert!(e.to_string().contains("parent"), "{e}");
    }

    #[test]
    fn backwards_counter_is_rejected() {
        let log = lines(&[
            Event::Counter { name: "c".into(), value: 5 },
            Event::Counter { name: "c".into(), value: 4 },
        ]);
        let e = parse_jsonl(&log).expect_err("must fail");
        assert!(e.to_string().contains("backwards"), "{e}");
        assert_eq!(e.line, 3);
    }

    #[test]
    fn unparseable_line_reports_line_number() {
        let log = format!("{}\nnot json", header());
        let e = parse_jsonl(&log).expect_err("must fail");
        assert_eq!(e.line, 2);
    }

    #[test]
    fn events_after_run_end_are_rejected() {
        let log = lines(&[
            Event::RunEnd { status: "ok".into(), wall_ms: 0.0 },
            Event::Counter { name: "c".into(), value: 1 },
        ]);
        assert!(parse_jsonl(&log).is_err());
    }

    #[test]
    fn helpers_extract_epochs_and_counters() {
        let log = lines(&[
            Event::Epoch {
                phase: "pretrain".into(),
                epoch: 0,
                recon_loss: 1.0,
                cluster_loss: 0.0,
                triplet_loss: 0.0,
                grad_norm: 1.0,
                lr: 1e-3,
                label_change: None,
                skipped_batches: 0,
                rollbacks: 0,
            },
            Event::Counter { name: "c".into(), value: 1 },
            Event::Counter { name: "c".into(), value: 9 },
        ]);
        let v = parse_jsonl(&log).expect("valid");
        assert_eq!(v.epochs().len(), 1);
        assert_eq!(v.final_counter("c"), Some(9));
        assert_eq!(v.final_counter("missing"), None);
    }
}
