//! # traj-obs — structured telemetry for training and benchmarking
//!
//! E²DTC's behaviour is driven by a three-part joint loss whose per-phase
//! dynamics decide whether self-training converges or silently collapses
//! clusters. This crate is the observability layer that makes those
//! dynamics inspectable without rerunning: timed **spans**, monotone
//! **counters**, mergeable **histograms**, and a JSONL **run log** with a
//! documented event schema (see [`event::Event`] and DESIGN.md §11).
//!
//! ## Architecture
//!
//! Everything funnels through a [`Sink`]:
//!
//! - [`sink::NoopSink`] — the default. [`Recorder::span`] and every other
//!   instrumentation point early-return before taking a timestamp or
//!   allocating, so instrumented code paths cost one branch
//!   (`tests/overhead.rs` pins this to < 2% on a micro training loop).
//! - [`sink::StderrSink`] — human-readable one-liners for interactive runs.
//! - [`sink::JsonlSink`] — one JSON object per line in the [`event::Event`]
//!   schema; [`schema::parse_jsonl`] parses and validates a finished log.
//! - [`sink::MemorySink`] — captures events in memory for tests.
//!
//! A [`Recorder`] is a cheap clonable handle around a sink that allocates
//! span ids and tracks span nesting. Library code that cannot thread a
//! handle through its API (kernel counters, `DistanceMatrix::compute`)
//! uses the process-wide [`global`] recorder, which defaults to no-op and
//! is installed once by the CLI / bench harness via [`set_global`].
//!
//! ```
//! use traj_obs::{Recorder, sink::MemorySink};
//! use std::sync::Arc;
//!
//! let sink = Arc::new(MemorySink::new());
//! let rec = Recorder::new(sink.clone());
//! {
//!     let _outer = rec.span("epoch");
//!     let _inner = rec.span("batch");
//! } // guards close in LIFO order
//! assert_eq!(sink.events().len(), 4); // two opens + two closes
//! ```

#![warn(missing_docs)]

pub mod counter;
pub mod event;
pub mod hist;
pub mod recorder;
pub mod schema;
pub mod sink;

pub use counter::Counter;
pub use event::{Event, Level};
pub use hist::Histogram;
pub use recorder::{Recorder, Span};
pub use sink::{JsonlSink, MemorySink, NoopSink, Sink, StderrSink};

use std::sync::{Arc, OnceLock, RwLock};

fn global_cell() -> &'static RwLock<Recorder> {
    static CELL: OnceLock<RwLock<Recorder>> = OnceLock::new();
    CELL.get_or_init(|| RwLock::new(Recorder::disabled()))
}

/// The process-wide recorder (no-op until [`set_global`] installs a real
/// sink). Instrumentation that cannot be handed a [`Recorder`] explicitly
/// clones this.
pub fn global() -> Recorder {
    global_cell().read().expect("telemetry lock poisoned").clone()
}

/// Installs the process-wide recorder. Typically called once by a binary's
/// `main` after parsing `--log-json`; later [`global`] clones observe the
/// new sink, but components that captured the previous recorder (e.g. a
/// model built earlier) keep it.
pub fn set_global(rec: Recorder) {
    *global_cell().write().expect("telemetry lock poisoned") = rec;
}

/// Milliseconds since the Unix epoch (the `ts_ms` of emitted events).
pub fn unix_millis() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// Best-effort `git describe --always --dirty` of the working tree, for
/// run headers; `"unknown"` when git or the repository is unavailable.
pub fn git_describe() -> String {
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Convenience constructor: a recorder writing JSONL to `path`.
pub fn jsonl_recorder(path: &str) -> std::io::Result<Recorder> {
    Ok(Recorder::new(Arc::new(JsonlSink::create(path)?)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_recorder_is_usable_without_installation() {
        // Other tests in this process may have installed a sink, so only
        // exercise the path: cloning and spanning must never panic.
        let rec = global();
        let span = rec.span("noop");
        drop(span);
        rec.flush();
    }

    #[test]
    fn git_describe_never_panics() {
        let d = git_describe();
        assert!(!d.is_empty());
    }

    #[test]
    fn unix_millis_is_sane() {
        // After 2020, before 2100.
        let ms = unix_millis();
        assert!(ms > 1_577_836_800_000 && ms < 4_102_444_800_000);
    }
}
