//! The [`Recorder`]: a cheap clonable handle that turns instrumentation
//! points into schema events.

use crate::event::{Event, Level};
use crate::sink::{NoopSink, Sink};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

struct Inner {
    sink: Arc<dyn Sink>,
    next_span: AtomicU64,
    /// Ids of currently-open spans, innermost last. Spans form one
    /// logical stream per recorder (they are opened and closed on the
    /// thread driving the run; worker threads bump counters instead), so
    /// a single stack is the right model and gives `span_open.parent`
    /// for free. Only touched when the sink is enabled.
    open: Mutex<Vec<u64>>,
}

/// Handle through which components emit telemetry. Cloning shares the
/// sink and the span-id allocator.
#[derive(Clone)]
pub struct Recorder {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder").field("enabled", &self.enabled()).finish()
    }
}

impl Default for Recorder {
    fn default() -> Self {
        Self::disabled()
    }
}

impl Recorder {
    /// A recorder feeding `sink`.
    pub fn new(sink: Arc<dyn Sink>) -> Self {
        Self {
            inner: Arc::new(Inner {
                sink,
                next_span: AtomicU64::new(1),
                open: Mutex::new(Vec::new()),
            }),
        }
    }

    /// A recorder that discards everything at the cost of one branch per
    /// instrumentation point.
    pub fn disabled() -> Self {
        Self::new(Arc::new(NoopSink))
    }

    /// Whether events currently reach a sink.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.inner.sink.enabled()
    }

    /// Emits a raw event (no-op when disabled).
    pub fn emit(&self, event: &Event) {
        if self.enabled() {
            self.inner.sink.emit(event);
        }
    }

    /// Flushes the underlying sink.
    pub fn flush(&self) {
        self.inner.sink.flush();
    }

    /// Opens a timed span; the returned guard closes it on drop, which
    /// makes LIFO nesting a structural property of the instrumented code.
    /// When disabled this returns an inert guard without reading the
    /// clock or allocating.
    #[must_use = "the span closes when the guard drops"]
    pub fn span(&self, name: &str) -> Span {
        if !self.enabled() {
            return Span { state: None };
        }
        let id = self.inner.next_span.fetch_add(1, Ordering::Relaxed);
        let parent = {
            let mut open = self.inner.open.lock().expect("span stack poisoned");
            let parent = open.last().copied();
            open.push(id);
            parent
        };
        self.inner.sink.emit(&Event::SpanOpen {
            id,
            parent,
            name: name.to_string(),
            ts_ms: crate::unix_millis(),
        });
        Span {
            state: Some(SpanState {
                recorder: self.clone(),
                id,
                name: name.to_string(),
                start: Instant::now(),
            }),
        }
    }

    /// Emits an informational message.
    pub fn info(&self, text: impl Into<String>) {
        self.emit(&Event::Message { level: Level::Info, text: text.into() });
    }

    /// Emits a warning. Falls back to stderr when no sink is installed:
    /// degradation reports (skipped checkpoints, exhausted rollback
    /// budgets) must never be silently discarded.
    pub fn warn(&self, text: impl Into<String>) {
        let text = text.into();
        if self.enabled() {
            self.emit(&Event::Message { level: Level::Warn, text });
        } else {
            eprintln!("{text}");
        }
    }

    /// Snapshots each counter into the sink (no-op when disabled).
    pub fn counters(&self, counters: &[&crate::Counter]) {
        if !self.enabled() {
            return;
        }
        for c in counters {
            self.inner.sink.emit(&c.snapshot());
        }
    }

    /// Snapshots a histogram under `name` (no-op when disabled).
    pub fn histogram(&self, name: &str, h: &crate::Histogram) {
        if self.enabled() {
            self.inner.sink.emit(&h.snapshot(name));
        }
    }
}

struct SpanState {
    recorder: Recorder,
    id: u64,
    name: String,
    start: Instant,
}

/// RAII guard for an open span (see [`Recorder::span`]).
#[must_use = "the span closes when the guard drops"]
pub struct Span {
    state: Option<SpanState>,
}

impl Span {
    /// Whether this guard tracks a live span (false under a no-op sink).
    pub fn is_active(&self) -> bool {
        self.state.is_some()
    }

    /// Elapsed time since the span opened (zero when inactive).
    pub fn elapsed_ms(&self) -> f64 {
        self.state.as_ref().map_or(0.0, |s| s.start.elapsed().as_secs_f64() * 1e3)
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(s) = self.state.take() else { return };
        {
            let mut open = s.recorder.inner.open.lock().expect("span stack poisoned");
            // Guard drops are LIFO by construction; `retain` instead of
            // `pop` keeps a stray out-of-order drop (e.g. a span held
            // across an early return while its parent was mem::forgotten)
            // from corrupting unrelated parents.
            open.retain(|&id| id != s.id);
        }
        s.recorder.inner.sink.emit(&Event::SpanClose {
            id: s.id,
            name: s.name,
            wall_ms: s.start.elapsed().as_secs_f64() * 1e3,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::MemorySink;

    #[test]
    fn disabled_recorder_emits_nothing_and_span_is_inert() {
        let rec = Recorder::disabled();
        let span = rec.span("quiet");
        assert!(!span.is_active());
        assert_eq!(span.elapsed_ms(), 0.0);
        rec.info("ignored");
        rec.counters(&[]);
    }

    #[test]
    fn nested_spans_record_parent_and_close_lifo() {
        let sink = Arc::new(MemorySink::new());
        let rec = Recorder::new(sink.clone());
        {
            let _a = rec.span("outer");
            let _b = rec.span("inner");
        }
        let events = sink.events();
        assert_eq!(events.len(), 4);
        let (outer_id, inner_id) = match (&events[0], &events[1]) {
            (
                Event::SpanOpen { id: a, parent: None, .. },
                Event::SpanOpen { id: b, parent: Some(p), .. },
            ) => {
                assert_eq!(p, a, "inner's parent must be outer");
                (*a, *b)
            }
            other => panic!("unexpected opens: {other:?}"),
        };
        match (&events[2], &events[3]) {
            (Event::SpanClose { id: c1, .. }, Event::SpanClose { id: c2, .. }) => {
                assert_eq!(*c1, inner_id, "inner closes first (LIFO)");
                assert_eq!(*c2, outer_id);
            }
            other => panic!("unexpected closes: {other:?}"),
        }
    }

    #[test]
    fn warn_reaches_sink_when_enabled() {
        let sink = Arc::new(MemorySink::new());
        let rec = Recorder::new(sink.clone());
        rec.warn("trouble");
        assert_eq!(
            sink.events(),
            vec![Event::Message { level: Level::Warn, text: "trouble".into() }]
        );
    }

    #[test]
    fn sibling_spans_share_a_parent() {
        let sink = Arc::new(MemorySink::new());
        let rec = Recorder::new(sink.clone());
        {
            let _root = rec.span("root");
            drop(rec.span("first"));
            drop(rec.span("second"));
        }
        let parents: Vec<Option<u64>> = sink
            .events()
            .iter()
            .filter_map(|e| match e {
                Event::SpanOpen { parent, .. } => Some(*parent),
                _ => None,
            })
            .collect();
        assert_eq!(parents[0], None);
        assert_eq!(parents[1], parents[2]);
        assert!(parents[1].is_some());
    }
}
