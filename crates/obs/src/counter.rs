//! Monotone counters for hot-path instrumentation.
//!
//! A [`Counter`] is a named relaxed atomic — cheap enough to bump once
//! per kernel call (one `fetch_add` on an uncontended cache line; the
//! kernels themselves are thousands of FLOPs). Counters only ever grow;
//! sinks receive point-in-time snapshots via [`Counter::snapshot`], and
//! the monotonicity is what makes two snapshots diffable.
//!
//! Counters are designed to live in `static`s inside the instrumented
//! crate (construction is `const`), so the hot path never touches a
//! registry or a lock:
//!
//! ```
//! use traj_obs::Counter;
//! static MATMUL_CALLS: Counter = Counter::new("nn.matmul_calls");
//! MATMUL_CALLS.inc();
//! assert!(MATMUL_CALLS.get() >= 1);
//! ```

use crate::event::Event;
use std::sync::atomic::{AtomicU64, Ordering};

/// A named monotonically-increasing `u64`.
#[derive(Debug)]
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
}

impl Counter {
    /// Creates a zeroed counter (usable in `static` position).
    pub const fn new(name: &'static str) -> Self {
        Self { name, value: AtomicU64::new(0) }
    }

    /// The counter's wire name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`. Relaxed ordering: counters are statistics, not
    /// synchronization.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current cumulative value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Point-in-time snapshot as a schema event.
    pub fn snapshot(&self) -> Event {
        Event::Counter { name: self.name.to_string(), value: self.get() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_get() {
        let c = Counter::new("test.counter");
        assert_eq!(c.get(), 0);
        c.inc();
        c.add(9);
        assert_eq!(c.get(), 10);
        assert_eq!(c.snapshot(), Event::Counter { name: "test.counter".into(), value: 10 });
    }

    #[test]
    fn concurrent_increments_all_land() {
        static C: Counter = Counter::new("test.parallel");
        let handles: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(|| {
                    for _ in 0..1000 {
                        C.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("thread");
        }
        assert_eq!(C.get(), 4000);
    }
}
