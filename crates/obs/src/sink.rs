//! Pluggable telemetry sinks.

use crate::event::{Event, Level};
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

/// Receives telemetry events. Implementations must be thread-safe: a
/// single sink may be shared by every component of a run.
pub trait Sink: Send + Sync {
    /// False when events would be discarded — instrumentation checks this
    /// first and skips timestamping/allocation entirely, which is what
    /// keeps the no-op configuration off the hot path.
    fn enabled(&self) -> bool {
        true
    }

    /// Consumes one event.
    fn emit(&self, event: &Event);

    /// Flushes any buffered output (a no-op for unbuffered sinks).
    fn flush(&self) {}
}

/// Discards everything; the default sink. [`Sink::enabled`] returns
/// false so instrumented code pays one branch and nothing else.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopSink;

impl Sink for NoopSink {
    fn enabled(&self) -> bool {
        false
    }

    fn emit(&self, _event: &Event) {}
}

/// Human-readable one-line-per-event rendering on stderr, for watching a
/// run interactively without committing to a log file.
#[derive(Clone, Copy, Debug, Default)]
pub struct StderrSink;

impl Sink for StderrSink {
    fn emit(&self, event: &Event) {
        match event {
            Event::RunHeader { name, seed, git, .. } => {
                eprintln!("[obs] run {name} seed={seed} git={git}");
            }
            Event::SpanOpen { name, .. } => eprintln!("[obs] > {name}"),
            Event::SpanClose { name, wall_ms, .. } => {
                eprintln!("[obs] < {name} {wall_ms:.1} ms");
            }
            Event::Epoch {
                phase,
                epoch,
                recon_loss,
                cluster_loss,
                triplet_loss,
                grad_norm,
                lr,
                label_change,
                skipped_batches,
                rollbacks,
            } => {
                let churn = label_change
                    .map(|c| format!(" churn={c:.4}"))
                    .unwrap_or_default();
                let faults = if *skipped_batches > 0 || *rollbacks > 0 {
                    format!(" skipped={skipped_batches} rollbacks={rollbacks}")
                } else {
                    String::new()
                };
                eprintln!(
                    "[obs] {phase} epoch {epoch}: L_r={recon_loss:.4} \
                     L_c={cluster_loss:.4} L_t={triplet_loss:.4} \
                     |g|={grad_norm:.3} lr={lr:.2e}{churn}{faults}"
                );
            }
            Event::Counter { name, value } => eprintln!("[obs] {name} = {value}"),
            Event::Histogram { name, count, sum, min, max, .. } => {
                let mean = if *count > 0 { sum / *count as f64 } else { 0.0 };
                eprintln!(
                    "[obs] {name}: n={count} mean={mean:.3} min={min:.3} max={max:.3}"
                );
            }
            Event::Message { level, text } => match level {
                Level::Info => eprintln!("[obs] {text}"),
                Level::Warn => eprintln!("[obs] warning: {text}"),
            },
            Event::RunEnd { status, wall_ms } => {
                eprintln!("[obs] run end: {status} ({:.1} s)", wall_ms / 1e3);
            }
        }
    }
}

/// Appends one JSON object per event to a file — the machine-readable run
/// log (`--log-json`). Lines follow the [`crate::event`] schema and a
/// finished file parses with [`crate::schema::parse_jsonl`].
///
/// Writes are buffered and serialized behind a mutex; a serialization or
/// IO failure downgrades to a stderr warning rather than killing the run
/// being observed.
#[derive(Debug)]
pub struct JsonlSink {
    writer: Mutex<BufWriter<File>>,
}

impl JsonlSink {
    /// Creates (truncates) the log file at `path`.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let file = File::create(path)?;
        Ok(Self { writer: Mutex::new(BufWriter::new(file)) })
    }
}

impl Sink for JsonlSink {
    fn emit(&self, event: &Event) {
        let line = match serde_json::to_string(event) {
            Ok(l) => l,
            Err(e) => {
                eprintln!("traj-obs: dropping unserializable event: {e}");
                return;
            }
        };
        let mut w = self.writer.lock().expect("jsonl sink lock poisoned");
        if let Err(e) = w.write_all(line.as_bytes()).and_then(|()| w.write_all(b"\n")) {
            eprintln!("traj-obs: run-log write failed: {e}");
        }
    }

    fn flush(&self) {
        let mut w = self.writer.lock().expect("jsonl sink lock poisoned");
        if let Err(e) = w.flush() {
            eprintln!("traj-obs: run-log flush failed: {e}");
        }
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        self.flush();
    }
}

/// Collects events in memory; the assertion surface for tests.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<Event>>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot of everything emitted so far.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().expect("memory sink lock poisoned").clone()
    }

    /// Removes and returns everything emitted so far.
    pub fn drain(&self) -> Vec<Event> {
        std::mem::take(&mut *self.events.lock().expect("memory sink lock poisoned"))
    }
}

impl Sink for MemorySink {
    fn emit(&self, event: &Event) {
        self.events.lock().expect("memory sink lock poisoned").push(event.clone());
    }
}

/// Fans events out to several sinks (e.g. stderr + JSONL).
pub struct TeeSink {
    sinks: Vec<std::sync::Arc<dyn Sink>>,
}

impl TeeSink {
    /// Combines `sinks`; enabled iff any child is.
    pub fn new(sinks: Vec<std::sync::Arc<dyn Sink>>) -> Self {
        Self { sinks }
    }
}

impl Sink for TeeSink {
    fn enabled(&self) -> bool {
        self.sinks.iter().any(|s| s.enabled())
    }

    fn emit(&self, event: &Event) {
        for s in &self.sinks {
            if s.enabled() {
                s.emit(event);
            }
        }
    }

    fn flush(&self) {
        for s in &self.sinks {
            s.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_is_disabled() {
        assert!(!NoopSink.enabled());
        NoopSink.emit(&Event::Counter { name: "x".into(), value: 1 }); // must not panic
    }

    #[test]
    fn memory_sink_captures_in_order() {
        let sink = MemorySink::new();
        for v in 0..3 {
            sink.emit(&Event::Counter { name: "c".into(), value: v });
        }
        let events = sink.drain();
        assert_eq!(events.len(), 3);
        assert_eq!(events[2], Event::Counter { name: "c".into(), value: 2 });
        assert!(sink.events().is_empty());
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let path = std::env::temp_dir().join("traj_obs_sink_test.jsonl");
        {
            let sink = JsonlSink::create(&path).expect("create");
            sink.emit(&Event::Counter { name: "a".into(), value: 1 });
            sink.emit(&Event::Counter { name: "a".into(), value: 2 });
        } // drop flushes
        let text = std::fs::read_to_string(&path).expect("read back");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            let _: Event = serde_json::from_str(line).expect("line parses");
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn tee_fans_out_to_enabled_children_only() {
        let mem = std::sync::Arc::new(MemorySink::new());
        let tee = TeeSink::new(vec![std::sync::Arc::new(NoopSink), mem.clone()]);
        assert!(tee.enabled());
        tee.emit(&Event::Counter { name: "x".into(), value: 7 });
        assert_eq!(mem.events().len(), 1);
    }
}
