//! Tests for the experiment-harness plumbing.

use e2dtc_bench::datasets::{labelled_dataset, DatasetKind};
use e2dtc_bench::methods::{run_kmedoids, Scores};
use e2dtc_bench::report::{fmt3, fmt_secs, Table};
use traj_dist::Metric;

#[test]
fn table_renders_aligned_columns() {
    let mut t = Table::new(&["A", "Method", "Score"]);
    t.row(vec!["x".into(), "longer-name".into(), "0.123".into()]);
    t.row(vec!["yy".into(), "m".into(), "1.000".into()]);
    let text = t.render();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 4, "header + rule + 2 rows");
    assert!(lines[0].starts_with("A "));
    assert!(lines[1].chars().all(|c| c == '-'));
    // All rows have the method column starting at the same offset.
    let off0 = lines[2].find("longer-name").expect("cell present");
    let off1 = lines[3].find('m').expect("cell present");
    assert_eq!(off0, off1);
}

#[test]
#[should_panic(expected = "row width mismatch")]
fn table_rejects_ragged_rows() {
    let mut t = Table::new(&["A", "B"]);
    t.row(vec!["only-one".into()]);
}

#[test]
fn formatters() {
    assert_eq!(fmt3(0.12345), "0.123");
    assert_eq!(fmt_secs(0.0123), "12 ms");
    assert_eq!(fmt_secs(3.21), "3.21 s");
    assert_eq!(fmt_secs(250.0), "250 s");
}

#[test]
fn dataset_kinds_have_paper_cluster_counts() {
    assert_eq!(DatasetKind::GeoLife.k(), 12);
    assert_eq!(DatasetKind::Porto.k(), 15);
    assert_eq!(DatasetKind::Hangzhou.k(), 7);
    let names: Vec<&str> = DatasetKind::ALL.iter().map(|k| k.name()).collect();
    assert_eq!(names, vec!["GeoLife", "Porto", "Hangzhou"]);
}

#[test]
fn labelled_dataset_is_reproducible_and_labelled() {
    let a = labelled_dataset(DatasetKind::Hangzhou, 60, 3);
    let b = labelled_dataset(DatasetKind::Hangzhou, 60, 3);
    assert_eq!(a.labels, b.labels);
    assert_eq!(a.num_clusters, 7);
    assert!(a.len() > 30, "most trajectories should be labelled");
    assert!(a.labels.iter().all(|&l| l < 7));
}

#[test]
fn kmedoids_runner_scores_and_times() {
    let data = labelled_dataset(DatasetKind::Hangzhou, 50, 5);
    let r = run_kmedoids(&data, Metric::Hausdorff, 2);
    assert_eq!(r.name, "Hausdorff + KM");
    assert_eq!(r.assignments.len(), data.len());
    assert!(r.seconds > 0.0);
    let s: Scores = r.scores;
    for v in [s.uacc, s.nmi, s.ri] {
        assert!((0.0..=1.0).contains(&v));
    }
}
