//! # e2dtc-bench — experiment harness
//!
//! Shared plumbing for the binaries that regenerate every table and figure
//! of the E²DTC paper (see DESIGN.md §4 for the experiment index):
//! dataset construction, method runners with end-to-end timing, metric
//! evaluation, and plain-text/JSON reporting.

#![warn(missing_docs)]

pub mod datasets;
pub mod methods;
pub mod report;
pub mod setup;

pub use datasets::{labelled_dataset, DatasetKind};
pub use methods::{run_e2dtc, run_kmedoids, run_t2vec, MethodResult, Scores};
pub use setup::{train_frozen, RunArgs};
