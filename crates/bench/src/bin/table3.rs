//! **Table III** — clustering performance (UACC, NMI, RI) of all six
//! methods on the three datasets.
//!
//! Paper's qualitative claims this run should reproduce:
//! 1. classic K-Medoids ranks flip across datasets (no metric dominates);
//! 2. both deep methods beat every classic method;
//! 3. E²DTC beats t2vec + k-means everywhere.
//!
//! Usage: `table3 [--scale paper] [--n <trajectories>] [--seed <s>]`

use e2dtc_bench::datasets::DatasetKind;
use e2dtc_bench::methods::{run_e2dtc, run_kmedoids, run_kmedoids_tuned, run_t2vec};
use e2dtc_bench::report::{dump_json, dump_text, fmt3, Table};
use e2dtc_bench::setup::RunArgs;
use serde::Serialize;
use traj_dist::Metric;

#[derive(Serialize)]
struct Row {
    dataset: String,
    method: String,
    uacc: f64,
    nmi: f64,
    ri: f64,
    seconds: f64,
}

fn main() {
    let args = RunArgs::parse();
    let n = args.n(80_000, 400);
    let eps_candidates = [100.0, 200.0, 400.0];
    // The paper repeats every method 20× and averages; we use a smaller
    // CPU-friendly repeat count (classic clustering is cheap to repeat,
    // deep training less so).
    let repeats = 5;
    let deep_repeats = 3;

    let mut rows: Vec<Row> = Vec::new();
    let mut table = Table::new(&[
        "Dataset", "Method", "UACC", "NMI", "RI", "time (s)",
    ]);

    for kind in DatasetKind::ALL {
        let data = args.dataset("table3", kind, n);
        let cfg = args.config(data.num_clusters);

        let mut results = vec![
            run_kmedoids_tuned(&data, |eps| Metric::Edr { eps_m: eps }, &eps_candidates, repeats),
            run_kmedoids_tuned(&data, |eps| Metric::Lcss { eps_m: eps }, &eps_candidates, repeats),
            run_kmedoids(&data, Metric::Dtw, repeats),
            run_kmedoids(&data, Metric::Hausdorff, repeats),
            run_t2vec(&data, cfg.clone(), deep_repeats),
            run_e2dtc(&data, cfg, deep_repeats),
        ];
        for r in results.drain(..) {
            table.row(vec![
                kind.name().to_string(),
                r.name.clone(),
                fmt3(r.scores.uacc),
                fmt3(r.scores.nmi),
                fmt3(r.scores.ri),
                format!("{:.2}", r.seconds),
            ]);
            rows.push(Row {
                dataset: kind.name().to_string(),
                method: r.name,
                uacc: r.scores.uacc,
                nmi: r.scores.nmi,
                ri: r.scores.ri,
                seconds: r.seconds,
            });
        }
    }

    println!("\nTable III — clustering performance of all approaches (n = {n})\n");
    table.print();
    let text = table.render();
    dump_json("table3", &rows).expect("write json");
    dump_text("table3", &text).expect("write text");
    println!("\nartifacts: experiments_out/table3.{{json,txt}}");
}
