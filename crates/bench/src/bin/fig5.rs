//! **Figure 5** — the cluster-oriented representation learning process:
//! snapshots of the embedding space across self-training epochs plus the
//! accuracy-vs-epoch curve (the paper observes accuracy "increases rapidly
//! in the beginning, and stays stable after Epoch 4").
//!
//! Per epoch we report UACC and the silhouette of ground-truth labels in
//! the *embedding* space; t-SNE 2-D snapshots of the first, middle, and
//! final epochs go into the JSON artifact.
//!
//! Usage: `fig5 [--scale paper] [--n <trajectories>] [--seed <s>]`

use e2dtc::E2dtc;
use e2dtc_bench::datasets::DatasetKind;
use e2dtc_bench::report::{dump_json, dump_text, Table};
use e2dtc_bench::setup::RunArgs;
use serde::Serialize;
use traj_cluster::{silhouette, uacc};
use traj_tsne::{tsne, TsneConfig};

#[derive(Serialize)]
struct EpochPoint {
    epoch: usize,
    uacc: f64,
    silhouette: f64,
}

#[derive(Serialize)]
struct Fig5Out {
    curve: Vec<EpochPoint>,
    snapshots: Vec<(usize, Vec<(f64, f64)>)>,
    labels: Vec<usize>,
}

fn main() {
    let args = RunArgs::parse();
    let seed = args.seed;
    let n = args.n(80_000, 400);
    let data = args.dataset("fig5", DatasetKind::Hangzhou, n);

    let mut cfg = args.config(data.num_clusters);
    // Let the learning process run its full course for the figure
    // (disable the δ early stop so every epoch is recorded).
    cfg.delta = 0.0;
    cfg.selftrain_epochs = if args.paper { 20 } else { 10 };

    let mut model = E2dtc::new(&data.dataset, cfg);
    let labels = data.labels.clone();
    let dim = model.repr_dim();
    let mut curve: Vec<EpochPoint> = Vec::new();
    let mut embeddings_per_epoch: Vec<Vec<f32>> = Vec::new();
    let _ = model.fit_with_callback(&data.dataset, &mut |epoch, emb, asg| {
        curve.push(EpochPoint {
            epoch,
            uacc: uacc(asg, &labels),
            silhouette: silhouette(emb, labels.len(), dim, &labels),
        });
        embeddings_per_epoch.push(emb.to_vec());
    });

    let mut table = Table::new(&["Epoch", "UACC", "silhouette"]);
    for p in &curve {
        table.row(vec![
            p.epoch.to_string(),
            format!("{:.3}", p.uacc),
            format!("{:.3}", p.silhouette),
        ]);
    }
    println!("\nFigure 5 — learning process of the cluster-oriented representation\n");
    table.print();

    // t-SNE snapshots of first / middle / last epochs.
    let tsne_cfg = TsneConfig { iterations: 250, perplexity: 25.0, seed, ..Default::default() };
    let picks: Vec<usize> = {
        let last = embeddings_per_epoch.len().saturating_sub(1);
        let mut v = vec![0, last / 2, last];
        v.dedup();
        v
    };
    let snapshots = picks
        .iter()
        .map(|&e| {
            eprintln!("[fig5] t-SNE snapshot of epoch {e}");
            let res = tsne(&embeddings_per_epoch[e], labels.len(), dim, &tsne_cfg);
            (e, (0..labels.len()).map(|i| res.point(i)).collect())
        })
        .collect();

    let out = Fig5Out { curve, snapshots, labels };
    dump_json("fig5", &out).expect("write json");
    dump_text("fig5", &table.render()).expect("write text");
    println!("\nartifacts: experiments_out/fig5.{{json,txt}}");
}
