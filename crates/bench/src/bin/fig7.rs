//! **Figure 7 + Table V** — robustness to the data distribution:
//! balanced vs. imbalanced Hangzhou-like subsets (Table V documents the
//! subsets; Fig. 7 shows UACC and NMI per method on each). The paper's
//! claim: E²DTC stays stable while the classic methods drop sharply on
//! imbalanced data.
//!
//! Usage: `fig7 [--scale paper] [--n <trajectories>] [--seed <s>]`

use e2dtc_bench::datasets::{labelled_dataset, DatasetKind};
use e2dtc_bench::methods::{run_e2dtc, run_kmedoids, run_kmedoids_tuned, run_t2vec};
use e2dtc_bench::report::{dump_json, dump_text, fmt3, Table};
use e2dtc_bench::setup::RunArgs;
use serde::Serialize;
use traj_data::stats::DistributionStats;
use traj_data::synth::{balanced_subset, imbalanced_subset};
use traj_data::LabeledDataset;
use traj_dist::Metric;

#[derive(Serialize)]
struct Row {
    subset: String,
    method: String,
    uacc: f64,
    nmi: f64,
}

fn main() {
    let args = RunArgs::parse();
    let seed = args.seed;
    let n = args.n(80_000, 900);
    // Generate a strongly imbalanced source so the imbalanced subset has
    // its ≈7× skew available, then subset per Table V.
    let source = {
        let mut spec = DatasetKind::Hangzhou.spec(n, seed).imbalanced();
        spec.name = "hangzhou-imbalanced-source".into();
        let city = spec.generate();
        let (labelled, _) = traj_data::generate_ground_truth(
            &city.dataset,
            &city.pois,
            traj_data::GroundTruthConfig::default(),
        );
        labelled
    };
    let balanced_source = labelled_dataset(DatasetKind::Hangzhou, n, seed);

    let sizes = source.cluster_sizes();
    let min_size = *sizes.iter().filter(|&&s| s > 0).min().unwrap_or(&0);
    let per = min_size.max(8);
    let balanced = balanced_subset(&balanced_source, per, seed);
    let imbalanced = imbalanced_subset(&source, per, per * 7, seed);

    // Table V.
    let mut table_v = Table::new(&["Attributes", "Balanced", "Imbalanced"]);
    let bs = DistributionStats::of(&balanced);
    let is = DistributionStats::of(&imbalanced);
    table_v.row(vec![
        "Min cluster size".into(),
        bs.min_cluster_size.to_string(),
        is.min_cluster_size.to_string(),
    ]);
    table_v.row(vec![
        "Max cluster size".into(),
        bs.max_cluster_size.to_string(),
        is.max_cluster_size.to_string(),
    ]);
    table_v.row(vec![
        "Ave cluster size".into(),
        format!("{:.0}", bs.avg_cluster_size),
        format!("{:.0}", is.avg_cluster_size),
    ]);
    println!("\nTable V — statics of data distribution\n");
    table_v.print();

    // Figure 7: all six methods on both subsets.
    let mut rows = Vec::new();
    let mut table = Table::new(&["Subset", "Method", "UACC", "NMI"]);
    for (label, data) in [("balanced", &balanced), ("imbalanced", &imbalanced)] {
        eprintln!("[fig7] {label}: {} trajectories", data.len());
        let results = run_all(data, &args);
        for r in results {
            table.row(vec![
                label.to_string(),
                r.0.clone(),
                fmt3(r.1),
                fmt3(r.2),
            ]);
            rows.push(Row { subset: label.to_string(), method: r.0, uacc: r.1, nmi: r.2 });
        }
    }
    println!("\nFigure 7 — robustness vs. data distribution\n");
    table.print();
    dump_json("fig7", &rows).expect("write json");
    dump_text(
        "fig7",
        &format!("{}\n{}", table_v.render(), table.render()),
    )
    .expect("write text");
    println!("\nartifacts: experiments_out/fig7.{{json,txt}}");
}

fn run_all(data: &LabeledDataset, args: &RunArgs) -> Vec<(String, f64, f64)> {
    let eps = [100.0, 200.0, 400.0];
    let cfg = args.config(data.num_clusters);
    let results = vec![
        run_kmedoids_tuned(data, |e| Metric::Edr { eps_m: e }, &eps, 3),
        run_kmedoids_tuned(data, |e| Metric::Lcss { eps_m: e }, &eps, 3),
        run_kmedoids(data, Metric::Dtw, 3),
        run_kmedoids(data, Metric::Hausdorff, 3),
        run_t2vec(data, cfg.clone(), 2),
        run_e2dtc(data, cfg, 2),
    ];
    results
        .into_iter()
        .map(|r| (r.name, r.scores.uacc, r.scores.nmi))
        .collect()
}
