//! **Figure 4** — visualization of embedding spaces via t-SNE on a
//! 1000-sample Hangzhou-like subset.
//!
//! Panels (a)–(d): classic similarity spaces (DTW, Hausdorff, EDR, LCSS),
//! embedded from their pairwise distance matrices. Panels (e)–(h): deep
//! representation spaces (t2vec, `L0`, `L1`, full `L2`). The paper's
//! claim: the full-loss E²DTC space has the most separated, tightest
//! clusters. Since this harness cannot render scatter plots, each panel is
//! quantified by (i) the silhouette coefficient of the ground-truth
//! labels in the 2-D t-SNE embedding and (ii) the mean inter- vs
//! intra-cluster centroid-distance ratio; the raw 2-D coordinates are
//! dumped to JSON for external plotting.
//!
//! Usage: `fig4 [--scale paper] [--n <samples>] [--seed <s>]`

use e2dtc::{E2dtc, LossMode};
use e2dtc_bench::datasets::{labelled_dataset, DatasetKind};
use e2dtc_bench::report::{dump_json, dump_text, Table};
use e2dtc_bench::setup::RunArgs;
use serde::Serialize;
use traj_cluster::silhouette;
use traj_dist::{DistanceMatrix, Metric};
use traj_tsne::{tsne, tsne_from_distances, TsneConfig, TsneResult};

#[derive(Serialize)]
struct Panel {
    name: String,
    silhouette_2d: f64,
    separation_ratio: f64,
    coords: Vec<(f64, f64)>,
}

fn main() {
    let args = RunArgs::parse();
    let seed = args.seed;
    // The paper uses a random subset of 1000 samples.
    let n = args.n(1000, 300);
    let data = labelled_dataset(DatasetKind::Hangzhou, n * 2, seed);
    // Take the first n labelled trajectories as the visualization subset.
    let take = n.min(data.len());
    let subset = traj_data::LabeledDataset {
        dataset: traj_data::Dataset::new(
            "fig4-subset",
            data.dataset.trajectories[..take].to_vec(),
        ),
        labels: data.labels[..take].to_vec(),
        num_clusters: data.num_clusters,
    };
    let labels = &subset.labels;
    eprintln!("[fig4] {} samples, k = {}", subset.len(), subset.num_clusters);

    let tsne_cfg = TsneConfig { iterations: 300, perplexity: 25.0, seed, ..Default::default() };
    let mut panels: Vec<Panel> = Vec::new();

    // (a)–(d): classic similarity spaces.
    for metric in [
        Metric::Dtw,
        Metric::Hausdorff,
        Metric::Edr { eps_m: 200.0 },
        Metric::Lcss { eps_m: 200.0 },
    ] {
        eprintln!("[fig4] t-SNE over {} distances", metric.name());
        let matrix = DistanceMatrix::compute(&subset.dataset.trajectories, &metric);
        let res = tsne_from_distances(matrix.data(), subset.len(), &tsne_cfg);
        panels.push(panel(metric.name(), &res, labels));
    }

    // (e)–(h): deep representation spaces.
    let base = args.config(subset.num_clusters);
    let deep_variants: [(&str, LossMode, u64); 4] = [
        ("t2vec", LossMode::L0, 11),
        ("L0", LossMode::L0, 0),
        ("L1", LossMode::L1, 0),
        ("L2 (full E2DTC)", LossMode::L2, 0),
    ];
    for (name, mode, seed_off) in deep_variants {
        eprintln!("[fig4] training {name}");
        let cfg = base.clone().with_loss_mode(mode).with_seed(seed + seed_off);
        let mut model = E2dtc::new(&subset.dataset, cfg);
        let fit = model.fit(&subset.dataset);
        let res = tsne(&fit.embeddings, subset.len(), fit.embed_dim, &tsne_cfg);
        panels.push(panel(name, &res, labels));
    }

    let mut table = Table::new(&["Panel", "silhouette (2-D)", "inter/intra ratio"]);
    for p in &panels {
        table.row(vec![
            p.name.clone(),
            format!("{:.3}", p.silhouette_2d),
            format!("{:.2}", p.separation_ratio),
        ]);
    }
    println!("\nFigure 4 — embedding-space separation (higher = clearer clusters)\n");
    table.print();
    dump_json("fig4", &panels).expect("write json");
    dump_text("fig4", &table.render()).expect("write text");
    println!("\nartifacts: experiments_out/fig4.{{json,txt}} (JSON holds the 2-D coordinates)");
}

fn panel(name: &str, res: &TsneResult, labels: &[usize]) -> Panel {
    let n = labels.len();
    let flat: Vec<f32> = res.coords.iter().map(|&x| x as f32).collect();
    let sil = silhouette(&flat, n, 2, labels);
    Panel {
        name: name.to_string(),
        silhouette_2d: sil,
        separation_ratio: separation_ratio(&res.coords, labels),
        coords: (0..n).map(|i| res.point(i)).collect(),
    }
}

/// Mean distance between different-cluster centroids divided by mean
/// point-to-own-centroid distance in the 2-D embedding.
fn separation_ratio(coords: &[f64], labels: &[usize]) -> f64 {
    let n = labels.len();
    let k = labels.iter().max().map_or(0, |&m| m + 1);
    let mut cx = vec![0.0; k];
    let mut cy = vec![0.0; k];
    let mut count = vec![0usize; k];
    for i in 0..n {
        cx[labels[i]] += coords[2 * i];
        cy[labels[i]] += coords[2 * i + 1];
        count[labels[i]] += 1;
    }
    for j in 0..k {
        if count[j] > 0 {
            cx[j] /= count[j] as f64;
            cy[j] /= count[j] as f64;
        }
    }
    let mut intra = 0.0;
    for i in 0..n {
        let j = labels[i];
        intra += ((coords[2 * i] - cx[j]).powi(2) + (coords[2 * i + 1] - cy[j]).powi(2)).sqrt();
    }
    intra /= n as f64;
    let mut inter = 0.0;
    let mut pairs = 0;
    for a in 0..k {
        for b in (a + 1)..k {
            if count[a] > 0 && count[b] > 0 {
                inter += ((cx[a] - cx[b]).powi(2) + (cy[a] - cy[b]).powi(2)).sqrt();
                pairs += 1;
            }
        }
    }
    if pairs == 0 || intra == 0.0 {
        0.0
    } else {
        (inter / pairs as f64) / intra
    }
}
