//! **Table IV** — loss-function ablation: `L0` (reconstruction only,
//! k-means), `L1` (`+ β·L_c`), `L2` (`+ γ·L_t`, full E²DTC) on all three
//! datasets. The paper's claim: `L2 ≥ L1 > L0` on every metric.
//!
//! Usage: `table4 [--scale paper] [--n <trajectories>] [--seed <s>]`

use e2dtc::{E2dtcConfig, LossMode};
use e2dtc_bench::datasets::{labelled_dataset, DatasetKind};
use e2dtc_bench::methods::run_deep;
use e2dtc_bench::report::{dump_json, dump_text, fmt3, parse_args, Table};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    dataset: String,
    loss: String,
    uacc: f64,
    nmi: f64,
    ri: f64,
}

fn main() {
    let (paper, n_override, seed) = parse_args();
    let n = n_override.unwrap_or(if paper { 80_000 } else { 400 });
    let repeats = 3;

    let mut rows = Vec::new();
    let mut table = Table::new(&["Dataset", "Loss", "UACC", "NMI", "RI"]);
    for kind in DatasetKind::ALL {
        let data = labelled_dataset(kind, n, seed);
        eprintln!("[table4] {} : {} labelled, k = {}", kind.name(), data.len(), data.num_clusters);
        for mode in [LossMode::L0, LossMode::L1, LossMode::L2] {
            let cfg = if paper {
                E2dtcConfig::paper(data.num_clusters)
            } else {
                E2dtcConfig::fast(data.num_clusters)
            }
            .with_seed(seed)
            .with_loss_mode(mode);
            let r = run_deep(mode.name(), &data, cfg, repeats);
            table.row(vec![
                kind.name().to_string(),
                mode.name().to_string(),
                fmt3(r.scores.uacc),
                fmt3(r.scores.nmi),
                fmt3(r.scores.ri),
            ]);
            rows.push(Row {
                dataset: kind.name().to_string(),
                loss: mode.name().to_string(),
                uacc: r.scores.uacc,
                nmi: r.scores.nmi,
                ri: r.scores.ri,
            });
        }
    }

    println!("\nTable IV — E2DTC performance vs. loss functions (n = {n})\n");
    table.print();
    dump_json("table4", &rows).expect("write json");
    dump_text("table4", &table.render()).expect("write text");
    println!("\nartifacts: experiments_out/table4.{{json,txt}}");
}
