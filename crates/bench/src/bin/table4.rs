//! **Table IV** — loss-function ablation: `L0` (reconstruction only,
//! k-means), `L1` (`+ β·L_c`), `L2` (`+ γ·L_t`, full E²DTC) on all three
//! datasets. The paper's claim: `L2 ≥ L1 > L0` on every metric.
//!
//! Usage: `table4 [--scale paper] [--n <trajectories>] [--seed <s>]`

use e2dtc::LossMode;
use e2dtc_bench::datasets::DatasetKind;
use e2dtc_bench::methods::run_deep;
use e2dtc_bench::report::{dump_json, dump_text, fmt3, Table};
use e2dtc_bench::setup::RunArgs;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    dataset: String,
    loss: String,
    uacc: f64,
    nmi: f64,
    ri: f64,
}

fn main() {
    let args = RunArgs::parse();
    let n = args.n(80_000, 400);
    let repeats = 3;

    let mut rows = Vec::new();
    let mut table = Table::new(&["Dataset", "Loss", "UACC", "NMI", "RI"]);
    for kind in DatasetKind::ALL {
        let data = args.dataset("table4", kind, n);
        for mode in [LossMode::L0, LossMode::L1, LossMode::L2] {
            let cfg = args.config(data.num_clusters).with_loss_mode(mode);
            let r = run_deep(mode.name(), &data, cfg, repeats);
            table.row(vec![
                kind.name().to_string(),
                mode.name().to_string(),
                fmt3(r.scores.uacc),
                fmt3(r.scores.nmi),
                fmt3(r.scores.ri),
            ]);
            rows.push(Row {
                dataset: kind.name().to_string(),
                loss: mode.name().to_string(),
                uacc: r.scores.uacc,
                nmi: r.scores.nmi,
                ri: r.scores.ri,
            });
        }
    }

    println!("\nTable IV — E2DTC performance vs. loss functions (n = {n})\n");
    table.print();
    dump_json("table4", &rows).expect("write json");
    dump_text("table4", &table.render()).expect("write text");
    println!("\nartifacts: experiments_out/table4.{{json,txt}}");
}
