//! Diagnostic probe (not a paper experiment): inspects each stage of the
//! E²DTC pipeline on one dataset so training-quality regressions can be
//! localized — skip-gram cell vectors, pre-trained encoder embeddings,
//! and the full pipeline under varying budgets.

use e2dtc::{E2dtc, E2dtcConfig, LossMode, SkipGramConfig};
use e2dtc_bench::datasets::DatasetKind;
use e2dtc_bench::setup::RunArgs;
use rand::rngs::StdRng;
use rand::SeedableRng;
use traj_cluster::{kmeans, nmi, uacc, KMeansConfig, Points};

fn kmeans_scores(data: &[f32], n: usize, d: usize, k: usize, truth: &[usize]) -> (f64, f64) {
    let mut best = (0.0, 0.0);
    for seed in 0..3 {
        let mut rng = StdRng::seed_from_u64(seed);
        let res = kmeans(Points::new(data, n, d), KMeansConfig::new(k), &mut rng);
        let u = uacc(&res.assignment, truth);
        if u > best.0 {
            best = (u, nmi(&res.assignment, truth));
        }
    }
    best
}

fn main() {
    let args = RunArgs::parse();
    let seed = args.seed;
    let n = args.n(400, 400);
    let data = args.dataset("probe", DatasetKind::Hangzhou, n);
    let k = data.num_clusters;
    let truth = &data.labels;

    // Stage 1: mean-pooled skip-gram cell vectors, varying skip-gram budget.
    for (ep, win) in [(2usize, 3usize), (8, 5), (20, 5)] {
        let mut cfg = E2dtcConfig::fast(k).with_seed(seed);
        cfg.skipgram = SkipGramConfig { window: win, epochs: ep, ..Default::default() };
        let model = E2dtc::new(&data.dataset, cfg.clone());
        let grid = model.grid().clone();
        let vocab = model.vocab();
        let dim = cfg.embed_dim;
        let mut rng = StdRng::seed_from_u64(seed);
        let seqs: Vec<Vec<usize>> = data
            .dataset
            .trajectories
            .iter()
            .map(|t| vocab.encode_trajectory(&grid, t, cfg.max_seq_len))
            .collect();
        let table = e2dtc::cell_embedding::train_cell_embeddings(
            &seqs,
            vocab.size(),
            dim,
            &cfg.skipgram,
            &mut rng,
        );
        let mut pooled = vec![0.0f32; data.len() * dim];
        for (i, s) in seqs.iter().enumerate() {
            for &tok in s {
                for j in 0..dim {
                    pooled[i * dim + j] += table.get(tok, j) / s.len() as f32;
                }
            }
        }
        let (u, m) = kmeans_scores(&pooled, data.len(), dim, k, truth);
        println!("stage1 skipgram ep={ep:<2} win={win}:  UACC {u:.3}  NMI {m:.3}");
    }

    // Stage 2: encoder embeddings vs pretrain budget (good skip-gram).
    let mut base = E2dtcConfig::fast(k).with_seed(seed);
    base.skipgram = SkipGramConfig { window: 5, epochs: 8, ..Default::default() };
    let mut m2 = E2dtc::new(&data.dataset, base.clone());
    let mut done = 0usize;
    for target in [6usize, 12, 20, 30] {
        let _ = m2.pretrain(&data.dataset, target - done);
        done = target;
        let emb = m2.embed_dataset(&data.dataset);
        let (u, mm) = kmeans_scores(emb.data(), data.len(), m2.repr_dim(), k, truth);
        println!("stage2 pretrain {target:>2} epochs:    UACC {u:.3}  NMI {mm:.3}");
    }

    // Stage 3: full pipeline with decent budgets, L1 and L2.
    for mode in [LossMode::L1, LossMode::L2] {
        let mut cfg3 = base.clone().with_loss_mode(mode);
        cfg3.pretrain_epochs = 20;
        cfg3.selftrain_epochs = 10;
        let mut m3 = E2dtc::new(&data.dataset, cfg3);
        let fit = m3.fit(&data.dataset);
        println!(
            "stage3 full ({})):          UACC {:.3}  NMI {:.3}",
            mode.name(),
            uacc(&fit.assignments, truth),
            nmi(&fit.assignments, truth)
        );
    }
}
