//! **Figure 3** — scalability: end-to-end clustering time vs. dataset
//! cardinality on Porto-like and Hangzhou-like data.
//!
//! Paper definitions (§VII-D): for classic K-Medoids the time is
//! similarity computation + clustering; for the deep models it is
//! trajectory embedding + cluster assignment with an offline-trained model
//! ("once the deep learning models have been trained offline, they can be
//! efficiently utilized for trajectory clustering tasks"). Expected shape:
//! classics grow sharply (O(n²) matrices), deep methods grow mildly and
//! are orders of magnitude faster at scale.
//!
//! Usage: `fig3 [--scale paper] [--seed <s>] [--dtw-band <w>]`
//!
//! `--dtw-band <w>` swaps the DTW baseline for Sakoe-Chiba banded DTW
//! (width `w`) — the opt-in approximation that keeps the O(n²) sweep
//! tractable at paper scale.

use e2dtc::LossMode;
use e2dtc_bench::datasets::{labelled_dataset, DatasetKind};
use e2dtc_bench::methods::time_inference_frozen;
use e2dtc_bench::report::{arg_value, dump_json, dump_text, fmt_secs, Table};
use e2dtc_bench::setup::{train_frozen, RunArgs};
use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;
use traj_cluster::{kmedoids_alternating, KMedoidsConfig};
use traj_dist::{DistanceMatrix, Metric};
use traj_query::{QueryConfig, QueryEngine};

#[derive(Serialize)]
struct Point {
    dataset: String,
    method: String,
    n: usize,
    seconds: f64,
}

fn main() {
    let args = RunArgs::parse();
    let seed = args.seed;
    let dtw_metric = match arg_value::<usize>("dtw-band") {
        Some(band) => Metric::DtwBanded { band },
        None => Metric::Dtw,
    };
    let sizes: Vec<usize> = if args.paper {
        vec![10_000, 20_000, 40_000, 80_000]
    } else {
        vec![100, 200, 400, 800]
    };
    let train_n = *sizes.first().expect("non-empty sweep");

    let mut points = Vec::new();
    let mut table = Table::new(&["Dataset", "Method", "n", "time"]);

    for kind in [DatasetKind::Porto, DatasetKind::Hangzhou] {
        // Deep models are trained once, offline, on the smallest size,
        // then frozen: the timed serve path is the tape-free batched
        // query engine, which is what a deployed model would run.
        let train_data = args.dataset("fig3", kind, train_n);
        let cfg = args.config(train_data.num_clusters);
        let e2dtc_engine = QueryEngine::new(
            Arc::new(train_frozen(&train_data, cfg.clone())),
            QueryConfig::default(),
        );
        let t2vec_engine = QueryEngine::new(
            Arc::new(train_frozen(&train_data, cfg.with_loss_mode(LossMode::L0))),
            QueryConfig::default(),
        );

        for &n in &sizes {
            let data = labelled_dataset(kind, n, seed ^ 0x5157);
            eprintln!("[fig3] {} n = {}", kind.name(), data.len());

            for metric in [dtw_metric, Metric::Hausdorff] {
                let start = Instant::now();
                let matrix = DistanceMatrix::compute(&data.dataset.trajectories, &metric);
                let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
                let _ = kmedoids_alternating(
                    matrix.data(),
                    data.len(),
                    KMedoidsConfig::new(data.num_clusters),
                    &mut rng,
                );
                record(
                    &mut points,
                    &mut table,
                    kind,
                    &format!("{} + KM", metric.name()),
                    data.len(),
                    start.elapsed().as_secs_f64(),
                );
            }

            let (_, secs) = time_inference_frozen(&t2vec_engine, &data);
            record(&mut points, &mut table, kind, "t2vec + k-means", data.len(), secs);
            let (_, secs) = time_inference_frozen(&e2dtc_engine, &data);
            record(&mut points, &mut table, kind, "E2DTC", data.len(), secs);
        }
    }

    println!("\nFigure 3 — clustering time vs. datasize\n");
    table.print();
    dump_json("fig3", &points).expect("write json");
    dump_text("fig3", &table.render()).expect("write text");
    println!("\nartifacts: experiments_out/fig3.{{json,txt}}");
}

fn record(
    points: &mut Vec<Point>,
    table: &mut Table,
    kind: DatasetKind,
    method: &str,
    n: usize,
    seconds: f64,
) {
    table.row(vec![
        kind.name().to_string(),
        method.to_string(),
        n.to_string(),
        fmt_secs(seconds),
    ]);
    points.push(Point {
        dataset: kind.name().to_string(),
        method: method.to_string(),
        n,
        seconds,
    });
}
