//! Design-choice ablations (DESIGN.md §5), beyond the paper's own Table IV
//! loss ablation:
//!
//! 1. Spatial-proximity loss (Eq. 8, kNN cell weights) vs. plain one-hot
//!    NLL (`α → 0`).
//! 2. Decoder attention (extension) on vs. off.
//! 3. k-means++ vs. random centroid initialization for the final
//!    clustering stage.
//!
//! Usage: `ablations [--n <trajectories>] [--seed <s>]`

use e2dtc::{E2dtc, E2dtcConfig};
use e2dtc_bench::datasets::DatasetKind;
use e2dtc_bench::report::{dump_json, dump_text, fmt3, Table};
use e2dtc_bench::setup::RunArgs;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use traj_cluster::{kmeans, nmi, uacc, KMeansConfig, Points};

#[derive(Serialize)]
struct Row {
    ablation: String,
    variant: String,
    uacc: f64,
    nmi: f64,
}

fn main() {
    let args = RunArgs::parse();
    let seed = args.seed;
    let n = args.n(400, 400);
    let data = args.dataset("ablations", DatasetKind::Hangzhou, n);
    let k = data.num_clusters;

    let mut rows = Vec::new();
    let mut table = Table::new(&["Ablation", "Variant", "UACC", "NMI"]);
    let push = |rows: &mut Vec<Row>, table: &mut Table, ab: &str, var: &str, u: f64, m: f64| {
        table.row(vec![ab.to_string(), var.to_string(), fmt3(u), fmt3(m)]);
        rows.push(Row { ablation: ab.into(), variant: var.into(), uacc: u, nmi: m });
    };

    // 1. Eq. 8 spatial weights vs. plain NLL.
    for (variant, alpha) in [("Eq.8 kNN weights (alpha=1)", 1.0f32), ("plain NLL (alpha=0)", 0.0)] {
        let mut cfg = E2dtcConfig::fast(k).with_seed(seed);
        cfg.alpha = alpha;
        let mut model = E2dtc::new(&data.dataset, cfg);
        let fit = model.fit(&data.dataset);
        push(
            &mut rows,
            &mut table,
            "reconstruction loss",
            variant,
            uacc(&fit.assignments, &data.labels),
            nmi(&fit.assignments, &data.labels),
        );
    }

    // 2. Decoder attention.
    for (variant, attention) in [("no attention (paper)", false), ("dot attention", true)] {
        let mut cfg = E2dtcConfig::fast(k).with_seed(seed);
        cfg.attention = attention;
        let mut model = E2dtc::new(&data.dataset, cfg);
        let fit = model.fit(&data.dataset);
        push(
            &mut rows,
            &mut table,
            "decoder attention",
            variant,
            uacc(&fit.assignments, &data.labels),
            nmi(&fit.assignments, &data.labels),
        );
    }

    // 3. k-means++ vs. random init on the frozen pretrained embeddings.
    {
        let mut model =
            E2dtc::new(&data.dataset, E2dtcConfig::fast(k).with_seed(seed));
        let _ = model.pretrain(&data.dataset, model.config().pretrain_epochs);
        let emb = model.embed_dataset(&data.dataset);
        let points = Points::new(emb.data(), data.len(), model.repr_dim());
        for (variant, plus_plus) in [("k-means++", true), ("random init", false)] {
            // Mean over restarts so the comparison is about the *expected*
            // quality of one run, which is what init quality changes.
            let (mut u_sum, mut m_sum) = (0.0, 0.0);
            let reps = 8;
            for r in 0..reps {
                let mut rng = StdRng::seed_from_u64(seed ^ 0xABB ^ r);
                let cfg = if plus_plus {
                    KMeansConfig::new(k)
                } else {
                    KMeansConfig::new(k).random_init()
                };
                let res = kmeans(points, cfg, &mut rng);
                u_sum += uacc(&res.assignment, &data.labels);
                m_sum += nmi(&res.assignment, &data.labels);
            }
            push(
                &mut rows,
                &mut table,
                "centroid init",
                variant,
                u_sum / reps as f64,
                m_sum / reps as f64,
            );
        }
    }

    println!("\nDesign ablations (Hangzhou-like, n = {n})\n");
    table.print();
    dump_json("ablations", &rows).expect("write json");
    dump_text("ablations", &table.render()).expect("write text");
    println!("\nartifacts: experiments_out/ablations.{{json,txt}}");
}
