//! Runs every table and figure of the paper in sequence by invoking the
//! sibling experiment binaries (they must have been built into the same
//! target directory, which `cargo run -p e2dtc-bench --bin all_experiments
//! --release` guarantees). All artifacts land in `experiments_out/`.
//!
//! Degrades gracefully: a failing experiment is logged and the suite
//! moves on, so one broken figure does not cost the artifacts of the
//! other eight. The exit code still reports the damage — `0` only when
//! everything succeeded, `1` when some experiments failed, `2` when all
//! of them did.
//!
//! Usage: `all_experiments [--scale paper] [--seed <s>] [--log-json PATH]`
//! — `--log-json` writes a structured JSONL run log (same schema as
//! `e2dtc train --log-json`, see DESIGN.md §11) with one timed span per
//! experiment; it is consumed here, not forwarded, because each child
//! process would otherwise truncate the shared file. All other arguments
//! are forwarded verbatim to each experiment.

use std::process::{Command, ExitCode};
use traj_obs::Event;

const EXPERIMENTS: [&str; 8] =
    ["table2", "table3", "table4", "fig3", "fig4", "fig5", "fig6", "ablations"];

/// Splits `--log-json <path>` out of the raw argument list; everything
/// else is forwarded to the experiment binaries.
fn extract_log_json(args: Vec<String>) -> (Option<String>, Vec<String>) {
    let mut log_json = None;
    let mut forwarded = Vec::with_capacity(args.len());
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        if arg == "--log-json" {
            log_json = it.next();
        } else {
            forwarded.push(arg);
        }
    }
    (log_json, forwarded)
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let (log_json, args) = extract_log_json(raw);
    if let Some(path) = &log_json {
        match traj_obs::jsonl_recorder(path) {
            Ok(rec) => traj_obs::set_global(rec),
            Err(e) => {
                eprintln!("error: cannot open run log {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let recorder = traj_obs::global();
    let seed = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    if recorder.enabled() {
        recorder.emit(&Event::RunHeader {
            schema: traj_obs::event::SCHEMA_VERSION,
            ts_ms: traj_obs::unix_millis(),
            name: "all_experiments".to_string(),
            seed,
            git: traj_obs::git_describe(),
            config: serde::Value::Array(
                args.iter().map(|a| serde::Value::Str(a.clone())).collect(),
            ),
        });
    }
    let t0 = std::time::Instant::now();

    let exe_dir = std::env::current_exe()
        .expect("current exe path")
        .parent()
        .expect("exe has a parent dir")
        .to_path_buf();

    // fig7 also prints Table V, so it runs last and is part of the set.
    let all: Vec<&str> = EXPERIMENTS.iter().copied().chain(["fig7"]).collect();
    let total = all.len();
    let mut failed: Vec<String> = Vec::new();
    for (i, name) in all.iter().enumerate() {
        let path = exe_dir.join(name);
        println!("\n=== [{}/{}] {} ===", i + 1, total, name);
        let _span = recorder.span(name);
        match Command::new(&path).args(&args).status() {
            Ok(status) if status.success() => {}
            Ok(status) => {
                recorder.warn(format!(
                    "experiment {name} exited with {status}; continuing with the rest"
                ));
                failed.push(format!("{name} ({status})"));
            }
            Err(e) => {
                recorder.warn(format!(
                    "failed to launch {}: {e}; continuing with the rest",
                    path.display()
                ));
                failed.push(format!("{name} (launch failed: {e})"));
            }
        }
    }

    if recorder.enabled() {
        recorder.emit(&Event::RunEnd {
            status: (if failed.is_empty() { "ok" } else { "error" }).to_string(),
            wall_ms: t0.elapsed().as_secs_f64() * 1e3,
        });
        recorder.flush();
    }
    if failed.is_empty() {
        println!("\nall {total} experiments complete; artifacts in experiments_out/");
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "\n{}/{total} experiments failed:\n  {}",
            failed.len(),
            failed.join("\n  ")
        );
        if failed.len() == total {
            ExitCode::from(2)
        } else {
            ExitCode::from(1)
        }
    }
}
