//! Runs every table and figure of the paper in sequence by invoking the
//! sibling experiment binaries (they must have been built into the same
//! target directory, which `cargo run -p e2dtc-bench --bin all_experiments
//! --release` guarantees). All artifacts land in `experiments_out/`.
//!
//! Degrades gracefully: a failing experiment is logged and the suite
//! moves on, so one broken figure does not cost the artifacts of the
//! other eight. The exit code still reports the damage — `0` only when
//! everything succeeded, `1` when some experiments failed, `2` when all
//! of them did.
//!
//! Usage: `all_experiments [--scale paper] [--seed <s>]` — extra arguments
//! are forwarded verbatim to each experiment.

use std::process::{Command, ExitCode};

const EXPERIMENTS: [&str; 8] =
    ["table2", "table3", "table4", "fig3", "fig4", "fig5", "fig6", "ablations"];

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let exe_dir = std::env::current_exe()
        .expect("current exe path")
        .parent()
        .expect("exe has a parent dir")
        .to_path_buf();

    // fig7 also prints Table V, so it runs last and is part of the set.
    let all: Vec<&str> = EXPERIMENTS.iter().copied().chain(["fig7"]).collect();
    let total = all.len();
    let mut failed: Vec<String> = Vec::new();
    for (i, name) in all.iter().enumerate() {
        let path = exe_dir.join(name);
        println!("\n=== [{}/{}] {} ===", i + 1, total, name);
        match Command::new(&path).args(&args).status() {
            Ok(status) if status.success() => {}
            Ok(status) => {
                eprintln!("experiment {name} exited with {status}; continuing with the rest");
                failed.push(format!("{name} ({status})"));
            }
            Err(e) => {
                eprintln!("failed to launch {}: {e}; continuing with the rest", path.display());
                failed.push(format!("{name} (launch failed: {e})"));
            }
        }
    }

    if failed.is_empty() {
        println!("\nall {total} experiments complete; artifacts in experiments_out/");
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "\n{}/{total} experiments failed:\n  {}",
            failed.len(),
            failed.join("\n  ")
        );
        if failed.len() == total {
            ExitCode::from(2)
        } else {
            ExitCode::from(1)
        }
    }
}
