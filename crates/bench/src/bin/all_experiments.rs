//! Runs every table and figure of the paper in sequence by invoking the
//! sibling experiment binaries (they must have been built into the same
//! target directory, which `cargo run -p e2dtc-bench --bin all_experiments
//! --release` guarantees). All artifacts land in `experiments_out/`.
//!
//! Usage: `all_experiments [--scale paper] [--seed <s>]` — extra arguments
//! are forwarded verbatim to each experiment.

use std::process::Command;

const EXPERIMENTS: [&str; 8] =
    ["table2", "table3", "table4", "fig3", "fig4", "fig5", "fig6", "ablations"];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let exe_dir = std::env::current_exe()
        .expect("current exe path")
        .parent()
        .expect("exe has a parent dir")
        .to_path_buf();

    // fig7 also prints Table V, so it runs last and is part of the set.
    let all: Vec<&str> = EXPERIMENTS.iter().copied().chain(["fig7"]).collect();
    let total = all.len();
    for (i, name) in all.iter().enumerate() {
        let path = exe_dir.join(name);
        println!("\n=== [{}/{}] {} ===", i + 1, total, name);
        let status = Command::new(&path)
            .args(&args)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {}: {e}", path.display()));
        if !status.success() {
            eprintln!("experiment {name} exited with {status}");
            std::process::exit(status.code().unwrap_or(1));
        }
    }
    println!("\nall experiments complete; artifacts in experiments_out/");
}
