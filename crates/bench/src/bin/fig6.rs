//! **Figure 6** — robustness to the choice of `k` on the Hangzhou-like
//! dataset.
//!
//! (a) The elbow method: `E_k` (sum of squared distances to the nearest
//!     centroid in the learned feature space) for `k = 2..22`; the elbow
//!     should land at the ground-truth `k = 7`.
//! (b) NMI under mis-specified `k ∈ [4, 9]`: E²DTC should stay high while
//!     `DTW + KM` (the best classic under NMI) stays below it everywhere.
//!
//! Usage: `fig6 [--scale paper] [--n <trajectories>] [--seed <s>]`

use e2dtc::{E2dtc, LossMode};
use e2dtc_bench::datasets::DatasetKind;
use e2dtc_bench::report::{dump_json, dump_text, Table};
use e2dtc_bench::setup::RunArgs;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use traj_cluster::elbow::{detect_elbow, elbow_curve};
use traj_cluster::{kmedoids_alternating, nmi, KMedoidsConfig};
use traj_dist::{DistanceMatrix, Metric};

#[derive(Serialize)]
struct Fig6Out {
    elbow: Vec<(usize, f64)>,
    detected_k: Option<usize>,
    nmi_vs_k: Vec<(usize, f64, f64)>, // (k, e2dtc, dtw+km)
}

fn main() {
    let args = RunArgs::parse();
    let seed = args.seed;
    let n = args.n(80_000, 400);
    let data = args.dataset("fig6", DatasetKind::Hangzhou, n);
    let base = args.config(data.num_clusters);

    // (a) Elbow over the pre-trained feature space.
    eprintln!("[fig6] pre-training the embedding for the elbow analysis");
    let mut embed_model =
        E2dtc::new(&data.dataset, base.clone().with_loss_mode(LossMode::L0));
    let _ = embed_model.pretrain(&data.dataset, base.pretrain_epochs);
    let emb = embed_model.embed_dataset(&data.dataset);
    let curve = elbow_curve(emb.data(), data.len(), embed_model.repr_dim(), 2..=22, 4, seed);
    let detected = detect_elbow(&curve);
    let mut table_a = Table::new(&["k", "E_k"]);
    for p in &curve {
        table_a.row(vec![p.k.to_string(), format!("{:.1}", p.inertia)]);
    }
    println!("\nFigure 6(a) — elbow curve (detected elbow: {detected:?}, ground truth 7)\n");
    table_a.print();

    // (b) NMI vs mis-specified k.
    let matrix = DistanceMatrix::compute(&data.dataset.trajectories, &Metric::Dtw);
    let mut nmi_rows = Vec::new();
    let mut table_b = Table::new(&["k", "E2DTC NMI", "DTW + KM NMI"]);
    for k in 4..=9 {
        eprintln!("[fig6] k = {k}");
        let mut cfg = base.clone();
        cfg.k_clusters = k;
        let mut model = E2dtc::new(&data.dataset, cfg);
        let fit = model.fit(&data.dataset);
        let deep_nmi = nmi(&fit.assignments, &data.labels);

        // Best-of-3 restarts for the classic, like the harness elsewhere.
        let classic_nmi = (0..3)
            .map(|r| {
                let mut rng = StdRng::seed_from_u64(seed ^ (k as u64) << 4 ^ r);
                let res = kmedoids_alternating(
                    matrix.data(),
                    data.len(),
                    KMedoidsConfig::new(k),
                    &mut rng,
                );
                nmi(&res.assignment, &data.labels)
            })
            .sum::<f64>()
            / 3.0;
        table_b.row(vec![
            k.to_string(),
            format!("{deep_nmi:.3}"),
            format!("{classic_nmi:.3}"),
        ]);
        nmi_rows.push((k, deep_nmi, classic_nmi));
    }
    println!("\nFigure 6(b) — NMI vs k (E2DTC should dominate at every k)\n");
    table_b.print();

    let out = Fig6Out {
        elbow: curve.iter().map(|p| (p.k, p.inertia)).collect(),
        detected_k: detected,
        nmi_vs_k: nmi_rows,
    };
    dump_json("fig6", &out).expect("write json");
    dump_text("fig6", &format!("{}\n{}", table_a.render(), table_b.render()))
        .expect("write text");
    println!("\nartifacts: experiments_out/fig6.{{json,txt}}");
}
