//! **Table II** — statistics of the generated ground-truth datasets:
//! trajectory counts, GPS point counts, and cluster counts (12 / 15 / 7).
//!
//! Usage: `table2 [--scale paper] [--n <trajectories>] [--seed <s>]`

use e2dtc_bench::datasets::{labelled_dataset, DatasetKind};
use e2dtc_bench::report::{dump_json, dump_text, Table};
use e2dtc_bench::setup::RunArgs;
use traj_data::stats::DatasetStats;

fn main() {
    let args = RunArgs::parse();
    let n = args.n(86_000, 400);
    let seed = args.seed;

    let mut table =
        Table::new(&["Attributes", "GeoLife", "Porto", "Hangzhou"]);
    let stats: Vec<DatasetStats> = DatasetKind::ALL
        .iter()
        .map(|&kind| DatasetStats::of(&labelled_dataset(kind, n, seed)))
        .collect();

    table.row(
        std::iter::once("Trajectories".to_string())
            .chain(stats.iter().map(|s| s.trajectories.to_string()))
            .collect(),
    );
    table.row(
        std::iter::once("Trajectory Points".to_string())
            .chain(stats.iter().map(|s| s.points.to_string()))
            .collect(),
    );
    table.row(
        std::iter::once("Number of clusters".to_string())
            .chain(stats.iter().map(|s| s.num_clusters.to_string()))
            .collect(),
    );
    table.row(
        std::iter::once("Mean points / trajectory".to_string())
            .chain(stats.iter().map(|s| format!("{:.1}", s.mean_length)))
            .collect(),
    );

    println!("\nTable II — statistics of generated ground-truth datasets (n = {n})\n");
    table.print();
    println!(
        "\npaper reference ratios (points / trajectory): GeoLife 18.5, Porto 38.6, Hangzhou 67.1"
    );
    dump_json("table2", &stats).expect("write json");
    dump_text("table2", &table.render()).expect("write text");
    println!("artifacts: experiments_out/table2.{{json,txt}}");
}
