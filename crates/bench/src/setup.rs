//! Shared experiment preamble.
//!
//! Every table- and figure-binary used to open with the same boilerplate:
//! parse `--scale/--n/--seed`, pick a scale-dependent cardinality, build
//! the matching `paper`/`fast` preset, generate + label a dataset, and —
//! for the inference-timing experiments — train a deep model offline.
//! [`RunArgs`] and [`train_frozen`] centralize that so the bins contain
//! only what is specific to their experiment.

use crate::datasets::{labelled_dataset, DatasetKind};
use crate::report::parse_args;
use e2dtc::{E2dtc, E2dtcConfig, FrozenEncoder};
use traj_data::LabeledDataset;

/// The common CLI arguments of an experiment binary
/// (`[--scale paper] [--n <trajectories>] [--seed <s>]`).
#[derive(Clone, Copy, Debug)]
pub struct RunArgs {
    /// `--scale paper` was requested (full paper-scale cardinalities).
    pub paper: bool,
    /// Explicit `--n` cardinality override, if any.
    pub n_override: Option<usize>,
    /// `--seed` (default 7).
    pub seed: u64,
}

impl RunArgs {
    /// Parses argv (same grammar as [`crate::report::parse_args`]).
    pub fn parse() -> Self {
        let (paper, n_override, seed) = parse_args();
        Self { paper, n_override, seed }
    }

    /// The dataset cardinality: the `--n` override when given, else the
    /// scale-dependent default.
    pub fn n(&self, paper_default: usize, small_default: usize) -> usize {
        self.n_override
            .unwrap_or(if self.paper { paper_default } else { small_default })
    }

    /// The scale-matched preset (`paper` vs `fast`), seeded with `--seed`.
    pub fn config(&self, k_clusters: usize) -> E2dtcConfig {
        if self.paper {
            E2dtcConfig::paper(k_clusters)
        } else {
            E2dtcConfig::fast(k_clusters)
        }
        .with_seed(self.seed)
    }

    /// Generates and labels a dataset of `n` trajectories (Algorithm 2
    /// ground truth), logging its shape under the experiment's `tag`.
    pub fn dataset(&self, tag: &str, kind: DatasetKind, n: usize) -> LabeledDataset {
        let data = labelled_dataset(kind, n, self.seed);
        eprintln!(
            "[{tag}] {}: {} labelled trajectories, k = {}",
            kind.name(),
            data.len(),
            data.num_clusters
        );
        data
    }
}

/// Trains a model offline and freezes it for inference timing — the
/// serve-side setup of Fig. 3 ("once the deep learning models have been
/// trained offline, they can be efficiently utilized for trajectory
/// clustering tasks").
///
/// `L0` runs (the t2vec baseline) leave centroid fitting to the caller,
/// so when the fitted model has none, k-means centroids are fitted on its
/// own training embedding — making its inference path (embed + nearest
/// centroid) measurable the same way as full E²DTC.
pub fn train_frozen(data: &LabeledDataset, cfg: E2dtcConfig) -> FrozenEncoder {
    let mut model = E2dtc::new(&data.dataset, cfg);
    let _ = model.fit(&data.dataset);
    let frozen = model.freeze();
    if frozen.centroids().is_some() {
        return frozen;
    }
    let emb = model.embed_dataset(&data.dataset);
    model.init_centroids(&emb);
    model.freeze()
}
