//! Plain-text table formatting and JSON artifact dumping.

use serde::Serialize;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directory all experiment binaries write their JSON artifacts into.
pub fn out_dir() -> PathBuf {
    let dir = PathBuf::from("experiments_out");
    let _ = fs::create_dir_all(&dir);
    dir
}

/// Serializes a result object as pretty JSON under `experiments_out/`.
pub fn dump_json<T: Serialize>(name: &str, value: &T) -> io::Result<PathBuf> {
    let path = out_dir().join(format!("{name}.json"));
    fs::write(&path, serde_json::to_string_pretty(value).map_err(io::Error::other)?)?;
    Ok(path)
}

/// Writes a plain-text report next to the JSON artifact.
pub fn dump_text(name: &str, text: &str) -> io::Result<PathBuf> {
    let path = out_dir().join(format!("{name}.txt"));
    fs::write(&path, text)?;
    Ok(path)
}

/// Simple fixed-width table printer.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Self { header: header.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Appends a row (must match the header width).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (cell, w) in cells.iter().zip(widths) {
                line.push_str(&format!("{cell:<w$}  "));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a score to the paper's 3-decimal style.
pub fn fmt3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats seconds adaptively.
pub fn fmt_secs(s: f64) -> String {
    if s < 1.0 {
        format!("{:.0} ms", s * 1e3)
    } else if s < 100.0 {
        format!("{s:.2} s")
    } else {
        format!("{s:.0} s")
    }
}

/// Parses `--scale paper|small` and `--n <count>` style overrides from
/// argv; returns (scale_is_paper, n_override, seed).
pub fn parse_args() -> (bool, Option<usize>, u64) {
    let args: Vec<String> = std::env::args().collect();
    let mut paper = false;
    let mut n = None;
    let mut seed = 7;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" if i + 1 < args.len() => {
                paper = args[i + 1] == "paper";
                i += 1;
            }
            "--n" if i + 1 < args.len() => {
                n = args[i + 1].parse().ok();
                i += 1;
            }
            "--seed" if i + 1 < args.len() => {
                seed = args[i + 1].parse().unwrap_or(7);
                i += 1;
            }
            "--dtw-band" if i + 1 < args.len() => {
                // Consumed by binaries that support it via `arg_value`;
                // accepted here so the shared parser stays quiet.
                i += 1;
            }
            other => eprintln!("ignoring unknown argument: {other}"),
        }
        i += 1;
    }
    (paper, n, seed)
}

/// Returns the value following `--<name>` in argv, parsed, if present.
pub fn arg_value<T: std::str::FromStr>(name: &str) -> Option<T> {
    let flag = format!("--{name}");
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| *a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

/// Path helper for reading artifacts back.
pub fn artifact(name: &str) -> PathBuf {
    Path::new("experiments_out").join(name)
}
