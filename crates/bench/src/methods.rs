//! Method runners with end-to-end timing.
//!
//! "Clustering time" follows the paper's Fig. 3 definition: for the
//! classic baselines it is distance-matrix computation + K-Medoids; for
//! the deep models it is trajectory embedding + cluster assignment with an
//! already-trained model (the paper's point being that training amortizes
//! across requests).

use e2dtc::{E2dtc, E2dtcConfig, FitResult, LossMode};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;
use traj_cluster::{kmedoids_alternating, nmi, rand_index, uacc, KMedoidsConfig};
use traj_data::LabeledDataset;
use traj_dist::{DistanceMatrix, Metric};
use traj_query::QueryEngine;

/// UACC / NMI / RI triple (the paper's Table III columns).
#[derive(Clone, Copy, Debug, Default)]
pub struct Scores {
    /// Unsupervised clustering accuracy (Eq. 15).
    pub uacc: f64,
    /// Normalized mutual information (Eq. 16).
    pub nmi: f64,
    /// Rand index (Eq. 17).
    pub ri: f64,
}

impl Scores {
    /// Evaluates a prediction against ground truth.
    pub fn of(pred: &[usize], truth: &[usize]) -> Self {
        Self { uacc: uacc(pred, truth), nmi: nmi(pred, truth), ri: rand_index(pred, truth) }
    }
}

/// One method's outcome on one dataset.
#[derive(Clone, Debug)]
pub struct MethodResult {
    /// Method name as printed in the paper's tables.
    pub name: String,
    /// Cluster assignment per trajectory.
    pub assignments: Vec<usize>,
    /// Quality scores against the ground truth.
    pub scores: Scores,
    /// End-to-end clustering time, seconds.
    pub seconds: f64,
}

impl MethodResult {
    /// One structured run-log line per finished method, so a bench log
    /// carries the same scores the plain-text report prints.
    pub fn log(&self, recorder: &traj_obs::Recorder) {
        recorder.info(format!(
            "method {}: UACC {:.4} NMI {:.4} RI {:.4} ({:.3}s)",
            self.name, self.scores.uacc, self.scores.nmi, self.scores.ri, self.seconds
        ));
    }
}

/// Runs `<metric> + KM`: pairwise distance matrix, then scalable
/// (alternating) K-Medoids — the variant runnable at the paper's 80k
/// scale; see `traj_cluster::kmedoids_alternating`. The mean of
/// `repeats` runs is reported (the paper repeats each method 20× and
/// averages).
pub fn run_kmedoids(data: &LabeledDataset, metric: Metric, repeats: usize) -> MethodResult {
    let recorder = traj_obs::global();
    let _span = recorder.span(&format!("bench.kmedoids.{}", metric.name()));
    let start = Instant::now();
    let matrix = DistanceMatrix::compute(&data.dataset.trajectories, &metric);
    let matrix_secs = start.elapsed().as_secs_f64();
    let mut acc = Scores::default();
    let mut last_assignment = Vec::new();
    let cluster_start = Instant::now();
    for r in 0..repeats.max(1) {
        let mut rng = StdRng::seed_from_u64(0x6b6d ^ r as u64);
        let res = kmedoids_alternating(
            matrix.data(),
            data.len(),
            KMedoidsConfig::new(data.num_clusters),
            &mut rng,
        );
        let s = Scores::of(&res.assignment, &data.labels);
        acc.uacc += s.uacc;
        acc.nmi += s.nmi;
        acc.ri += s.ri;
        last_assignment = res.assignment;
    }
    let reps = repeats.max(1) as f64;
    // One end-to-end run = matrix computation + one clustering pass.
    let seconds = matrix_secs + cluster_start.elapsed().as_secs_f64() / reps;
    let result = MethodResult {
        name: format!("{} + KM", metric.name()),
        scores: Scores { uacc: acc.uacc / reps, nmi: acc.nmi / reps, ri: acc.ri / reps },
        assignments: last_assignment,
        seconds,
    };
    result.log(&recorder);
    result
}

/// Grid-searches the EDR/LCSS match threshold over `candidates_m` and
/// keeps the best-UACC run, mirroring the paper's "grid search method to
/// tune this distance threshold and report the best performance".
pub fn run_kmedoids_tuned(
    data: &LabeledDataset,
    make_metric: impl Fn(f64) -> Metric,
    candidates_m: &[f64],
    repeats: usize,
) -> MethodResult {
    candidates_m
        .iter()
        .map(|&eps| run_kmedoids(data, make_metric(eps), repeats))
        .max_by(|a, b| a.scores.uacc.total_cmp(&b.scores.uacc))
        .expect("at least one threshold candidate")
}

/// Runs the `t2vec + k-means` baseline, averaging `repeats` training runs
/// with different seeds (the paper repeats each method 20× and averages).
pub fn run_t2vec(data: &LabeledDataset, cfg: E2dtcConfig, repeats: usize) -> MethodResult {
    run_deep("t2vec + k-means", data, cfg.with_loss_mode(LossMode::L0), repeats)
}

/// Runs full E²DTC, averaging `repeats` seeded runs.
pub fn run_e2dtc(data: &LabeledDataset, cfg: E2dtcConfig, repeats: usize) -> MethodResult {
    run_deep("E2DTC", data, cfg, repeats)
}

/// Runs E²DTC under an explicit display name (used by the Table IV
/// ablations, where the same engine runs as L0/L1/L2).
pub fn run_deep(
    name: &str,
    data: &LabeledDataset,
    cfg: E2dtcConfig,
    repeats: usize,
) -> MethodResult {
    let recorder = traj_obs::global();
    let _span = recorder.span(&format!("bench.deep.{name}"));
    let mut acc = Scores::default();
    let mut seconds = 0.0;
    let mut last: Option<FitResult> = None;
    for r in 0..repeats.max(1) {
        let run_cfg = cfg.clone().with_seed(cfg.seed.wrapping_add(1000 * r as u64));
        let mut model = E2dtc::new(&data.dataset, run_cfg);
        let start = Instant::now();
        let fit = model.fit(&data.dataset);
        seconds += start.elapsed().as_secs_f64();
        let s = Scores::of(&fit.assignments, &data.labels);
        acc.uacc += s.uacc;
        acc.nmi += s.nmi;
        acc.ri += s.ri;
        last = Some(fit);
    }
    let reps = repeats.max(1) as f64;
    let fit = last.expect("at least one run");
    let result = MethodResult {
        name: name.to_string(),
        scores: Scores { uacc: acc.uacc / reps, nmi: acc.nmi / reps, ri: acc.ri / reps },
        assignments: fit.assignments,
        seconds: seconds / reps,
    };
    result.log(&recorder);
    result
}

/// Inference-only timing: embed + assign with a trained model (the
/// "once trained, clustering requests are cheap" path of Fig. 3).
pub fn time_inference(model: &E2dtc, data: &LabeledDataset) -> (Vec<usize>, f64) {
    let start = Instant::now();
    let assignments = model.assign(&data.dataset);
    (assignments, start.elapsed().as_secs_f64())
}

/// Same timing through the tape-free serve path: a [`QueryEngine`] over a
/// frozen encoder (what a deployed model would actually run).
pub fn time_inference_frozen(
    engine: &QueryEngine,
    data: &LabeledDataset,
) -> (Vec<usize>, f64) {
    let start = Instant::now();
    let assignments = engine.hard_assign(&data.dataset.trajectories);
    (assignments, start.elapsed().as_secs_f64())
}

