//! Experiment datasets: synthetic cities + Algorithm-2 ground truth.

use traj_data::ground_truth::generate_ground_truth;
use traj_data::{GroundTruthConfig, LabeledDataset, SynthSpec};

/// The three evaluation datasets of the paper (Table II), emulated by the
/// synthetic generators (see DESIGN.md for the substitution argument).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DatasetKind {
    /// GeoLife-like: Beijing box, 12 clusters, 5 s sampling, short trips.
    GeoLife,
    /// Porto-like: 15 clusters, 15 s taxi sampling, medium trips.
    Porto,
    /// Hangzhou-like: 7 clusters, 5 s taxi sampling, long trips.
    Hangzhou,
}

impl DatasetKind {
    /// All three, in the paper's column order.
    pub const ALL: [DatasetKind; 3] =
        [DatasetKind::GeoLife, DatasetKind::Porto, DatasetKind::Hangzhou];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            DatasetKind::GeoLife => "GeoLife",
            DatasetKind::Porto => "Porto",
            DatasetKind::Hangzhou => "Hangzhou",
        }
    }

    /// The generator spec at a given cardinality.
    pub fn spec(self, n: usize, seed: u64) -> SynthSpec {
        match self {
            DatasetKind::GeoLife => SynthSpec::geolife_like(n, seed),
            DatasetKind::Porto => SynthSpec::porto_like(n, seed),
            DatasetKind::Hangzhou => SynthSpec::hangzhou_like(n, seed),
        }
    }

    /// Ground-truth cluster count (Table II: 12 / 15 / 7).
    pub fn k(self) -> usize {
        match self {
            DatasetKind::GeoLife => 12,
            DatasetKind::Porto => 15,
            DatasetKind::Hangzhou => 7,
        }
    }
}

/// Generates a synthetic city of `n` trajectories and labels it with
/// Algorithm 2 under the paper's σ = 0.6, λ = 0.7. The returned dataset
/// contains only the labelled (non-outlier) trajectories, exactly like the
/// paper's released ground-truth datasets.
pub fn labelled_dataset(kind: DatasetKind, n: usize, seed: u64) -> LabeledDataset {
    let city = kind.spec(n, seed).generate();
    let (labelled, _) =
        generate_ground_truth(&city.dataset, &city.pois, GroundTruthConfig::default());
    labelled
}
