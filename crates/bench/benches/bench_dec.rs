//! Criterion benches for the self-training math: Student-t soft
//! assignment (Eq. 9), target distribution (Eq. 10), and the fused DEC KL
//! loss forward+backward.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use traj_nn::init::Init;
use traj_nn::{student_t_assignment, target_distribution, ParamStore, Tape};

fn fixtures(n: usize, k: usize, d: usize) -> (traj_nn::Tensor, traj_nn::Tensor) {
    let mut rng = StdRng::seed_from_u64(0);
    let v = Init::Normal(1.0).tensor(n, d, &mut rng);
    let c = Init::Normal(1.0).tensor(k, d, &mut rng);
    (v, c)
}

fn bench_soft_assignment(c: &mut Criterion) {
    let (v, cent) = fixtures(1000, 7, 48);
    c.bench_function("student_t_q_n1000_k7_d48", |b| {
        b.iter(|| student_t_assignment(black_box(&v), black_box(&cent)))
    });
}

fn bench_target(c: &mut Criterion) {
    let (v, cent) = fixtures(1000, 7, 48);
    let q = student_t_assignment(&v, &cent);
    c.bench_function("target_p_n1000_k7", |b| {
        b.iter(|| target_distribution(black_box(&q)))
    });
}

fn bench_dec_kl_backward(c: &mut Criterion) {
    let (v, cent) = fixtures(256, 7, 48);
    let q = student_t_assignment(&v, &cent);
    let p = target_distribution(&q);
    c.bench_function("dec_kl_fwd_bwd_n256_k7_d48", |b| {
        b.iter(|| {
            let mut store = ParamStore::new();
            let vid = store.add("v", v.clone());
            let cid = store.add("c", cent.clone());
            let mut tape = Tape::new();
            let vv = tape.param(&store, vid);
            let cv = tape.param(&store, cid);
            let loss = tape.dec_kl(vv, cv, p.clone());
            tape.backward(loss, &mut store);
            black_box(store.grad_global_norm())
        })
    });
}

criterion_group!(benches, bench_soft_assignment, bench_target, bench_dec_kl_backward);
criterion_main!(benches);
