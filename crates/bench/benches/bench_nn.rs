//! Criterion benches for the neural substrate: GRU forward/backward and
//! the decoder's dominant vocabulary projection, plus the raw matmul
//! kernels (serial vs tiled-parallel) and a per-gate "unfused" GRU
//! reference reproducing the pre-fusion six-matmul recurrence.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use traj_nn::init::Init;
use traj_nn::layers::{Gru, Linear};
use traj_nn::tape::Var;
use traj_nn::{ParamId, ParamStore, Tape, Tensor};

fn bench_gru_forward(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0);
    let mut store = ParamStore::new();
    let gru = Gru::new(&mut store, "gru", 32, 48, 2, &mut rng);
    let x = Tensor::full(32, 32, 0.3);
    c.bench_function("gru_step_b32_h48_l2", |b| {
        b.iter(|| {
            let mut tape = Tape::new();
            let xv = tape.constant(x.clone());
            let mut state = gru.zero_state(&mut tape, 32);
            black_box(gru.step(&mut tape, &store, xv, &mut state, false, &mut rng))
        })
    });
}

fn bench_gru_bptt(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let mut store = ParamStore::new();
    let gru = Gru::new(&mut store, "gru", 32, 48, 2, &mut rng);
    let x = Tensor::full(32, 32, 0.3);
    let mut group = c.benchmark_group("gru_bptt");
    group.sample_size(20);
    group.bench_function("seq24_b32_h48_l2", |b| {
        b.iter(|| {
            let mut tape = Tape::new();
            let mut state = gru.zero_state(&mut tape, 32);
            let mut last = None;
            for _ in 0..24 {
                let xv = tape.constant(x.clone());
                last = Some(gru.step(&mut tape, &store, xv, &mut state, false, &mut rng));
            }
            let h = last.expect("steps ran");
            let loss = tape.mean_all(h);
            tape.backward(loss, &mut store);
            store.zero_grads();
        })
    });
    group.finish();
}

fn bench_vocab_projection(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let mut store = ParamStore::new();
    let proj = Linear::new(&mut store, "proj", 48, 800, true, &mut rng);
    let h = Tensor::full(32, 48, 0.2);
    c.bench_function("decoder_projection_b32_h48_v800", |b| {
        b.iter(|| {
            let mut tape = Tape::new();
            let hv = tape.constant(h.clone());
            black_box(proj.forward(&mut tape, &store, hv))
        })
    });
}

fn bench_matmul_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul_kernels");
    group.sample_size(30);
    for &(m, k, n) in &[(96usize, 80usize, 96usize), (256, 256, 256)] {
        let a = Tensor::from_vec(
            m,
            k,
            (0..m * k).map(|i| ((i * 37 + 11) % 97) as f32 / 97.0 - 0.5).collect(),
        );
        let b = Tensor::from_vec(
            k,
            n,
            (0..k * n).map(|i| ((i * 53 + 7) % 89) as f32 / 89.0 - 0.5).collect(),
        );
        group.bench_function(format!("nn_{m}x{k}x{n}_serial"), |bch| {
            bch.iter(|| black_box(a.matmul_with(&b, false)))
        });
        group.bench_function(format!("nn_{m}x{k}x{n}_parallel"), |bch| {
            bch.iter(|| black_box(a.matmul_with(&b, true)))
        });
        let bt = b.transpose();
        group.bench_function(format!("nt_{m}x{k}x{n}_parallel"), |bch| {
            bch.iter(|| black_box(a.matmul_nt_with(&bt, true)))
        });
        let at = a.transpose();
        group.bench_function(format!("tn_{m}x{k}x{n}_parallel"), |bch| {
            bch.iter(|| black_box(at.matmul_tn_with(&b, true)))
        });
    }
    group.finish();
}

/// One GRU layer in the pre-fusion layout: six per-gate weight matrices
/// and four bias rows, each gate product a separate matmul. Kept as a
/// live baseline so `cargo bench` always shows fused vs seed side by side.
struct UnfusedCell {
    w_xr: ParamId,
    w_hr: ParamId,
    w_xz: ParamId,
    w_hz: ParamId,
    w_xn: ParamId,
    w_hn: ParamId,
    b_r: ParamId,
    b_z: ParamId,
    b_xn: ParamId,
    b_hn: ParamId,
}

impl UnfusedCell {
    fn new(store: &mut ParamStore, name: &str, input: usize, hidden: usize, rng: &mut StdRng) -> Self {
        let mut w = |store: &mut ParamStore, g: &str, rows: usize| {
            store.add_init(format!("{name}.{g}"), rows, hidden, Init::XavierUniform, rng)
        };
        let (w_xr, w_hr) = (w(store, "w_xr", input), w(store, "w_hr", hidden));
        let (w_xz, w_hz) = (w(store, "w_xz", input), w(store, "w_hz", hidden));
        let (w_xn, w_hn) = (w(store, "w_xn", input), w(store, "w_hn", hidden));
        let b = |store: &mut ParamStore, g: &str| {
            store.add(format!("{name}.{g}"), Tensor::zeros(1, hidden))
        };
        Self {
            w_xr,
            w_hr,
            w_xz,
            w_hz,
            w_xn,
            w_hn,
            b_r: b(store, "b_r"),
            b_z: b(store, "b_z"),
            b_xn: b(store, "b_xn"),
            b_hn: b(store, "b_hn"),
        }
    }

    fn step(&self, tape: &mut Tape, store: &ParamStore, x: Var, h: Var) -> Var {
        let gate = |tape: &mut Tape, wx: ParamId, wh: ParamId, bias: ParamId| {
            let wxv = tape.param(store, wx);
            let whv = tape.param(store, wh);
            let bv = tape.param(store, bias);
            let xp = tape.matmul(x, wxv);
            let hp = tape.matmul(h, whv);
            let s = tape.add(xp, hp);
            tape.add_row_broadcast(s, bv)
        };
        let r_pre = gate(tape, self.w_xr, self.w_hr, self.b_r);
        let r = tape.sigmoid(r_pre);
        let z_pre = gate(tape, self.w_xz, self.w_hz, self.b_z);
        let z = tape.sigmoid(z_pre);
        let w_xn = tape.param(store, self.w_xn);
        let w_hn = tape.param(store, self.w_hn);
        let b_xn = tape.param(store, self.b_xn);
        let b_hn = tape.param(store, self.b_hn);
        let xn = tape.matmul(x, w_xn);
        let xn = tape.add_row_broadcast(xn, b_xn);
        let hn = tape.matmul(h, w_hn);
        let hn = tape.add_row_broadcast(hn, b_hn);
        let rh = tape.hadamard(r, hn);
        let n_pre = tape.add(xn, rh);
        let n = tape.tanh(n_pre);
        let omz = tape.one_minus(z);
        let a = tape.hadamard(omz, n);
        let b = tape.hadamard(z, h);
        tape.add(a, b)
    }
}

fn bench_gru_bptt_unfused_reference(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let mut store = ParamStore::new();
    let cells: Vec<UnfusedCell> = (0..2)
        .map(|l| {
            let input = if l == 0 { 32 } else { 48 };
            UnfusedCell::new(&mut store, &format!("gru.layer{l}"), input, 48, &mut rng)
        })
        .collect();
    let x = Tensor::full(32, 32, 0.3);
    let mut group = c.benchmark_group("gru_bptt");
    group.sample_size(20);
    group.bench_function("seq24_b32_h48_l2_unfused_ref", |b| {
        b.iter(|| {
            let mut tape = Tape::new();
            let mut state: Vec<Var> =
                (0..2).map(|_| tape.constant(Tensor::zeros(32, 48))).collect();
            let mut last = None;
            for _ in 0..24 {
                let mut input = tape.constant(x.clone());
                for (l, cell) in cells.iter().enumerate() {
                    input = cell.step(&mut tape, &store, input, state[l]);
                    state[l] = input;
                }
                last = Some(input);
            }
            let h = last.expect("steps ran");
            let loss = tape.mean_all(h);
            tape.backward(loss, &mut store);
            store.zero_grads();
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_gru_forward,
    bench_gru_bptt,
    bench_gru_bptt_unfused_reference,
    bench_vocab_projection,
    bench_matmul_kernels
);
criterion_main!(benches);
