//! Criterion benches for the neural substrate: GRU forward/backward and
//! the decoder's dominant vocabulary projection.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use traj_nn::layers::{Gru, Linear};
use traj_nn::{ParamStore, Tape, Tensor};

fn bench_gru_forward(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0);
    let mut store = ParamStore::new();
    let gru = Gru::new(&mut store, "gru", 32, 48, 2, &mut rng);
    let x = Tensor::full(32, 32, 0.3);
    c.bench_function("gru_step_b32_h48_l2", |b| {
        b.iter(|| {
            let mut tape = Tape::new();
            let xv = tape.constant(x.clone());
            let mut state = gru.zero_state(&mut tape, 32);
            black_box(gru.step(&mut tape, &store, xv, &mut state, false, &mut rng))
        })
    });
}

fn bench_gru_bptt(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let mut store = ParamStore::new();
    let gru = Gru::new(&mut store, "gru", 32, 48, 2, &mut rng);
    let x = Tensor::full(32, 32, 0.3);
    let mut group = c.benchmark_group("gru_bptt");
    group.sample_size(20);
    group.bench_function("seq24_b32_h48_l2", |b| {
        b.iter(|| {
            let mut tape = Tape::new();
            let mut state = gru.zero_state(&mut tape, 32);
            let mut last = None;
            for _ in 0..24 {
                let xv = tape.constant(x.clone());
                last = Some(gru.step(&mut tape, &store, xv, &mut state, false, &mut rng));
            }
            let h = last.expect("steps ran");
            let loss = tape.mean_all(h);
            tape.backward(loss, &mut store);
            store.zero_grads();
        })
    });
    group.finish();
}

fn bench_vocab_projection(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let mut store = ParamStore::new();
    let proj = Linear::new(&mut store, "proj", 48, 800, true, &mut rng);
    let h = Tensor::full(32, 48, 0.2);
    c.bench_function("decoder_projection_b32_h48_v800", |b| {
        b.iter(|| {
            let mut tape = Tape::new();
            let hv = tape.constant(h.clone());
            black_box(proj.forward(&mut tape, &store, hv))
        })
    });
}

criterion_group!(benches, bench_gru_forward, bench_gru_bptt, bench_vocab_projection);
criterion_main!(benches);
