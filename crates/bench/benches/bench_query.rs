//! Criterion benches for the serve path: tape-based embedding (the old
//! inference route, which builds an autograd tape it never uses) vs the
//! tape-free [`FrozenEncoder`] path, and the [`QueryEngine`] micro-batch
//! fan-out in serial and parallel modes. The frozen path should beat the
//! tape path well beyond noise on a single thread — it allocates no tape
//! nodes and reuses scratch buffers across batches.

use criterion::{criterion_group, criterion_main, Criterion};
use e2dtc::{E2dtc, E2dtcConfig};
use std::hint::black_box;
use std::sync::Arc;
use traj_data::{Dataset, SynthSpec};
use traj_query::{QueryConfig, QueryEngine};

/// One trained-enough model plus a fresh dataset to embed: the
/// steady-state serving scenario (weights fixed, data unseen). The
/// `fast` preset (embed 32 / hidden 48 / seq ≤ 48) is the smallest
/// realistic serve shape; at `tiny` dims fixed per-call overhead hides
/// the tape-vs-frozen difference the bench exists to measure.
fn setup(n: usize) -> (E2dtc, Dataset) {
    let city = SynthSpec::hangzhou_like(200, 7).generate();
    let model = E2dtc::new(&city.dataset, E2dtcConfig::fast(7));
    let fresh = SynthSpec::hangzhou_like(n, 99).generate();
    (model, fresh.dataset)
}

fn bench_embed_paths(c: &mut Criterion) {
    let (mut model, data) = setup(200);
    let frozen = Arc::new(model.freeze());
    let mut group = c.benchmark_group("embed_200");
    group.sample_size(10);
    group.bench_function("tape", |b| {
        b.iter(|| black_box(model.embed_dataset_training(&data)))
    });
    group.bench_function("frozen", |b| {
        b.iter(|| black_box(frozen.embed_dataset(&data)))
    });
    let serial = QueryEngine::new(
        frozen.clone(),
        QueryConfig { batch_size: 32, parallel: false },
    );
    group.bench_function("engine_serial", |b| {
        b.iter(|| black_box(serial.embed_batch(&data.trajectories)))
    });
    let parallel = QueryEngine::new(
        frozen.clone(),
        QueryConfig { batch_size: 32, parallel: true },
    );
    group.bench_function("engine_parallel", |b| {
        b.iter(|| black_box(parallel.embed_batch(&data.trajectories)))
    });
    group.finish();
}

fn bench_assign(c: &mut Criterion) {
    let (mut model, data) = setup(200);
    let emb = model.embed_dataset(&data);
    model.init_centroids(&emb);
    let engine =
        QueryEngine::new(Arc::new(model.freeze()), QueryConfig::default());
    let mut group = c.benchmark_group("assign_200");
    group.sample_size(10);
    group.bench_function("hard_assign", |b| {
        b.iter(|| black_box(engine.hard_assign(&data.trajectories)))
    });
    group.bench_function("centroid_top3", |b| {
        b.iter(|| black_box(engine.nearest_centroids(&data.trajectories, 3)))
    });
    group.finish();
}

criterion_group!(benches, bench_embed_paths, bench_assign);
criterion_main!(benches);
