//! Criterion micro-benchmarks for the classical distance kernels — the
//! per-pair costs that make Fig. 3's O(n²) baselines explode.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use traj_data::{SynthSpec, Trajectory};
use traj_dist::{DistanceMatrix, Metric};

fn sample_trajectories(n: usize, seed: u64) -> Vec<Trajectory> {
    let mut spec = SynthSpec::hangzhou_like(n, seed);
    spec.outlier_fraction = 0.0;
    spec.generate().dataset.trajectories
}

fn bench_pair_kernels(c: &mut Criterion) {
    let ts = sample_trajectories(8, 1);
    let (a, b) = (&ts[0], &ts[1]);
    let mut group = c.benchmark_group("pair_kernels");
    group.bench_function("dtw", |bch| bch.iter(|| traj_dist::dtw::dtw(black_box(a), black_box(b))));
    group.bench_function("edr", |bch| {
        bch.iter(|| traj_dist::edr::edr(black_box(a), black_box(b), 200.0))
    });
    group.bench_function("lcss", |bch| {
        bch.iter(|| traj_dist::lcss::lcss_distance(black_box(a), black_box(b), 200.0))
    });
    group.bench_function("hausdorff", |bch| {
        bch.iter(|| traj_dist::hausdorff::hausdorff(black_box(a), black_box(b)))
    });
    group.finish();
}

fn bench_matrix_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("distance_matrix");
    group.sample_size(10);
    for n in [50usize, 100, 200] {
        let ts = sample_trajectories(n, 2);
        group.bench_with_input(BenchmarkId::new("dtw_matrix", n), &ts, |bch, ts| {
            bch.iter(|| DistanceMatrix::compute(black_box(ts), &Metric::Dtw))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pair_kernels, bench_matrix_scaling);
criterion_main!(benches);
