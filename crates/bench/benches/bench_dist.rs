//! Criterion micro-benchmarks for the classical distance kernels — the
//! per-pair costs that make Fig. 3's O(n²) baselines explode.
//!
//! Three layers: `pair_kernels` compares the lat/lon reference kernels
//! against the pre-projected trig-free ones (and the Sakoe-Chiba banded
//! DTW), `distance_matrix` measures the full blocked O(n²) computation,
//! and `knn` measures the lower-bound pruning cascade against brute
//! force on the same database.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use traj_data::{SynthSpec, Trajectory};
use traj_dist::{knn, DistanceMatrix, KnnIndex, Metric, ProjectedTraj};

fn sample_trajectories(n: usize, seed: u64) -> Vec<Trajectory> {
    let mut spec = SynthSpec::hangzhou_like(n, seed);
    spec.outlier_fraction = 0.0;
    spec.generate().dataset.trajectories
}

fn bench_pair_kernels(c: &mut Criterion) {
    let ts = sample_trajectories(8, 1);
    let (a, b) = (&ts[0], &ts[1]);
    let (_, projected) = ProjectedTraj::project_all(&ts);
    let (pa, pb) = (&projected[0], &projected[1]);

    let mut group = c.benchmark_group("pair_kernels");
    group.bench_function("dtw", |bch| bch.iter(|| traj_dist::dtw::dtw(black_box(a), black_box(b))));
    group.bench_function("edr", |bch| {
        bch.iter(|| traj_dist::edr::edr(black_box(a), black_box(b), 200.0))
    });
    group.bench_function("lcss", |bch| {
        bch.iter(|| traj_dist::lcss::lcss_distance(black_box(a), black_box(b), 200.0))
    });
    group.bench_function("hausdorff", |bch| {
        bch.iter(|| traj_dist::hausdorff::hausdorff(black_box(a), black_box(b)))
    });
    group.bench_function("erp", |bch| {
        bch.iter(|| traj_dist::erp::erp_origin(black_box(a), black_box(b)))
    });
    group.bench_function("frechet", |bch| {
        bch.iter(|| traj_dist::frechet::frechet(black_box(a), black_box(b)))
    });

    // Projected counterparts: identical DP recurrences on pre-projected
    // meter buffers — the speedup here is pure trig elimination.
    group.bench_function("dtw_projected", |bch| {
        bch.iter(|| traj_dist::dtw::dtw_projected(black_box(pa), black_box(pb)))
    });
    group.bench_function("dtw_projected_banded8", |bch| {
        bch.iter(|| traj_dist::dtw::dtw_projected_banded(black_box(pa), black_box(pb), 8))
    });
    group.bench_function("edr_projected", |bch| {
        bch.iter(|| traj_dist::edr::edr_projected(black_box(pa), black_box(pb), 200.0))
    });
    group.bench_function("lcss_projected", |bch| {
        bch.iter(|| traj_dist::lcss::lcss_projected_distance(black_box(pa), black_box(pb), 200.0))
    });
    group.bench_function("hausdorff_projected", |bch| {
        bch.iter(|| traj_dist::hausdorff::hausdorff_projected(black_box(pa), black_box(pb)))
    });
    group.bench_function("erp_projected", |bch| {
        bch.iter(|| traj_dist::erp::erp_projected(black_box(pa), black_box(pb)))
    });
    group.bench_function("frechet_projected", |bch| {
        bch.iter(|| traj_dist::frechet::frechet_projected(black_box(pa), black_box(pb)))
    });
    group.finish();
}

fn bench_matrix_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("distance_matrix");
    group.sample_size(10);
    for n in [50usize, 100, 200] {
        let ts = sample_trajectories(n, 2);
        group.bench_with_input(BenchmarkId::new("dtw_matrix", n), &ts, |bch, ts| {
            bch.iter(|| DistanceMatrix::compute(black_box(ts), &Metric::Dtw))
        });
    }
    // Banded DTW trades a documented approximation for the scalability
    // sweep; benchmarked at the largest size for the n² comparison.
    let ts = sample_trajectories(200, 2);
    group.bench_function("dtw_banded8_matrix/200", |bch| {
        bch.iter(|| DistanceMatrix::compute(black_box(&ts), &Metric::DtwBanded { band: 8 }))
    });
    group.finish();
}

fn bench_knn(c: &mut Criterion) {
    let db = sample_trajectories(200, 3);
    let queries = sample_trajectories(4, 4);
    let index = KnnIndex::build(&db);
    let projected_queries: Vec<ProjectedTraj> =
        queries.iter().map(|q| ProjectedTraj::project(q, index.projector())).collect();

    let mut group = c.benchmark_group("knn");
    group.sample_size(10);
    group.bench_function("dtw_top10_pruned/200", |bch| {
        bch.iter(|| {
            for q in &projected_queries {
                black_box(knn::knn_dtw(index.items(), black_box(q), 10, None));
            }
        })
    });
    group.bench_function("dtw_top10_brute/200", |bch| {
        bch.iter(|| {
            for q in &projected_queries {
                black_box(knn::knn_dtw_brute(index.items(), black_box(q), 10, None));
            }
        })
    });
    group.bench_function("dtw_top10_pruned_banded8/200", |bch| {
        bch.iter(|| {
            for q in &projected_queries {
                black_box(knn::knn_dtw(index.items(), black_box(q), 10, Some(8)));
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_pair_kernels, bench_matrix_scaling, bench_knn);
criterion_main!(benches);
