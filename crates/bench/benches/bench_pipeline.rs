//! Criterion benches for pipeline-level stages: dataset generation,
//! ground-truth labelling (Algorithm 2), tokenization + skip-gram, and
//! embedding inference with a trained encoder.

use criterion::{criterion_group, criterion_main, Criterion};
use e2dtc::{E2dtc, E2dtcConfig};
use std::hint::black_box;
use traj_data::ground_truth::generate_ground_truth;
use traj_data::{GroundTruthConfig, SynthSpec};

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("dataset_generation");
    group.sample_size(10);
    group.bench_function("hangzhou_like_500", |b| {
        b.iter(|| black_box(SynthSpec::hangzhou_like(500, 7).generate()))
    });
    group.finish();
}

fn bench_ground_truth(c: &mut Criterion) {
    let city = SynthSpec::hangzhou_like(500, 7).generate();
    let mut group = c.benchmark_group("algorithm2");
    group.sample_size(10);
    group.bench_function("label_500", |b| {
        b.iter(|| {
            black_box(generate_ground_truth(
                &city.dataset,
                &city.pois,
                GroundTruthConfig::default(),
            ))
        })
    });
    group.finish();
}

fn bench_embedding_inference(c: &mut Criterion) {
    // Train a tiny model once; the bench measures the serve path the
    // paper's Fig. 3 cares about (embed + assign on new data).
    let city = SynthSpec::hangzhou_like(200, 7).generate();
    let (data, _) =
        generate_ground_truth(&city.dataset, &city.pois, GroundTruthConfig::default());
    let mut model = E2dtc::new(&data.dataset, E2dtcConfig::tiny(data.num_clusters));
    let _ = model.fit(&data.dataset);
    let fresh = SynthSpec::hangzhou_like(200, 99).generate();

    let mut group = c.benchmark_group("inference");
    group.sample_size(10);
    group.bench_function("embed_assign_200", |b| {
        b.iter(|| black_box(model.assign(&fresh.dataset)))
    });
    group.finish();
}

criterion_group!(benches, bench_generation, bench_ground_truth, bench_embedding_inference);
criterion_main!(benches);
