//! Criterion benches for the clustering substrate, including the design
//! ablation k-means++ vs. random init and PAM vs. alternating K-Medoids
//! (DESIGN.md §5).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use traj_cluster::{
    kmeans, kmedoids, kmedoids_alternating, uacc, KMeansConfig, KMedoidsConfig, Points,
};

fn blob_points(n: usize, k: usize, d: usize, seed: u64) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut data = Vec::with_capacity(n * d);
    for i in 0..n {
        let c = i % k;
        for j in 0..d {
            data.push((c * 7 + j) as f32 + rng.gen::<f32>());
        }
    }
    data
}

fn dist_matrix(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let xs: Vec<f64> = (0..n).map(|i| (i % 5) as f64 * 10.0 + rng.gen::<f64>()).collect();
    let mut d = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..n {
            d[i * n + j] = (xs[i] - xs[j]).abs();
        }
    }
    d
}

fn bench_kmeans_init(c: &mut Criterion) {
    let data = blob_points(600, 6, 16, 3);
    let points = Points::new(&data, 600, 16);
    let mut group = c.benchmark_group("kmeans_init_ablation");
    group.bench_function("plus_plus", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(0);
            kmeans(black_box(points), KMeansConfig::new(6), &mut rng)
        })
    });
    group.bench_function("random", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(0);
            kmeans(black_box(points), KMeansConfig::new(6).random_init(), &mut rng)
        })
    });
    group.finish();
}

fn bench_kmedoids_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("kmedoids_ablation");
    group.sample_size(10);
    for n in [100usize, 200] {
        let d = dist_matrix(n, 4);
        group.bench_with_input(BenchmarkId::new("pam", n), &d, |b, d| {
            b.iter(|| kmedoids(black_box(d), n, KMedoidsConfig::new(5)))
        });
        group.bench_with_input(BenchmarkId::new("alternating", n), &d, |b, d| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(0);
                kmedoids_alternating(black_box(d), n, KMedoidsConfig::new(5), &mut rng)
            })
        });
    }
    group.finish();
}

fn bench_metrics(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let pred: Vec<usize> = (0..2000).map(|_| rng.gen_range(0..7)).collect();
    let truth: Vec<usize> = (0..2000).map(|_| rng.gen_range(0..7)).collect();
    c.bench_function("uacc_hungarian_2000", |b| {
        b.iter(|| uacc(black_box(&pred), black_box(&truth)))
    });
}

criterion_group!(benches, bench_kmeans_init, bench_kmedoids_variants, bench_metrics);
criterion_main!(benches);
