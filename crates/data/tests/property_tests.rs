//! Property-based invariants of the data substrate: grid discretization,
//! augmentation, and Algorithm 2.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use traj_data::augment::{corrupt, distort, downsample};
use traj_data::ground_truth::{cluster_radius_m, fallen_rate, generate_ground_truth};
use traj_data::{Dataset, GpsPoint, Grid, GroundTruthConfig, Trajectory};

fn trajectory() -> impl Strategy<Value = Trajectory> {
    prop::collection::vec((30.0f64..30.2, 120.0f64..120.2), 1..40).prop_map(|pts| {
        Trajectory::new(
            1,
            pts.into_iter()
                .enumerate()
                .map(|(i, (lat, lon))| GpsPoint::new(lat, lon, i as f64 * 5.0))
                .collect(),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn grid_token_roundtrip_containment(t in trajectory(), cell in 100.0f64..1000.0) {
        let grid = Grid::fit(&Dataset::new("p", vec![t.clone()]), cell);
        for p in &t.points {
            let tok = grid.token(p);
            prop_assert!(tok < grid.vocab_size());
            let center = grid.cell_center(tok);
            // The point is within half a cell diagonal of its cell center.
            let d = p.haversine_m(&center);
            prop_assert!(
                d <= cell * 0.75,
                "point {d} m from its cell center (cell {cell} m)"
            );
        }
    }

    #[test]
    fn tokenize_never_longer_than_raw(t in trajectory(), cell in 100.0f64..800.0) {
        let grid = Grid::fit(&Dataset::new("p", vec![t.clone()]), cell);
        prop_assert!(grid.tokenize(&t).len() <= grid.tokenize_raw(&t).len());
        prop_assert_eq!(grid.tokenize_raw(&t).len(), t.len());
    }

    #[test]
    fn knn_cells_distinct_and_sorted_by_distance(
        t in trajectory(),
        k in 1usize..12,
    ) {
        let grid = Grid::fit(&Dataset::new("p", vec![t.clone()]), 300.0);
        let tok = grid.token(&t.points[0]);
        let knn = grid.knn_cells(tok, k);
        prop_assert!(knn.len() <= k);
        // Distinct.
        let mut sorted = knn.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), knn.len());
        // Non-decreasing distances.
        for w in knn.windows(2) {
            prop_assert!(
                grid.cell_distance_m(tok, w[0]) <= grid.cell_distance_m(tok, w[1]) + 1e-9
            );
        }
    }

    #[test]
    fn downsample_is_subsequence(t in trajectory(), rate in 0.0f64..0.9, seed in 0u64..100) {
        let mut rng = StdRng::seed_from_u64(seed);
        let d = downsample(&t, rate, &mut rng);
        prop_assert!(d.len() <= t.len());
        prop_assert!(!d.is_empty());
        // Every kept point appears in the original, in order.
        let mut it = t.points.iter();
        for p in &d.points {
            prop_assert!(it.any(|q| q == p), "kept point not a subsequence element");
        }
    }

    #[test]
    fn distort_never_changes_count_or_times(
        t in trajectory(),
        rate in 0.0f64..1.0,
        seed in 0u64..100,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let d = distort(&t, rate, 40.0, &mut rng);
        prop_assert_eq!(d.len(), t.len());
        for (a, b) in t.points.iter().zip(&d.points) {
            prop_assert_eq!(a.time, b.time);
        }
    }

    #[test]
    fn corrupt_preserves_endpoint_times(t in trajectory(), seed in 0u64..100) {
        let mut rng = StdRng::seed_from_u64(seed);
        let c = corrupt(&t, 0.4, 0.4, 40.0, &mut rng);
        prop_assert!(!c.is_empty());
        prop_assert_eq!(c.points[0].time, t.points[0].time);
        prop_assert_eq!(
            c.points.last().expect("non-empty").time,
            t.points.last().expect("non-empty").time
        );
    }

    #[test]
    fn fallen_rate_in_unit_interval(t in trajectory(), r in 10.0f64..50_000.0) {
        let center = GpsPoint::new(30.1, 120.1, 0.0);
        let fr = fallen_rate(&t, &center, r);
        prop_assert!((0.0..=1.0).contains(&fr));
    }

    #[test]
    fn fallen_rate_monotone_in_radius(t in trajectory(), r in 100.0f64..10_000.0) {
        let center = GpsPoint::new(30.1, 120.1, 0.0);
        prop_assert!(fallen_rate(&t, &center, r) <= fallen_rate(&t, &center, r * 2.0));
    }

    #[test]
    fn algorithm2_labels_are_valid_and_consistent(
        sigma in 0.1f64..1.0,
        lambda in 0.1f64..1.0,
        seed in 0u64..50,
    ) {
        let city = traj_data::SynthSpec::hangzhou_like(40, seed).generate();
        let cfg = GroundTruthConfig::new(sigma, lambda);
        let (labelled, assignment) = generate_ground_truth(&city.dataset, &city.pois, cfg);
        prop_assert_eq!(assignment.len(), city.dataset.len());
        prop_assert_eq!(labelled.len(), assignment.iter().flatten().count());
        let radius = cluster_radius_m(&city.pois, sigma);
        for (t, &label) in labelled.dataset.trajectories.iter().zip(&labelled.labels) {
            prop_assert!(label < city.pois.len());
            // The assigned cluster must actually satisfy the threshold.
            prop_assert!(fallen_rate(t, &city.pois[label], radius) >= lambda);
        }
    }

    #[test]
    fn algorithm2_coverage_monotone_in_sigma(seed in 0u64..20) {
        let city = traj_data::SynthSpec::hangzhou_like(40, seed).generate();
        let (small, _) = generate_ground_truth(
            &city.dataset, &city.pois, GroundTruthConfig::new(0.3, 0.7));
        let (large, _) = generate_ground_truth(
            &city.dataset, &city.pois, GroundTruthConfig::new(0.9, 0.7));
        prop_assert!(large.len() >= small.len());
    }
}
