//! Dataset statistics (regenerates the rows of the paper's Tables II & V).

use crate::trajectory::LabeledDataset;
use serde::{Deserialize, Serialize};

/// Table II-style statistics of a labelled dataset.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DatasetStats {
    /// Dataset name.
    pub name: String,
    /// Number of labelled trajectories.
    pub trajectories: usize,
    /// Total GPS points.
    pub points: usize,
    /// Number of clusters.
    pub num_clusters: usize,
    /// Mean points per trajectory.
    pub mean_length: f64,
}

impl DatasetStats {
    /// Computes statistics for a labelled dataset.
    pub fn of(data: &LabeledDataset) -> Self {
        let trajectories = data.len();
        let points = data.dataset.total_points();
        Self {
            name: data.dataset.name.clone(),
            trajectories,
            points,
            num_clusters: data.num_clusters,
            mean_length: if trajectories == 0 {
                0.0
            } else {
                points as f64 / trajectories as f64
            },
        }
    }
}

/// Table V-style cluster-size distribution statistics.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DistributionStats {
    /// Smallest cluster size.
    pub min_cluster_size: usize,
    /// Largest cluster size.
    pub max_cluster_size: usize,
    /// Mean cluster size.
    pub avg_cluster_size: f64,
}

impl DistributionStats {
    /// Computes min/max/avg cluster sizes of a labelled dataset.
    pub fn of(data: &LabeledDataset) -> Self {
        let sizes = data.cluster_sizes();
        let nonempty: Vec<usize> = sizes.into_iter().filter(|&s| s > 0).collect();
        if nonempty.is_empty() {
            return Self { min_cluster_size: 0, max_cluster_size: 0, avg_cluster_size: 0.0 };
        }
        let min = *nonempty.iter().min().expect("non-empty");
        let max = *nonempty.iter().max().expect("non-empty");
        let avg = nonempty.iter().sum::<usize>() as f64 / nonempty.len() as f64;
        Self { min_cluster_size: min, max_cluster_size: max, avg_cluster_size: avg }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::GpsPoint;
    use crate::trajectory::{Dataset, Trajectory};

    fn labelled(labels: Vec<usize>, k: usize) -> LabeledDataset {
        let trajectories = labels
            .iter()
            .enumerate()
            .map(|(i, _)| {
                Trajectory::new(i as u64, vec![GpsPoint::new(30.0, 120.0, 0.0); i % 3 + 1])
            })
            .collect();
        LabeledDataset { dataset: Dataset::new("t", trajectories), labels, num_clusters: k }
    }

    #[test]
    fn dataset_stats_counts() {
        let d = labelled(vec![0, 1, 0], 2);
        let s = DatasetStats::of(&d);
        assert_eq!(s.trajectories, 3);
        assert_eq!(s.points, 1 + 2 + 3);
        assert_eq!(s.num_clusters, 2);
        assert!((s.mean_length - 2.0).abs() < 1e-9);
    }

    #[test]
    fn distribution_stats_min_max_avg() {
        let d = labelled(vec![0, 0, 0, 1, 2, 2], 3);
        let s = DistributionStats::of(&d);
        assert_eq!(s.min_cluster_size, 1);
        assert_eq!(s.max_cluster_size, 3);
        assert!((s.avg_cluster_size - 2.0).abs() < 1e-9);
    }

    #[test]
    fn empty_clusters_are_ignored() {
        let d = labelled(vec![0, 0], 4);
        let s = DistributionStats::of(&d);
        assert_eq!(s.min_cluster_size, 2);
        assert_eq!(s.max_cluster_size, 2);
    }
}
