//! GPS sample points and geodesic helpers.

use serde::{Deserialize, Serialize};

/// Mean Earth radius in meters (IUGG).
pub const EARTH_RADIUS_M: f64 = 6_371_008.8;

/// One GPS sample: WGS-84 coordinates plus an observation timestamp
/// (seconds since the start of the trace).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct GpsPoint {
    /// Latitude in degrees.
    pub lat: f64,
    /// Longitude in degrees.
    pub lon: f64,
    /// Observation time in seconds.
    pub time: f64,
}

impl GpsPoint {
    /// Creates a point.
    pub fn new(lat: f64, lon: f64, time: f64) -> Self {
        Self { lat, lon, time }
    }

    /// Great-circle distance to `other` in meters (haversine formula).
    pub fn haversine_m(&self, other: &GpsPoint) -> f64 {
        haversine_m(self.lat, self.lon, other.lat, other.lon)
    }

    /// Fast approximate planar distance in meters, using an
    /// equirectangular projection around the midpoint latitude. Accurate to
    /// well under 0.1 % at city scale, and ~5× cheaper than haversine —
    /// used inside the O(n·m) DP distance kernels.
    pub fn euclid_approx_m(&self, other: &GpsPoint) -> f64 {
        let mid_lat = ((self.lat + other.lat) * 0.5).to_radians();
        let dx = (other.lon - self.lon).to_radians() * mid_lat.cos();
        let dy = (other.lat - self.lat).to_radians();
        (dx * dx + dy * dy).sqrt() * EARTH_RADIUS_M
    }

    /// Returns a copy displaced by `(dx, dy)` meters (east, north).
    pub fn offset_m(&self, dx: f64, dy: f64) -> GpsPoint {
        let dlat = (dy / EARTH_RADIUS_M).to_degrees();
        let dlon = (dx / (EARTH_RADIUS_M * self.lat.to_radians().cos())).to_degrees();
        GpsPoint::new(self.lat + dlat, self.lon + dlon, self.time)
    }
}

/// Great-circle distance between two coordinates in meters.
pub fn haversine_m(lat1: f64, lon1: f64, lat2: f64, lon2: f64) -> f64 {
    let (phi1, phi2) = (lat1.to_radians(), lat2.to_radians());
    let dphi = (lat2 - lat1).to_radians();
    let dlambda = (lon2 - lon1).to_radians();
    let a =
        (dphi / 2.0).sin().powi(2) + phi1.cos() * phi2.cos() * (dlambda / 2.0).sin().powi(2);
    2.0 * EARTH_RADIUS_M * a.sqrt().min(1.0).asin()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn haversine_zero_for_identical_points() {
        assert_eq!(haversine_m(30.0, 120.0, 30.0, 120.0), 0.0);
    }

    #[test]
    fn haversine_known_distance() {
        // One degree of latitude ≈ 111.2 km.
        let d = haversine_m(30.0, 120.0, 31.0, 120.0);
        assert!((d - 111_195.0).abs() < 200.0, "got {d}");
    }

    #[test]
    fn haversine_symmetry() {
        let a = haversine_m(30.25, 120.15, 30.3, 120.2);
        let b = haversine_m(30.3, 120.2, 30.25, 120.15);
        assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn equirectangular_matches_haversine_at_city_scale() {
        let p = GpsPoint::new(30.25, 120.15, 0.0);
        let q = GpsPoint::new(30.27, 120.19, 0.0);
        let h = p.haversine_m(&q);
        let e = p.euclid_approx_m(&q);
        assert!((h - e).abs() / h < 1e-3, "haversine {h}, approx {e}");
    }

    #[test]
    fn offset_roundtrip_distance() {
        let p = GpsPoint::new(30.25, 120.15, 0.0);
        let q = p.offset_m(300.0, 400.0);
        let d = p.haversine_m(&q);
        assert!((d - 500.0).abs() < 1.0, "got {d}");
    }
}
