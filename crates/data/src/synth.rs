//! Synthetic trajectory dataset generators.
//!
//! The paper evaluates on GeoLife (Beijing), Porto taxis, and a proprietary
//! Hangzhou taxi dataset — none of which can ship with this reproduction.
//! The paper's ground truth is itself *derived* (Algorithm 2 labels a
//! trajectory by the POI region most of its points fall into), so the
//! statistical structure the clustering methods face is: POI-anchored
//! movement + GPS noise + variable sampling/length. These generators
//! reproduce exactly that structure, with per-preset sampling intervals and
//! points-per-trajectory ratios mirroring the paper's Table II.
//!
//! Each trajectory is a momentum random walk tethered to its cluster's POI:
//! the heading drifts smoothly (road-like curvature) and is pulled back
//! toward the POI when the walker strays past the cluster spread, so the
//! "fallen rate" of Algorithm 2 is high for its own POI. A configurable
//! fraction of outlier trips wander between POIs and end up unlabelled.

use crate::point::GpsPoint;
use crate::trajectory::{Dataset, LabeledDataset, Trajectory};
use rand::Rng;
use rand::{rngs::StdRng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration for one synthetic city dataset.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SynthSpec {
    /// Dataset name (e.g. `"hangzhou-like"`).
    pub name: String,
    /// Number of trajectories to generate.
    pub num_trajectories: usize,
    /// Number of POI-anchored clusters.
    pub num_clusters: usize,
    /// Bounding box `(min_lat, min_lon, max_lat, max_lon)`.
    pub bbox: (f64, f64, f64, f64),
    /// Seconds between consecutive GPS samples.
    pub sampling_interval_s: f64,
    /// Mean mover speed in m/s.
    pub mean_speed_mps: f64,
    /// Points per trajectory, inclusive range.
    pub len_range: (usize, usize),
    /// Std-dev of per-point GPS noise, meters.
    pub gps_noise_std_m: f64,
    /// Probability of a GPS "spike" per point: urban-canyon style gross
    /// errors, 10× the base noise (§I: "raw-trajectory-based
    /// representations can be sensitive to noise, which could arise in
    /// urban canyons").
    pub spike_prob: f64,
    /// Per-trajectory sampling-interval multiplier is drawn uniformly from
    /// `1..=rate_jitter` — real fleets sample at different and non-uniform
    /// rates, which the paper calls out as the core difficulty for
    /// pair-matching metrics.
    pub rate_jitter: u32,
    /// Cluster-region radius as a fraction of the minimum POI separation.
    /// Values near 0.55 nearly fill Algorithm 2's σ = 0.6 discs, so
    /// adjacent regions almost touch at their borders.
    pub spread_ratio: f64,
    /// Trip locality: each trip is tethered to a random *sub-center*
    /// inside its cluster region, with tether radius
    /// `locality × spread`. Small values (≈0.3) mean two same-cluster
    /// trips need not overlap spatially at all — exactly the property of
    /// the paper's POI-region ground truth that defeats raw pair-matching
    /// metrics (same-region trips can be farther apart than trips in
    /// adjacent regions) while cell co-occurrence across *many* trips
    /// still exposes the region to a representation learner.
    pub locality: f64,
    /// Fraction of trajectories that wander between POIs (unlabelled noise).
    pub outlier_fraction: f64,
    /// Mild default cluster-size skew when `cluster_weights` is `None`:
    /// weights run from 1 to `1 + size_skew`. Real POI popularity is far
    /// from uniform; equal-size equal-shape clusters would make the
    /// K-Medoids optimum coincide with the ground truth and trivialize the
    /// benchmark.
    pub size_skew: f64,
    /// Relative cluster weights; `None` means the mild `size_skew` ramp.
    /// Used to build the strongly imbalanced variants of §VII-G.
    pub cluster_weights: Option<Vec<f64>>,
    /// RNG seed; every dataset is reproducible bit-for-bit.
    pub seed: u64,
}

/// A generated dataset together with the latent cluster of each trajectory
/// (`None` for outliers) and the POI anchors.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GeneratedCity {
    /// The trajectories.
    pub dataset: Dataset,
    /// Latent generating cluster per trajectory (`None` = outlier trip).
    pub intended: Vec<Option<usize>>,
    /// POI anchors, one per cluster (these feed Algorithm 2 as the
    /// "most frequently visited POIs selected on the map").
    pub pois: Vec<GpsPoint>,
}

impl SynthSpec {
    /// GeoLife-style preset: Beijing-sized box, 5 s sampling, 12 clusters,
    /// short mixed-mode trips (~18 points each, matching Table II's
    /// points-per-trajectory ratio).
    pub fn geolife_like(num_trajectories: usize, seed: u64) -> Self {
        Self {
            name: "geolife-like".into(),
            num_trajectories,
            num_clusters: 12,
            bbox: (39.86, 116.26, 39.99, 116.44),
            sampling_interval_s: 5.0,
            mean_speed_mps: 12.0,
            len_range: (10, 28),
            gps_noise_std_m: 35.0,
            spike_prob: 0.03,
            rate_jitter: 4,
            spread_ratio: 0.55,
            locality: 0.22,
            outlier_fraction: 0.05,
            size_skew: 1.5,
            cluster_weights: None,
            seed,
        }
    }

    /// Porto-style preset: 15 s taxi sampling, 15 clusters, ~39 points per
    /// trip.
    pub fn porto_like(num_trajectories: usize, seed: u64) -> Self {
        Self {
            name: "porto-like".into(),
            num_trajectories,
            num_clusters: 15,
            bbox: (41.05, -8.75, 41.25, -8.45),
            sampling_interval_s: 15.0,
            mean_speed_mps: 5.0,
            len_range: (25, 55),
            gps_noise_std_m: 30.0,
            spike_prob: 0.03,
            rate_jitter: 3,
            spread_ratio: 0.55,
            locality: 0.22,
            outlier_fraction: 0.05,
            size_skew: 1.5,
            cluster_weights: None,
            seed,
        }
    }

    /// Hangzhou-style preset: 5 s taxi sampling, 7 clusters, ~67 points per
    /// trip.
    pub fn hangzhou_like(num_trajectories: usize, seed: u64) -> Self {
        Self {
            name: "hangzhou-like".into(),
            num_trajectories,
            num_clusters: 7,
            bbox: (30.18, 120.08, 30.34, 120.28),
            sampling_interval_s: 5.0,
            mean_speed_mps: 8.0,
            len_range: (45, 90),
            gps_noise_std_m: 30.0,
            spike_prob: 0.03,
            rate_jitter: 3,
            spread_ratio: 0.55,
            locality: 0.22,
            outlier_fraction: 0.05,
            size_skew: 1.5,
            cluster_weights: None,
            seed,
        }
    }

    /// Returns a copy with skewed cluster weights (used for the imbalanced
    /// robustness study, §VII-G / Table V: largest cluster ≈ 7× smallest).
    pub fn imbalanced(mut self) -> Self {
        let k = self.num_clusters;
        let weights: Vec<f64> =
            (0..k).map(|j| if j == 0 { 7.0 } else { 1.0 + (j as f64) / k as f64 }).collect();
        self.cluster_weights = Some(weights);
        self
    }

    /// Generates the dataset.
    ///
    /// # Panics
    /// Panics on zero clusters or an invalid weight vector.
    pub fn generate(&self) -> GeneratedCity {
        assert!(self.num_clusters >= 1, "need at least one cluster");
        if let Some(w) = &self.cluster_weights {
            assert_eq!(w.len(), self.num_clusters, "one weight per cluster");
            assert!(w.iter().all(|&x| x > 0.0), "weights must be positive");
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        let pois = place_pois(&mut rng, self.bbox, self.num_clusters);
        let min_sep = min_pairwise_m(&pois);
        // Walker tether. At the default 0.55 this stays inside Algorithm
        // 2's σ = 0.6 disc (so labels remain clean) while letting adjacent
        // cluster regions overlap at their borders.
        let spread_m = self.spread_ratio * min_sep;
        // One corridor bearing per cluster (the cluster's "hot route").
        // Mostly east–west, like arterial roads of a gridded city: along a
        // lattice row, adjacent clusters' corridors are collinear and
        // their ends nearly meet, so border trips are genuinely ambiguous
        // for raw distance metrics. A minority of north–south corridors
        // keeps the geometry from being a single degenerate line.
        let bearings: Vec<f64> = (0..self.num_clusters)
            .map(|_| {
                if rng.gen::<f64>() < 0.75 { 0.0 } else { std::f64::consts::FRAC_PI_2 }
            })
            .collect();
        // Per-cluster corridor length, coupled to popularity (later
        // clusters are both more popular — see the size_skew ramp below —
        // and longer): real hot routes vary in extent, and a big, long
        // cluster is precisely what a distance-based K-Medoids optimum
        // splits while merging small adjacent ones.
        let k = self.num_clusters;
        let spreads: Vec<f64> = (0..k)
            .map(|j| {
                let ramp = 0.75 + 0.25 * j as f64 / (k.max(2) - 1) as f64;
                spread_m * ramp * rng.gen_range(0.9..1.0)
            })
            .collect();

        let mut trajectories = Vec::with_capacity(self.num_trajectories);
        let mut intended = Vec::with_capacity(self.num_trajectories);
        // Mild popularity skew unless explicit weights were given.
        let default_weights: Vec<f64> = (0..self.num_clusters)
            .map(|j| {
                1.0 + self.size_skew * j as f64 / (self.num_clusters.max(2) - 1) as f64
            })
            .collect();
        let weights = self.cluster_weights.as_deref().unwrap_or(&default_weights);
        let cum = cumulative_weights(Some(weights), self.num_clusters);
        for id in 0..self.num_trajectories {
            let is_outlier = rng.gen::<f64>() < self.outlier_fraction;
            if is_outlier {
                let t = self.outlier_trip(id as u64, &pois, &mut rng);
                trajectories.push(t);
                intended.push(None);
            } else {
                let j = sample_cluster(&cum, &mut rng);
                let t = self.cluster_trip(id as u64, pois[j], bearings[j], spreads[j], &mut rng);
                trajectories.push(t);
                intended.push(Some(j));
            }
        }
        GeneratedCity {
            dataset: Dataset::new(self.name.clone(), trajectories),
            intended,
            pois,
        }
    }

    /// A trip on one cluster's "hot route": a corridor through the POI.
    ///
    /// Each cluster is a road-like corridor (fixed per-cluster bearing,
    /// length `2 × spread`) centred on its POI. A trip runs along a random
    /// *segment* of the corridor, in a random *direction*, with lateral
    /// wobble `locality × spread`. Consequences, mirroring the paper's
    /// real data:
    ///
    /// - same-cluster trips need not overlap (disjoint segments), and half
    ///   of them traverse the route backwards — order-sensitive raw
    ///   metrics (DTW/EDR/LCSS) see those as maximally dissimilar;
    /// - collectively the trips cover the corridor densely, so cell
    ///   co-occurrence exposes the route to a representation learner even
    ///   at small dataset sizes.
    fn cluster_trip(
        &self,
        id: u64,
        poi: GpsPoint,
        bearing: f64,
        spread_m: f64,
        rng: &mut impl Rng,
    ) -> Trajectory {
        // Per-trajectory sampling-rate heterogeneity: a slow-sampling
        // device records the same trip with fewer, coarser points.
        let rate_mult = rng.gen_range(1..=self.rate_jitter.max(1)) as f64;
        let interval = self.sampling_interval_s * rate_mult;
        let n = ((rng.gen_range(self.len_range.0..=self.len_range.1) as f64 / rate_mult)
            .round() as usize)
            .max(4);
        let lateral = (self.locality.clamp(0.02, 1.0) * spread_m).max(1.0);
        let (ux, uy) = (bearing.cos(), bearing.sin()); // along-corridor unit
        let (vx, vy) = (-uy, ux); // lateral unit

        // Start position along the corridor and travel direction.
        let mut along = rng.gen_range(-0.9..0.9) * spread_m;
        let mut side = gaussian(rng) * lateral * 0.5;
        let mut dir: f64 = if rng.gen::<bool>() { 1.0 } else { -1.0 };
        let speed_base = self.mean_speed_mps * rng.gen_range(0.7..1.3);

        let mut points = Vec::with_capacity(n);
        for i in 0..n {
            let time = i as f64 * interval;
            // Urban-canyon spikes: occasional gross errors on top of the
            // base GPS noise.
            let noise = if rng.gen::<f64>() < self.spike_prob {
                self.gps_noise_std_m * 10.0
            } else {
                self.gps_noise_std_m
            };
            let x = along * ux + side * vx + gaussian(rng) * noise;
            let y = along * uy + side * vy + gaussian(rng) * noise;
            let noisy = poi.offset_m(x, y);
            points.push(GpsPoint::new(noisy.lat, noisy.lon, time));

            // Advance along the corridor; bounce at the ends.
            let speed = (speed_base * rng.gen_range(0.8..1.2)).max(0.5);
            along += dir * speed * interval;
            if along.abs() > spread_m {
                along = along.clamp(-spread_m, spread_m);
                dir = -dir;
            }
            // Lateral wobble: mean-reverting around the corridor axis.
            side = 0.8 * side + gaussian(rng) * lateral * 0.3;
            side = side.clamp(-lateral, lateral);
        }
        Trajectory::new(id, points)
    }

    /// An outlier trip: a long, fairly straight run between two random
    /// POIs — it grazes several cluster regions without belonging to any.
    fn outlier_trip(&self, id: u64, pois: &[GpsPoint], rng: &mut impl Rng) -> Trajectory {
        let n = rng.gen_range(self.len_range.0..=self.len_range.1);
        let a = pois[rng.gen_range(0..pois.len())];
        let mut b = pois[rng.gen_range(0..pois.len())];
        if pois.len() > 1 {
            while b == a {
                b = pois[rng.gen_range(0..pois.len())];
            }
        }
        let mut points = Vec::with_capacity(n);
        for i in 0..n {
            let f = i as f64 / (n - 1).max(1) as f64;
            let lat = a.lat + f * (b.lat - a.lat);
            let lon = a.lon + f * (b.lon - a.lon);
            let base = GpsPoint::new(lat, lon, i as f64 * self.sampling_interval_s);
            let noisy = base.offset_m(
                gaussian(rng) * self.gps_noise_std_m * 3.0,
                gaussian(rng) * self.gps_noise_std_m * 3.0,
            );
            points.push(GpsPoint::new(noisy.lat, noisy.lon, base.time));
        }
        Trajectory::new(id, points)
    }
}

/// Builds a balanced subset of a labelled dataset: `per_cluster`
/// trajectories drawn from each cluster (clusters smaller than that
/// contribute everything they have).
pub fn balanced_subset(data: &LabeledDataset, per_cluster: usize, seed: u64) -> LabeledDataset {
    subset_with_quota(data, |_| per_cluster, seed)
}

/// Builds an imbalanced subset: cluster 0 gets `max_per_cluster`
/// trajectories and the rest get `min_per_cluster`, mimicking Table V's
/// ≈7× skew.
pub fn imbalanced_subset(
    data: &LabeledDataset,
    min_per_cluster: usize,
    max_per_cluster: usize,
    seed: u64,
) -> LabeledDataset {
    subset_with_quota(
        data,
        |j| if j == 0 { max_per_cluster } else { min_per_cluster },
        seed,
    )
}

fn subset_with_quota(
    data: &LabeledDataset,
    quota: impl Fn(usize) -> usize,
    seed: u64,
) -> LabeledDataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut by_cluster: Vec<Vec<usize>> = vec![Vec::new(); data.num_clusters];
    for (i, &l) in data.labels.iter().enumerate() {
        by_cluster[l].push(i);
    }
    let mut chosen = Vec::new();
    for (j, members) in by_cluster.iter_mut().enumerate() {
        // Fisher–Yates partial shuffle, then take the quota.
        let take = quota(j).min(members.len());
        for i in 0..take {
            let pick = rng.gen_range(i..members.len());
            members.swap(i, pick);
        }
        chosen.extend(members[..take].iter().map(|&i| (i, j)));
    }
    chosen.sort_unstable();
    let trajectories = chosen
        .iter()
        .map(|&(i, _)| data.dataset.trajectories[i].clone())
        .collect();
    let labels = chosen.iter().map(|&(_, j)| j).collect();
    LabeledDataset {
        dataset: Dataset::new(format!("{}-subset", data.dataset.name), trajectories),
        labels,
        num_clusters: data.num_clusters,
    }
}

/// Places `k` POIs on a jittered lattice inside the box.
///
/// A lattice (rather than rejection sampling) makes every POI's nearest
/// neighbours sit at roughly the *same* distance, so Algorithm 2's discs
/// (radius σ × min pairwise distance) leave every cluster with ambiguous
/// borders — the regime real city POIs are in, and the one that keeps the
/// clustering problem non-trivial for raw distance metrics.
fn place_pois(rng: &mut impl Rng, bbox: (f64, f64, f64, f64), k: usize) -> Vec<GpsPoint> {
    let (min_lat, min_lon, max_lat, max_lon) = bbox;
    let cols = (k as f64).sqrt().ceil() as usize;
    let rows = k.div_ceil(cols);
    // Cell pitch with a half-cell margin on every side.
    let dlat = (max_lat - min_lat) / rows as f64;
    let dlon = (max_lon - min_lon) / cols as f64;
    // Fill lattice cells in a shuffled order so which cells are left empty
    // (when rows × cols > k) varies with the seed.
    let mut cells: Vec<(usize, usize)> =
        (0..rows).flat_map(|r| (0..cols).map(move |c| (r, c))).collect();
    for i in (1..cells.len()).rev() {
        let j = rng.gen_range(0..=i);
        cells.swap(i, j);
    }
    cells
        .into_iter()
        .take(k)
        .map(|(r, c)| {
            let jitter_lat = (rng.gen::<f64>() - 0.5) * 0.25 * dlat;
            let jitter_lon = (rng.gen::<f64>() - 0.5) * 0.25 * dlon;
            GpsPoint::new(
                min_lat + (r as f64 + 0.5) * dlat + jitter_lat,
                min_lon + (c as f64 + 0.5) * dlon + jitter_lon,
                0.0,
            )
        })
        .collect()
}

fn min_pairwise_m(pois: &[GpsPoint]) -> f64 {
    let mut min = f64::INFINITY;
    for i in 0..pois.len() {
        for j in i + 1..pois.len() {
            min = min.min(pois[i].haversine_m(&pois[j]));
        }
    }
    if min.is_finite() {
        min
    } else {
        // Single cluster: use a nominal city-scale radius.
        2_000.0
    }
}

fn cumulative_weights(weights: Option<&[f64]>, k: usize) -> Vec<f64> {
    let mut cum = Vec::with_capacity(k);
    let mut acc = 0.0;
    for j in 0..k {
        acc += weights.map_or(1.0, |w| w[j]);
        cum.push(acc);
    }
    cum
}

fn sample_cluster(cum: &[f64], rng: &mut impl Rng) -> usize {
    let total = *cum.last().expect("at least one cluster");
    let x = rng.gen::<f64>() * total;
    cum.iter().position(|&c| x < c).unwrap_or(cum.len() - 1)
}

fn gaussian(rng: &mut impl Rng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = SynthSpec::hangzhou_like(50, 42).generate();
        let b = SynthSpec::hangzhou_like(50, 42).generate();
        assert_eq!(a.dataset.trajectories, b.dataset.trajectories);
        assert_eq!(a.intended, b.intended);
    }

    #[test]
    fn different_seeds_differ() {
        let a = SynthSpec::hangzhou_like(20, 1).generate();
        let b = SynthSpec::hangzhou_like(20, 2).generate();
        assert_ne!(a.dataset.trajectories, b.dataset.trajectories);
    }

    #[test]
    fn presets_have_paper_cluster_counts() {
        assert_eq!(SynthSpec::geolife_like(1, 0).num_clusters, 12);
        assert_eq!(SynthSpec::porto_like(1, 0).num_clusters, 15);
        assert_eq!(SynthSpec::hangzhou_like(1, 0).num_clusters, 7);
    }

    #[test]
    fn lengths_respect_range_after_rate_jitter() {
        // Rate jitter divides the nominal point count by up to
        // `rate_jitter`, so lengths land in [lo / jitter (rounded), hi],
        // floored at 4.
        let spec = SynthSpec::porto_like(60, 3);
        let city = spec.generate();
        let (lo, hi) = spec.len_range;
        let min_allowed = (lo as f64 / spec.rate_jitter as f64).floor() as usize;
        for t in &city.dataset.trajectories {
            assert!(
                t.len() >= min_allowed.max(4).min(lo) && t.len() <= hi,
                "length {} outside [{}, {hi}]",
                t.len(),
                min_allowed.max(4).min(lo)
            );
        }
        // Heterogeneity: not all lengths equal.
        let lens: std::collections::HashSet<usize> =
            city.dataset.trajectories.iter().map(Trajectory::len).collect();
        assert!(lens.len() > 5, "rate jitter should diversify lengths");
    }

    #[test]
    fn cluster_trips_stay_near_their_poi() {
        let spec = SynthSpec::hangzhou_like(100, 7);
        let city = spec.generate();
        let min_sep = min_pairwise_m(&city.pois);
        let mut near = 0usize;
        let mut total = 0usize;
        for (t, lab) in city.dataset.trajectories.iter().zip(&city.intended) {
            let Some(j) = lab else { continue };
            let poi = city.pois[*j];
            for p in &t.points {
                total += 1;
                if p.haversine_m(&poi) <= 0.6 * min_sep {
                    near += 1;
                }
            }
        }
        let frac = near as f64 / total as f64;
        assert!(frac > 0.85, "only {frac:.2} of points within the Alg-2 radius");
    }

    #[test]
    fn points_stay_inside_an_expanded_bbox() {
        let spec = SynthSpec::geolife_like(100, 9);
        let city = spec.generate();
        let (min_lat, min_lon, max_lat, max_lon) = spec.bbox;
        let pad_lat = 0.10 * (max_lat - min_lat);
        let pad_lon = 0.10 * (max_lon - min_lon);
        for t in &city.dataset.trajectories {
            for p in &t.points {
                assert!(p.lat >= min_lat - pad_lat && p.lat <= max_lat + pad_lat);
                assert!(p.lon >= min_lon - pad_lon && p.lon <= max_lon + pad_lon);
            }
        }
    }

    #[test]
    fn imbalanced_weights_skew_cluster_sizes() {
        let spec = SynthSpec::hangzhou_like(700, 11).imbalanced();
        let city = spec.generate();
        let mut sizes = vec![0usize; spec.num_clusters];
        for lab in city.intended.iter().flatten() {
            sizes[*lab] += 1;
        }
        let max = *sizes.iter().max().expect("non-empty");
        let min = *sizes.iter().min().expect("non-empty");
        assert_eq!(sizes.iter().position(|&s| s == max), Some(0));
        assert!(max as f64 / min.max(1) as f64 > 2.5, "sizes {sizes:?} not skewed");
    }

    #[test]
    fn outlier_fraction_roughly_honoured() {
        let mut spec = SynthSpec::porto_like(1000, 13);
        spec.outlier_fraction = 0.2;
        let city = spec.generate();
        let outliers = city.intended.iter().filter(|l| l.is_none()).count();
        let frac = outliers as f64 / 1000.0;
        assert!((frac - 0.2).abs() < 0.05, "outlier fraction {frac}");
    }

    #[test]
    fn pois_respect_minimum_separation() {
        let city = SynthSpec::porto_like(10, 5).generate();
        let min = min_pairwise_m(&city.pois);
        assert!(min > 500.0, "POIs too close: {min} m");
    }
}
