//! Spatial grid discretization (paper §V-B, "trajectory embedding").
//!
//! The space covered by a dataset is divided into disjoint equal-sized
//! square cells (default side 300 m, the paper's setting). Each cell is a
//! token labelled with a vocabulary id; a raw trajectory becomes the
//! sequence of ids of the cells its GPS points fall into.

use crate::point::{haversine_m, GpsPoint};
use crate::trajectory::{Dataset, Trajectory};
use serde::{Deserialize, Serialize};

/// A uniform spatial grid over a bounding box, defining the token
/// vocabulary `V`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Grid {
    min_lat: f64,
    min_lon: f64,
    /// Cell height in degrees of latitude.
    dlat: f64,
    /// Cell width in degrees of longitude.
    dlon: f64,
    nx: usize,
    ny: usize,
    cell_meters: f64,
}

impl Grid {
    /// Builds a grid with ~`cell_meters`-sided cells covering
    /// `(min_lat, min_lon) .. (max_lat, max_lon)`.
    ///
    /// # Panics
    /// Panics on an inverted box or non-positive cell size.
    ///
    /// A box that is degenerate along an axis (e.g. a perfectly horizontal
    /// trajectory) is padded to one cell along that axis.
    pub fn new(
        min_lat: f64,
        min_lon: f64,
        max_lat: f64,
        max_lon: f64,
        cell_meters: f64,
    ) -> Self {
        assert!(max_lat >= min_lat && max_lon >= min_lon, "inverted bounding box");
        assert!(cell_meters > 0.0, "cell size must be positive");
        let mid_lat = (min_lat + max_lat) / 2.0;
        // Degrees per cell, derived from meters at the box midpoint.
        let meters_per_deg_lat = haversine_m(mid_lat - 0.5, min_lon, mid_lat + 0.5, min_lon);
        let meters_per_deg_lon = haversine_m(mid_lat, min_lon, mid_lat, min_lon + 1.0);
        let dlat = cell_meters / meters_per_deg_lat;
        let dlon = cell_meters / meters_per_deg_lon;
        // Pad degenerate extents to a single cell.
        let (min_lat, max_lat) = if max_lat - min_lat < dlat {
            (mid_lat - dlat / 2.0, mid_lat + dlat / 2.0)
        } else {
            (min_lat, max_lat)
        };
        let mid_lon = (min_lon + max_lon) / 2.0;
        let (min_lon, max_lon) = if max_lon - min_lon < dlon {
            (mid_lon - dlon / 2.0, mid_lon + dlon / 2.0)
        } else {
            (min_lon, max_lon)
        };
        let ny = ((max_lat - min_lat) / dlat).ceil().max(1.0) as usize;
        let nx = ((max_lon - min_lon) / dlon).ceil().max(1.0) as usize;
        Self { min_lat, min_lon, dlat, dlon, nx, ny, cell_meters }
    }

    /// Builds a grid covering a dataset's bounding box with a margin of one
    /// cell on every side (so distorted points stay in vocabulary).
    ///
    /// # Panics
    /// Panics on an empty dataset.
    pub fn fit(dataset: &Dataset, cell_meters: f64) -> Self {
        let (min_lat, min_lon, max_lat, max_lon) =
            dataset.bbox().expect("cannot fit a grid to an empty dataset");
        let mut g = Self::new(min_lat, min_lon, max_lat, max_lon, cell_meters);
        // One-cell margin: regrow the box and rebuild.
        g = Self::new(
            min_lat - g.dlat,
            min_lon - g.dlon,
            max_lat + g.dlat,
            max_lon + g.dlon,
            cell_meters,
        );
        g
    }

    /// Vocabulary size `|V| = nx × ny`.
    pub fn vocab_size(&self) -> usize {
        self.nx * self.ny
    }

    /// Grid width in cells.
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Grid height in cells.
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Configured cell side length in meters.
    pub fn cell_meters(&self) -> f64 {
        self.cell_meters
    }

    /// Token id of the cell containing a point (clamped to the box).
    pub fn token(&self, p: &GpsPoint) -> usize {
        let iy = (((p.lat - self.min_lat) / self.dlat) as isize).clamp(0, self.ny as isize - 1)
            as usize;
        let ix = (((p.lon - self.min_lon) / self.dlon) as isize).clamp(0, self.nx as isize - 1)
            as usize;
        iy * self.nx + ix
    }

    /// `(ix, iy)` cell coordinates of a token.
    pub fn cell_xy(&self, token: usize) -> (usize, usize) {
        debug_assert!(token < self.vocab_size());
        (token % self.nx, token / self.nx)
    }

    /// Geographic center of a cell.
    pub fn cell_center(&self, token: usize) -> GpsPoint {
        let (ix, iy) = self.cell_xy(token);
        GpsPoint::new(
            self.min_lat + (iy as f64 + 0.5) * self.dlat,
            self.min_lon + (ix as f64 + 0.5) * self.dlon,
            0.0,
        )
    }

    /// Center-to-center distance between two cells in meters.
    pub fn cell_distance_m(&self, a: usize, b: usize) -> f64 {
        let (ax, ay) = self.cell_xy(a);
        let (bx, by) = self.cell_xy(b);
        let dx = (ax as f64 - bx as f64) * self.cell_meters;
        let dy = (ay as f64 - by as f64) * self.cell_meters;
        (dx * dx + dy * dy).sqrt()
    }

    /// The `k` nearest cells to `token` (by center distance, including the
    /// cell itself, which is always first). Used to restrict the Eq. 8 loss
    /// to the neighbourhood of the target cell.
    pub fn knn_cells(&self, token: usize, k: usize) -> Vec<usize> {
        let (cx, cy) = self.cell_xy(token);
        // Search an expanding square ring until we have enough candidates;
        // radius r rings contain (2r+1)^2 cells.
        let mut radius = 1usize;
        while (2 * radius + 1) * (2 * radius + 1) < k.saturating_mul(2) && radius < self.nx + self.ny
        {
            radius += 1;
        }
        let mut candidates: Vec<(f64, usize)> = Vec::new();
        let x0 = cx.saturating_sub(radius);
        let x1 = (cx + radius).min(self.nx - 1);
        let y0 = cy.saturating_sub(radius);
        let y1 = (cy + radius).min(self.ny - 1);
        for y in y0..=y1 {
            for x in x0..=x1 {
                let t = y * self.nx + x;
                candidates.push((self.cell_distance_m(token, t), t));
            }
        }
        candidates.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        candidates.truncate(k);
        candidates.into_iter().map(|(_, t)| t).collect()
    }

    /// Discretizes a trajectory into its token sequence. Consecutive
    /// duplicate tokens are collapsed (a slow or stopped object otherwise
    /// floods the sequence with repeats that carry no spatial information).
    pub fn tokenize(&self, t: &Trajectory) -> Vec<usize> {
        let mut out = Vec::with_capacity(t.len());
        for p in &t.points {
            let tok = self.token(p);
            if out.last() != Some(&tok) {
                out.push(tok);
            }
        }
        out
    }

    /// Discretizes a trajectory keeping duplicates (raw token stream).
    pub fn tokenize_raw(&self, t: &Trajectory) -> Vec<usize> {
        t.points.iter().map(|p| self.token(p)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> Grid {
        Grid::new(30.0, 120.0, 30.1, 120.1, 300.0)
    }

    #[test]
    fn vocab_size_matches_dims() {
        let g = grid();
        assert_eq!(g.vocab_size(), g.nx() * g.ny());
        assert!(g.vocab_size() > 100, "0.1 degree box should exceed 100 cells at 300 m");
    }

    #[test]
    fn token_roundtrip_through_cell_center() {
        let g = grid();
        for token in [0, 7, g.vocab_size() / 2, g.vocab_size() - 1] {
            let c = g.cell_center(token);
            assert_eq!(g.token(&c), token, "center of cell {token} must map back");
        }
    }

    #[test]
    fn out_of_box_points_are_clamped() {
        let g = grid();
        let below = GpsPoint::new(29.0, 119.0, 0.0);
        let above = GpsPoint::new(31.0, 121.0, 0.0);
        assert_eq!(g.token(&below), 0);
        assert_eq!(g.token(&above), g.vocab_size() - 1);
    }

    #[test]
    fn cell_distance_is_symmetric_and_zero_on_diagonal() {
        let g = grid();
        assert_eq!(g.cell_distance_m(5, 5), 0.0);
        assert_eq!(g.cell_distance_m(2, 9), g.cell_distance_m(9, 2));
    }

    #[test]
    fn knn_includes_self_first() {
        let g = grid();
        let t = g.vocab_size() / 2 + g.nx() / 2;
        let knn = g.knn_cells(t, 9);
        assert_eq!(knn.len(), 9);
        assert_eq!(knn[0], t);
        // The 8 immediate neighbors are all within sqrt(2) cell sizes.
        for &n in &knn[1..] {
            assert!(g.cell_distance_m(t, n) <= g.cell_meters() * 1.5);
        }
    }

    #[test]
    fn knn_near_corner_is_clipped_but_nonempty() {
        let g = grid();
        let knn = g.knn_cells(0, 9);
        assert_eq!(knn.len(), 9);
        assert_eq!(knn[0], 0);
    }

    #[test]
    fn tokenize_collapses_consecutive_duplicates() {
        let g = grid();
        let c = g.cell_center(10);
        let t = Trajectory::new(
            0,
            vec![
                GpsPoint::new(c.lat, c.lon, 0.0),
                GpsPoint::new(c.lat, c.lon, 5.0),
                GpsPoint::new(c.lat + 0.01, c.lon, 10.0),
            ],
        );
        let toks = g.tokenize(&t);
        assert_eq!(toks.len(), 2);
        assert_eq!(g.tokenize_raw(&t).len(), 3);
    }
}
