//! # traj-data — trajectory data substrate for E²DTC
//!
//! Everything the E²DTC pipeline needs *before* a neural network enters the
//! picture:
//!
//! - the raw data model ([`GpsPoint`], [`Trajectory`], [`Dataset`],
//!   [`LabeledDataset`]) — paper §IV;
//! - spatial [`grid::Grid`] discretization into a token vocabulary
//!   (300 m cells by default) — paper §V-B;
//! - the t2vec-style corruption augmentation (drop rate `r1`, distortion
//!   rate `r2`) in [`augment`] — paper §V-C;
//! - synthetic city generators emulating the statistics of the paper's
//!   GeoLife / Porto / Hangzhou datasets in [`synth`] (the datasets
//!   themselves are proprietary or unavailable; see DESIGN.md for the
//!   substitution argument);
//! - the ground-truth labelling Algorithm 2 in [`ground_truth`] — §VI;
//! - Table II / Table V statistics in [`stats`] and JSON/CSV I/O in [`io`].

#![warn(missing_docs)]

pub mod augment;
pub mod grid;
pub mod ground_truth;
pub mod io;
pub mod point;
pub mod preprocess;
pub mod projection;
pub mod stats;
pub mod synth;
pub mod trajectory;

pub use grid::Grid;
pub use ground_truth::{generate_ground_truth, GroundTruthConfig};
pub use point::GpsPoint;
pub use projection::Projector;
pub use synth::{GeneratedCity, SynthSpec};
pub use trajectory::{Dataset, LabeledDataset, Trajectory};
