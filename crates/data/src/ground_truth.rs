//! Ground-truth generation (paper §VI, Algorithm 2).
//!
//! Given a pure trajectory dataset and `k` POI cluster centers, the
//! algorithm sets every cluster's radius to `σ ×` the minimum pairwise
//! center distance, then assigns a trajectory `T_i` to the first cluster
//! `C_j` for which the fraction of `T_i`'s points inside `C_j`'s disc (its
//! *fallen rate*) reaches the threshold `λ`. Unassigned trajectories are
//! dropped from the labelled output `T'`.

use crate::point::GpsPoint;
use crate::trajectory::{Dataset, LabeledDataset, Trajectory};
use serde::{Deserialize, Serialize};

/// Parameters of Algorithm 2.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct GroundTruthConfig {
    /// Radius ratio `σ ∈ (0, 1]` — controls cluster area.
    pub sigma: f64,
    /// Fallen threshold `λ ∈ (0, 1]` — minimum in-disc point fraction.
    pub lambda: f64,
}

impl Default for GroundTruthConfig {
    /// The paper's experimental setting: `σ = 0.6`, `λ = 0.7` (§VII-A).
    fn default() -> Self {
        Self { sigma: 0.6, lambda: 0.7 }
    }
}

impl GroundTruthConfig {
    /// Creates a config, validating both parameters.
    ///
    /// # Panics
    /// Panics when either parameter is outside `(0, 1]`.
    pub fn new(sigma: f64, lambda: f64) -> Self {
        assert!(sigma > 0.0 && sigma <= 1.0, "σ must be in (0, 1], got {sigma}");
        assert!(lambda > 0.0 && lambda <= 1.0, "λ must be in (0, 1], got {lambda}");
        Self { sigma, lambda }
    }
}

/// Fraction of `t`'s points within `radius_m` of `center`
/// (the `rangeQuery` / `fallenRate` of Algorithm 2, lines 7–8).
pub fn fallen_rate(t: &Trajectory, center: &GpsPoint, radius_m: f64) -> f64 {
    if t.is_empty() {
        return 0.0;
    }
    let fallen = t.points.iter().filter(|p| p.haversine_m(center) <= radius_m).count();
    fallen as f64 / t.len() as f64
}

/// Runs Algorithm 2: labels each trajectory with the first cluster whose
/// disc contains at least `λ` of its points. Returns the labelled subset
/// `T'` plus, aligned with the *input* dataset, the per-trajectory
/// assignment (`None` = dropped as an outlier).
///
/// # Panics
/// Panics when `centers` is empty.
pub fn generate_ground_truth(
    dataset: &Dataset,
    centers: &[GpsPoint],
    cfg: GroundTruthConfig,
) -> (LabeledDataset, Vec<Option<usize>>) {
    assert!(!centers.is_empty(), "Algorithm 2 needs at least one cluster center");
    let radius = cluster_radius_m(centers, cfg.sigma);

    let mut kept = Vec::new();
    let mut labels = Vec::new();
    let mut assignment = Vec::with_capacity(dataset.len());
    for t in &dataset.trajectories {
        // Lines 5–11: traverse centers; first hit wins, then break.
        let mut assigned = None;
        for (j, c) in centers.iter().enumerate() {
            if fallen_rate(t, c, radius) >= cfg.lambda {
                assigned = Some(j);
                break;
            }
        }
        assignment.push(assigned);
        if let Some(j) = assigned {
            kept.push(t.clone());
            labels.push(j);
        }
    }
    (
        LabeledDataset {
            dataset: Dataset::new(format!("{}-labelled", dataset.name), kept),
            labels,
            num_clusters: centers.len(),
        },
        assignment,
    )
}

/// The common radius of Algorithm 2 (lines 2–4): `σ ×` minimum pairwise
/// center distance. With a single center a nominal 2 km city radius is
/// used.
pub fn cluster_radius_m(centers: &[GpsPoint], sigma: f64) -> f64 {
    let mut min = f64::INFINITY;
    for i in 0..centers.len() {
        for j in i + 1..centers.len() {
            min = min.min(centers[i].haversine_m(&centers[j]));
        }
    }
    if min.is_finite() {
        min * sigma
    } else {
        2_000.0 * sigma
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn circle_traj(id: u64, center: GpsPoint, radius_m: f64, n: usize) -> Trajectory {
        let points = (0..n)
            .map(|i| {
                let a = i as f64 / n as f64 * std::f64::consts::TAU;
                let p = center.offset_m(radius_m * a.cos(), radius_m * a.sin());
                GpsPoint::new(p.lat, p.lon, i as f64)
            })
            .collect();
        Trajectory::new(id, points)
    }

    fn centers() -> Vec<GpsPoint> {
        vec![GpsPoint::new(30.0, 120.0, 0.0), GpsPoint::new(30.0, 120.1, 0.0)]
    }

    #[test]
    fn fallen_rate_full_and_zero() {
        let c = GpsPoint::new(30.0, 120.0, 0.0);
        let inside = circle_traj(0, c, 100.0, 10);
        let outside = circle_traj(1, c, 50_000.0, 10);
        assert_eq!(fallen_rate(&inside, &c, 500.0), 1.0);
        assert_eq!(fallen_rate(&outside, &c, 500.0), 0.0);
    }

    #[test]
    fn radius_uses_min_pairwise_distance_times_sigma() {
        let cs = centers();
        let sep = cs[0].haversine_m(&cs[1]);
        let r = cluster_radius_m(&cs, 0.6);
        assert!((r - 0.6 * sep).abs() < 1e-6);
    }

    #[test]
    fn assigns_trajectories_to_their_enclosing_center() {
        let cs = centers();
        let radius = cluster_radius_m(&cs, 0.6);
        let t0 = circle_traj(0, cs[0], radius * 0.3, 20);
        let t1 = circle_traj(1, cs[1], radius * 0.3, 20);
        // Far outside both discs.
        let far = circle_traj(2, GpsPoint::new(31.0, 121.0, 0.0), 100.0, 20);
        let data = Dataset::new("t", vec![t0, t1, far]);
        let (labelled, assignment) =
            generate_ground_truth(&data, &cs, GroundTruthConfig::default());
        assert_eq!(assignment, vec![Some(0), Some(1), None]);
        assert_eq!(labelled.labels, vec![0, 1]);
        assert_eq!(labelled.len(), 2);
        assert_eq!(labelled.num_clusters, 2);
    }

    #[test]
    fn lambda_controls_partial_membership() {
        let cs = centers();
        let radius = cluster_radius_m(&cs, 0.6);
        // Half the points inside center 0's disc, half far away.
        let mut points = Vec::new();
        for i in 0..10 {
            let base = if i < 5 { cs[0] } else { GpsPoint::new(35.0, 125.0, 0.0) };
            points.push(GpsPoint::new(base.lat, base.lon, i as f64));
        }
        let t = Trajectory::new(0, points);
        let data = Dataset::new("t", vec![t]);
        let (_, strict) =
            generate_ground_truth(&data, &cs, GroundTruthConfig::new(0.6, 0.7));
        assert_eq!(strict, vec![None], "50 % fallen rate must fail λ = 0.7");
        let (_, lax) = generate_ground_truth(&data, &cs, GroundTruthConfig::new(0.6, 0.5));
        assert_eq!(lax, vec![Some(0)], "50 % fallen rate passes λ = 0.5");
        let _ = radius;
    }

    #[test]
    #[should_panic(expected = "σ must be in")]
    fn sigma_out_of_range_panics() {
        let _ = GroundTruthConfig::new(1.5, 0.7);
    }

    #[test]
    fn synth_presets_survive_algorithm_2() {
        // End-to-end: the generator's intended labels should largely agree
        // with Algorithm 2's output under the paper's σ/λ.
        let city = crate::synth::SynthSpec::hangzhou_like(200, 7).generate();
        let (labelled, assignment) =
            generate_ground_truth(&city.dataset, &city.pois, GroundTruthConfig::default());
        assert!(
            labelled.len() as f64 >= 0.7 * city.dataset.len() as f64,
            "only {}/{} trajectories labelled",
            labelled.len(),
            city.dataset.len()
        );
        // Among trajectories with both an intended and an assigned cluster,
        // agreement should be near-perfect.
        let mut agree = 0;
        let mut both = 0;
        for (i, a) in assignment.iter().enumerate() {
            if let (Some(x), Some(y)) = (city.intended[i], *a) {
                both += 1;
                if x == y {
                    agree += 1;
                }
            }
        }
        assert!(both > 0);
        let rate = agree as f64 / both as f64;
        assert!(rate > 0.95, "intended/assigned agreement only {rate:.2}");
    }
}
