//! Fixed-anchor equirectangular projection into planar meter coordinates.
//!
//! [`GpsPoint::euclid_approx_m`] re-derives an equirectangular frame from
//! the *midpoint latitude of every pair it touches*, which costs
//! `to_radians`/`cos` trig per DP cell. A [`Projector`] instead fixes the
//! frame once — anchored at the dataset mean latitude — so every point
//! projects to flat `(x, y)` meters in O(1) and all pairwise distances
//! become trig-free arithmetic. At city scale (≤ ~0.1° of latitude
//! spread) the anchored frame agrees with the per-pair midpoint frame to
//! well under 0.1 % (see `tests`), the same tolerance already accepted
//! for `euclid_approx_m` vs. haversine.

use crate::point::{GpsPoint, EARTH_RADIUS_M};
use crate::trajectory::Trajectory;

/// An equirectangular projection anchored at a fixed latitude.
///
/// Maps WGS-84 degrees to planar meters: `x = R·cos(anchor)·lon_rad`
/// (east), `y = R·lat_rad` (north). Distances between projected points
/// approximate geodesic distances with relative error
/// `≈ tan(anchor)·Δlat_anchor` — under 10⁻³ for city-scale data.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Projector {
    anchor_lat_deg: f64,
    /// Meters per radian of longitude at the anchor latitude.
    scale_x: f64,
}

impl Projector {
    /// Projection anchored at `anchor_lat_deg` degrees of latitude.
    pub fn new(anchor_lat_deg: f64) -> Self {
        Self { anchor_lat_deg, scale_x: EARTH_RADIUS_M * anchor_lat_deg.to_radians().cos() }
    }

    /// Projection anchored at the mean latitude over every point of every
    /// trajectory (the dataset anchor the distance engine uses). Falls
    /// back to the equator when there are no points.
    pub fn for_trajectories(trajectories: &[Trajectory]) -> Self {
        let mut sum = 0.0f64;
        let mut count = 0usize;
        for t in trajectories {
            for p in &t.points {
                sum += p.lat;
                count += 1;
            }
        }
        if count == 0 {
            Self::new(0.0)
        } else {
            Self::new(sum / count as f64)
        }
    }

    /// The anchor latitude in degrees.
    pub fn anchor_lat_deg(&self) -> f64 {
        self.anchor_lat_deg
    }

    /// Projects a point to `(x, y)` meters (east, north).
    #[inline]
    pub fn project(&self, p: &GpsPoint) -> (f64, f64) {
        (p.lon.to_radians() * self.scale_x, p.lat.to_radians() * EARTH_RADIUS_M)
    }

    /// Planar distance in meters between two points under this
    /// projection. Serves as the lat/lon-level oracle for the
    /// precomputed-buffer kernels in `traj-dist`.
    pub fn distance_m(&self, a: &GpsPoint, b: &GpsPoint) -> f64 {
        let (ax, ay) = self.project(a);
        let (bx, by) = self.project(b);
        let (dx, dy) = (ax - bx, ay - by);
        dx.hypot(dy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traj(coords: &[(f64, f64)]) -> Trajectory {
        Trajectory::new(
            0,
            coords
                .iter()
                .enumerate()
                .map(|(i, &(lat, lon))| GpsPoint::new(lat, lon, i as f64))
                .collect(),
        )
    }

    #[test]
    fn anchor_is_mean_latitude() {
        let ts = vec![traj(&[(30.0, 120.0), (30.2, 120.0)]), traj(&[(30.4, 120.0)])];
        let p = Projector::for_trajectories(&ts);
        assert!((p.anchor_lat_deg() - 30.2).abs() < 1e-12);
    }

    #[test]
    fn empty_dataset_anchors_at_equator() {
        assert_eq!(Projector::for_trajectories(&[]).anchor_lat_deg(), 0.0);
        assert_eq!(Projector::for_trajectories(&[Trajectory::new(0, vec![])]).anchor_lat_deg(), 0.0);
    }

    #[test]
    fn projected_distance_matches_midpoint_equirectangular_at_city_scale() {
        let proj = Projector::new(30.05);
        let a = GpsPoint::new(30.0, 120.0, 0.0);
        let b = GpsPoint::new(30.1, 120.1, 0.0);
        let anchored = proj.distance_m(&a, &b);
        let midpoint = a.euclid_approx_m(&b);
        assert!(
            (anchored - midpoint).abs() / midpoint < 1e-3,
            "anchored {anchored}, midpoint {midpoint}"
        );
    }

    #[test]
    fn projected_distance_matches_haversine_at_city_scale() {
        let proj = Projector::new(30.05);
        let a = GpsPoint::new(30.02, 120.03, 0.0);
        let b = GpsPoint::new(30.09, 120.08, 0.0);
        let h = a.haversine_m(&b);
        let d = proj.distance_m(&a, &b);
        assert!((h - d).abs() / h < 1e-3, "haversine {h}, projected {d}");
    }

    #[test]
    fn identical_points_project_identically() {
        let proj = Projector::new(30.0);
        let p = GpsPoint::new(30.05, 120.05, 3.0);
        assert_eq!(proj.distance_m(&p, &p), 0.0);
    }
}
