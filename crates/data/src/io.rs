//! Dataset (de)serialization.
//!
//! The paper releases its labelled datasets for further research; this
//! module provides the equivalent: JSON round-tripping of datasets and
//! labelled datasets, plus a simple per-point CSV export for external
//! tools (QGIS, pandas, …).

use crate::trajectory::{Dataset, LabeledDataset};
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Write};
use std::path::Path;

/// Saves a labelled dataset as pretty JSON.
pub fn save_labeled_json(data: &LabeledDataset, path: impl AsRef<Path>) -> io::Result<()> {
    let file = BufWriter::new(File::create(path)?);
    serde_json::to_writer_pretty(file, data).map_err(io::Error::other)
}

/// Loads a labelled dataset from JSON.
pub fn load_labeled_json(path: impl AsRef<Path>) -> io::Result<LabeledDataset> {
    let file = BufReader::new(File::open(path)?);
    serde_json::from_reader(file).map_err(io::Error::other)
}

/// Saves a raw dataset as pretty JSON.
pub fn save_dataset_json(data: &Dataset, path: impl AsRef<Path>) -> io::Result<()> {
    let file = BufWriter::new(File::create(path)?);
    serde_json::to_writer_pretty(file, data).map_err(io::Error::other)
}

/// Loads a raw dataset from JSON.
pub fn load_dataset_json(path: impl AsRef<Path>) -> io::Result<Dataset> {
    let file = BufReader::new(File::open(path)?);
    serde_json::from_reader(file).map_err(io::Error::other)
}

/// Exports a labelled dataset as flat CSV
/// (`traj_id,label,seq,lat,lon,time`), one row per GPS point.
pub fn export_labeled_csv(data: &LabeledDataset, path: impl AsRef<Path>) -> io::Result<()> {
    let mut file = BufWriter::new(File::create(path)?);
    writeln!(file, "traj_id,label,seq,lat,lon,time")?;
    for (t, &label) in data.dataset.trajectories.iter().zip(&data.labels) {
        for (seq, p) in t.points.iter().enumerate() {
            writeln!(file, "{},{},{},{:.7},{:.7},{:.1}", t.id, label, seq, p.lat, p.lon, p.time)?;
        }
    }
    file.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::GpsPoint;
    use crate::trajectory::Trajectory;

    fn sample() -> LabeledDataset {
        let t = Trajectory::new(
            7,
            vec![GpsPoint::new(30.123, 120.456, 0.0), GpsPoint::new(30.124, 120.457, 5.0)],
        );
        LabeledDataset {
            dataset: Dataset::new("sample", vec![t]),
            labels: vec![2],
            num_clusters: 3,
        }
    }

    #[test]
    fn labeled_json_roundtrip() {
        let dir = std::env::temp_dir().join("traj_data_io_test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("labeled.json");
        let data = sample();
        save_labeled_json(&data, &path).expect("save");
        let back = load_labeled_json(&path).expect("load");
        assert_eq!(back.labels, data.labels);
        assert_eq!(back.dataset.trajectories, data.dataset.trajectories);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn csv_export_has_header_and_rows() {
        let dir = std::env::temp_dir().join("traj_data_io_test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("export.csv");
        export_labeled_csv(&sample(), &path).expect("export");
        let text = std::fs::read_to_string(&path).expect("read");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "traj_id,label,seq,lat,lon,time");
        assert_eq!(lines.len(), 3);
        assert!(lines[1].starts_with("7,2,0,"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn load_missing_file_errors() {
        assert!(load_labeled_json("/nonexistent/nope.json").is_err());
    }
}
