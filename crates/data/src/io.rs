//! Dataset (de)serialization.
//!
//! The paper releases its labelled datasets for further research; this
//! module provides the equivalent: JSON round-tripping of datasets and
//! labelled datasets, plus per-point CSV export/import for external
//! tools (QGIS, pandas, …).
//!
//! Nothing here panics on malformed input: every parse failure surfaces
//! as an [`io::Error`] of kind [`io::ErrorKind::InvalidData`] naming the
//! offending line, so CLI tools and the bench harness can report and
//! continue instead of aborting.

use crate::point::GpsPoint;
use crate::trajectory::{Dataset, LabeledDataset, Trajectory};
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Saves a labelled dataset as pretty JSON.
pub fn save_labeled_json(data: &LabeledDataset, path: impl AsRef<Path>) -> io::Result<()> {
    let file = BufWriter::new(File::create(path)?);
    serde_json::to_writer_pretty(file, data).map_err(io::Error::other)
}

/// Loads a labelled dataset from JSON.
pub fn load_labeled_json(path: impl AsRef<Path>) -> io::Result<LabeledDataset> {
    let file = BufReader::new(File::open(path)?);
    serde_json::from_reader(file).map_err(io::Error::other)
}

/// Saves a raw dataset as pretty JSON.
pub fn save_dataset_json(data: &Dataset, path: impl AsRef<Path>) -> io::Result<()> {
    let file = BufWriter::new(File::create(path)?);
    serde_json::to_writer_pretty(file, data).map_err(io::Error::other)
}

/// Loads a raw dataset from JSON.
pub fn load_dataset_json(path: impl AsRef<Path>) -> io::Result<Dataset> {
    let file = BufReader::new(File::open(path)?);
    serde_json::from_reader(file).map_err(io::Error::other)
}

/// Exports a labelled dataset as flat CSV
/// (`traj_id,label,seq,lat,lon,time`), one row per GPS point.
pub fn export_labeled_csv(data: &LabeledDataset, path: impl AsRef<Path>) -> io::Result<()> {
    let mut file = BufWriter::new(File::create(path)?);
    writeln!(file, "traj_id,label,seq,lat,lon,time")?;
    for (t, &label) in data.dataset.trajectories.iter().zip(&data.labels) {
        for (seq, p) in t.points.iter().enumerate() {
            writeln!(file, "{},{},{},{:.7},{:.7},{:.1}", t.id, label, seq, p.lat, p.lon, p.time)?;
        }
    }
    file.flush()
}

/// Invalid-data error pointing at a 1-based CSV line.
fn bad_line(line_no: usize, line: &str, why: impl std::fmt::Display) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("CSV line {line_no}: {why} (`{line}`)"),
    )
}

/// Imports a labelled dataset from the flat CSV written by
/// [`export_labeled_csv`] (`traj_id,label,seq,lat,lon,time`, one row per
/// GPS point, consecutive rows per trajectory).
///
/// Malformed input — wrong field count, unparseable numbers, a label
/// that changes mid-trajectory, or a non-consecutive `seq` — returns an
/// [`io::ErrorKind::InvalidData`] error naming the offending line. No
/// input panics.
pub fn import_labeled_csv(path: impl AsRef<Path>) -> io::Result<LabeledDataset> {
    let file = BufReader::new(File::open(path)?);
    let mut lines = file.lines().enumerate();

    let (_, header) = lines
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "CSV file is empty"))?;
    let header = header?;
    if header.trim() != "traj_id,label,seq,lat,lon,time" {
        return Err(bad_line(1, &header, "expected header `traj_id,label,seq,lat,lon,time`"));
    }

    let mut trajectories: Vec<Trajectory> = Vec::new();
    let mut labels: Vec<usize> = Vec::new();
    // The trajectory currently being accumulated: (id, label, points).
    let mut current: Option<(u64, usize, Vec<GpsPoint>)> = None;

    for (idx, line) in lines {
        let line_no = idx + 1; // enumerate is 0-based, humans are not
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 6 {
            return Err(bad_line(line_no, &line, format!("expected 6 fields, found {}", fields.len())));
        }
        let parse = |what: &str, v: &str| -> io::Result<f64> {
            v.trim()
                .parse::<f64>()
                .map_err(|e| bad_line(line_no, &line, format!("bad {what} `{v}`: {e}")))
        };
        let traj_id: u64 = fields[0]
            .trim()
            .parse()
            .map_err(|e| bad_line(line_no, &line, format!("bad traj_id `{}`: {e}", fields[0])))?;
        let label: usize = fields[1]
            .trim()
            .parse()
            .map_err(|e| bad_line(line_no, &line, format!("bad label `{}`: {e}", fields[1])))?;
        let seq: usize = fields[2]
            .trim()
            .parse()
            .map_err(|e| bad_line(line_no, &line, format!("bad seq `{}`: {e}", fields[2])))?;
        let lat = parse("lat", fields[3])?;
        let lon = parse("lon", fields[4])?;
        let time = parse("time", fields[5])?;
        if !lat.is_finite() || !lon.is_finite() || !time.is_finite() {
            return Err(bad_line(line_no, &line, "non-finite coordinate"));
        }

        let same_trajectory = current.as_ref().is_some_and(|(id, _, _)| *id == traj_id);
        if !same_trajectory {
            if let Some((id, lbl, points)) = current.take() {
                trajectories.push(Trajectory::new(id, points));
                labels.push(lbl);
            }
            if seq != 0 {
                return Err(bad_line(line_no, &line, format!("trajectory {traj_id} starts at seq {seq}, expected 0")));
            }
            current = Some((traj_id, label, Vec::new()));
        }
        let (_, lbl, points) = current.as_mut().expect("set above");
        if *lbl != label {
            return Err(bad_line(line_no, &line, format!("label changes mid-trajectory ({lbl} → {label})")));
        }
        if seq != points.len() {
            return Err(bad_line(line_no, &line, format!("expected seq {}, found {seq}", points.len())));
        }
        points.push(GpsPoint::new(lat, lon, time));
    }
    if let Some((id, lbl, points)) = current.take() {
        trajectories.push(Trajectory::new(id, points));
        labels.push(lbl);
    }
    if trajectories.is_empty() {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "CSV holds no data rows"));
    }

    let num_clusters = labels.iter().max().map_or(0, |&m| m + 1);
    Ok(LabeledDataset {
        dataset: Dataset::new("csv-import", trajectories),
        labels,
        num_clusters,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::GpsPoint;
    use crate::trajectory::Trajectory;

    fn sample() -> LabeledDataset {
        let t = Trajectory::new(
            7,
            vec![GpsPoint::new(30.123, 120.456, 0.0), GpsPoint::new(30.124, 120.457, 5.0)],
        );
        LabeledDataset {
            dataset: Dataset::new("sample", vec![t]),
            labels: vec![2],
            num_clusters: 3,
        }
    }

    #[test]
    fn labeled_json_roundtrip() {
        let dir = std::env::temp_dir().join("traj_data_io_test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("labeled.json");
        let data = sample();
        save_labeled_json(&data, &path).expect("save");
        let back = load_labeled_json(&path).expect("load");
        assert_eq!(back.labels, data.labels);
        assert_eq!(back.dataset.trajectories, data.dataset.trajectories);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn csv_export_has_header_and_rows() {
        let dir = std::env::temp_dir().join("traj_data_io_test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("export.csv");
        export_labeled_csv(&sample(), &path).expect("export");
        let text = std::fs::read_to_string(&path).expect("read");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "traj_id,label,seq,lat,lon,time");
        assert_eq!(lines.len(), 3);
        assert!(lines[1].starts_with("7,2,0,"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn load_missing_file_errors() {
        assert!(load_labeled_json("/nonexistent/nope.json").is_err());
    }

    fn csv_path(name: &str, contents: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("traj_data_io_test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join(name);
        std::fs::write(&path, contents).expect("write");
        path
    }

    #[test]
    fn csv_roundtrip_preserves_everything() {
        let data = sample();
        let path = csv_path("roundtrip.csv", "");
        export_labeled_csv(&data, &path).expect("export");
        let back = import_labeled_csv(&path).expect("import");
        assert_eq!(back.labels, data.labels);
        assert_eq!(back.num_clusters, 3);
        assert_eq!(back.dataset.len(), 1);
        let (orig, imported) = (&data.dataset.trajectories[0], &back.dataset.trajectories[0]);
        assert_eq!(orig.id, imported.id);
        assert_eq!(orig.points.len(), imported.points.len());
        for (a, b) in orig.points.iter().zip(&imported.points) {
            assert!((a.lat - b.lat).abs() < 1e-7);
            assert!((a.lon - b.lon).abs() < 1e-7);
            assert!((a.time - b.time).abs() < 0.1);
        }
    }

    #[test]
    fn csv_import_rejects_bad_header() {
        let path = csv_path("badheader.csv", "id,cluster\n1,2\n");
        let err = import_labeled_csv(&path).expect_err("must fail");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("line 1"), "err: {err}");
    }

    #[test]
    fn csv_import_names_line_with_wrong_field_count() {
        let path = csv_path(
            "fields.csv",
            "traj_id,label,seq,lat,lon,time\n7,2,0,30.0,120.0,0.0\n7,2,1,30.1\n",
        );
        let err = import_labeled_csv(&path).expect_err("must fail");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let msg = err.to_string();
        assert!(msg.contains("line 3") && msg.contains("found 4"), "err: {msg}");
    }

    #[test]
    fn csv_import_names_line_with_unparseable_number() {
        let path = csv_path(
            "nan.csv",
            "traj_id,label,seq,lat,lon,time\n7,2,0,not-a-lat,120.0,0.0\n",
        );
        let err = import_labeled_csv(&path).expect_err("must fail");
        let msg = err.to_string();
        assert!(msg.contains("line 2") && msg.contains("bad lat"), "err: {msg}");
    }

    #[test]
    fn csv_import_rejects_mid_trajectory_label_change() {
        let path = csv_path(
            "labelflip.csv",
            "traj_id,label,seq,lat,lon,time\n7,2,0,30.0,120.0,0.0\n7,1,1,30.1,120.1,5.0\n",
        );
        let err = import_labeled_csv(&path).expect_err("must fail");
        let msg = err.to_string();
        assert!(msg.contains("line 3") && msg.contains("label changes"), "err: {msg}");
    }

    #[test]
    fn csv_import_rejects_seq_gap() {
        let path = csv_path(
            "seqgap.csv",
            "traj_id,label,seq,lat,lon,time\n7,2,0,30.0,120.0,0.0\n7,2,3,30.1,120.1,5.0\n",
        );
        let err = import_labeled_csv(&path).expect_err("must fail");
        let msg = err.to_string();
        assert!(msg.contains("line 3") && msg.contains("expected seq 1"), "err: {msg}");
    }

    #[test]
    fn csv_import_rejects_empty_file() {
        let path = csv_path("empty.csv", "");
        assert_eq!(
            import_labeled_csv(&path).expect_err("must fail").kind(),
            io::ErrorKind::InvalidData
        );
    }
}
