//! Trajectory preprocessing utilities.
//!
//! Real GPS feeds need cleanup before clustering: polyline simplification
//! (Douglas–Peucker), stay-point collapsing, splitting on recording gaps,
//! and speed-based outlier removal. The paper's pipeline consumes raw
//! trajectories, but any production adopter of this crate runs these
//! first; they are also handy for stress-testing the model's robustness
//! to preprocessing choices.

use crate::point::GpsPoint;
use crate::trajectory::Trajectory;

/// Douglas–Peucker polyline simplification with tolerance in meters.
///
/// Keeps the endpooints and every point whose perpendicular offset from
/// the current chord exceeds `tolerance_m`.
pub fn douglas_peucker(t: &Trajectory, tolerance_m: f64) -> Trajectory {
    if t.len() <= 2 {
        return t.clone();
    }
    let pts = &t.points;
    let mut keep = vec![false; pts.len()];
    keep[0] = true;
    keep[pts.len() - 1] = true;
    let mut stack = vec![(0usize, pts.len() - 1)];
    while let Some((lo, hi)) = stack.pop() {
        if hi <= lo + 1 {
            continue;
        }
        let (mut worst, mut worst_d) = (lo + 1, -1.0f64);
        for i in (lo + 1)..hi {
            let d = point_segment_distance_m(&pts[i], &pts[lo], &pts[hi]);
            if d > worst_d {
                worst_d = d;
                worst = i;
            }
        }
        if worst_d > tolerance_m {
            keep[worst] = true;
            stack.push((lo, worst));
            stack.push((worst, hi));
        }
    }
    Trajectory::new(
        t.id,
        pts.iter().zip(&keep).filter(|&(_, &k)| k).map(|(p, _)| *p).collect(),
    )
}

/// Perpendicular distance from `p` to the segment `a`–`b`, meters
/// (city-scale planar approximation).
pub fn point_segment_distance_m(p: &GpsPoint, a: &GpsPoint, b: &GpsPoint) -> f64 {
    // Project into meters relative to `a`.
    let mid_lat = a.lat.to_radians();
    let mx = |q: &GpsPoint| (q.lon - a.lon).to_radians() * mid_lat.cos() * crate::point::EARTH_RADIUS_M;
    let my = |q: &GpsPoint| (q.lat - a.lat).to_radians() * crate::point::EARTH_RADIUS_M;
    let (px, py) = (mx(p), my(p));
    let (bx, by) = (mx(b), my(b));
    let len_sq = bx * bx + by * by;
    if len_sq <= f64::EPSILON {
        return (px * px + py * py).sqrt();
    }
    let u = ((px * bx + py * by) / len_sq).clamp(0.0, 1.0);
    let (dx, dy) = (px - u * bx, py - u * by);
    (dx * dx + dy * dy).sqrt()
}

/// Collapses *stay points*: maximal runs of consecutive points that stay
/// within `radius_m` of the run's first point for at least `min_stay_s`
/// seconds are replaced by a single representative (their centroid, kept
/// at the run's start time).
pub fn collapse_stay_points(t: &Trajectory, radius_m: f64, min_stay_s: f64) -> Trajectory {
    let pts = &t.points;
    let mut out: Vec<GpsPoint> = Vec::with_capacity(pts.len());
    let mut i = 0;
    while i < pts.len() {
        let anchor = pts[i];
        let mut j = i + 1;
        while j < pts.len() && pts[j].haversine_m(&anchor) <= radius_m {
            j += 1;
        }
        let dwell = pts[j - 1].time - anchor.time;
        if j - i >= 2 && dwell >= min_stay_s {
            // Replace the run with its centroid.
            let n = (j - i) as f64;
            let lat = pts[i..j].iter().map(|p| p.lat).sum::<f64>() / n;
            let lon = pts[i..j].iter().map(|p| p.lon).sum::<f64>() / n;
            out.push(GpsPoint::new(lat, lon, anchor.time));
        } else {
            out.extend_from_slice(&pts[i..j]);
        }
        i = j;
    }
    Trajectory::new(t.id, out)
}

/// Splits a trajectory wherever consecutive samples are more than
/// `max_gap_s` seconds apart (recording interruptions). Segments shorter
/// than `min_points` are dropped. Sub-trajectory ids are derived from the
/// parent id.
pub fn split_on_gaps(t: &Trajectory, max_gap_s: f64, min_points: usize) -> Vec<Trajectory> {
    let mut out = Vec::new();
    let mut current: Vec<GpsPoint> = Vec::new();
    let mut part = 0u64;
    let mut flush = |buf: &mut Vec<GpsPoint>, part: &mut u64| {
        if buf.len() >= min_points.max(1) {
            out.push(Trajectory::new(t.id * 1000 + *part, std::mem::take(buf)));
            *part += 1;
        } else {
            buf.clear();
        }
    };
    for p in &t.points {
        if let Some(last) = current.last() {
            if p.time - last.time > max_gap_s {
                flush(&mut current, &mut part);
            }
        }
        current.push(*p);
    }
    flush(&mut current, &mut part);
    out
}

/// Removes points implying a physically impossible speed from their
/// predecessor (GPS teleports). The first point is always kept.
pub fn remove_speed_outliers(t: &Trajectory, max_speed_mps: f64) -> Trajectory {
    let mut out: Vec<GpsPoint> = Vec::with_capacity(t.len());
    for p in &t.points {
        match out.last() {
            None => out.push(*p),
            Some(prev) => {
                let dt = (p.time - prev.time).max(1e-9);
                let v = prev.haversine_m(p) / dt;
                if v <= max_speed_mps {
                    out.push(*p);
                }
            }
        }
    }
    Trajectory::new(t.id, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traj(points: &[(f64, f64, f64)]) -> Trajectory {
        Trajectory::new(
            9,
            points.iter().map(|&(lat, lon, t)| GpsPoint::new(lat, lon, t)).collect(),
        )
    }

    #[test]
    fn douglas_peucker_keeps_straight_line_endpoints_only() {
        let t = traj(&[
            (30.0, 120.0, 0.0),
            (30.0, 120.01, 1.0),
            (30.0, 120.02, 2.0),
            (30.0, 120.03, 3.0),
        ]);
        let s = douglas_peucker(&t, 10.0);
        assert_eq!(s.len(), 2);
        assert_eq!(s.points[0], t.points[0]);
        assert_eq!(s.points[1], t.points[3]);
    }

    #[test]
    fn douglas_peucker_preserves_significant_corners() {
        // An L-shaped path: the corner must survive.
        let t = traj(&[
            (30.0, 120.0, 0.0),
            (30.0, 120.02, 1.0),
            (30.02, 120.02, 2.0),
        ]);
        let s = douglas_peucker(&t, 10.0);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn douglas_peucker_tolerance_monotone() {
        let t = traj(&[
            (30.0, 120.0, 0.0),
            (30.001, 120.01, 1.0),
            (30.0, 120.02, 2.0),
            (30.002, 120.03, 3.0),
            (30.0, 120.04, 4.0),
        ]);
        let fine = douglas_peucker(&t, 5.0);
        let coarse = douglas_peucker(&t, 5000.0);
        assert!(coarse.len() <= fine.len());
        assert_eq!(coarse.len(), 2);
    }

    #[test]
    fn stay_points_collapse_to_centroid() {
        // 5 samples dwelling at one spot for 100 s, then a move.
        let t = traj(&[
            (30.0, 120.0, 0.0),
            (30.00001, 120.00001, 30.0),
            (30.00002, 120.0, 60.0),
            (30.0, 120.00002, 100.0),
            (30.05, 120.05, 130.0),
        ]);
        let c = collapse_stay_points(&t, 50.0, 60.0);
        assert_eq!(c.len(), 2, "dwell run should collapse to one point");
        assert_eq!(c.points[0].time, 0.0);
        assert!(c.points[0].haversine_m(&t.points[0]) < 10.0);
    }

    #[test]
    fn short_dwell_is_not_collapsed() {
        let t = traj(&[
            (30.0, 120.0, 0.0),
            (30.00001, 120.0, 5.0),
            (30.05, 120.05, 10.0),
        ]);
        let c = collapse_stay_points(&t, 50.0, 60.0);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn split_on_gaps_breaks_at_interruption() {
        let t = traj(&[
            (30.0, 120.0, 0.0),
            (30.001, 120.0, 5.0),
            (30.002, 120.0, 10.0),
            // 10 minute gap
            (30.1, 120.1, 610.0),
            (30.101, 120.1, 615.0),
        ]);
        let parts = split_on_gaps(&t, 60.0, 2);
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].len(), 3);
        assert_eq!(parts[1].len(), 2);
        assert_ne!(parts[0].id, parts[1].id);
    }

    #[test]
    fn split_drops_undersized_segments() {
        let t = traj(&[(30.0, 120.0, 0.0), (30.1, 120.1, 1000.0)]);
        let parts = split_on_gaps(&t, 60.0, 2);
        assert!(parts.is_empty(), "two singleton segments must be dropped");
    }

    #[test]
    fn speed_outliers_are_removed() {
        // Middle point implies ~11 km/s.
        let t = traj(&[
            (30.0, 120.0, 0.0),
            (30.1, 120.0, 1.0),
            (30.0005, 120.0, 2.0),
        ]);
        let clean = remove_speed_outliers(&t, 50.0);
        assert_eq!(clean.len(), 2);
        assert_eq!(clean.points[0], t.points[0]);
        assert_eq!(clean.points[1], t.points[2]);
    }

    #[test]
    fn segment_distance_degenerate_segment() {
        let p = GpsPoint::new(30.01, 120.0, 0.0);
        let a = GpsPoint::new(30.0, 120.0, 0.0);
        let d = point_segment_distance_m(&p, &a, &a);
        assert!((d - p.haversine_m(&a)).abs() < 5.0);
    }
}
