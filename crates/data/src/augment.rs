//! Training-time trajectory augmentation (paper §V-C).
//!
//! Following t2vec, the pre-training phase feeds the model corrupted
//! trajectories and asks it to reconstruct the originals: points are
//! randomly **dropped** with rate `r1` (simulating a low sampling rate) and
//! the survivors are randomly **distorted** with rate `r2` by adding
//! Gaussian noise (simulating GPS error). With the paper's grids
//! `r1, r2 ∈ {0, 0.2, 0.4, 0.6}` each trajectory yields 16 `(T'_a, T_a)`
//! pairs.

use crate::trajectory::Trajectory;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The paper's rate grid for both dropping and distorting.
pub const PAPER_RATES: [f64; 4] = [0.0, 0.2, 0.4, 0.6];

/// Augmentation configuration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AugmentConfig {
    /// Dropping rates `r1` to sweep.
    pub drop_rates: Vec<f64>,
    /// Distortion rates `r2` to sweep.
    pub distort_rates: Vec<f64>,
    /// Std-dev of the Gaussian noise added to distorted points, meters.
    pub noise_std_m: f64,
}

impl Default for AugmentConfig {
    fn default() -> Self {
        Self {
            drop_rates: PAPER_RATES.to_vec(),
            distort_rates: PAPER_RATES.to_vec(),
            noise_std_m: 50.0,
        }
    }
}

impl AugmentConfig {
    /// A reduced two-rate grid (4 pairs per trajectory) for fast tests and
    /// scaled-down experiments.
    pub fn light() -> Self {
        Self { drop_rates: vec![0.0, 0.4], distort_rates: vec![0.0, 0.4], noise_std_m: 50.0 }
    }

    /// Number of `(T', T)` pairs produced per trajectory.
    pub fn pairs_per_trajectory(&self) -> usize {
        self.drop_rates.len() * self.distort_rates.len()
    }
}

/// Randomly removes points with probability `rate`, always keeping the
/// first and last points so the trip's endpoints survive.
pub fn downsample(t: &Trajectory, rate: f64, rng: &mut impl Rng) -> Trajectory {
    let n = t.points.len();
    if n <= 2 || rate <= 0.0 {
        return t.clone();
    }
    let mut points = Vec::with_capacity(n);
    for (i, p) in t.points.iter().enumerate() {
        let keep = i == 0 || i == n - 1 || rng.gen::<f64>() >= rate;
        if keep {
            points.push(*p);
        }
    }
    Trajectory::new(t.id, points)
}

/// With probability `rate` per point, adds isotropic Gaussian noise with
/// std-dev `noise_std_m` meters.
pub fn distort(t: &Trajectory, rate: f64, noise_std_m: f64, rng: &mut impl Rng) -> Trajectory {
    if rate <= 0.0 || noise_std_m <= 0.0 {
        return t.clone();
    }
    let points = t
        .points
        .iter()
        .map(|p| {
            if rng.gen::<f64>() < rate {
                let dx = gaussian(rng) * noise_std_m;
                let dy = gaussian(rng) * noise_std_m;
                p.offset_m(dx, dy)
            } else {
                *p
            }
        })
        .collect();
    Trajectory::new(t.id, points)
}

/// Applies drop-then-distort, producing one corrupted variant `T'_a`.
pub fn corrupt(
    t: &Trajectory,
    drop_rate: f64,
    distort_rate: f64,
    noise_std_m: f64,
    rng: &mut impl Rng,
) -> Trajectory {
    let down = downsample(t, drop_rate, rng);
    distort(&down, distort_rate, noise_std_m, rng)
}

/// Produces the full `(T'_a, T_a)` pair sweep for a trajectory
/// (16 pairs with the paper's rates).
pub fn augmentation_pairs(
    t: &Trajectory,
    cfg: &AugmentConfig,
    rng: &mut impl Rng,
) -> Vec<(Trajectory, Trajectory)> {
    let mut out = Vec::with_capacity(cfg.pairs_per_trajectory());
    for &r1 in &cfg.drop_rates {
        for &r2 in &cfg.distort_rates {
            out.push((corrupt(t, r1, r2, cfg.noise_std_m, rng), t.clone()));
        }
    }
    out
}

/// One standard-normal sample (Box–Muller; duplicated from `traj-nn` to
/// keep the data crate free of the NN dependency).
fn gaussian(rng: &mut impl Rng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::GpsPoint;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn line_traj(n: usize) -> Trajectory {
        Trajectory::new(
            0,
            (0..n)
                .map(|i| GpsPoint::new(30.0 + i as f64 * 1e-3, 120.0, i as f64 * 5.0))
                .collect(),
        )
    }

    #[test]
    fn downsample_keeps_endpoints() {
        let mut rng = StdRng::seed_from_u64(0);
        let t = line_traj(50);
        let d = downsample(&t, 0.9, &mut rng);
        assert_eq!(d.points.first(), t.points.first());
        assert_eq!(d.points.last(), t.points.last());
        assert!(d.len() < t.len());
        assert!(d.len() >= 2);
    }

    #[test]
    fn downsample_rate_zero_is_identity() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = line_traj(20);
        assert_eq!(downsample(&t, 0.0, &mut rng), t);
    }

    #[test]
    fn downsample_expected_survivors() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = line_traj(2000);
        let d = downsample(&t, 0.4, &mut rng);
        let frac = d.len() as f64 / t.len() as f64;
        assert!((frac - 0.6).abs() < 0.05, "survivor fraction {frac}");
    }

    #[test]
    fn distort_moves_points_bounded_by_noise() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = line_traj(100);
        let d = distort(&t, 1.0, 30.0, &mut rng);
        assert_eq!(d.len(), t.len());
        let mut moved = 0;
        for (a, b) in t.points.iter().zip(&d.points) {
            let dist = a.haversine_m(b);
            assert!(dist < 30.0 * 6.0, "6-sigma bound violated: {dist}");
            if dist > 0.0 {
                moved += 1;
            }
        }
        assert!(moved > 90, "rate 1.0 should move nearly every point");
    }

    #[test]
    fn distort_preserves_timestamps() {
        let mut rng = StdRng::seed_from_u64(4);
        let t = line_traj(10);
        let d = distort(&t, 1.0, 30.0, &mut rng);
        for (a, b) in t.points.iter().zip(&d.points) {
            assert_eq!(a.time, b.time);
        }
    }

    #[test]
    fn paper_rate_grid_yields_16_pairs() {
        let mut rng = StdRng::seed_from_u64(5);
        let t = line_traj(30);
        let pairs = augmentation_pairs(&t, &AugmentConfig::default(), &mut rng);
        assert_eq!(pairs.len(), 16);
        // Targets are always the original.
        assert!(pairs.iter().all(|(_, tgt)| *tgt == t));
        // The (0, 0) pair is the identity corruption.
        assert_eq!(pairs[0].0, t);
    }
}
