//! Property-based invariants of the classical distance metrics.

use proptest::prelude::*;
use traj_data::{GpsPoint, Trajectory};
use traj_dist::{dtw, edr, hausdorff, lcss, Metric};

/// Strategy: a trajectory of 1..12 points within a small city box.
fn trajectory() -> impl Strategy<Value = Trajectory> {
    prop::collection::vec((30.0f64..30.1, 120.0f64..120.1), 1..12).prop_map(|pts| {
        Trajectory::new(
            0,
            pts.into_iter()
                .enumerate()
                .map(|(i, (lat, lon))| GpsPoint::new(lat, lon, i as f64))
                .collect(),
        )
    })
}

proptest! {
    #[test]
    fn all_metrics_are_symmetric(a in trajectory(), b in trajectory()) {
        for m in Metric::paper_baselines(150.0) {
            let ab = m.distance(&a, &b);
            let ba = m.distance(&b, &a);
            prop_assert!((ab - ba).abs() < 1e-9, "{} asymmetric: {ab} vs {ba}", m.name());
        }
    }

    #[test]
    fn all_metrics_vanish_on_identity(a in trajectory()) {
        for m in Metric::paper_baselines(150.0) {
            prop_assert_eq!(m.distance(&a, &a), 0.0, "{} nonzero on identity", m.name());
        }
    }

    #[test]
    fn all_metrics_are_nonnegative_and_finite(a in trajectory(), b in trajectory()) {
        for m in Metric::paper_baselines(150.0) {
            let d = m.distance(&a, &b);
            prop_assert!(d >= 0.0 && d.is_finite(), "{} produced {d}", m.name());
        }
    }

    #[test]
    fn edr_bounded_by_max_length(a in trajectory(), b in trajectory()) {
        let d = edr::edr(&a, &b, 150.0);
        prop_assert!(d <= a.len().max(b.len()) as f64);
        // And at least the length difference (each unmatched point costs 1).
        prop_assert!(d >= (a.len() as f64 - b.len() as f64).abs());
    }

    #[test]
    fn lcss_distance_in_unit_interval(a in trajectory(), b in trajectory()) {
        let d = lcss::lcss_distance(&a, &b, 150.0);
        prop_assert!((0.0..=1.0).contains(&d));
    }

    #[test]
    fn lcss_length_bounded_by_min_len(a in trajectory(), b in trajectory()) {
        let l = lcss::lcss_length(&a, &b, 150.0, None);
        prop_assert!(l <= a.len().min(b.len()));
    }

    #[test]
    fn lcss_delta_constraint_never_increases_match(a in trajectory(), b in trajectory()) {
        let free = lcss::lcss_length(&a, &b, 150.0, None);
        let constrained = lcss::lcss_length(&a, &b, 150.0, Some(2));
        prop_assert!(constrained <= free);
    }

    #[test]
    fn dtw_at_least_max_pointwise_min(a in trajectory(), b in trajectory()) {
        // DTW aligns every point, so it is at least the largest
        // min-distance any single point has to the other trajectory.
        let d = dtw::dtw(&a, &b);
        let h = hausdorff::directed_hausdorff(&a, &b);
        prop_assert!(d + 1e-6 >= h, "dtw {d} < directed hausdorff {h}");
    }

    #[test]
    fn hausdorff_triangle_inequality(
        a in trajectory(),
        b in trajectory(),
        c in trajectory(),
    ) {
        // Hausdorff over point sets is a metric: d(a,c) <= d(a,b) + d(b,c).
        let ab = hausdorff::hausdorff(&a, &b);
        let bc = hausdorff::hausdorff(&b, &c);
        let ac = hausdorff::hausdorff(&a, &c);
        prop_assert!(ac <= ab + bc + 1e-6, "triangle violated: {ac} > {ab} + {bc}");
    }

    #[test]
    fn concatenating_a_point_changes_edr_by_at_most_one(a in trajectory(), b in trajectory()) {
        let base = edr::edr(&a, &b, 150.0);
        let mut extended = b.clone();
        extended.points.push(*a.points.first().expect("non-empty"));
        // Re-sort times to keep the invariant (appended point gets last time).
        let t_last = extended.points[extended.points.len() - 2].time + 1.0;
        extended.points.last_mut().expect("non-empty").time = t_last;
        let ext = edr::edr(&a, &extended, 150.0);
        prop_assert!((ext - base).abs() <= 1.0 + 1e-9);
    }
}

mod extension_metrics {
    use super::trajectory;
    use proptest::prelude::*;
    use traj_data::GpsPoint;
    use traj_dist::{erp, frechet, hausdorff};

    proptest! {
        #[test]
        fn erp_is_a_metric(a in trajectory(), b in trajectory(), c in trajectory()) {
            let g = GpsPoint::new(30.05, 120.05, 0.0);
            let ab = erp::erp(&a, &b, &g);
            let ba = erp::erp(&b, &a, &g);
            prop_assert!((ab - ba).abs() < 1e-6, "asymmetric: {ab} vs {ba}");
            prop_assert_eq!(erp::erp(&a, &a, &g), 0.0);
            let bc = erp::erp(&b, &c, &g);
            let ac = erp::erp(&a, &c, &g);
            prop_assert!(ac <= ab + bc + 1e-6, "triangle violated");
        }

        #[test]
        fn frechet_dominates_hausdorff(a in trajectory(), b in trajectory()) {
            prop_assert!(
                hausdorff::hausdorff(&a, &b) <= frechet::frechet(&a, &b) + 1e-6
            );
        }

        #[test]
        fn frechet_symmetric_and_nonnegative(a in trajectory(), b in trajectory()) {
            let ab = frechet::frechet(&a, &b);
            prop_assert!((ab - frechet::frechet(&b, &a)).abs() < 1e-9);
            prop_assert!(ab >= 0.0 && ab.is_finite());
            prop_assert_eq!(frechet::frechet(&a, &a), 0.0);
        }
    }
}
