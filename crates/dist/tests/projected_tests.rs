//! Property tests pinning the projected engine to its oracles.
//!
//! Two layers of agreement are proven on random city-scale trajectories:
//!
//! 1. **Exactness of the rewrite** — each projected kernel matches a
//!    *naive full-table* DP evaluated from raw lat/lon through the same
//!    anchored [`Projector`] (per-pair trig, no rolling rows, no
//!    squared-distance tricks) to 1e-6 relative error (EDR/LCSS edit
//!    counts match exactly).
//! 2. **Projection tolerance** — the projected kernels track the
//!    original per-pair-midpoint lat/lon references within the
//!    documented < 0.1 % envelope (DESIGN.md §12); for the thresholded
//!    metrics the edit counts may only differ by the number of
//!    near-threshold pairs.
//!
//! Plus: the knn pruning cascade returns exactly the brute-force result.

use proptest::prelude::*;
use traj_data::{GpsPoint, Projector, Trajectory};
use traj_dist::{dtw, edr, erp, frechet, hausdorff, knn, lcss, Metric, ProjectedTraj};

/// Strategy: a trajectory of 1..12 points within a small city box.
fn trajectory() -> impl Strategy<Value = Trajectory> {
    prop::collection::vec((30.0f64..30.1, 120.0f64..120.1), 1..12).prop_map(|pts| {
        Trajectory::new(
            0,
            pts.into_iter()
                .enumerate()
                .map(|(i, (lat, lon))| GpsPoint::new(lat, lon, i as f64))
                .collect(),
        )
    })
}

fn project_pair(a: &Trajectory, b: &Trajectory) -> (Projector, ProjectedTraj, ProjectedTraj) {
    let (projector, mut ps) = ProjectedTraj::project_all(&[a.clone(), b.clone()]);
    let pb = ps.pop().expect("two");
    let pa = ps.pop().expect("two");
    (projector, pa, pb)
}

fn assert_close(projected: f64, oracle: f64, what: &str) {
    let tol = 1e-6 * oracle.abs() + 1e-9;
    assert!(
        (projected - oracle).abs() <= tol,
        "{what}: projected {projected} vs anchored oracle {oracle}"
    );
}

// ---- naive full-table anchored oracles -------------------------------
//
// Deliberately different implementation shape from the kernels: full
// (n+1)×(m+1) tables, per-cell `Projector::distance_m` (anchored trig),
// plain `<=` threshold on the un-squared distance.

fn naive_dtw(a: &Trajectory, b: &Trajectory, p: &Projector, band: Option<usize>) -> f64 {
    let (n, m) = (a.len(), b.len());
    match (n, m) {
        (0, 0) => return 0.0,
        (0, _) | (_, 0) => return f64::INFINITY,
        _ => {}
    }
    let w = band.map_or(n.max(m), |bw| bw.max(n.abs_diff(m)));
    let mut table = vec![vec![f64::INFINITY; m + 1]; n + 1];
    table[0][0] = 0.0;
    for i in 1..=n {
        for j in 1..=m {
            if i.abs_diff(j) > w {
                continue;
            }
            let cost = p.distance_m(&a.points[i - 1], &b.points[j - 1]);
            let best = table[i - 1][j].min(table[i][j - 1]).min(table[i - 1][j - 1]);
            table[i][j] = cost + best;
        }
    }
    table[n][m]
}

fn naive_edr(a: &Trajectory, b: &Trajectory, p: &Projector, eps_m: f64) -> f64 {
    let (n, m) = (a.len(), b.len());
    let mut table = vec![vec![0.0f64; m + 1]; n + 1];
    for (i, row) in table.iter_mut().enumerate() {
        row[0] = i as f64;
    }
    for (j, cell) in table[0].iter_mut().enumerate() {
        *cell = j as f64;
    }
    for i in 1..=n {
        for j in 1..=m {
            let sub = if p.distance_m(&a.points[i - 1], &b.points[j - 1]) <= eps_m {
                0.0
            } else {
                1.0
            };
            table[i][j] = (table[i - 1][j - 1] + sub)
                .min(table[i - 1][j] + 1.0)
                .min(table[i][j - 1] + 1.0);
        }
    }
    table[n][m]
}

fn naive_lcss_len(a: &Trajectory, b: &Trajectory, p: &Projector, eps_m: f64) -> usize {
    let (n, m) = (a.len(), b.len());
    let mut table = vec![vec![0usize; m + 1]; n + 1];
    for i in 1..=n {
        for j in 1..=m {
            table[i][j] = if p.distance_m(&a.points[i - 1], &b.points[j - 1]) <= eps_m {
                table[i - 1][j - 1] + 1
            } else {
                table[i - 1][j].max(table[i][j - 1])
            };
        }
    }
    table[n][m]
}

fn naive_hausdorff(a: &Trajectory, b: &Trajectory, p: &Projector) -> f64 {
    let directed = |x: &Trajectory, y: &Trajectory| -> f64 {
        x.points
            .iter()
            .map(|px| {
                y.points
                    .iter()
                    .map(|py| p.distance_m(px, py))
                    .fold(f64::INFINITY, f64::min)
            })
            .fold(0.0, f64::max)
    };
    directed(a, b).max(directed(b, a))
}

fn naive_frechet(a: &Trajectory, b: &Trajectory, p: &Projector) -> f64 {
    let (n, m) = (a.len(), b.len());
    let mut table = vec![vec![f64::INFINITY; m]; n];
    for i in 0..n {
        for j in 0..m {
            let d = p.distance_m(&a.points[i], &b.points[j]);
            let prefix = if i == 0 && j == 0 {
                0.0
            } else if i == 0 {
                table[i][j - 1]
            } else if j == 0 {
                table[i - 1][j]
            } else {
                table[i - 1][j].min(table[i][j - 1]).min(table[i - 1][j - 1])
            };
            table[i][j] = d.max(prefix);
        }
    }
    table[n - 1][m - 1]
}

fn naive_erp(a: &Trajectory, b: &Trajectory, p: &Projector) -> f64 {
    // Same pair-mean gap reference as `erp_origin`.
    let total = (a.len() + b.len()).max(1) as f64;
    let (mut lat, mut lon) = (0.0, 0.0);
    for q in a.points.iter().chain(&b.points) {
        lat += q.lat;
        lon += q.lon;
    }
    let g = GpsPoint::new(lat / total, lon / total, 0.0);
    let (n, m) = (a.len(), b.len());
    let mut table = vec![vec![0.0f64; m + 1]; n + 1];
    for i in 1..=n {
        table[i][0] = table[i - 1][0] + p.distance_m(&a.points[i - 1], &g);
    }
    for j in 1..=m {
        table[0][j] = table[0][j - 1] + p.distance_m(&b.points[j - 1], &g);
    }
    for i in 1..=n {
        for j in 1..=m {
            let mat = table[i - 1][j - 1] + p.distance_m(&a.points[i - 1], &b.points[j - 1]);
            let gap_b = table[i - 1][j] + p.distance_m(&a.points[i - 1], &g);
            let gap_a = table[i][j - 1] + p.distance_m(&b.points[j - 1], &g);
            table[i][j] = mat.min(gap_b).min(gap_a);
        }
    }
    table[n][m]
}

const EPS_M: f64 = 150.0;

proptest! {
    // ---- layer 1: projected kernels == anchored naive oracles ----

    #[test]
    fn projected_dtw_matches_anchored_oracle(a in trajectory(), b in trajectory()) {
        let (p, pa, pb) = project_pair(&a, &b);
        assert_close(dtw::dtw_projected(&pa, &pb), naive_dtw(&a, &b, &p, None), "dtw");
    }

    #[test]
    fn projected_banded_dtw_matches_anchored_oracle(
        a in trajectory(),
        b in trajectory(),
        band in 0usize..6,
    ) {
        let (p, pa, pb) = project_pair(&a, &b);
        assert_close(
            dtw::dtw_projected_banded(&pa, &pb, band),
            naive_dtw(&a, &b, &p, Some(band)),
            "banded dtw",
        );
    }

    #[test]
    fn projected_edr_matches_anchored_oracle(a in trajectory(), b in trajectory()) {
        let (p, pa, pb) = project_pair(&a, &b);
        prop_assert_eq!(edr::edr_projected(&pa, &pb, EPS_M), naive_edr(&a, &b, &p, EPS_M));
    }

    #[test]
    fn projected_lcss_matches_anchored_oracle(a in trajectory(), b in trajectory()) {
        let (p, pa, pb) = project_pair(&a, &b);
        prop_assert_eq!(
            lcss::lcss_projected_length(&pa, &pb, EPS_M, None),
            naive_lcss_len(&a, &b, &p, EPS_M)
        );
        let denom = a.len().min(b.len()) as f64;
        let expect = 1.0 - naive_lcss_len(&a, &b, &p, EPS_M) as f64 / denom;
        let got = lcss::lcss_projected_distance(&pa, &pb, EPS_M);
        prop_assert!((got - expect).abs() < 1e-12);
    }

    #[test]
    fn projected_hausdorff_matches_anchored_oracle(a in trajectory(), b in trajectory()) {
        let (p, pa, pb) = project_pair(&a, &b);
        assert_close(
            hausdorff::hausdorff_projected(&pa, &pb),
            naive_hausdorff(&a, &b, &p),
            "hausdorff",
        );
    }

    #[test]
    fn projected_frechet_matches_anchored_oracle(a in trajectory(), b in trajectory()) {
        let (p, pa, pb) = project_pair(&a, &b);
        assert_close(
            frechet::frechet_projected(&pa, &pb),
            naive_frechet(&a, &b, &p),
            "frechet",
        );
    }

    #[test]
    fn projected_erp_matches_anchored_oracle(a in trajectory(), b in trajectory()) {
        let (p, pa, pb) = project_pair(&a, &b);
        assert_close(erp::erp_projected(&pa, &pb), naive_erp(&a, &b, &p), "erp");
    }

    // ---- layer 2: projected kernels track the midpoint references ----

    #[test]
    fn continuous_metrics_track_latlon_references(a in trajectory(), b in trajectory()) {
        let (_, pa, pb) = project_pair(&a, &b);
        let cases = [
            (dtw::dtw_projected(&pa, &pb), dtw::dtw(&a, &b), "dtw"),
            (hausdorff::hausdorff_projected(&pa, &pb), hausdorff::hausdorff(&a, &b), "hausdorff"),
            (frechet::frechet_projected(&pa, &pb), frechet::frechet(&a, &b), "frechet"),
            (erp::erp_projected(&pa, &pb), erp::erp_origin(&a, &b), "erp"),
        ];
        for (projected, reference, name) in cases {
            prop_assert!(
                (projected - reference).abs() <= 1.5e-3 * reference.abs() + 1e-9,
                "{}: projected {} vs midpoint reference {}", name, projected, reference
            );
        }
    }

    #[test]
    fn thresholded_metrics_flip_only_near_threshold(a in trajectory(), b in trajectory()) {
        let (_, pa, pb) = project_pair(&a, &b);
        // Pairs within the projection tolerance of the threshold are the
        // only ones whose match predicate may differ between the anchored
        // and midpoint frames.
        let flip_budget = a
            .points
            .iter()
            .flat_map(|pa| b.points.iter().map(move |pb| pa.euclid_approx_m(pb)))
            .filter(|d| (d - EPS_M).abs() <= 3e-3 * EPS_M)
            .count() as f64;
        let edr_diff = (edr::edr_projected(&pa, &pb, EPS_M) - edr::edr(&a, &b, EPS_M)).abs();
        prop_assert!(edr_diff <= flip_budget, "edr drift {} > budget {}", edr_diff, flip_budget);
        let lcss_diff = (lcss::lcss_projected_length(&pa, &pb, EPS_M, None) as f64
            - lcss::lcss_length(&a, &b, EPS_M, None) as f64)
            .abs();
        prop_assert!(lcss_diff <= flip_budget, "lcss drift {} > budget {}", lcss_diff, flip_budget);
    }

    #[test]
    fn metric_dispatch_agrees_with_kernels(a in trajectory(), b in trajectory()) {
        let (_, pa, pb) = project_pair(&a, &b);
        for metric in [
            Metric::Edr { eps_m: EPS_M },
            Metric::Lcss { eps_m: EPS_M },
            Metric::Dtw,
            Metric::DtwBanded { band: 3 },
            Metric::Hausdorff,
            Metric::Erp,
            Metric::Frechet,
        ] {
            let d = metric.distance_projected(&pa, &pb);
            prop_assert!(d >= 0.0 && d.is_finite(), "{} produced {}", metric.name(), d);
            prop_assert_eq!(
                d,
                metric.distance_projected(&pb, &pa),
                "{} asymmetric under projection", metric.name()
            );
        }
    }

    // ---- knn: pruned cascade == brute force ----

    #[test]
    fn pruned_knn_equals_brute_force(
        db in prop::collection::vec(trajectory(), 1..10),
        query in trajectory(),
        k in 1usize..6,
        band in proptest::option::of(0usize..5),
    ) {
        let index = knn::KnnIndex::build(&db);
        let q = ProjectedTraj::project(&query, index.projector());
        let fast = knn::knn_dtw(index.items(), &q, k, band);
        let brute = knn::knn_dtw_brute(index.items(), &q, k, band);
        prop_assert_eq!(fast, brute);
    }

    #[test]
    fn pruned_radius_equals_brute_filter(
        db in prop::collection::vec(trajectory(), 1..10),
        query in trajectory(),
        radius in 100.0f64..20_000.0,
    ) {
        let index = knn::KnnIndex::build(&db);
        let q = ProjectedTraj::project(&query, index.projector());
        let got = knn::within_radius_dtw(index.items(), &q, radius, None);
        let brute: Vec<knn::Neighbor> = knn::knn_dtw_brute(index.items(), &q, db.len(), None)
            .into_iter()
            .filter(|n| n.distance <= radius)
            .collect();
        prop_assert_eq!(got, brute);
    }
}
