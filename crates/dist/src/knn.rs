//! k-nearest-trajectory and radius queries under (banded) DTW — without
//! materializing the full O(n²) distance matrix.
//!
//! This is the serving-shaped query path: a [`KnnIndex`] projects its
//! corpus once, and each query runs a pruning cascade per candidate,
//! cheapest bound first:
//!
//! 1. **O(1) bounds** — the bounding-envelope gap times the alignment
//!    path length, and LB_Kim-style endpoint distances (the first and
//!    last points of both trajectories are always aligned).
//! 2. **O(L) envelope-sum bound** (LB_Keogh-style) — every point of one
//!    trajectory must align to *some* point of the other, so the summed
//!    distances to the other's bounding envelope lower-bound DTW.
//! 3. **Early-abandoning DTW** ([`crate::dtw::dtw_projected_pruned`]) —
//!    the exact kernel, aborted as soon as a DP row proves the pair
//!    cannot beat the current k-th best.
//!
//! Every bound is a true lower bound of (banded) DTW, and eliminations
//! use strict comparisons against the current k-th best, so the cascade
//! returns **exactly** the brute-force result (ties broken by index; the
//! property tests in `tests/projected_tests.rs` pin this). Pruning
//! effectiveness is observable via the `dist.lb_hits` /
//! `dist.pairs_pruned` counters.

use crate::dtw;
use crate::project::ProjectedTraj;
use crate::telemetry::{DIST_LB_HITS, DIST_PAIRS, DIST_PAIRS_PRUNED};
use std::collections::BinaryHeap;
use traj_data::{Projector, Trajectory};

/// One query result: a corpus index and its (banded) DTW distance.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Neighbor {
    /// Index into the queried corpus.
    pub index: usize,
    /// DTW distance in meters.
    pub distance: f64,
}

/// Max-heap entry ordered lexicographically by `(distance, index)`, so
/// the heap root is the *worst* kept neighbor under the same total order
/// brute force sorts by.
#[derive(Clone, Copy, Debug)]
struct HeapEntry {
    distance: f64,
    index: usize,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.distance.total_cmp(&other.distance).then(self.index.cmp(&other.index))
    }
}

/// O(1) lower bound on (banded) DTW: the larger of
/// `envelope gap × max(|A|, |B|)` (every alignment path has at least
/// `max(|A|, |B|)` steps, each costing at least the box gap) and the
/// LB_Kim endpoint bound (the `(1, 1)` and `(|A|, |B|)` cells lie on
/// every path; when they are distinct cells their costs add).
fn lb_cheap(a: &ProjectedTraj, b: &ProjectedTraj) -> f64 {
    let (n, m) = (a.len(), b.len());
    match (n, m) {
        (0, 0) => return 0.0,
        (0, _) | (_, 0) => return f64::INFINITY,
        _ => {}
    }
    let steps = n.max(m) as f64;
    let gap_lb = a.envelope().gap2(b.envelope()).sqrt() * steps;
    let d_first = a.d2(0, b, 0).sqrt();
    let kim = if n + m > 2 { d_first + a.d2(n - 1, b, m - 1).sqrt() } else { d_first };
    gap_lb.max(kim)
}

/// O(|A| + |B|) LB_Keogh-style bound: each point of `a` appears in at
/// least one aligned pair, whose cost is at least the point's distance
/// to `b`'s bounding envelope — so the sum over `a` (and symmetrically
/// over `b`; the max of the two directions) lower-bounds DTW. Callers
/// must ensure both trajectories are non-empty.
fn lb_envelope_sum(a: &ProjectedTraj, b: &ProjectedTraj) -> f64 {
    let eb = b.envelope();
    let from_a: f64 =
        (0..a.len()).map(|i| eb.point_gap2(a.xs()[i], a.ys()[i]).sqrt()).sum();
    let ea = a.envelope();
    let from_b: f64 =
        (0..b.len()).map(|j| ea.point_gap2(b.xs()[j], b.ys()[j]).sqrt()).sum();
    from_a.max(from_b)
}

/// The `k` nearest trajectories to `query` in `db` under (banded) DTW,
/// via the pruning cascade. Ascending by `(distance, index)`; exactly
/// the brute-force result.
pub fn knn_dtw(
    db: &[ProjectedTraj],
    query: &ProjectedTraj,
    k: usize,
    band: Option<usize>,
) -> Vec<Neighbor> {
    let k = k.min(db.len());
    if k == 0 {
        return Vec::new();
    }
    DIST_PAIRS.add(db.len() as u64);

    // Most promising candidates first: better thresholds sooner, and once
    // the cheap bound alone exceeds the threshold, everything after it in
    // this order is eliminated wholesale.
    let mut order: Vec<(f64, usize)> =
        db.iter().enumerate().map(|(i, c)| (lb_cheap(query, c), i)).collect();
    order.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));

    let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::with_capacity(k + 1);
    let mut lb_hits = 0u64;
    let mut pruned = 0u64;
    for (pos, &(lb1, i)) in order.iter().enumerate() {
        let tau = if heap.len() < k {
            f64::INFINITY
        } else {
            heap.peek().expect("heap is full").distance
        };
        if lb1 > tau {
            let rest = (order.len() - pos) as u64;
            lb_hits += rest;
            pruned += rest;
            break;
        }
        let cand = &db[i];
        if !query.is_empty()
            && !cand.is_empty()
            && lb_envelope_sum(query, cand).max(lb1) > tau
        {
            lb_hits += 1;
            pruned += 1;
            continue;
        }
        match dtw::dtw_projected_pruned(query, cand, band, tau) {
            Some(d) => {
                let entry = HeapEntry { distance: d, index: i };
                if heap.len() < k {
                    heap.push(entry);
                } else if entry < *heap.peek().expect("heap is full") {
                    heap.pop();
                    heap.push(entry);
                }
            }
            None => pruned += 1,
        }
    }
    DIST_LB_HITS.add(lb_hits);
    DIST_PAIRS_PRUNED.add(pruned);

    let mut out: Vec<Neighbor> = heap
        .into_iter()
        .map(|e| Neighbor { index: e.index, distance: e.distance })
        .collect();
    out.sort_unstable_by(|a, b| {
        a.distance.total_cmp(&b.distance).then(a.index.cmp(&b.index))
    });
    out
}

/// Brute-force k-nearest: evaluates every candidate in full. The oracle
/// the pruned path is tested against (and the bench baseline).
pub fn knn_dtw_brute(
    db: &[ProjectedTraj],
    query: &ProjectedTraj,
    k: usize,
    band: Option<usize>,
) -> Vec<Neighbor> {
    let mut all: Vec<Neighbor> = db
        .iter()
        .enumerate()
        .map(|(i, c)| Neighbor {
            index: i,
            distance: dtw::dtw_projected_pruned(query, c, band, f64::INFINITY)
                .expect("infinite cutoff never abandons"),
        })
        .collect();
    all.sort_unstable_by(|a, b| {
        a.distance.total_cmp(&b.distance).then(a.index.cmp(&b.index))
    });
    all.truncate(k.min(all.len()));
    all
}

/// All trajectories within `radius_m` of `query` under (banded) DTW,
/// ascending by `(distance, index)`, using the same pruning cascade with
/// the fixed radius as the threshold.
pub fn within_radius_dtw(
    db: &[ProjectedTraj],
    query: &ProjectedTraj,
    radius_m: f64,
    band: Option<usize>,
) -> Vec<Neighbor> {
    DIST_PAIRS.add(db.len() as u64);
    let mut lb_hits = 0u64;
    let mut pruned = 0u64;
    let mut out = Vec::new();
    for (i, cand) in db.iter().enumerate() {
        if lb_cheap(query, cand) > radius_m {
            lb_hits += 1;
            pruned += 1;
            continue;
        }
        if !query.is_empty()
            && !cand.is_empty()
            && lb_envelope_sum(query, cand) > radius_m
        {
            lb_hits += 1;
            pruned += 1;
            continue;
        }
        match dtw::dtw_projected_pruned(query, cand, band, radius_m) {
            Some(d) if d <= radius_m => out.push(Neighbor { index: i, distance: d }),
            Some(_) => {}
            None => pruned += 1,
        }
    }
    DIST_LB_HITS.add(lb_hits);
    DIST_PAIRS_PRUNED.add(pruned);
    out.sort_unstable_by(|a, b| {
        a.distance.total_cmp(&b.distance).then(a.index.cmp(&b.index))
    });
    out
}

/// A projected corpus ready to answer nearest-trajectory queries — the
/// serving-shaped entry point: project once at build time, then each
/// query is cascade-pruned DTW against the resident buffers.
#[derive(Clone, Debug)]
pub struct KnnIndex {
    projector: Projector,
    items: Vec<ProjectedTraj>,
}

impl KnnIndex {
    /// Projects `trajectories` under their mean-latitude anchor.
    pub fn build(trajectories: &[Trajectory]) -> Self {
        let (projector, items) = ProjectedTraj::project_all(trajectories);
        Self { projector, items }
    }

    /// Number of indexed trajectories.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when the index holds no trajectories.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The projection queries are mapped through (the corpus anchor).
    pub fn projector(&self) -> &Projector {
        &self.projector
    }

    /// The projected corpus (for callers composing their own queries).
    pub fn items(&self) -> &[ProjectedTraj] {
        &self.items
    }

    /// The `k` nearest indexed trajectories to `query` under (banded)
    /// DTW.
    pub fn knn(&self, query: &Trajectory, k: usize, band: Option<usize>) -> Vec<Neighbor> {
        let q = ProjectedTraj::project(query, &self.projector);
        knn_dtw(&self.items, &q, k, band)
    }

    /// All indexed trajectories within `radius_m` meters of `query`.
    pub fn within_radius(
        &self,
        query: &Trajectory,
        radius_m: f64,
        band: Option<usize>,
    ) -> Vec<Neighbor> {
        let q = ProjectedTraj::project(query, &self.projector);
        within_radius_dtw(&self.items, &q, radius_m, band)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use traj_data::GpsPoint;

    fn traj(id: u64, lat: f64, lon: f64, len: usize) -> Trajectory {
        Trajectory::new(
            id,
            (0..len)
                .map(|i| GpsPoint::new(lat + i as f64 * 1e-4, lon + i as f64 * 1e-3, i as f64))
                .collect(),
        )
    }

    fn corpus() -> Vec<Trajectory> {
        (0..12).map(|i| traj(i, 30.0 + (i as f64) * 0.01, 120.0, 4 + (i as usize % 4))).collect()
    }

    #[test]
    fn pruned_knn_matches_brute_force() {
        let ts = corpus();
        let (_, db) = ProjectedTraj::project_all(&ts);
        let query = &db[3];
        for k in [1, 3, 12, 20] {
            for band in [None, Some(2)] {
                let fast = knn_dtw(&db, query, k, band);
                let brute = knn_dtw_brute(&db, query, k, band);
                assert_eq!(fast, brute, "k = {k}, band = {band:?}");
            }
        }
    }

    #[test]
    fn nearest_neighbor_of_a_member_is_itself() {
        let ts = corpus();
        let (_, db) = ProjectedTraj::project_all(&ts);
        let res = knn_dtw(&db, &db[5], 1, None);
        assert_eq!(res.len(), 1);
        assert_eq!(res[0].index, 5);
        assert_eq!(res[0].distance, 0.0);
    }

    #[test]
    fn pruning_actually_fires_on_spread_out_data() {
        let ts = corpus();
        let (_, db) = ProjectedTraj::project_all(&ts);
        let before = DIST_PAIRS_PRUNED.get();
        let _ = knn_dtw(&db, &db[0], 2, None);
        assert!(
            DIST_PAIRS_PRUNED.get() > before,
            "clusters 100+ km apart must be pruned, not fully evaluated"
        );
    }

    #[test]
    fn radius_query_matches_brute_filter() {
        let ts = corpus();
        let (_, db) = ProjectedTraj::project_all(&ts);
        let query = &db[4];
        let radius = 5_000.0;
        let got = within_radius_dtw(&db, query, radius, None);
        let brute: Vec<Neighbor> = knn_dtw_brute(&db, query, db.len(), None)
            .into_iter()
            .filter(|n| n.distance <= radius)
            .collect();
        assert_eq!(got, brute);
        assert!(!got.is_empty(), "the query itself is within any radius");
    }

    #[test]
    fn index_answers_queries_for_unseen_trajectories() {
        let ts = corpus();
        let index = KnnIndex::build(&ts);
        assert_eq!(index.len(), ts.len());
        // A probe near corpus item 7 but not in the corpus.
        let probe = traj(99, 30.0702, 120.0, 5);
        let res = index.knn(&probe, 3, None);
        assert_eq!(res.len(), 3);
        assert_eq!(res[0].index, 7, "closest corpus trajectory");
        assert!(res[0].distance < res[1].distance);
    }

    #[test]
    fn empty_cases() {
        let index = KnnIndex::build(&[]);
        assert!(index.is_empty());
        assert!(index.knn(&traj(0, 30.0, 120.0, 3), 4, None).is_empty());
        let ts = corpus();
        let (_, db) = ProjectedTraj::project_all(&ts);
        assert!(knn_dtw(&db, &db[0], 0, None).is_empty());
        // Empty query: DTW to every non-empty candidate is +inf, but k
        // results are still returned (all infinite), same as brute force.
        let (_, eq) = ProjectedTraj::project_all(&[Trajectory::new(0, vec![])]);
        let fast = knn_dtw(&db, &eq[0], 2, None);
        let brute = knn_dtw_brute(&db, &eq[0], 2, None);
        assert_eq!(fast, brute);
        assert!(fast.iter().all(|n| n.distance.is_infinite()));
    }
}
