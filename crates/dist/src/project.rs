//! Pre-projected trajectories: the input format of the trig-free kernels.
//!
//! Every classical metric here is O(|A|·|B|) per pair and O(n²) pairs —
//! yet the original kernels re-derived an equirectangular frame
//! (`to_radians`/`cos`/`sqrt`) inside **every DP cell**, recomputing the
//! same per-trajectory projection O(L²·n²) times. A [`ProjectedTraj`]
//! does that work exactly once per trajectory: an O(L) projection into
//! flat structure-of-arrays `x`/`y` meter buffers (anchored at the
//! dataset mean latitude via [`Projector`]) plus a cached bounding
//! [`Envelope`]. The DP inner loops over these buffers are branch-light
//! subtract/FMA arithmetic with zero trig, and the envelopes feed the
//! pruning cascade in [`crate::knn`].

use traj_data::{Projector, Trajectory};

/// Axis-aligned bounding box of a projected trajectory, in meters.
///
/// Empty trajectories carry the inverted infinite box (`min = +∞`,
/// `max = −∞`); callers that prune on envelopes must handle empties
/// explicitly before trusting gap values.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Envelope {
    /// Smallest x (east) coordinate.
    pub min_x: f64,
    /// Smallest y (north) coordinate.
    pub min_y: f64,
    /// Largest x coordinate.
    pub max_x: f64,
    /// Largest y coordinate.
    pub max_y: f64,
}

impl Envelope {
    const EMPTY: Envelope = Envelope {
        min_x: f64::INFINITY,
        min_y: f64::INFINITY,
        max_x: f64::NEG_INFINITY,
        max_y: f64::NEG_INFINITY,
    };

    /// Squared minimum distance between this box and `other`
    /// (0 when they overlap).
    #[inline]
    pub fn gap2(&self, other: &Envelope) -> f64 {
        let dx = (self.min_x - other.max_x).max(other.min_x - self.max_x).max(0.0);
        let dy = (self.min_y - other.max_y).max(other.min_y - self.max_y).max(0.0);
        dx * dx + dy * dy
    }

    /// Squared distance from a point to this box (0 when inside).
    #[inline]
    pub fn point_gap2(&self, x: f64, y: f64) -> f64 {
        let dx = (self.min_x - x).max(x - self.max_x).max(0.0);
        let dy = (self.min_y - y).max(y - self.max_y).max(0.0);
        dx * dx + dy * dy
    }
}

/// A trajectory projected once into planar meter coordinates, stored as
/// separate `x`/`y` buffers (SoA) with its bounding envelope.
#[derive(Clone, Debug)]
pub struct ProjectedTraj {
    xs: Vec<f64>,
    ys: Vec<f64>,
    envelope: Envelope,
}

impl ProjectedTraj {
    /// Projects one trajectory under `projector`.
    pub fn project(t: &Trajectory, projector: &Projector) -> Self {
        let mut xs = Vec::with_capacity(t.len());
        let mut ys = Vec::with_capacity(t.len());
        let mut env = Envelope::EMPTY;
        for p in &t.points {
            let (x, y) = projector.project(p);
            env.min_x = env.min_x.min(x);
            env.max_x = env.max_x.max(x);
            env.min_y = env.min_y.min(y);
            env.max_y = env.max_y.max(y);
            xs.push(x);
            ys.push(y);
        }
        Self { xs, ys, envelope: env }
    }

    /// Projects a whole dataset under its mean-latitude anchor. This is
    /// the one-time O(Σ L) step [`crate::DistanceMatrix::compute`] runs
    /// before the O(n²) pair sweep.
    pub fn project_all(trajectories: &[Trajectory]) -> (Projector, Vec<ProjectedTraj>) {
        let projector = Projector::for_trajectories(trajectories);
        let projected =
            trajectories.iter().map(|t| ProjectedTraj::project(t, &projector)).collect();
        (projector, projected)
    }

    /// Number of points.
    #[inline]
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// True when the trajectory has no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// East coordinates in meters.
    #[inline]
    pub fn xs(&self) -> &[f64] {
        &self.xs
    }

    /// North coordinates in meters.
    #[inline]
    pub fn ys(&self) -> &[f64] {
        &self.ys
    }

    /// Cached bounding envelope.
    #[inline]
    pub fn envelope(&self) -> &Envelope {
        &self.envelope
    }

    /// Squared distance in m² between point `i` of `self` and point `j`
    /// of `other` — the trig-free replacement for
    /// `GpsPoint::euclid_approx_m` inside DP cells.
    #[inline]
    pub fn d2(&self, i: usize, other: &ProjectedTraj, j: usize) -> f64 {
        let dx = self.xs[i] - other.xs[j];
        let dy = self.ys[i] - other.ys[j];
        dx.mul_add(dx, dy * dy)
    }

    /// Squared distance from point `i` to an arbitrary `(x, y)`.
    #[inline]
    pub fn d2_to(&self, i: usize, x: f64, y: f64) -> f64 {
        let dx = self.xs[i] - x;
        let dy = self.ys[i] - y;
        dx.mul_add(dx, dy * dy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use traj_data::GpsPoint;

    fn traj(coords: &[(f64, f64)]) -> Trajectory {
        Trajectory::new(
            0,
            coords
                .iter()
                .enumerate()
                .map(|(i, &(lat, lon))| GpsPoint::new(lat, lon, i as f64))
                .collect(),
        )
    }

    #[test]
    fn projection_matches_projector_distances() {
        let a = traj(&[(30.0, 120.0), (30.01, 120.02)]);
        let b = traj(&[(30.05, 120.05)]);
        let (projector, ps) = ProjectedTraj::project_all(&[a.clone(), b.clone()]);
        let d2 = ps[0].d2(1, &ps[1], 0);
        let oracle = projector.distance_m(&a.points[1], &b.points[0]);
        assert!((d2.sqrt() - oracle).abs() < 1e-9, "{} vs {oracle}", d2.sqrt());
    }

    #[test]
    fn envelope_bounds_all_points() {
        let t = traj(&[(30.0, 120.0), (30.02, 120.05), (30.01, 120.01)]);
        let (_, ps) = ProjectedTraj::project_all(std::slice::from_ref(&t));
        let e = *ps[0].envelope();
        for i in 0..ps[0].len() {
            assert!(ps[0].xs()[i] >= e.min_x && ps[0].xs()[i] <= e.max_x);
            assert!(ps[0].ys()[i] >= e.min_y && ps[0].ys()[i] <= e.max_y);
            assert_eq!(e.point_gap2(ps[0].xs()[i], ps[0].ys()[i]), 0.0);
        }
    }

    #[test]
    fn envelope_gap_separates_disjoint_boxes() {
        let a = traj(&[(30.0, 120.0), (30.01, 120.01)]);
        let b = traj(&[(30.5, 120.5), (30.51, 120.51)]);
        let (_, ps) = ProjectedTraj::project_all(&[a, b]);
        let gap = ps[0].envelope().gap2(ps[1].envelope()).sqrt();
        assert!(gap > 10_000.0, "boxes ~60 km apart, gap {gap}");
        // Gap is a lower bound on every cross distance.
        for i in 0..ps[0].len() {
            for j in 0..ps[1].len() {
                assert!(ps[0].d2(i, &ps[1], j) >= gap * gap);
            }
        }
        assert_eq!(ps[0].envelope().gap2(ps[0].envelope()), 0.0);
    }

    #[test]
    fn empty_trajectory_has_inverted_envelope() {
        let (_, ps) = ProjectedTraj::project_all(&[Trajectory::new(0, vec![])]);
        assert!(ps[0].is_empty());
        assert_eq!(ps[0].envelope().min_x, f64::INFINITY);
        assert_eq!(ps[0].envelope().max_x, f64::NEG_INFINITY);
    }
}
