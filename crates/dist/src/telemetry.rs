//! Telemetry counters for distance computation.

use traj_obs::Counter;

/// Pairwise distances computed by [`crate::DistanceMatrix::compute`]
/// (cumulative over all matrices built in this process).
pub static DIST_PAIRS: Counter = Counter::new("dist.pairs");

/// Every counter this crate maintains, for bulk snapshotting.
pub fn counters() -> [&'static Counter; 1] {
    [&DIST_PAIRS]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_is_namespaced() {
        assert_eq!(DIST_PAIRS.name(), "dist.pairs");
    }
}
