//! Telemetry counters for distance computation.
//!
//! `dist.pairs` counts pairwise distances the engines set out to
//! evaluate; `dist.lb_hits` and `dist.pairs_pruned` measure how much of
//! that work the [`crate::knn`] pruning cascade avoided, so run logs
//! show pruning effectiveness alongside the raw pair volume.
//! [`crate::DistanceMatrix::compute`] additionally records a per-pair
//! latency histogram under `dist.pair_ms` when a sink is installed.

use traj_obs::Counter;

/// Pairwise distances requested from [`crate::DistanceMatrix::compute`]
/// and the [`crate::knn`] query paths (cumulative over the process).
pub static DIST_PAIRS: Counter = Counter::new("dist.pairs");

/// Candidate pairs eliminated by a lower bound alone (envelope gap,
/// LB_Kim endpoints, or the envelope-sum bound) — no DP cells touched.
pub static DIST_LB_HITS: Counter = Counter::new("dist.lb_hits");

/// Candidate pairs that never completed a full distance evaluation:
/// lower-bound eliminations plus early-abandoned DTW computations.
pub static DIST_PAIRS_PRUNED: Counter = Counter::new("dist.pairs_pruned");

/// Every counter this crate maintains, for bulk snapshotting.
pub fn counters() -> [&'static Counter; 3] {
    [&DIST_PAIRS, &DIST_LB_HITS, &DIST_PAIRS_PRUNED]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_namespaced() {
        assert_eq!(DIST_PAIRS.name(), "dist.pairs");
        assert_eq!(DIST_LB_HITS.name(), "dist.lb_hits");
        assert_eq!(DIST_PAIRS_PRUNED.name(), "dist.pairs_pruned");
        assert_eq!(counters().len(), 3);
    }
}
