//! Edit distance with Real Penalty (Chen & Ng — VLDB 2004).
//!
//! ERP fixes EDR's metric-property violations by charging gaps their real
//! distance to a reference point `g` instead of a constant: it is a true
//! metric (satisfies the triangle inequality), which matters for
//! index-accelerated clustering. Included as an extension baseline beyond
//! the paper's four metrics.

use crate::project::ProjectedTraj;
use traj_data::{GpsPoint, Trajectory};

/// ERP over pre-projected buffers with gap-reference `(gx, gy)` in
/// projected meters. Gap distances are precomputed per point; the DP
/// inner loop is trig-free. [`erp`] stays as the lat/lon oracle.
pub fn erp_projected_ref(a: &ProjectedTraj, b: &ProjectedTraj, gx: f64, gy: f64) -> f64 {
    let (n, m) = (a.len(), b.len());
    let gap_a: Vec<f64> = (0..n).map(|i| a.d2_to(i, gx, gy).sqrt()).collect();
    let gap_b: Vec<f64> = (0..m).map(|j| b.d2_to(j, gx, gy).sqrt()).collect();
    let (bx, by) = (b.xs(), b.ys());

    // prev[j] = D(i-1, j); initialize row 0 with cumulative gap costs of b.
    let mut prev = vec![0.0f64; m + 1];
    for j in 1..=m {
        prev[j] = prev[j - 1] + gap_b[j - 1];
    }
    let mut curr = vec![0.0f64; m + 1];
    for i in 1..=n {
        curr[0] = prev[0] + gap_a[i - 1];
        let (ax, ay) = (a.xs()[i - 1], a.ys()[i - 1]);
        for j in 1..=m {
            let dx = ax - bx[j - 1];
            let dy = ay - by[j - 1];
            let match_cost = prev[j - 1] + dx.mul_add(dx, dy * dy).sqrt();
            let gap_in_b = prev[j] + gap_a[i - 1];
            let gap_in_a = curr[j - 1] + gap_b[j - 1];
            curr[j] = match_cost.min(gap_in_b).min(gap_in_a);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[m]
}

/// Projected counterpart of [`erp_origin`]: the gap reference is the
/// mean of both trajectories' projected points, which — the projection
/// being linear in lat/lon — is the projection of the mean point that
/// `erp_origin` uses.
pub fn erp_projected(a: &ProjectedTraj, b: &ProjectedTraj) -> f64 {
    let total = (a.len() + b.len()).max(1) as f64;
    let sum_x: f64 =
        a.xs().iter().sum::<f64>() + b.xs().iter().sum::<f64>();
    let sum_y: f64 =
        a.ys().iter().sum::<f64>() + b.ys().iter().sum::<f64>();
    erp_projected_ref(a, b, sum_x / total, sum_y / total)
}

/// ERP distance in meters with gap-reference point `g`.
///
/// Empty-sequence conventions follow the recurrence: an empty side costs
/// the sum of the other side's distances to `g`.
pub fn erp(a: &Trajectory, b: &Trajectory, g: &GpsPoint) -> f64 {
    let (n, m) = (a.len(), b.len());
    let gap_a: Vec<f64> = a.points.iter().map(|p| p.euclid_approx_m(g)).collect();
    let gap_b: Vec<f64> = b.points.iter().map(|p| p.euclid_approx_m(g)).collect();

    // prev[j] = D(i-1, j); initialize row 0 with cumulative gap costs of b.
    let mut prev = vec![0.0f64; m + 1];
    for j in 1..=m {
        prev[j] = prev[j - 1] + gap_b[j - 1];
    }
    let mut curr = vec![0.0f64; m + 1];
    for i in 1..=n {
        curr[0] = prev[0] + gap_a[i - 1];
        for j in 1..=m {
            let match_cost = prev[j - 1] + a.points[i - 1].euclid_approx_m(&b.points[j - 1]);
            let gap_in_b = prev[j] + gap_a[i - 1];
            let gap_in_a = curr[j - 1] + gap_b[j - 1];
            curr[j] = match_cost.min(gap_in_b).min(gap_in_a);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[m]
}

/// ERP with the dataset centroid as the conventional reference point.
pub fn erp_origin(a: &Trajectory, b: &Trajectory) -> f64 {
    // Mean of both trajectories' points as a neutral reference.
    let mut lat = 0.0;
    let mut lon = 0.0;
    let total = (a.len() + b.len()).max(1) as f64;
    for p in a.points.iter().chain(&b.points) {
        lat += p.lat;
        lon += p.lon;
    }
    let g = GpsPoint::new(lat / total, lon / total, 0.0);
    erp(a, b, &g)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traj(coords: &[(f64, f64)]) -> Trajectory {
        Trajectory::new(
            0,
            coords
                .iter()
                .enumerate()
                .map(|(i, &(lat, lon))| GpsPoint::new(lat, lon, i as f64))
                .collect(),
        )
    }

    fn g() -> GpsPoint {
        GpsPoint::new(30.0, 120.0, 0.0)
    }

    #[test]
    fn identical_is_zero() {
        let t = traj(&[(30.0, 120.0), (30.01, 120.01)]);
        assert_eq!(erp(&t, &t, &g()), 0.0);
    }

    #[test]
    fn empty_side_costs_gap_sum() {
        let t = traj(&[(30.01, 120.0), (30.02, 120.0)]);
        let e = traj(&[]);
        let expected: f64 = t.points.iter().map(|p| p.euclid_approx_m(&g())).sum();
        assert!((erp(&e, &t, &g()) - expected).abs() < 1e-9);
        assert!((erp(&t, &e, &g()) - expected).abs() < 1e-9);
    }

    #[test]
    fn symmetric() {
        let a = traj(&[(30.0, 120.0), (30.01, 120.0), (30.02, 120.0)]);
        let b = traj(&[(30.0, 120.01), (30.02, 120.01)]);
        assert!((erp(&a, &b, &g()) - erp(&b, &a, &g())).abs() < 1e-9);
    }

    #[test]
    fn triangle_inequality_holds() {
        let a = traj(&[(30.0, 120.0), (30.01, 120.0)]);
        let b = traj(&[(30.0, 120.02), (30.02, 120.0), (30.01, 120.01)]);
        let c = traj(&[(30.02, 120.02)]);
        let gp = g();
        let ab = erp(&a, &b, &gp);
        let bc = erp(&b, &c, &gp);
        let ac = erp(&a, &c, &gp);
        assert!(ac <= ab + bc + 1e-6, "{ac} > {ab} + {bc}");
    }

    #[test]
    fn dominated_by_spatial_separation() {
        let a = traj(&[(30.0, 120.0), (30.0, 120.001)]);
        let near = traj(&[(30.001, 120.0), (30.001, 120.001)]);
        let far = traj(&[(30.05, 120.0), (30.05, 120.001)]);
        let gp = g();
        assert!(erp(&a, &near, &gp) < erp(&a, &far, &gp));
    }
}
