//! Edit Distance on Real sequence (Chen, Özsu, Oria — SIGMOD 2005).
//!
//! Two points "match" when they are within a spatial threshold `eps_m`;
//! EDR counts the minimum number of insert/delete/substitute edits needed
//! to align the sequences under that predicate.

use crate::project::ProjectedTraj;
use traj_data::Trajectory;

/// Raw EDR edit count over pre-projected buffers. The match predicate
/// compares squared distance against `eps_m²`, so the inner loop has no
/// trig *and* no square root — [`edr`] stays as the lat/lon oracle.
pub fn edr_projected(a: &ProjectedTraj, b: &ProjectedTraj, eps_m: f64) -> f64 {
    let (n, m) = (a.len(), b.len());
    if n == 0 {
        return m as f64;
    }
    if m == 0 {
        return n as f64;
    }
    let eps2 = eps_m * eps_m;
    let (bx, by) = (b.xs(), b.ys());
    let mut prev: Vec<f64> = (0..=m).map(|j| j as f64).collect();
    let mut curr = vec![0.0f64; m + 1];
    for i in 1..=n {
        let (ax, ay) = (a.xs()[i - 1], a.ys()[i - 1]);
        // Register-carried curr[j-1]/prev[j-1] with zipped slices — same
        // scheme as `dtw_projected` — keeps the inner loop free of bounds
        // checks and leaves only one op on the loop-carried chain.
        let mut left = i as f64;
        let mut diag = prev[0];
        curr[0] = left;
        for ((out, (&bxj, &byj)), &up) in
            curr[1..].iter_mut().zip(bx.iter().zip(by)).zip(&prev[1..])
        {
            let dx = ax - bxj;
            let dy = ay - byj;
            let subcost = if dx.mul_add(dx, dy * dy) <= eps2 { 0.0 } else { 1.0 };
            let v = (diag + subcost).min(up + 1.0).min(left + 1.0);
            *out = v;
            diag = up;
            left = v;
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[m]
}

/// Projected EDR normalized to `[0, 1]` by the longer sequence length.
pub fn edr_projected_normalized(a: &ProjectedTraj, b: &ProjectedTraj, eps_m: f64) -> f64 {
    let denom = a.len().max(b.len());
    if denom == 0 {
        0.0
    } else {
        edr_projected(a, b, eps_m) / denom as f64
    }
}

/// Raw EDR edit count between two trajectories under match threshold
/// `eps_m` meters.
pub fn edr(a: &Trajectory, b: &Trajectory, eps_m: f64) -> f64 {
    let (n, m) = (a.len(), b.len());
    if n == 0 {
        return m as f64;
    }
    if m == 0 {
        return n as f64;
    }
    let mut prev: Vec<f64> = (0..=m).map(|j| j as f64).collect();
    let mut curr = vec![0.0f64; m + 1];
    for i in 1..=n {
        curr[0] = i as f64;
        let pa = &a.points[i - 1];
        for j in 1..=m {
            let subcost = if pa.euclid_approx_m(&b.points[j - 1]) <= eps_m { 0.0 } else { 1.0 };
            curr[j] = (prev[j - 1] + subcost).min(prev[j] + 1.0).min(curr[j - 1] + 1.0);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[m]
}

/// EDR normalized to `[0, 1]` by the longer sequence length.
pub fn edr_normalized(a: &Trajectory, b: &Trajectory, eps_m: f64) -> f64 {
    let denom = a.len().max(b.len());
    if denom == 0 {
        0.0
    } else {
        edr(a, b, eps_m) / denom as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use traj_data::GpsPoint;

    fn traj(coords: &[(f64, f64)]) -> Trajectory {
        Trajectory::new(
            0,
            coords
                .iter()
                .enumerate()
                .map(|(i, &(lat, lon))| GpsPoint::new(lat, lon, i as f64))
                .collect(),
        )
    }

    #[test]
    fn identical_is_zero() {
        let t = traj(&[(30.0, 120.0), (30.01, 120.01)]);
        assert_eq!(edr(&t, &t, 50.0), 0.0);
    }

    #[test]
    fn completely_disjoint_costs_max_len() {
        let a = traj(&[(30.0, 120.0), (30.0, 120.001)]);
        let b = traj(&[(31.0, 121.0), (31.0, 121.001), (31.0, 121.002)]);
        // Optimal alignment: substitute 2, insert 1 => 3 = max(|a|, |b|).
        assert_eq!(edr(&a, &b, 10.0), 3.0);
    }

    #[test]
    fn empty_cases() {
        let e = traj(&[]);
        let t = traj(&[(30.0, 120.0), (30.0, 120.01)]);
        assert_eq!(edr(&e, &t, 10.0), 2.0);
        assert_eq!(edr(&t, &e, 10.0), 2.0);
        assert_eq!(edr(&e, &e, 10.0), 0.0);
    }

    #[test]
    fn symmetric() {
        let a = traj(&[(30.0, 120.0), (30.005, 120.0), (30.01, 120.0)]);
        let b = traj(&[(30.0, 120.002), (30.01, 120.002)]);
        assert_eq!(edr(&a, &b, 300.0), edr(&b, &a, 300.0));
    }

    #[test]
    fn threshold_controls_matching() {
        // ~222 m apart in longitude.
        let a = traj(&[(30.0, 120.0)]);
        let b = traj(&[(30.0, 120.00231)]);
        assert_eq!(edr(&a, &b, 100.0), 1.0, "below threshold: substitution");
        assert_eq!(edr(&a, &b, 400.0), 0.0, "above threshold: match");
    }

    #[test]
    fn normalized_is_in_unit_interval() {
        let a = traj(&[(30.0, 120.0), (30.1, 120.1)]);
        let b = traj(&[(31.0, 121.0)]);
        let d = edr_normalized(&a, &b, 50.0);
        assert!((0.0..=1.0).contains(&d));
    }

    #[test]
    fn dropping_a_point_costs_one_edit() {
        let a = traj(&[(30.0, 120.0), (30.01, 120.0), (30.02, 120.0)]);
        let b = traj(&[(30.0, 120.0), (30.02, 120.0)]);
        assert_eq!(edr(&a, &b, 50.0), 1.0);
    }
}
