//! Symmetric Hausdorff distance between trajectories (shape-based metric).
//!
//! `H(A, B) = max( max_a min_b d(a, b), max_b min_a d(a, b) )` over the
//! point sets, ignoring temporal order — the classic shape comparator used
//! by the paper's `Hausdorff + KM` baseline.

use crate::project::ProjectedTraj;
use traj_data::Trajectory;

/// Directed Hausdorff over pre-projected buffers, computed entirely in
/// squared meters (max/min are monotone under squaring) with the same
/// early-exit as the reference — one square root at the very end, in
/// [`hausdorff_projected`].
pub fn directed_hausdorff_projected_sq(a: &ProjectedTraj, b: &ProjectedTraj) -> f64 {
    if a.is_empty() {
        return 0.0;
    }
    if b.is_empty() {
        return f64::INFINITY;
    }
    let (bx, by) = (b.xs(), b.ys());
    let mut worst = 0.0f64;
    for i in 0..a.len() {
        let (ax, ay) = (a.xs()[i], a.ys()[i]);
        let mut best = f64::INFINITY;
        for j in 0..bx.len() {
            let dx = ax - bx[j];
            let dy = ay - by[j];
            let d2 = dx.mul_add(dx, dy * dy);
            if d2 < best {
                best = d2;
                if best <= worst {
                    // Early exit: this point can no longer raise the max.
                    break;
                }
            }
        }
        worst = worst.max(best);
    }
    worst
}

/// Symmetric Hausdorff distance in meters over pre-projected buffers.
/// [`hausdorff`] stays as the lat/lon oracle.
pub fn hausdorff_projected(a: &ProjectedTraj, b: &ProjectedTraj) -> f64 {
    directed_hausdorff_projected_sq(a, b).max(directed_hausdorff_projected_sq(b, a)).sqrt()
}

/// Directed Hausdorff `max_{a∈A} min_{b∈B} d(a, b)` in meters.
pub fn directed_hausdorff(a: &Trajectory, b: &Trajectory) -> f64 {
    if a.is_empty() {
        return 0.0;
    }
    if b.is_empty() {
        return f64::INFINITY;
    }
    let mut worst = 0.0f64;
    for pa in &a.points {
        let mut best = f64::INFINITY;
        for pb in &b.points {
            let d = pa.euclid_approx_m(pb);
            if d < best {
                best = d;
                if best <= worst {
                    // Early exit: this point can no longer raise the max.
                    break;
                }
            }
        }
        worst = worst.max(best);
    }
    worst
}

/// Symmetric Hausdorff distance in meters.
pub fn hausdorff(a: &Trajectory, b: &Trajectory) -> f64 {
    directed_hausdorff(a, b).max(directed_hausdorff(b, a))
}

#[cfg(test)]
mod tests {
    use super::*;
    use traj_data::GpsPoint;

    fn traj(coords: &[(f64, f64)]) -> Trajectory {
        Trajectory::new(
            0,
            coords
                .iter()
                .enumerate()
                .map(|(i, &(lat, lon))| GpsPoint::new(lat, lon, i as f64))
                .collect(),
        )
    }

    #[test]
    fn identical_zero() {
        let t = traj(&[(30.0, 120.0), (30.01, 120.01)]);
        assert_eq!(hausdorff(&t, &t), 0.0);
    }

    #[test]
    fn symmetric() {
        let a = traj(&[(30.0, 120.0), (30.02, 120.0)]);
        let b = traj(&[(30.0, 120.01)]);
        assert_eq!(hausdorff(&a, &b), hausdorff(&b, &a));
    }

    #[test]
    fn subset_has_zero_directed_distance() {
        let a = traj(&[(30.0, 120.0)]);
        let b = traj(&[(30.0, 120.0), (30.05, 120.0)]);
        assert_eq!(directed_hausdorff(&a, &b), 0.0);
        assert!(directed_hausdorff(&b, &a) > 0.0);
    }

    #[test]
    fn known_offset_distance() {
        // Two parallel 2-point segments offset by ~1112 m of latitude.
        let a = traj(&[(30.0, 120.0), (30.0, 120.01)]);
        let b = traj(&[(30.01, 120.0), (30.01, 120.01)]);
        let h = hausdorff(&a, &b);
        assert!((h - 1112.0).abs() < 10.0, "got {h}");
    }

    #[test]
    fn order_invariance() {
        // Hausdorff ignores traversal direction.
        let a = traj(&[(30.0, 120.0), (30.01, 120.0), (30.02, 120.0)]);
        let rev = traj(&[(30.02, 120.0), (30.01, 120.0), (30.0, 120.0)]);
        assert!(hausdorff(&a, &rev) < 1e-9);
    }

    #[test]
    fn empty_conventions() {
        let e = traj(&[]);
        let t = traj(&[(30.0, 120.0)]);
        assert_eq!(hausdorff(&e, &e), 0.0);
        assert!(hausdorff(&e, &t).is_infinite());
    }
}
