//! Unified metric selector covering the paper's four baseline distances.

use crate::project::ProjectedTraj;
use crate::{dtw, edr, erp, frechet, hausdorff, lcss};
use traj_data::Trajectory;

/// The classical trajectory distance metrics evaluated in the paper
/// (Table III's `EDR + KM`, `LCSS + KM`, `DTW + KM`, `Hausdorff + KM`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Metric {
    /// Edit Distance on Real sequence; `eps_m` is the match threshold.
    /// Normalized to `[0, 1]`.
    Edr {
        /// Spatial match threshold in meters.
        eps_m: f64,
    },
    /// LCSS distance (`1 − LCSS/min len`); `eps_m` is the match threshold.
    Lcss {
        /// Spatial match threshold in meters.
        eps_m: f64,
    },
    /// Dynamic Time Warping, normalized per aligned point (meters).
    Dtw,
    /// DTW restricted to a Sakoe–Chiba band of half-width `band` cells
    /// (widened to the length difference when necessary; see
    /// [`crate::dtw::dtw_banded`]). Opt-in accelerator for the
    /// scalability sweep: O(L·band) per pair instead of O(L²).
    DtwBanded {
        /// Band half-width in cells.
        band: usize,
    },
    /// Symmetric Hausdorff distance (meters).
    Hausdorff,
    /// Edit distance with Real Penalty (metric-true edit distance;
    /// extension beyond the paper's four baselines).
    Erp,
    /// Discrete Fréchet distance (extension baseline).
    Frechet,
}

impl Metric {
    /// Short display name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            Metric::Edr { .. } => "EDR",
            Metric::Lcss { .. } => "LCSS",
            Metric::Dtw => "DTW",
            Metric::DtwBanded { .. } => "DTW-SC",
            Metric::Hausdorff => "Hausdorff",
            Metric::Erp => "ERP",
            Metric::Frechet => "Frechet",
        }
    }

    /// Distance between two trajectories.
    ///
    /// EDR and DTW follow their original (unnormalized) definitions —
    /// Chen et al. (SIGMOD'05) count raw edits and Yi et al. (ICDE'98)
    /// sum raw alignment costs — which makes both length- and
    /// sampling-rate-sensitive, exactly the weakness the E²DTC paper
    /// calls out in §I. Length-normalized variants are available as
    /// [`crate::edr::edr_normalized`] / [`crate::dtw::dtw_normalized`].
    pub fn distance(&self, a: &Trajectory, b: &Trajectory) -> f64 {
        match *self {
            Metric::Edr { eps_m } => edr::edr(a, b, eps_m),
            Metric::Lcss { eps_m } => lcss::lcss_distance(a, b, eps_m),
            Metric::Dtw => dtw::dtw(a, b),
            Metric::DtwBanded { band } => dtw::dtw_banded(a, b, band),
            Metric::Hausdorff => hausdorff::hausdorff(a, b),
            Metric::Erp => erp::erp_origin(a, b),
            Metric::Frechet => frechet::frechet(a, b),
        }
    }

    /// Distance between two pre-projected trajectories — the trig-free
    /// kernels [`crate::DistanceMatrix::compute`] and [`crate::knn`] run
    /// on. Agrees with [`Metric::distance`] to within the equirectangular
    /// anchor tolerance (< 0.1 % at city scale; see DESIGN.md §12).
    pub fn distance_projected(&self, a: &ProjectedTraj, b: &ProjectedTraj) -> f64 {
        match *self {
            Metric::Edr { eps_m } => edr::edr_projected(a, b, eps_m),
            Metric::Lcss { eps_m } => lcss::lcss_projected_distance(a, b, eps_m),
            Metric::Dtw => dtw::dtw_projected(a, b),
            Metric::DtwBanded { band } => dtw::dtw_projected_banded(a, b, band),
            Metric::Hausdorff => hausdorff::hausdorff_projected(a, b),
            Metric::Erp => erp::erp_projected(a, b),
            Metric::Frechet => frechet::frechet_projected(a, b),
        }
    }

    /// The paper's four baseline metrics with a sensible shared threshold
    /// (EDR/LCSS require one; the paper grid-searches it — callers can do
    /// the same by constructing variants).
    pub fn paper_baselines(eps_m: f64) -> [Metric; 4] {
        [Metric::Edr { eps_m }, Metric::Lcss { eps_m }, Metric::Dtw, Metric::Hausdorff]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use traj_data::GpsPoint;

    fn traj(lat: f64) -> Trajectory {
        Trajectory::new(
            0,
            (0..4).map(|i| GpsPoint::new(lat, 120.0 + i as f64 * 1e-3, i as f64)).collect(),
        )
    }

    #[test]
    fn all_metrics_zero_on_identity() {
        let t = traj(30.0);
        for m in Metric::paper_baselines(100.0) {
            assert_eq!(m.distance(&t, &t), 0.0, "{} not zero on identity", m.name());
        }
    }

    #[test]
    fn all_metrics_positive_on_distinct() {
        let a = traj(30.0);
        let b = traj(30.5);
        for m in Metric::paper_baselines(100.0) {
            assert!(m.distance(&a, &b) > 0.0, "{} zero on distinct", m.name());
        }
    }

    #[test]
    fn names_match_paper() {
        let names: Vec<_> = Metric::paper_baselines(1.0).iter().map(|m| m.name()).collect();
        assert_eq!(names, vec!["EDR", "LCSS", "DTW", "Hausdorff"]);
    }
}
