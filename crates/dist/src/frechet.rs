//! Discrete Fréchet distance (Eiter & Mannila, 1994).
//!
//! The "dog-leash" distance: the minimum over monotone traversals of the
//! maximum pointwise distance. Order-sensitive like DTW but max- instead
//! of sum-aggregated — a useful extension baseline between DTW and
//! Hausdorff.

use crate::project::ProjectedTraj;
use traj_data::Trajectory;

/// Discrete Fréchet over pre-projected buffers. Because the recurrence
/// only takes max/min — both monotone under squaring — the whole DP runs
/// in squared meters with a single square root at the end: no per-cell
/// trig or `sqrt`. [`frechet`] stays as the lat/lon oracle.
pub fn frechet_projected(a: &ProjectedTraj, b: &ProjectedTraj) -> f64 {
    let (n, m) = (a.len(), b.len());
    match (n, m) {
        (0, 0) => return 0.0,
        (0, _) | (_, 0) => return f64::INFINITY,
        _ => {}
    }
    let (bx, by) = (b.xs(), b.ys());
    let mut prev = vec![f64::INFINITY; m];
    let mut curr = vec![f64::INFINITY; m];
    for i in 0..n {
        let (ax, ay) = (a.xs()[i], a.ys()[i]);
        for j in 0..m {
            let dx = ax - bx[j];
            let dy = ay - by[j];
            let d2 = dx.mul_add(dx, dy * dy);
            let best_prefix = if i == 0 && j == 0 {
                0.0
            } else if i == 0 {
                curr[j - 1]
            } else if j == 0 {
                prev[j]
            } else {
                prev[j].min(curr[j - 1]).min(prev[j - 1])
            };
            curr[j] = d2.max(best_prefix);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[m - 1].sqrt()
}

/// Discrete Fréchet distance in meters.
///
/// Empty inputs: `0` if both empty, `+∞` if exactly one is.
pub fn frechet(a: &Trajectory, b: &Trajectory) -> f64 {
    let (n, m) = (a.len(), b.len());
    match (n, m) {
        (0, 0) => return 0.0,
        (0, _) | (_, 0) => return f64::INFINITY,
        _ => {}
    }
    let mut prev = vec![f64::INFINITY; m];
    let mut curr = vec![f64::INFINITY; m];
    for i in 0..n {
        let pa = &a.points[i];
        for j in 0..m {
            let d = pa.euclid_approx_m(&b.points[j]);
            let best_prefix = if i == 0 && j == 0 {
                0.0
            } else if i == 0 {
                curr[j - 1]
            } else if j == 0 {
                prev[j]
            } else {
                prev[j].min(curr[j - 1]).min(prev[j - 1])
            };
            curr[j] = d.max(best_prefix);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[m - 1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hausdorff::hausdorff;
    use traj_data::GpsPoint;

    fn traj(coords: &[(f64, f64)]) -> Trajectory {
        Trajectory::new(
            0,
            coords
                .iter()
                .enumerate()
                .map(|(i, &(lat, lon))| GpsPoint::new(lat, lon, i as f64))
                .collect(),
        )
    }

    #[test]
    fn identical_is_zero() {
        let t = traj(&[(30.0, 120.0), (30.01, 120.01), (30.02, 120.0)]);
        assert_eq!(frechet(&t, &t), 0.0);
    }

    #[test]
    fn symmetric() {
        let a = traj(&[(30.0, 120.0), (30.01, 120.0)]);
        let b = traj(&[(30.0, 120.01), (30.005, 120.01), (30.01, 120.01)]);
        assert!((frechet(&a, &b) - frechet(&b, &a)).abs() < 1e-9);
    }

    #[test]
    fn parallel_segments_distance_is_offset() {
        let a = traj(&[(30.0, 120.0), (30.0, 120.01)]);
        let b = traj(&[(30.01, 120.0), (30.01, 120.01)]);
        let f = frechet(&a, &b);
        assert!((f - 1112.0).abs() < 10.0, "got {f}");
    }

    #[test]
    fn frechet_upper_bounds_hausdorff() {
        // For any pair, H(A, B) ≤ F(A, B) (classic relationship).
        let a = traj(&[(30.0, 120.0), (30.01, 120.0), (30.02, 120.0)]);
        let b = traj(&[(30.02, 120.001), (30.01, 120.001), (30.0, 120.001)]);
        assert!(hausdorff(&a, &b) <= frechet(&a, &b) + 1e-9);
    }

    #[test]
    fn reversal_matters_unlike_hausdorff() {
        // A path against its reverse: Hausdorff ≈ 0 but Fréchet ≈ the
        // path extent (the leash must stretch across).
        let a = traj(&[(30.0, 120.0), (30.01, 120.0), (30.02, 120.0)]);
        let rev = traj(&[(30.02, 120.0), (30.01, 120.0), (30.0, 120.0)]);
        assert!(hausdorff(&a, &rev) < 1.0);
        assert!(frechet(&a, &rev) > 1000.0);
    }

    #[test]
    fn empty_conventions() {
        let e = traj(&[]);
        let t = traj(&[(30.0, 120.0)]);
        assert_eq!(frechet(&e, &e), 0.0);
        assert!(frechet(&e, &t).is_infinite());
    }
}
