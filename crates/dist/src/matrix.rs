//! Pairwise distance matrices, computed in parallel with rayon.
//!
//! The paper's classic baselines (EDR/LCSS/DTW/Hausdorff + K-Medoids) all
//! need the full O(n²) pairwise matrix; this is also the dominant cost the
//! Fig. 3 scalability experiment measures for them.
//!
//! The engine projects every trajectory **once** into flat meter buffers
//! ([`ProjectedTraj`]) and then sweeps the upper triangle in cache-blocked
//! square tiles addressed by arithmetic triangle indexing — no
//! materialized `Vec<(i, j)>` pair list (16 bytes/pair would be ~51 GB of
//! indices at the paper's 80k-trajectory scale), and each tile keeps its
//! ≤ 2·`TILE` hot `ProjectedTraj`s resident in cache across `TILE²`
//! pairs.

use crate::metric::Metric;
use crate::project::ProjectedTraj;
use rayon::prelude::*;
use std::time::Instant;
use traj_data::Trajectory;

/// Tile edge of the blocked pair sweep: 64² pairs per task is coarse
/// enough to amortize scheduling and fine enough to balance uneven
/// per-pair costs; 2 × 64 trajectories of SoA coordinates fit in L2.
const TILE: usize = 64;

/// Number of upper-triangle (incl. diagonal) tiles in an `nb × nb` grid
/// that precede tile row `r`: row `r'` contributes `nb - r'` tiles.
#[inline]
fn tile_row_offset(r: usize, nb: usize) -> usize {
    r * (2 * nb - r + 1) / 2
}

/// Maps a flat rank `t` to the `(bi, bj)` tile coordinates (`bi ≤ bj`)
/// of the row-major upper-triangle enumeration — the arithmetic
/// replacement for a materialized pair list.
fn unrank_upper_tile(t: usize, nb: usize) -> (usize, usize) {
    debug_assert!(t < tile_row_offset(nb, nb));
    // Initial guess from the quadratic root of tile_row_offset(r) = t,
    // then integer fix-up against floating-point edge error.
    let disc = (2.0 * nb as f64 + 1.0).powi(2) - 8.0 * t as f64;
    let mut r = ((2.0 * nb as f64 + 1.0 - disc.max(0.0).sqrt()) / 2.0).floor() as usize;
    r = r.min(nb - 1);
    while r > 0 && tile_row_offset(r, nb) > t {
        r -= 1;
    }
    while r + 1 < nb && tile_row_offset(r + 1, nb) <= t {
        r += 1;
    }
    (r, r + (t - tile_row_offset(r, nb)))
}

/// A symmetric `n × n` distance matrix stored densely row-major.
#[derive(Clone, Debug)]
pub struct DistanceMatrix {
    n: usize,
    data: Vec<f64>,
}

impl DistanceMatrix {
    /// Computes all pairwise distances under `metric`.
    ///
    /// Projects each trajectory once (dataset-mean-latitude anchor),
    /// then parallelizes over cache-blocked upper-triangle tiles, each
    /// worker running the trig-free projected kernels over its tile.
    /// When telemetry is enabled, per-pair latencies are recorded into a
    /// merged `dist.pair_ms` histogram alongside the `dist.pairs`
    /// counter.
    pub fn compute(trajectories: &[Trajectory], metric: &Metric) -> Self {
        let recorder = traj_obs::global();
        let _span = recorder.span("dist.matrix");
        let n = trajectories.len();
        if n == 0 {
            return Self { n: 0, data: Vec::new() };
        }
        let (_projector, projected) = ProjectedTraj::project_all(trajectories);
        crate::telemetry::DIST_PAIRS.add((n * (n - 1) / 2) as u64);

        let timed = recorder.enabled();
        let nb = n.div_ceil(TILE);
        let num_tiles = tile_row_offset(nb, nb);
        let tiles: Vec<(usize, usize, Vec<f64>, Option<traj_obs::Histogram>)> = (0..num_tiles)
            .into_par_iter()
            .map(|t| {
                let (bi, bj) = unrank_upper_tile(t, nb);
                let (i0, i1) = (bi * TILE, ((bi + 1) * TILE).min(n));
                let (j0, j1) = (bj * TILE, ((bj + 1) * TILE).min(n));
                let mut out = Vec::with_capacity((i1 - i0) * (j1 - j0));
                let mut hist = timed.then(traj_obs::Histogram::new);
                for i in i0..i1 {
                    let pi = &projected[i];
                    let jstart = if bi == bj { i + 1 } else { j0 };
                    for pj in &projected[jstart..j1] {
                        match &mut hist {
                            Some(h) => {
                                let t0 = Instant::now();
                                out.push(metric.distance_projected(pi, pj));
                                h.record(t0.elapsed().as_secs_f64() * 1e3);
                            }
                            None => out.push(metric.distance_projected(pi, pj)),
                        }
                    }
                }
                (bi, bj, out, hist)
            })
            .collect();

        let mut data = vec![0.0f64; n * n];
        let mut pair_ms = timed.then(traj_obs::Histogram::new);
        for (bi, bj, values, hist) in tiles {
            let (i0, i1) = (bi * TILE, ((bi + 1) * TILE).min(n));
            let (j0, j1) = (bj * TILE, ((bj + 1) * TILE).min(n));
            let mut values = values.into_iter();
            for i in i0..i1 {
                let jstart = if bi == bj { i + 1 } else { j0 };
                for j in jstart..j1 {
                    let d = values.next().expect("tile emits one value per pair");
                    data[i * n + j] = d;
                    data[j * n + i] = d;
                }
            }
            if let (Some(acc), Some(h)) = (&mut pair_ms, hist) {
                acc.merge(&h);
            }
        }
        if let Some(h) = pair_ms {
            recorder.histogram("dist.pair_ms", &h);
        }
        Self { n, data }
    }

    /// Builds a matrix from a precomputed dense buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != n * n`.
    pub fn from_dense(n: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), n * n, "dense buffer must be n²");
        Self { n, data }
    }

    /// Matrix dimension.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True for the 0×0 matrix.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Distance between items `i` and `j`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.n && j < self.n);
        self.data[i * self.n + j]
    }

    /// Row `i` as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.n..(i + 1) * self.n]
    }

    /// Flat row-major buffer.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Index of the item with the minimum total distance to all others
    /// (the 1-medoid). `None` for an empty matrix. Row sums run in
    /// parallel; ties break toward the lower index, matching the serial
    /// scan this replaces.
    pub fn medoid(&self) -> Option<usize> {
        (0..self.n)
            .into_par_iter()
            .map(|i| (self.row(i).iter().sum::<f64>(), i))
            .min_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)))
            .map(|(_, i)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use traj_data::GpsPoint;

    fn traj(id: u64, lat: f64) -> Trajectory {
        Trajectory::new(
            id,
            (0..3).map(|i| GpsPoint::new(lat, 120.0 + i as f64 * 1e-3, i as f64)).collect(),
        )
    }

    #[test]
    fn matrix_is_symmetric_with_zero_diagonal() {
        let ts = vec![traj(0, 30.0), traj(1, 30.01), traj(2, 30.05)];
        let m = DistanceMatrix::compute(&ts, &Metric::Dtw);
        for i in 0..3 {
            assert_eq!(m.get(i, i), 0.0);
            for j in 0..3 {
                assert_eq!(m.get(i, j), m.get(j, i));
            }
        }
    }

    #[test]
    fn distances_order_by_spatial_separation() {
        let ts = vec![traj(0, 30.0), traj(1, 30.01), traj(2, 30.5)];
        let m = DistanceMatrix::compute(&ts, &Metric::Hausdorff);
        assert!(m.get(0, 1) < m.get(0, 2));
    }

    #[test]
    fn medoid_is_most_central() {
        let ts = vec![traj(0, 30.0), traj(1, 30.02), traj(2, 30.04)];
        let m = DistanceMatrix::compute(&ts, &Metric::Dtw);
        assert_eq!(m.medoid(), Some(1));
    }

    #[test]
    fn medoid_ties_break_toward_lower_index() {
        // Two identical rows: both indices have equal row sums.
        let m = DistanceMatrix::from_dense(3, vec![0.0, 1.0, 2.0, 1.0, 0.0, 2.0, 2.0, 2.0, 0.0]);
        assert_eq!(m.medoid(), Some(0));
    }

    #[test]
    fn blocked_tiles_match_serial_projected_reference() {
        // Varied lengths so per-pair cost is uneven, exercising the tile
        // schedule; the result must equal the naive serial double loop
        // over the same projected buffers, bit for bit.
        let ts: Vec<Trajectory> = (0..9)
            .map(|i| {
                Trajectory::new(
                    i,
                    (0..(3 + (i as usize % 5) * 4))
                        .map(|p| {
                            GpsPoint::new(
                                30.0 + i as f64 * 0.01 + p as f64 * 1e-4,
                                120.0 + p as f64 * 1e-3,
                                p as f64,
                            )
                        })
                        .collect(),
                )
            })
            .collect();
        let (_, projected) = ProjectedTraj::project_all(&ts);
        for metric in [Metric::Dtw, Metric::Hausdorff, Metric::DtwBanded { band: 2 }] {
            let m = DistanceMatrix::compute(&ts, &metric);
            for i in 0..ts.len() {
                for j in 0..ts.len() {
                    let expect = if i == j {
                        0.0
                    } else {
                        metric.distance_projected(&projected[i], &projected[j])
                    };
                    assert_eq!(m.get(i, j), expect, "{metric:?} ({i}, {j})");
                }
            }
        }
    }

    #[test]
    fn projected_matrix_tracks_latlon_reference_within_tolerance() {
        let ts: Vec<Trajectory> = (0..6)
            .map(|i| {
                Trajectory::new(
                    i,
                    (0..8)
                        .map(|p| {
                            GpsPoint::new(
                                30.0 + i as f64 * 0.012 + p as f64 * 2e-4,
                                120.0 + p as f64 * 1.5e-3,
                                p as f64,
                            )
                        })
                        .collect(),
                )
            })
            .collect();
        for metric in [Metric::Dtw, Metric::Hausdorff, Metric::Erp, Metric::Frechet] {
            let m = DistanceMatrix::compute(&ts, &metric);
            for i in 0..ts.len() {
                for j in 0..ts.len() {
                    if i == j {
                        continue;
                    }
                    let reference = metric.distance(&ts[i], &ts[j]);
                    let got = m.get(i, j);
                    assert!(
                        (got - reference).abs() <= 1.5e-3 * reference.abs() + 1e-9,
                        "{metric:?} ({i}, {j}): projected {got} vs reference {reference}"
                    );
                }
            }
        }
    }

    #[test]
    fn tile_unranking_roundtrips() {
        for nb in 1..40 {
            let mut t = 0;
            for bi in 0..nb {
                for bj in bi..nb {
                    assert_eq!(unrank_upper_tile(t, nb), (bi, bj), "t = {t}, nb = {nb}");
                    t += 1;
                }
            }
            assert_eq!(tile_row_offset(nb, nb), t, "total tile count, nb = {nb}");
        }
    }

    #[test]
    fn spans_multiple_tiles() {
        // n > TILE exercises off-diagonal tiles and the refill path.
        let ts: Vec<Trajectory> = (0..(TILE + 9) as u64)
            .map(|i| traj(i, 30.0 + i as f64 * 1e-3))
            .collect();
        let m = DistanceMatrix::compute(&ts, &Metric::Hausdorff);
        let (_, projected) = ProjectedTraj::project_all(&ts);
        for i in [0, 1, TILE - 1, TILE, TILE + 5] {
            for j in [0, TILE - 2, TILE, TILE + 8] {
                let expect = if i == j {
                    0.0
                } else {
                    Metric::Hausdorff.distance_projected(&projected[i], &projected[j])
                };
                assert_eq!(m.get(i, j), expect, "({i}, {j})");
            }
        }
    }

    #[test]
    fn empty_matrix() {
        let m = DistanceMatrix::compute(&[], &Metric::Dtw);
        assert!(m.is_empty());
        assert_eq!(m.medoid(), None);
    }
}
