//! Pairwise distance matrices, computed in parallel with rayon.
//!
//! The paper's classic baselines (EDR/LCSS/DTW/Hausdorff + K-Medoids) all
//! need the full O(n²) pairwise matrix; this is also the dominant cost the
//! Fig. 3 scalability experiment measures for them.

use crate::metric::Metric;
use rayon::prelude::*;
use traj_data::Trajectory;

/// A symmetric `n × n` distance matrix stored densely row-major.
#[derive(Clone, Debug)]
pub struct DistanceMatrix {
    n: usize,
    data: Vec<f64>,
}

impl DistanceMatrix {
    /// Computes all pairwise distances under `metric`, parallelizing over
    /// the flattened upper-triangle pairs. Per-row scheduling leaves the
    /// worker handed row 0 with `n - 1` distances while the one handed the
    /// last row gets none; flat (i, j) pairs split into equal chunks keep
    /// every thread busy until the triangle is exhausted.
    pub fn compute(trajectories: &[Trajectory], metric: &Metric) -> Self {
        let recorder = traj_obs::global();
        let _span = recorder.span("dist.matrix");
        let n = trajectories.len();
        let mut pairs = Vec::with_capacity(n * n.saturating_sub(1) / 2);
        for i in 0..n {
            for j in i + 1..n {
                pairs.push((i, j));
            }
        }
        crate::telemetry::DIST_PAIRS.add(pairs.len() as u64);
        let distances: Vec<f64> = pairs
            .par_iter()
            .map(|&(i, j)| metric.distance(&trajectories[i], &trajectories[j]))
            .collect();
        let mut data = vec![0.0f64; n * n];
        for (&(i, j), d) in pairs.iter().zip(distances) {
            data[i * n + j] = d;
            data[j * n + i] = d;
        }
        Self { n, data }
    }

    /// Builds a matrix from a precomputed dense buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != n * n`.
    pub fn from_dense(n: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), n * n, "dense buffer must be n²");
        Self { n, data }
    }

    /// Matrix dimension.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True for the 0×0 matrix.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Distance between items `i` and `j`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.n && j < self.n);
        self.data[i * self.n + j]
    }

    /// Row `i` as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.n..(i + 1) * self.n]
    }

    /// Flat row-major buffer.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Index of the item with the minimum total distance to all others
    /// (the 1-medoid). `None` for an empty matrix.
    pub fn medoid(&self) -> Option<usize> {
        (0..self.n).min_by(|&a, &b| {
            let sa: f64 = self.row(a).iter().sum();
            let sb: f64 = self.row(b).iter().sum();
            sa.total_cmp(&sb)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use traj_data::GpsPoint;

    fn traj(id: u64, lat: f64) -> Trajectory {
        Trajectory::new(
            id,
            (0..3).map(|i| GpsPoint::new(lat, 120.0 + i as f64 * 1e-3, i as f64)).collect(),
        )
    }

    #[test]
    fn matrix_is_symmetric_with_zero_diagonal() {
        let ts = vec![traj(0, 30.0), traj(1, 30.01), traj(2, 30.05)];
        let m = DistanceMatrix::compute(&ts, &Metric::Dtw);
        for i in 0..3 {
            assert_eq!(m.get(i, i), 0.0);
            for j in 0..3 {
                assert_eq!(m.get(i, j), m.get(j, i));
            }
        }
    }

    #[test]
    fn distances_order_by_spatial_separation() {
        let ts = vec![traj(0, 30.0), traj(1, 30.01), traj(2, 30.5)];
        let m = DistanceMatrix::compute(&ts, &Metric::Hausdorff);
        assert!(m.get(0, 1) < m.get(0, 2));
    }

    #[test]
    fn medoid_is_most_central() {
        let ts = vec![traj(0, 30.0), traj(1, 30.02), traj(2, 30.04)];
        let m = DistanceMatrix::compute(&ts, &Metric::Dtw);
        assert_eq!(m.medoid(), Some(1));
    }

    #[test]
    fn flattened_pair_parallelism_matches_serial_reference() {
        // Varied lengths so per-pair cost is uneven, exercising the chunked
        // schedule; the result must equal the naive serial double loop.
        let ts: Vec<Trajectory> = (0..9)
            .map(|i| {
                Trajectory::new(
                    i,
                    (0..(3 + (i as usize % 5) * 4))
                        .map(|p| {
                            GpsPoint::new(
                                30.0 + i as f64 * 0.01 + p as f64 * 1e-4,
                                120.0 + p as f64 * 1e-3,
                                p as f64,
                            )
                        })
                        .collect(),
                )
            })
            .collect();
        for metric in [Metric::Dtw, Metric::Hausdorff] {
            let m = DistanceMatrix::compute(&ts, &metric);
            for i in 0..ts.len() {
                for j in 0..ts.len() {
                    let expect =
                        if i == j { 0.0 } else { metric.distance(&ts[i], &ts[j]) };
                    assert_eq!(m.get(i, j), expect, "{metric:?} ({i}, {j})");
                }
            }
        }
    }

    #[test]
    fn empty_matrix() {
        let m = DistanceMatrix::compute(&[], &Metric::Dtw);
        assert!(m.is_empty());
        assert_eq!(m.medoid(), None);
    }
}
