//! Dynamic Time Warping (Yi, Jagadish, Faloutsos — ICDE 1998).
//!
//! `DTW(A, B)` is the minimum cumulative point-to-point distance over all
//! monotone alignments of the two sequences. O(|A|·|B|) time, O(min) space
//! via a rolling row.

use traj_data::Trajectory;

/// DTW distance in meters between two trajectories.
///
/// Empty inputs: `0` if both are empty, `+∞` if exactly one is.
pub fn dtw(a: &Trajectory, b: &Trajectory) -> f64 {
    let (n, m) = (a.len(), b.len());
    match (n, m) {
        (0, 0) => return 0.0,
        (0, _) | (_, 0) => return f64::INFINITY,
        _ => {}
    }
    // prev[j] = D(i-1, j), curr[j] = D(i, j); j indexes b, 1-based stored 0..=m.
    let mut prev = vec![f64::INFINITY; m + 1];
    let mut curr = vec![f64::INFINITY; m + 1];
    prev[0] = 0.0;
    for i in 1..=n {
        curr[0] = f64::INFINITY;
        let pa = &a.points[i - 1];
        for j in 1..=m {
            let cost = pa.euclid_approx_m(&b.points[j - 1]);
            let best = prev[j].min(curr[j - 1]).min(prev[j - 1]);
            curr[j] = cost + best;
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[m]
}

/// DTW normalized by the alignment-path lower bound `max(|A|, |B|)`,
/// giving a length-comparable per-point cost in meters.
pub fn dtw_normalized(a: &Trajectory, b: &Trajectory) -> f64 {
    let d = dtw(a, b);
    let denom = a.len().max(b.len());
    if denom == 0 {
        0.0
    } else {
        d / denom as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use traj_data::GpsPoint;

    fn traj(coords: &[(f64, f64)]) -> Trajectory {
        Trajectory::new(
            0,
            coords
                .iter()
                .enumerate()
                .map(|(i, &(lat, lon))| GpsPoint::new(lat, lon, i as f64))
                .collect(),
        )
    }

    #[test]
    fn identical_trajectories_have_zero_distance() {
        let t = traj(&[(30.0, 120.0), (30.01, 120.01), (30.02, 120.02)]);
        assert_eq!(dtw(&t, &t), 0.0);
    }

    #[test]
    fn dtw_is_symmetric() {
        let a = traj(&[(30.0, 120.0), (30.01, 120.0)]);
        let b = traj(&[(30.0, 120.0), (30.005, 120.0), (30.01, 120.0)]);
        assert!((dtw(&a, &b) - dtw(&b, &a)).abs() < 1e-9);
    }

    #[test]
    fn dtw_tolerates_resampling() {
        // The same path sampled at 2× rate should stay close.
        let sparse = traj(&[(30.0, 120.0), (30.02, 120.0), (30.04, 120.0)]);
        let dense = traj(&[
            (30.0, 120.0),
            (30.01, 120.0),
            (30.02, 120.0),
            (30.03, 120.0),
            (30.04, 120.0),
        ]);
        let far = traj(&[(30.2, 120.2), (30.22, 120.2), (30.24, 120.2)]);
        assert!(dtw(&sparse, &dense) < dtw(&sparse, &far) / 10.0);
    }

    #[test]
    fn single_point_vs_path_accumulates() {
        let single = traj(&[(30.0, 120.0)]);
        let path = traj(&[(30.0, 120.0), (30.0, 120.0)]);
        assert_eq!(dtw(&single, &path), 0.0);
    }

    #[test]
    fn empty_handling() {
        let e = traj(&[]);
        let t = traj(&[(30.0, 120.0)]);
        assert_eq!(dtw(&e, &e), 0.0);
        assert!(dtw(&e, &t).is_infinite());
    }

    #[test]
    fn normalized_divides_by_longer_length() {
        let a = traj(&[(30.0, 120.0), (30.0, 120.0)]);
        let b = traj(&[(30.01, 120.0)]);
        let d = dtw(&a, &b);
        assert!((dtw_normalized(&a, &b) - d / 2.0).abs() < 1e-9);
    }
}
