//! Dynamic Time Warping (Yi, Jagadish, Faloutsos — ICDE 1998).
//!
//! `DTW(A, B)` is the minimum cumulative point-to-point distance over all
//! monotone alignments of the two sequences. O(|A|·|B|) time, O(min) space
//! via a rolling row.
//!
//! Three kernel tiers share the recurrence:
//! - [`dtw`] — the lat/lon reference (per-cell equirectangular trig),
//!   kept as the oracle the projected kernels are tested against;
//! - [`dtw_projected`] / [`dtw_projected_banded`] — trig-free rolling-row
//!   DP over pre-projected [`ProjectedTraj`] buffers, optionally under a
//!   Sakoe–Chiba band;
//! - [`dtw_projected_pruned`] — the banded kernel with early abandoning
//!   (rows whose minimum exceeds a cutoff prove the pair can't beat it),
//!   the workhorse of the [`crate::knn`] cascade.

use crate::project::ProjectedTraj;
use traj_data::Trajectory;

/// DTW distance in meters between two trajectories.
///
/// Empty inputs: `0` if both are empty, `+∞` if exactly one is.
pub fn dtw(a: &Trajectory, b: &Trajectory) -> f64 {
    let (n, m) = (a.len(), b.len());
    match (n, m) {
        (0, 0) => return 0.0,
        (0, _) | (_, 0) => return f64::INFINITY,
        _ => {}
    }
    // prev[j] = D(i-1, j), curr[j] = D(i, j); j indexes b, 1-based stored 0..=m.
    let mut prev = vec![f64::INFINITY; m + 1];
    let mut curr = vec![f64::INFINITY; m + 1];
    prev[0] = 0.0;
    for i in 1..=n {
        curr[0] = f64::INFINITY;
        let pa = &a.points[i - 1];
        for j in 1..=m {
            let cost = pa.euclid_approx_m(&b.points[j - 1]);
            let best = prev[j].min(curr[j - 1]).min(prev[j - 1]);
            curr[j] = cost + best;
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[m]
}

/// DTW in meters over a Sakoe–Chiba band: cells with `|i − j| > w` are
/// excluded, where `w = max(band, ||A| − |B||)` (widening to the length
/// difference keeps an alignment path feasible). Lat/lon reference for
/// [`dtw_projected_banded`].
///
/// Empty inputs: `0` if both are empty, `+∞` if exactly one is.
pub fn dtw_banded(a: &Trajectory, b: &Trajectory, band: usize) -> f64 {
    let (n, m) = (a.len(), b.len());
    match (n, m) {
        (0, 0) => return 0.0,
        (0, _) | (_, 0) => return f64::INFINITY,
        _ => {}
    }
    let w = band.max(n.abs_diff(m));
    let mut prev = vec![f64::INFINITY; m + 1];
    let mut curr = vec![f64::INFINITY; m + 1];
    prev[0] = 0.0;
    for i in 1..=n {
        let lo = i.saturating_sub(w).max(1);
        let hi = (i + w).min(m);
        curr[lo - 1] = f64::INFINITY;
        let pa = &a.points[i - 1];
        for j in lo..=hi {
            let cost = pa.euclid_approx_m(&b.points[j - 1]);
            let best = prev[j].min(curr[j - 1]).min(prev[j - 1]);
            curr[j] = cost + best;
        }
        if hi < m {
            curr[hi + 1] = f64::INFINITY;
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[m]
}

/// Trig-free DTW in meters over pre-projected buffers. Same recurrence
/// as [`dtw`], but each cell is two subtractions, one FMA, and one
/// square root — no `to_radians`/`cos`.
///
/// Empty inputs: `0` if both are empty, `+∞` if exactly one is.
pub fn dtw_projected(a: &ProjectedTraj, b: &ProjectedTraj) -> f64 {
    let (n, m) = (a.len(), b.len());
    match (n, m) {
        (0, 0) => return 0.0,
        (0, _) | (_, 0) => return f64::INFINITY,
        _ => {}
    }
    let (bx, by) = (b.xs(), b.ys());
    let mut prev = vec![f64::INFINITY; m + 1];
    let mut curr = vec![f64::INFINITY; m + 1];
    prev[0] = 0.0;
    for i in 1..=n {
        let (ax, ay) = (a.xs()[i - 1], a.ys()[i - 1]);
        // `left` carries curr[j-1] and `diag` carries prev[j-1] in
        // registers; zipped slices elide every bounds check, and
        // `up.min(diag)` sits off the loop-carried `left` chain.
        let mut left = f64::INFINITY;
        let mut diag = prev[0];
        curr[0] = f64::INFINITY;
        for ((out, (&bxj, &byj)), &up) in
            curr[1..].iter_mut().zip(bx.iter().zip(by)).zip(&prev[1..])
        {
            let dx = ax - bxj;
            let dy = ay - byj;
            let cost = dx.mul_add(dx, dy * dy).sqrt();
            let v = cost + up.min(diag).min(left);
            *out = v;
            diag = up;
            left = v;
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[m]
}

/// Trig-free Sakoe–Chiba-banded DTW over pre-projected buffers; see
/// [`dtw_banded`] for the band semantics.
pub fn dtw_projected_banded(a: &ProjectedTraj, b: &ProjectedTraj, band: usize) -> f64 {
    dtw_projected_pruned(a, b, Some(band), f64::INFINITY)
        .expect("infinite cutoff never abandons")
}

/// Early-abandoning (optionally banded) projected DTW.
///
/// Returns `Some(d)` with the exact (banded) DTW when it is computed to
/// completion, or `None` as soon as some DP row's minimum exceeds
/// `cutoff` — every alignment path crosses every row and per-cell costs
/// are non-negative, so the final distance is then provably `> cutoff`.
/// `cutoff = +∞` never abandons.
pub fn dtw_projected_pruned(
    a: &ProjectedTraj,
    b: &ProjectedTraj,
    band: Option<usize>,
    cutoff: f64,
) -> Option<f64> {
    let (n, m) = (a.len(), b.len());
    match (n, m) {
        (0, 0) => return Some(0.0),
        (0, _) | (_, 0) => return Some(f64::INFINITY),
        _ => {}
    }
    let w = band.map_or(n.max(m), |bw| bw.max(n.abs_diff(m)));
    let (bx, by) = (b.xs(), b.ys());
    let mut prev = vec![f64::INFINITY; m + 1];
    let mut curr = vec![f64::INFINITY; m + 1];
    prev[0] = 0.0;
    for i in 1..=n {
        let lo = i.saturating_sub(w).max(1);
        let hi = (i + w).min(m);
        curr[lo - 1] = f64::INFINITY;
        let (ax, ay) = (a.xs()[i - 1], a.ys()[i - 1]);
        // Same register-carried `left`/`diag` scheme as [`dtw_projected`],
        // over the banded window only.
        let mut left = f64::INFINITY;
        let mut diag = prev[lo - 1];
        let mut row_min = f64::INFINITY;
        for ((out, (&bxj, &byj)), &up) in curr[lo..=hi]
            .iter_mut()
            .zip(bx[lo - 1..hi].iter().zip(&by[lo - 1..hi]))
            .zip(&prev[lo..=hi])
        {
            let dx = ax - bxj;
            let dy = ay - byj;
            let cost = dx.mul_add(dx, dy * dy).sqrt();
            let v = cost + up.min(diag).min(left);
            *out = v;
            row_min = row_min.min(v);
            diag = up;
            left = v;
        }
        if hi < m {
            curr[hi + 1] = f64::INFINITY;
        }
        if row_min > cutoff {
            return None;
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    Some(prev[m])
}

/// DTW normalized by the alignment-path lower bound `max(|A|, |B|)`,
/// giving a length-comparable per-point cost in meters.
pub fn dtw_normalized(a: &Trajectory, b: &Trajectory) -> f64 {
    let d = dtw(a, b);
    let denom = a.len().max(b.len());
    if denom == 0 {
        0.0
    } else {
        d / denom as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use traj_data::GpsPoint;

    fn traj(coords: &[(f64, f64)]) -> Trajectory {
        Trajectory::new(
            0,
            coords
                .iter()
                .enumerate()
                .map(|(i, &(lat, lon))| GpsPoint::new(lat, lon, i as f64))
                .collect(),
        )
    }

    #[test]
    fn identical_trajectories_have_zero_distance() {
        let t = traj(&[(30.0, 120.0), (30.01, 120.01), (30.02, 120.02)]);
        assert_eq!(dtw(&t, &t), 0.0);
    }

    #[test]
    fn dtw_is_symmetric() {
        let a = traj(&[(30.0, 120.0), (30.01, 120.0)]);
        let b = traj(&[(30.0, 120.0), (30.005, 120.0), (30.01, 120.0)]);
        assert!((dtw(&a, &b) - dtw(&b, &a)).abs() < 1e-9);
    }

    #[test]
    fn dtw_tolerates_resampling() {
        // The same path sampled at 2× rate should stay close.
        let sparse = traj(&[(30.0, 120.0), (30.02, 120.0), (30.04, 120.0)]);
        let dense = traj(&[
            (30.0, 120.0),
            (30.01, 120.0),
            (30.02, 120.0),
            (30.03, 120.0),
            (30.04, 120.0),
        ]);
        let far = traj(&[(30.2, 120.2), (30.22, 120.2), (30.24, 120.2)]);
        assert!(dtw(&sparse, &dense) < dtw(&sparse, &far) / 10.0);
    }

    #[test]
    fn single_point_vs_path_accumulates() {
        let single = traj(&[(30.0, 120.0)]);
        let path = traj(&[(30.0, 120.0), (30.0, 120.0)]);
        assert_eq!(dtw(&single, &path), 0.0);
    }

    #[test]
    fn empty_handling() {
        let e = traj(&[]);
        let t = traj(&[(30.0, 120.0)]);
        assert_eq!(dtw(&e, &e), 0.0);
        assert!(dtw(&e, &t).is_infinite());
    }

    #[test]
    fn normalized_divides_by_longer_length() {
        let a = traj(&[(30.0, 120.0), (30.0, 120.0)]);
        let b = traj(&[(30.01, 120.0)]);
        let d = dtw(&a, &b);
        assert!((dtw_normalized(&a, &b) - d / 2.0).abs() < 1e-9);
    }

    fn project_pair(a: &Trajectory, b: &Trajectory) -> (ProjectedTraj, ProjectedTraj) {
        let (_, mut ps) = ProjectedTraj::project_all(&[a.clone(), b.clone()]);
        let pb = ps.pop().expect("two");
        let pa = ps.pop().expect("two");
        (pa, pb)
    }

    #[test]
    fn projected_matches_reference_within_projection_tolerance() {
        let a = traj(&[(30.0, 120.0), (30.01, 120.02), (30.02, 120.01)]);
        let b = traj(&[(30.005, 120.0), (30.015, 120.015)]);
        let (pa, pb) = project_pair(&a, &b);
        let reference = dtw(&a, &b);
        let projected = dtw_projected(&pa, &pb);
        assert!(
            (reference - projected).abs() / reference < 1e-3,
            "reference {reference}, projected {projected}"
        );
    }

    #[test]
    fn wide_band_equals_unbanded() {
        let a = traj(&[(30.0, 120.0), (30.01, 120.0), (30.02, 120.0), (30.03, 120.0)]);
        let b = traj(&[(30.0, 120.01), (30.02, 120.01)]);
        let (pa, pb) = project_pair(&a, &b);
        assert_eq!(dtw_projected_banded(&pa, &pb, 10), dtw_projected(&pa, &pb));
        assert!((dtw_banded(&a, &b, 10) - dtw(&a, &b)).abs() < 1e-9);
    }

    #[test]
    fn narrower_band_never_decreases_distance() {
        let a = traj(&[(30.0, 120.0), (30.01, 120.01), (30.0, 120.02), (30.02, 120.03)]);
        let b = traj(&[(30.02, 120.0), (30.0, 120.01), (30.01, 120.02)]);
        let (pa, pb) = project_pair(&a, &b);
        let mut last = 0.0f64;
        for band in (0..=4).rev() {
            let d = dtw_projected_banded(&pa, &pb, band);
            assert!(d + 1e-9 >= last, "band {band}: {d} < {last}");
            last = d;
        }
    }

    #[test]
    fn pruned_with_infinite_cutoff_is_exact() {
        let a = traj(&[(30.0, 120.0), (30.01, 120.01), (30.02, 120.0)]);
        let b = traj(&[(30.0, 120.02), (30.015, 120.01)]);
        let (pa, pb) = project_pair(&a, &b);
        assert_eq!(
            dtw_projected_pruned(&pa, &pb, None, f64::INFINITY),
            Some(dtw_projected(&pa, &pb))
        );
    }

    #[test]
    fn pruned_abandons_only_above_cutoff() {
        let a = traj(&[(30.0, 120.0), (30.01, 120.0)]);
        let b = traj(&[(30.2, 120.2), (30.21, 120.2)]);
        let (pa, pb) = project_pair(&a, &b);
        let d = dtw_projected(&pa, &pb);
        assert_eq!(dtw_projected_pruned(&pa, &pb, None, d), Some(d), "cutoff == d completes");
        assert_eq!(dtw_projected_pruned(&pa, &pb, None, d * 0.5), None, "cutoff < d abandons");
    }

    #[test]
    fn projected_empty_conventions() {
        let e = traj(&[]);
        let t = traj(&[(30.0, 120.0)]);
        let (pe, pt) = project_pair(&e, &t);
        assert_eq!(dtw_projected(&pe, &pe), 0.0);
        assert!(dtw_projected(&pe, &pt).is_infinite());
        assert!(dtw_projected_banded(&pt, &pe, 3).is_infinite());
        assert_eq!(dtw_projected_pruned(&pe, &pe, Some(1), 0.0), Some(0.0));
    }
}
