//! # traj-dist — classical trajectory distance metrics
//!
//! The raw-trajectory distance functions the E²DTC paper compares against
//! (§I, §VII-A): point-based [`edr`] and [`lcss`], warping-based [`dtw`],
//! and shape-based [`hausdorff`] — plus a rayon-parallel
//! [`matrix::DistanceMatrix`] for the O(n²) pairwise computation the
//! K-Medoids baselines require.
//!
//! All metrics use a fast city-scale equirectangular approximation of
//! geodesic distance between GPS points (validated against haversine in
//! `traj-data`).
//!
//! The hot paths run on [`project::ProjectedTraj`] — trajectories
//! projected **once** into flat meter buffers (anchored at the dataset
//! mean latitude) so the O(L²) DP inner loops are trig-free — and the
//! [`knn`] module answers k-nearest/radius queries through a
//! lower-bound pruning cascade without materializing the full matrix.
//! The original lat/lon kernels remain as the tested oracles.

#![warn(missing_docs)]

pub mod dtw;
pub mod edr;
pub mod erp;
pub mod frechet;
pub mod hausdorff;
pub mod knn;
pub mod lcss;
pub mod matrix;
pub mod metric;
pub mod project;
pub mod telemetry;

pub use knn::{KnnIndex, Neighbor};
pub use matrix::DistanceMatrix;
pub use metric::Metric;
pub use project::{Envelope, ProjectedTraj};
