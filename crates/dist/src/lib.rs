//! # traj-dist — classical trajectory distance metrics
//!
//! The raw-trajectory distance functions the E²DTC paper compares against
//! (§I, §VII-A): point-based [`edr`] and [`lcss`], warping-based [`dtw`],
//! and shape-based [`hausdorff`] — plus a rayon-parallel
//! [`matrix::DistanceMatrix`] for the O(n²) pairwise computation the
//! K-Medoids baselines require.
//!
//! All metrics use a fast city-scale equirectangular approximation of
//! geodesic distance between GPS points (validated against haversine in
//! `traj-data`).

#![warn(missing_docs)]

pub mod dtw;
pub mod edr;
pub mod erp;
pub mod frechet;
pub mod hausdorff;
pub mod lcss;
pub mod matrix;
pub mod metric;
pub mod telemetry;

pub use matrix::DistanceMatrix;
pub use metric::Metric;
