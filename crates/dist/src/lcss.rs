//! Longest Common SubSequence similarity (Vlachos, Kollios, Gunopulos —
//! ICDE 2002).
//!
//! Points match when within `eps_m` meters (and optionally within `delta`
//! index positions, the ICDE'02 time-warp constraint). The LCSS *distance*
//! is `1 − LCSS/min(|A|, |B|)`.

use crate::project::ProjectedTraj;
use traj_data::Trajectory;

/// LCSS length over pre-projected buffers: squared distance against
/// `eps_m²`, no per-cell trig or square root. [`lcss_length`] stays as
/// the lat/lon oracle.
pub fn lcss_projected_length(
    a: &ProjectedTraj,
    b: &ProjectedTraj,
    eps_m: f64,
    delta: Option<usize>,
) -> usize {
    let (n, m) = (a.len(), b.len());
    if n == 0 || m == 0 {
        return 0;
    }
    let eps2 = eps_m * eps_m;
    let (bx, by) = (b.xs(), b.ys());
    let mut prev = vec![0usize; m + 1];
    let mut curr = vec![0usize; m + 1];
    for i in 1..=n {
        curr[0] = 0;
        let (ax, ay) = (a.xs()[i - 1], a.ys()[i - 1]);
        if delta.is_none() {
            // Unconstrained match predicate: register-carried
            // curr[j-1]/prev[j-1] over zipped slices, as in
            // `dtw_projected` — the hot path for full matrices.
            let mut left = 0usize;
            let mut diag = prev[0];
            for ((out, (&bxj, &byj)), &up) in
                curr[1..].iter_mut().zip(bx.iter().zip(by)).zip(&prev[1..])
            {
                let dx = ax - bxj;
                let dy = ay - byj;
                let v = if dx.mul_add(dx, dy * dy) <= eps2 { diag + 1 } else { up.max(left) };
                *out = v;
                diag = up;
                left = v;
            }
        } else {
            for j in 1..=m {
                let within_delta = delta.is_none_or(|d| i.abs_diff(j) <= d);
                let dx = ax - bx[j - 1];
                let dy = ay - by[j - 1];
                if within_delta && dx.mul_add(dx, dy * dy) <= eps2 {
                    curr[j] = prev[j - 1] + 1;
                } else {
                    curr[j] = prev[j].max(curr[j - 1]);
                }
            }
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[m]
}

/// Projected LCSS distance `1 − LCSS/min(|A|, |B|)`, in `[0, 1]`.
pub fn lcss_projected_distance(a: &ProjectedTraj, b: &ProjectedTraj, eps_m: f64) -> f64 {
    let denom = a.len().min(b.len());
    if denom == 0 {
        return if a.len() == b.len() { 0.0 } else { 1.0 };
    }
    1.0 - lcss_projected_length(a, b, eps_m, None) as f64 / denom as f64
}

/// Length of the longest common subsequence under the spatial threshold
/// `eps_m` and optional index-offset constraint `delta`.
pub fn lcss_length(a: &Trajectory, b: &Trajectory, eps_m: f64, delta: Option<usize>) -> usize {
    let (n, m) = (a.len(), b.len());
    if n == 0 || m == 0 {
        return 0;
    }
    let mut prev = vec![0usize; m + 1];
    let mut curr = vec![0usize; m + 1];
    for i in 1..=n {
        curr[0] = 0;
        let pa = &a.points[i - 1];
        for j in 1..=m {
            let within_delta = delta.is_none_or(|d| i.abs_diff(j) <= d);
            if within_delta && pa.euclid_approx_m(&b.points[j - 1]) <= eps_m {
                curr[j] = prev[j - 1] + 1;
            } else {
                curr[j] = prev[j].max(curr[j - 1]);
            }
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[m]
}

/// LCSS distance `1 − LCSS/min(|A|, |B|)`, in `[0, 1]`.
pub fn lcss_distance(a: &Trajectory, b: &Trajectory, eps_m: f64) -> f64 {
    let denom = a.len().min(b.len());
    if denom == 0 {
        return if a.len() == b.len() { 0.0 } else { 1.0 };
    }
    1.0 - lcss_length(a, b, eps_m, None) as f64 / denom as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use traj_data::GpsPoint;

    fn traj(coords: &[(f64, f64)]) -> Trajectory {
        Trajectory::new(
            0,
            coords
                .iter()
                .enumerate()
                .map(|(i, &(lat, lon))| GpsPoint::new(lat, lon, i as f64))
                .collect(),
        )
    }

    #[test]
    fn identical_full_match() {
        let t = traj(&[(30.0, 120.0), (30.01, 120.0), (30.02, 120.0)]);
        assert_eq!(lcss_length(&t, &t, 10.0, None), 3);
        assert_eq!(lcss_distance(&t, &t, 10.0), 0.0);
    }

    #[test]
    fn disjoint_no_match() {
        let a = traj(&[(30.0, 120.0), (30.01, 120.0)]);
        let b = traj(&[(35.0, 125.0), (35.01, 125.0)]);
        assert_eq!(lcss_length(&a, &b, 100.0, None), 0);
        assert_eq!(lcss_distance(&a, &b, 100.0), 1.0);
    }

    #[test]
    fn subsequence_matches_fully() {
        // b is a subsampled a => LCSS = |b|, distance 0.
        let a = traj(&[(30.0, 120.0), (30.01, 120.0), (30.02, 120.0), (30.03, 120.0)]);
        let b = traj(&[(30.0, 120.0), (30.02, 120.0)]);
        assert_eq!(lcss_length(&a, &b, 10.0, None), 2);
        assert_eq!(lcss_distance(&a, &b, 10.0), 0.0);
    }

    #[test]
    fn delta_constraint_blocks_distant_index_matches() {
        // The matching point sits at index 0 in a and index 3 in b.
        let a = traj(&[(30.0, 120.0), (31.0, 121.0), (31.1, 121.0), (31.2, 121.0)]);
        let b = traj(&[(32.0, 122.0), (32.1, 122.0), (32.2, 122.0), (30.0, 120.0)]);
        assert_eq!(lcss_length(&a, &b, 10.0, None), 1);
        assert_eq!(lcss_length(&a, &b, 10.0, Some(1)), 0);
    }

    #[test]
    fn distance_is_symmetric_and_bounded() {
        let a = traj(&[(30.0, 120.0), (30.005, 120.0), (30.01, 120.0)]);
        let b = traj(&[(30.0, 120.001), (30.01, 120.001)]);
        let d1 = lcss_distance(&a, &b, 200.0);
        let d2 = lcss_distance(&b, &a, 200.0);
        assert!((d1 - d2).abs() < 1e-12);
        assert!((0.0..=1.0).contains(&d1));
    }

    #[test]
    fn empty_conventions() {
        let e = traj(&[]);
        let t = traj(&[(30.0, 120.0)]);
        assert_eq!(lcss_distance(&e, &e, 10.0), 0.0);
        assert_eq!(lcss_distance(&e, &t, 10.0), 1.0);
    }
}
