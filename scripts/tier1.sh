#!/usr/bin/env bash
# Tier-1 verification (see ROADMAP.md) plus a bench smoke-run.
#
#   build  — release build of the whole workspace, plus the examples
#   lint   — clippy over the whole workspace with warnings promoted to errors
#   test   — full test suite (unit + integration + proptests + gradchecks +
#            telemetry no-op-overhead guard + golden-run regression)
#   fault  — fault-injection integration tests (NaN poisoning, torn/killed
#            checkpoint saves) behind the e2dtc `fault-injection` feature
#   bench  — bench_nn and bench_dist in --test mode: every benchmark body
#            runs once so the harnesses, kernels (fused GRU, projected
#            distance, knn pruning), and the references stay compilable
#            and panic-free without paying for a full measurement run
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo build --examples
cargo clippy --workspace --all-targets -- -D warnings
cargo test -q
cargo test -q -p e2dtc --features fault-injection --test fault_injection
cargo bench -p e2dtc-bench --bench bench_nn -- --test
cargo bench -p e2dtc-bench --bench bench_dist -- --test

echo "tier1: OK"
