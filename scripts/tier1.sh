#!/usr/bin/env bash
# Tier-1 verification (see ROADMAP.md) plus a bench smoke-run.
#
#   build  — release build of the whole workspace
#   test   — full test suite (unit + integration + proptests + gradchecks)
#   bench  — bench_nn in --test mode: every benchmark body runs once so the
#            harness, kernels, and the unfused reference stay compilable and
#            panic-free without paying for a full measurement run
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo bench -p e2dtc-bench --bench bench_nn -- --test

echo "tier1: OK"
