#!/usr/bin/env bash
# Tier-1 verification (see ROADMAP.md) plus a bench smoke-run.
#
#   build  — release build of the whole workspace, plus the examples
#   lint   — clippy over the whole workspace with warnings promoted to errors
#   test   — full test suite (unit + integration + proptests + gradchecks +
#            telemetry no-op-overhead guard + golden-run regression)
#   fault  — fault-injection integration tests (NaN poisoning, torn/killed
#            checkpoint saves) behind the e2dtc `fault-injection` feature
#   bench  — bench_nn, bench_dist and bench_query in --test mode: every
#            benchmark body runs once so the harnesses, kernels (fused
#            GRU, projected distance, knn pruning, frozen query engine),
#            and the references stay compilable and panic-free without
#            paying for a full measurement run
#   smoke  — the CLI serve path end-to-end on a tiny synthetic city:
#            generate → train → embed (frozen encoder from checkpoint)
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo build --examples
cargo clippy --workspace --all-targets -- -D warnings
cargo test -q
cargo test -q -p e2dtc --features fault-injection --test fault_injection
cargo bench -p e2dtc-bench --bench bench_nn -- --test
cargo bench -p e2dtc-bench --bench bench_dist -- --test
cargo bench -p e2dtc-bench --bench bench_query -- --test

smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
./target/release/e2dtc generate --kind hangzhou --n 40 --out "$smoke_dir/data.json" --quiet
./target/release/e2dtc train --data "$smoke_dir/data.json" --out "$smoke_dir/model.json" \
    --preset fast --quiet
./target/release/e2dtc embed --model "$smoke_dir/model.json" --data "$smoke_dir/data.json" \
    --out "$smoke_dir/emb.json" --quiet
grep -q '"embeddings"' "$smoke_dir/emb.json"

echo "tier1: OK"
