//! Offline shim replacing the `proptest` crate for this workspace.
//!
//! Implements the subset the workspace's property tests use: the
//! [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] macros, a
//! [`Strategy`] trait with `prop_map`, range and tuple strategies, and
//! `prop::collection::vec`. Unlike real proptest there is no shrinking
//! and no persisted failure file — cases are drawn from a fixed seed, so
//! every run explores the same deterministic corpus and failures
//! reproduce exactly.

use rand::rngs::StdRng;
use rand::{Rng, SampleUniform, SeedableRng};

/// A generator of random values of one type.
pub trait Strategy {
    /// The type this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f` (mirrors `Strategy::prop_map`).
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

impl<T: SampleUniform> Strategy for std::ops::Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.start..self.end)
    }
}

impl<T: SampleUniform> Strategy for std::ops::RangeInclusive<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen_range(*self.start()..=*self.end())
    }
}

macro_rules! impl_strategy_tuple {
    ($(($($name:ident : $idx:tt),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_strategy_tuple! {
    (A: 0);
    (A: 0, B: 1);
    (A: 0, B: 1, C: 2);
    (A: 0, B: 1, C: 2, D: 3);
}

/// Strategy namespace, mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies, mirroring `proptest::collection`.
    pub mod collection {
        use super::super::{SizeRange, Strategy, VecStrategy};

        /// Vectors of `element` values with a length drawn from `size`
        /// (an exact `usize` or a `Range<usize>`).
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy { element, size: size.into() }
        }
    }
}

/// Length specification for [`prop::collection::vec`].
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi_exclusive: n + 1 }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        Self { lo: r.start, hi_exclusive: r.end }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        Self { lo: *r.start(), hi_exclusive: *r.end() + 1 }
    }
}

/// Strategy for vectors, produced by [`prop::collection::vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.lo..self.size.hi_exclusive);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Option strategies, mirroring `proptest::option`.
pub mod option {
    use super::{OptionStrategy, Strategy};

    /// `Option` values: `None` in roughly a quarter of cases, otherwise
    /// `Some` of the inner strategy's value (real proptest's default
    /// weighting).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

/// Strategy for options, produced by [`option::of`].
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Option<S::Value> {
        if rng.gen_range(0u8..4) == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}

/// Constant strategy, mirroring `proptest::strategy::Just`.
#[derive(Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Per-test configuration, mirroring `proptest::test_runner::ProptestConfig`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A failed property assertion inside a [`proptest!`] body.
#[derive(Debug)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    /// Failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

/// Deterministic per-case RNG. Cases differ but runs repeat exactly.
pub fn case_rng(case: u32) -> StdRng {
    StdRng::seed_from_u64(0xE2D7_C0DE_u64 ^ ((case as u64) << 32 | case as u64))
}

/// Defines deterministic property tests (shim of `proptest::proptest!`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    ($($(#[$meta:meta])+ fn $name:ident ($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default())
            $($(#[$meta])+ fn $name($($arg in $strat),*) $body)*);
    };
    (@cfg ($cfg:expr) $($(#[$meta:meta])+ fn $name:ident ($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut rng = $crate::case_rng(case);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                    let result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    if let Err(e) = result {
                        panic!(
                            "proptest case {}/{} failed: {}\n(deterministic corpus; rerunning reproduces the failure)",
                            case, config.cases, e
                        );
                    }
                }
            }
        )*
    };
}

/// Property assertion; fails the current case with an optional message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Equality property assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} ({:?} vs {:?})",
                stringify!($left), stringify!($right), l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Inequality property assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l != r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {} (both {:?})",
                stringify!($left), stringify!($right), l
            )));
        }
    }};
}

/// One-stop imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig,
        Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn strategies_are_deterministic_per_case() {
        let strat = prop::collection::vec(-1.0f32..1.0, 3usize);
        let mut a = super::case_rng(5);
        let mut b = super::case_rng(5);
        assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 2usize..9, y in -1.0f32..1.0) {
            prop_assert!((2..9).contains(&x));
            prop_assert!((-1.0..1.0).contains(&y), "y = {y}");
        }

        #[test]
        fn vec_lengths_in_range(v in prop::collection::vec((0.0f64..1.0, 5u64..6), 1..4)) {
            prop_assert!((1..4).contains(&v.len()));
            prop_assert_eq!(v[0].1, 5);
        }

        #[test]
        fn prop_map_applies(n in (1usize..5).prop_map(|n| n * 10)) {
            prop_assert!(n % 10 == 0 && (10..50).contains(&n));
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0u64..10) {
            prop_assert!(x < 10);
        }
    }
}
