//! Offline shim replacing the `serde` crate for this workspace.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors minimal replacements for external dependencies under `shims/`.
//! Real serde is a zero-copy visitor framework; this shim instead round
//! trips everything through an owned [`Value`] tree, which is completely
//! sufficient for the workspace's uses (JSON model checkpoints and
//! experiment artifacts) at a fraction of the machinery.
//!
//! The `derive` feature re-exports `#[derive(Serialize, Deserialize)]`
//! proc-macros from `serde_derive` that target these traits. Supported
//! shapes: named-field structs (with `#[serde(default)]` on fields),
//! newtype/tuple structs, and unit-variant enums — everything the
//! workspace derives.

use std::collections::HashMap;
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A dynamically-typed serialization tree (JSON data model).
///
/// Object fields keep insertion order so serialized artifacts are
/// deterministic and diffable.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    UInt(u64),
    /// Negative integer.
    Int(i64),
    /// Floating-point number (also carries non-finite values internally;
    /// JSON encodes those as `null`).
    Float(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up an object field by name.
    pub fn get_field(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => {
                fields.iter().find(|(k, _)| k == name).map(|(_, v)| v)
            }
            _ => None,
        }
    }

    /// Human-readable name of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::UInt(_) | Value::Int(_) => "integer",
            Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Serialization / deserialization failure.
#[derive(Clone, Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error with the given message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }

    /// Standard "missing field" error.
    pub fn missing_field(name: &str) -> Self {
        Self::custom(format!("missing field `{name}`"))
    }

    /// Standard type-mismatch error.
    pub fn type_mismatch(expected: &str, got: &Value) -> Self {
        Self::custom(format!("expected {expected}, got {}", got.kind()))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` to a value tree.
    fn to_value(&self) -> Value;
}

/// Types that can rebuild themselves from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parses a value tree into `Self`.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::UInt(x) => <$t>::try_from(*x)
                        .map_err(|_| Error::custom("unsigned integer out of range")),
                    Value::Int(x) => <$t>::try_from(*x)
                        .map_err(|_| Error::custom("negative value for unsigned integer")),
                    other => Err(Error::type_mismatch("integer", other)),
                }
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let x = *self as i64;
                if x >= 0 { Value::UInt(x as u64) } else { Value::Int(x) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::UInt(x) => <$t>::try_from(*x)
                        .map_err(|_| Error::custom("integer out of range")),
                    Value::Int(x) => <$t>::try_from(*x)
                        .map_err(|_| Error::custom("integer out of range")),
                    other => Err(Error::type_mismatch("integer", other)),
                }
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Float(x) => Ok(*x as $t),
                    Value::UInt(x) => Ok(*x as $t),
                    Value::Int(x) => Ok(*x as $t),
                    // Non-finite floats serialize as null (JSON has no
                    // representation); accept the round trip back.
                    Value::Null => Ok(<$t>::NAN),
                    other => Err(Error::type_mismatch("number", other)),
                }
            }
        }
    )*};
}
impl_serde_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::type_mismatch("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::type_mismatch("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

// ---------------------------------------------------------------------------
// Containers
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::type_mismatch("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+);)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                match v {
                    Value::Array(items) if items.len() == LEN => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    Value::Array(items) => Err(Error::custom(format!(
                        "expected {LEN}-tuple, got array of {}", items.len()
                    ))),
                    other => Err(Error::type_mismatch("array", other)),
                }
            }
        }
    )*};
}
impl_serde_tuple! {
    (A: 0);
    (A: 0, B: 1);
    (A: 0, B: 1, C: 2);
    (A: 0, B: 1, C: 2, D: 3);
    (A: 0, B: 1, C: 2, D: 3, E: 4);
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
}

/// Map keys encodable as JSON object keys (serde_json's behaviour for
/// integer-keyed maps: keys become strings).
pub trait MapKey: Sized + Eq + std::hash::Hash {
    /// Key to object-field string.
    fn to_key(&self) -> String;
    /// Object-field string back to key.
    fn from_key(s: &str) -> Result<Self, Error>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(s: &str) -> Result<Self, Error> {
        Ok(s.to_string())
    }
}

macro_rules! impl_map_key_int {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(s: &str) -> Result<Self, Error> {
                s.parse().map_err(|_| Error::custom(format!("invalid map key `{s}`")))
            }
        }
    )*};
}
impl_map_key_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: MapKey, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        // Sort keys for deterministic output (HashMap iteration order is
        // not stable across runs).
        let mut fields: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.to_key(), v.to_value())).collect();
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(fields)
    }
}

impl<K: MapKey, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
                .collect(),
            other => Err(Error::type_mismatch("object", other)),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(f32::from_value(&1.5f32.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(String::from_value(&"hi".to_string().to_value()).unwrap(), "hi");
    }

    #[test]
    fn negative_into_unsigned_fails() {
        assert!(usize::from_value(&Value::Int(-1)).is_err());
    }

    #[test]
    fn vec_and_tuple_round_trip() {
        let v = vec![(1usize, 2.5f32), (3, 4.5)];
        let got = Vec::<(usize, f32)>::from_value(&v.to_value()).unwrap();
        assert_eq!(got, v);
    }

    #[test]
    fn option_null_round_trip() {
        let some: Option<f64> = Some(2.0);
        let none: Option<f64> = None;
        assert_eq!(Option::<f64>::from_value(&some.to_value()).unwrap(), some);
        assert_eq!(Option::<f64>::from_value(&none.to_value()).unwrap(), none);
    }

    #[test]
    fn hashmap_uses_string_keys() {
        let mut m = HashMap::new();
        m.insert(10usize, 20usize);
        let v = m.to_value();
        assert_eq!(v.get_field("10"), Some(&Value::UInt(20)));
        let back = HashMap::<usize, usize>::from_value(&v).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn non_finite_floats_round_trip_via_null() {
        let v = f32::NAN.to_value();
        // to_value keeps the float; the JSON layer nulls it. Simulate:
        let got = f32::from_value(&Value::Null).unwrap();
        assert!(got.is_nan());
        match v {
            Value::Float(x) => assert!(x.is_nan()),
            other => panic!("unexpected {other:?}"),
        }
    }
}
