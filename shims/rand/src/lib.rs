//! Offline shim implementing the subset of the `rand` 0.8 API this
//! workspace uses: the [`Rng`] / [`SeedableRng`] traits, [`rngs::StdRng`],
//! uniform `gen` / `gen_range` / `gen_bool` sampling over the primitive
//! numeric types, and nothing else.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors minimal, behaviour-compatible (but *not* bit-compatible)
//! replacements for its external dependencies under `shims/`. Determinism
//! still holds: a given seed always produces the same stream.

/// Raw 64-bit generator core.
pub trait RngCore {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be drawn uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from the "standard" distribution of the type:
    /// `[0, 1)` for floats, the full range for integers, fair coin for
    /// `bool`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits -> [0, 1) with full f32 mantissa precision.
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform sampling inside a half-open or inclusive range.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Uniform draw from `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Uniform draw from `[low, high]`.
    fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self)
        -> Self;
}

macro_rules! impl_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "cannot sample empty range");
                let span = (high - low) as u64;
                low + (uniform_u64_below(rng, span) as $t)
            }
            fn sample_range_inclusive<R: RngCore + ?Sized>(
                rng: &mut R, low: Self, high: Self,
            ) -> Self {
                assert!(low <= high, "cannot sample empty range");
                let span = (high - low) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                low + (uniform_u64_below(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "cannot sample empty range");
                let span = (high as i64).wrapping_sub(low as i64) as u64;
                (low as i64).wrapping_add(uniform_u64_below(rng, span) as i64) as $t
            }
            fn sample_range_inclusive<R: RngCore + ?Sized>(
                rng: &mut R, low: Self, high: Self,
            ) -> Self {
                assert!(low <= high, "cannot sample empty range");
                let span = (high as i64).wrapping_sub(low as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (low as i64).wrapping_add(uniform_u64_below(rng, span + 1) as i64) as $t
            }
        }
    )*};
}
impl_uniform_int!(i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "cannot sample empty range");
                let u = <$t as Standard>::sample_standard(rng);
                let v = low + (high - low) * u;
                // Float rounding can land exactly on `high`; clamp back in.
                if v < high { v } else { prev_down(high, low) }
            }
            fn sample_range_inclusive<R: RngCore + ?Sized>(
                rng: &mut R, low: Self, high: Self,
            ) -> Self {
                assert!(low <= high, "cannot sample empty range");
                let u = <$t as Standard>::sample_standard(rng);
                low + (high - low) * u
            }
        }
    )*};
}
impl_uniform_float!(f32, f64);

fn prev_down<T: PartialOrd + Copy>(high: T, low: T) -> T {
    // Good enough for uniform sampling: return the low end on the
    // (measure-zero) rounding collision rather than biting exact bit math.
    let _ = high;
    low
}

/// Unbiased uniform draw from `[0, bound)` via Lemire-style rejection.
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    let zone = u64::MAX - (u64::MAX % bound) - 1;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

/// Argument of [`Rng::gen_range`]: a half-open or inclusive range.
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range_inclusive(rng, *self.start(), *self.end())
    }
}

/// User-facing random-sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of an inferred type (floats in `[0, 1)`, integers
    /// over their full range, fair `bool`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Uniform draw from a range.
    ///
    /// # Panics
    /// Panics on an empty range.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        <f64 as Standard>::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator
    /// (xoshiro256++-based; statistically strong, not cryptographic).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// Captures the raw xoshiro256++ state so a generator can be
        /// checkpointed mid-stream and later restored with
        /// [`StdRng::restore`].
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a state captured by [`StdRng::state`];
        /// the restored generator continues the exact same stream.
        ///
        /// The all-zero state is a fixed point of xoshiro256++ (it would
        /// emit zeros forever); it is replaced by the seed-0 expansion so a
        /// corrupted checkpoint cannot produce a degenerate generator.
        pub fn restore(s: [u64; 4]) -> Self {
            if s == [0; 4] {
                return Self::from_state(0);
            }
            Self { s }
        }

        fn from_state(mut sm: u64) -> Self {
            // SplitMix64 expansion of the seed, per the xoshiro reference.
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            Self { s }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self::from_state(seed)
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 4);
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f32 = r.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f64 = r.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let i = r.gen_range(3usize..17);
            assert!((3..17).contains(&i));
            let j = r.gen_range(0usize..=5);
            assert!(j <= 5);
            let f = r.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
            let g = r.gen_range(1.5f64..=2.5);
            assert!((1.5..=2.5).contains(&g));
        }
    }

    #[test]
    fn gen_range_hits_both_inclusive_endpoints() {
        let mut r = StdRng::seed_from_u64(5);
        let mut seen = [false; 3];
        for _ in 0..1000 {
            seen[r.gen_range(0usize..=2)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_probability_roughly_respected() {
        let mut r = StdRng::seed_from_u64(6);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn works_through_mut_references() {
        fn takes_impl(rng: &mut impl Rng) -> f32 {
            rng.gen()
        }
        let mut r = StdRng::seed_from_u64(8);
        let x = takes_impl(&mut r);
        assert!((0.0..1.0).contains(&x));
    }
}
