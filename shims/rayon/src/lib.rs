//! Offline shim implementing the subset of the `rayon` API this workspace
//! uses, backed by a persistent worker-thread pool with dynamic task
//! scheduling.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors minimal replacements for external dependencies under `shims/`.
//! This one provides real data parallelism:
//!
//! - `(range | vec | slice).into_par_iter() / par_iter()` followed by
//!   `map` / `filter` chains and `collect` / `min_by` / `max_by` / `sum` /
//!   `for_each` terminals;
//! - `slice.par_chunks_mut(n).for_each(..)` (used by the tiled matmul);
//! - [`join`] for two-way fork-join;
//! - [`current_num_threads`], honouring `RAYON_NUM_THREADS`.
//!
//! Scheduling: worker threads are spawned once and parked on a condvar,
//! so dispatch latency is a wake-up rather than a thread spawn — this is
//! what makes parallelising sub-millisecond kernels (the tiled matmul row
//! blocks) profitable. Tasks are pulled off a shared atomic counter, so
//! threads that finish early steal the remaining work — cheap dynamic
//! load balancing in the spirit of rayon's work stealing. Nested
//! parallel calls (from inside a worker or an active caller) run inline
//! serially instead of deadlocking, mirroring how rayon degrades.

use std::sync::{Mutex, OnceLock};

/// Everything a caller needs in scope, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, ParallelSliceMut, Pipeline,
    };
}

/// Number of worker threads used by every parallel operation.
///
/// Reads `RAYON_NUM_THREADS` once; defaults to the machine's available
/// parallelism.
pub fn current_num_threads() -> usize {
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| {
        std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
            })
    })
}

/// The persistent pool: workers parked on a condvar, one broadcast job
/// slot, an atomic task counter per job.
mod pool {
    use std::cell::Cell;
    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::sync::{Condvar, Mutex, OnceLock};

    /// Per-job state shared between the caller and the workers. Lives on
    /// the caller's stack; the caller does not return until every worker
    /// has signalled completion, so the raw pointer handed to workers
    /// never dangles while in use.
    struct Shared {
        /// Lifetime-erased borrow of the caller's closure; valid because
        /// the caller outlives the job (see `run`).
        f: &'static (dyn Fn(usize) + Sync),
        next: AtomicUsize,
        n_tasks: usize,
        panicked: AtomicBool,
        remaining: Mutex<usize>,
        done: Condvar,
    }

    #[derive(Clone, Copy)]
    struct Job {
        seq: u64,
        /// `*const Shared` smuggled as usize (thin pointer).
        shared: usize,
    }

    struct Pool {
        workers: usize,
        job: Mutex<Job>,
        work_cv: Condvar,
        /// Serializes concurrent parallel ops from independent threads and
        /// hands out job sequence numbers.
        run_lock: Mutex<u64>,
    }

    thread_local! {
        /// True on pool workers and on callers currently inside `run`;
        /// nested parallelism degrades to inline serial execution.
        static IN_PARALLEL: Cell<bool> = const { Cell::new(false) };
    }

    fn get() -> &'static Pool {
        static P: OnceLock<Pool> = OnceLock::new();
        P.get_or_init(|| {
            let workers = super::current_num_threads().saturating_sub(1);
            Pool {
                workers,
                job: Mutex::new(Job { seq: 0, shared: 0 }),
                work_cv: Condvar::new(),
                run_lock: Mutex::new(0),
            }
        })
    }

    /// Lazily spawns the detached worker threads (only once).
    fn ensure_workers(pool: &'static Pool) {
        static SPAWNED: OnceLock<()> = OnceLock::new();
        SPAWNED.get_or_init(|| {
            for w in 0..pool.workers {
                std::thread::Builder::new()
                    .name(format!("rayon-shim-{w}"))
                    .spawn(move || worker_loop(pool))
                    .expect("rayon shim: failed to spawn worker");
            }
        });
    }

    fn worker_loop(pool: &'static Pool) {
        IN_PARALLEL.with(|f| f.set(true));
        let mut last_seq = 0u64;
        loop {
            let job = {
                let mut guard = pool.job.lock().expect("rayon shim: job lock poisoned");
                loop {
                    if guard.seq != last_seq {
                        break *guard;
                    }
                    guard = pool
                        .work_cv
                        .wait(guard)
                        .expect("rayon shim: job lock poisoned");
                }
            };
            last_seq = job.seq;
            // Safe: the posting caller blocks until `remaining` hits zero,
            // so `Shared` outlives this use.
            let shared = unsafe { &*(job.shared as *const Shared) };
            if catch_unwind(AssertUnwindSafe(|| run_tasks(shared))).is_err() {
                shared.panicked.store(true, Ordering::SeqCst);
            }
            let mut rem = shared
                .remaining
                .lock()
                .expect("rayon shim: completion lock poisoned");
            *rem -= 1;
            if *rem == 0 {
                shared.done.notify_one();
            }
        }
    }

    fn run_tasks(shared: &Shared) {
        let f = shared.f;
        loop {
            let i = shared.next.fetch_add(1, Ordering::Relaxed);
            if i >= shared.n_tasks {
                break;
            }
            f(i);
        }
    }

    /// Runs `f(0..n_tasks)` across the pool (caller participates), with
    /// dynamic assignment of task indices. Falls back to an inline serial
    /// loop for tiny jobs, single-thread configs, and nested calls.
    pub fn run(n_tasks: usize, f: &(dyn Fn(usize) + Sync)) {
        if n_tasks == 0 {
            return;
        }
        let nested = IN_PARALLEL.with(|g| g.get());
        if n_tasks == 1 || nested || super::current_num_threads() <= 1 {
            for i in 0..n_tasks {
                f(i);
            }
            return;
        }
        let pool = get();
        if pool.workers == 0 {
            for i in 0..n_tasks {
                f(i);
            }
            return;
        }
        ensure_workers(pool);

        let mut seq_guard = pool.run_lock.lock().expect("rayon shim: run lock poisoned");
        *seq_guard += 1;
        let shared = Shared {
            // Safe: `run` blocks until every worker is done with the job.
            f: unsafe {
                std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(f)
            },
            next: AtomicUsize::new(0),
            n_tasks,
            panicked: AtomicBool::new(false),
            remaining: Mutex::new(pool.workers),
            done: Condvar::new(),
        };
        {
            let mut job = pool.job.lock().expect("rayon shim: job lock poisoned");
            *job = Job { seq: *seq_guard, shared: &shared as *const Shared as usize };
            pool.work_cv.notify_all();
        }

        IN_PARALLEL.with(|g| g.set(true));
        let caller_result = catch_unwind(AssertUnwindSafe(|| run_tasks(&shared)));
        IN_PARALLEL.with(|g| g.set(false));

        // Wait for every worker before `shared` leaves scope.
        let mut rem = shared
            .remaining
            .lock()
            .expect("rayon shim: completion lock poisoned");
        while *rem != 0 {
            rem = shared.done.wait(rem).expect("rayon shim: completion lock poisoned");
        }
        drop(rem);
        drop(seq_guard);

        if let Err(payload) = caller_result {
            resume_unwind(payload);
        }
        if shared.panicked.load(Ordering::SeqCst) {
            panic!("rayon shim: a parallel task panicked on a worker thread");
        }
    }
}

/// Runs both closures, potentially in parallel, and returns both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        return (a(), b());
    }
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        let rb = hb.join().expect("rayon shim: joined closure panicked");
        (ra, rb)
    })
}

/// A lazy parallel pipeline: a materialized item list plus a fused
/// `filter`/`map` stage applied on worker threads.
pub struct Pipeline<T, R, F: Fn(T) -> Option<R>> {
    items: Vec<T>,
    f: F,
}

/// Minimum items per scheduling chunk; amortizes the atomic fetch.
const MIN_CHUNK: usize = 16;

impl<T, R, F> Pipeline<T, R, F>
where
    T: Sync + Send + Clone,
    R: Send,
    F: Fn(T) -> Option<R> + Sync,
{
    /// Maps each surviving item through `g` (parallel, like rayon's
    /// `ParallelIterator::map`).
    pub fn map<S, G>(self, g: G) -> Pipeline<T, S, impl Fn(T) -> Option<S>>
    where
        G: Fn(R) -> S + Sync,
        S: Send,
    {
        let f = self.f;
        Pipeline { items: self.items, f: move |t| f(t).map(&g) }
    }

    /// Drops items failing the predicate.
    pub fn filter<P>(self, p: P) -> Pipeline<T, R, impl Fn(T) -> Option<R>>
    where
        P: Fn(&R) -> bool + Sync,
    {
        let f = self.f;
        Pipeline { items: self.items, f: move |t| f(t).filter(|x| p(x)) }
    }

    /// Executes the pipeline, preserving input order of surviving items.
    fn run(self) -> Vec<R> {
        let n = self.items.len();
        let threads = current_num_threads();
        if threads <= 1 || n <= MIN_CHUNK {
            return self.items.into_iter().filter_map(self.f).collect();
        }
        let chunk = (n / (threads * 8)).max(MIN_CHUNK);
        let n_chunks = n.div_ceil(chunk);
        let slots: Vec<Mutex<Vec<Option<R>>>> =
            (0..n_chunks).map(|_| Mutex::new(Vec::new())).collect();
        let items = &self.items;
        let f = &self.f;
        pool::run(n_chunks, &|ci| {
            let start = ci * chunk;
            let end = (start + chunk).min(n);
            let out: Vec<Option<R>> = items[start..end].iter().map(|t| f(t.clone())).collect();
            *slots[ci].lock().expect("rayon shim: slot poisoned") = out;
        });
        slots
            .into_iter()
            .flat_map(|m| m.into_inner().expect("rayon shim: slot poisoned"))
            .flatten()
            .collect()
    }

    /// Collects surviving items in input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        self.run().into_iter().collect()
    }

    /// Minimum by comparator, or `None` when nothing survives.
    pub fn min_by(self, cmp: impl Fn(&R, &R) -> std::cmp::Ordering) -> Option<R> {
        self.run().into_iter().min_by(|a, b| cmp(a, b))
    }

    /// Maximum by comparator, or `None` when nothing survives.
    pub fn max_by(self, cmp: impl Fn(&R, &R) -> std::cmp::Ordering) -> Option<R> {
        self.run().into_iter().max_by(|a, b| cmp(a, b))
    }

    /// Sum of surviving items.
    pub fn sum<S: std::iter::Sum<R>>(self) -> S {
        self.run().into_iter().sum()
    }

    /// Applies `op` to every surviving item (for its side effects on
    /// captured state; runs on worker threads).
    pub fn for_each(self, op: impl Fn(R) + Sync) {
        self.map(op).run();
    }

    /// Number of surviving items.
    pub fn count(self) -> usize {
        self.run().len()
    }
}

fn identity_pipeline<T>(items: Vec<T>) -> Pipeline<T, T, fn(T) -> Option<T>> {
    Pipeline { items, f: Some }
}

/// Conversion into a parallel pipeline by value, mirroring
/// `rayon::iter::IntoParallelIterator`.
pub trait IntoParallelIterator {
    /// Item type produced by the pipeline.
    type Item: Send;
    /// Starts a pipeline over the items.
    #[allow(clippy::type_complexity)]
    fn into_par_iter(self) -> Pipeline<Self::Item, Self::Item, fn(Self::Item) -> Option<Self::Item>>;
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> Pipeline<usize, usize, fn(usize) -> Option<usize>> {
        identity_pipeline(self.collect())
    }
}

impl<T: Send + Sync + Clone> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> Pipeline<T, T, fn(T) -> Option<T>> {
        identity_pipeline(self)
    }
}

/// Conversion into a parallel pipeline over references, mirroring
/// `rayon::iter::IntoParallelRefIterator`.
pub trait IntoParallelRefIterator<'a> {
    /// Reference item type.
    type Item: Send;
    /// Starts a pipeline over `&self`'s items.
    #[allow(clippy::type_complexity)]
    fn par_iter(&'a self) -> Pipeline<Self::Item, Self::Item, fn(Self::Item) -> Option<Self::Item>>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> Pipeline<&'a T, &'a T, fn(&'a T) -> Option<&'a T>> {
        identity_pipeline(self.iter().collect())
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> Pipeline<&'a T, &'a T, fn(&'a T) -> Option<&'a T>> {
        identity_pipeline(self.iter().collect())
    }
}

/// Parallel mutable chunk iteration, mirroring `rayon::slice::ParallelSliceMut`.
pub trait ParallelSliceMut<T: Send> {
    /// Splits into disjoint mutable chunks of `size` elements (last chunk
    /// may be shorter).
    fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T> {
        assert!(size > 0, "chunk size must be positive");
        ParChunksMut { chunks: self.chunks_mut(size).collect() }
    }
}

/// Disjoint mutable chunks awaiting a `for_each`.
pub struct ParChunksMut<'a, T: Send> {
    chunks: Vec<&'a mut [T]>,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Runs `op` over every chunk on the worker pool. Chunks are handed
    /// out dynamically, so uneven per-chunk cost still balances.
    pub fn for_each(self, op: impl Fn(&mut [T]) + Sync) {
        self.enumerate_for_each(|_, c| op(c));
    }

    /// Like [`ParChunksMut::for_each`], passing the chunk index too.
    pub fn enumerate_for_each(self, op: impl Fn(usize, &mut [T]) + Sync) {
        let n = self.chunks.len();
        if current_num_threads() <= 1 || n <= 1 {
            for (i, c) in self.chunks.into_iter().enumerate() {
                op(i, c);
            }
            return;
        }
        // Erase the borrows so tasks can pick chunks by index; each index
        // is claimed by exactly one task, so exclusivity is preserved.
        let meta: Vec<(usize, usize)> = self
            .chunks
            .into_iter()
            .map(|c| (c.as_mut_ptr() as usize, c.len()))
            .collect();
        let meta = &meta;
        pool::run(n, &|i| {
            let (ptr, len) = meta[i];
            let chunk = unsafe { std::slice::from_raw_parts_mut(ptr as *mut T, len) };
            op(i, chunk);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn range_map_collect_preserves_order() {
        let out: Vec<usize> = (0..1000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out.len(), 1000);
        assert!(out.iter().enumerate().all(|(i, &v)| v == i * 2));
    }

    #[test]
    fn filter_then_map() {
        let out: Vec<usize> =
            (0..100).into_par_iter().filter(|i| i % 3 == 0).map(|i| i + 1).collect();
        let expect: Vec<usize> = (0..100).filter(|i| i % 3 == 0).map(|i| i + 1).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn min_max_by_match_sequential() {
        let v: Vec<f64> = (0..500).map(|i| ((i * 37) % 113) as f64).collect();
        let par_min = v.par_iter().map(|&x| x).min_by(|a, b| a.total_cmp(b));
        let par_max = v.par_iter().map(|&x| x).max_by(|a, b| a.total_cmp(b));
        assert_eq!(par_min, v.iter().copied().min_by(|a, b| a.total_cmp(b)));
        assert_eq!(par_max, v.iter().copied().max_by(|a, b| a.total_cmp(b)));
    }

    #[test]
    fn sum_matches_sequential() {
        let s: usize = (0..10_000).into_par_iter().sum();
        assert_eq!(s, (0..10_000).sum());
    }

    #[test]
    fn par_chunks_mut_touches_every_chunk_once() {
        let mut data = vec![0u32; 1037];
        data.par_chunks_mut(64).for_each(|c| {
            for x in c {
                *x += 1;
            }
        });
        assert!(data.iter().all(|&x| x == 1));
    }

    #[test]
    fn enumerate_for_each_sees_correct_indices() {
        let mut data = vec![0usize; 256];
        data.par_chunks_mut(16).enumerate_for_each(|i, c| {
            for x in c {
                *x = i;
            }
        });
        for (j, &v) in data.iter().enumerate() {
            assert_eq!(v, j / 16);
        }
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 1 + 1, || "x".to_string() + "y");
        assert_eq!(a, 2);
        assert_eq!(b, "xy");
    }

    #[test]
    fn empty_pipeline_is_fine() {
        let out: Vec<usize> = (0..0).into_par_iter().map(|i| i).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn nested_parallelism_degrades_gracefully() {
        let out: Vec<usize> = (0..200)
            .into_par_iter()
            .map(|i| {
                let inner: usize = (0..50).into_par_iter().map(|j| i + j).sum();
                inner
            })
            .collect();
        let expect: Vec<usize> =
            (0..200).map(|i| (0..50).map(|j| i + j).sum::<usize>()).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn concurrent_callers_from_independent_threads() {
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|t| {
                    s.spawn(move || {
                        let v: usize = (0..5_000).into_par_iter().map(|i| i + t).sum();
                        v
                    })
                })
                .collect();
            for (t, h) in handles.into_iter().enumerate() {
                let got = h.join().unwrap();
                let expect: usize = (0..5_000).map(|i| i + t).sum();
                assert_eq!(got, expect);
            }
        });
    }

    #[test]
    fn repeated_small_jobs_reuse_the_pool() {
        // Exercises the wake/park path many times; would be prohibitively
        // slow with per-call thread spawning.
        for round in 0..2_000usize {
            let s: usize = (0..64).into_par_iter().map(|i| i * round).sum();
            assert_eq!(s, (0..64).map(|i| i * round).sum());
        }
    }
}
