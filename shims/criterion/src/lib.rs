//! Offline shim replacing the `criterion` crate for this workspace.
//!
//! Implements the harness subset the `e2dtc-bench` benches use:
//! [`criterion_group!`] / [`criterion_main!`], [`Criterion`] with
//! `bench_function` / `benchmark_group`, groups with `sample_size` /
//! `bench_with_input` / `finish`, [`BenchmarkId`], and `Bencher::iter`.
//!
//! Mode follows real criterion's convention for `harness = false`
//! targets: when the binary receives `--bench` (what `cargo bench`
//! passes) it measures and reports; otherwise — including
//! `cargo bench -- --test` and `cargo test --benches`, which pass
//! `--test` — each benchmark body runs once as a smoke test.
//!
//! Measurement is a plain warm-up + fixed-sample-count wall-clock timer
//! (no outlier analysis or HTML reports); it prints min / median / mean
//! per benchmark, which is enough to compare kernels before and after an
//! optimisation on the same machine.

use std::time::{Duration, Instant};

/// Returns true when the binary should actually measure (invoked by
/// `cargo bench`, i.e. with `--bench` and without `--test`).
fn measuring() -> bool {
    let mut saw_bench = false;
    for a in std::env::args() {
        match a.as_str() {
            "--bench" => saw_bench = true,
            "--test" => return false,
            _ => {}
        }
    }
    saw_bench
}

/// Optional substring filters from the command line (any bare argument
/// that is not a flag); empty means "run everything".
fn filters() -> Vec<String> {
    std::env::args()
        .skip(1)
        .filter(|a| !a.starts_with('-'))
        .collect()
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    measure: bool,
    filters: Vec<String>,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            measure: measuring(),
            filters: filters(),
            sample_size: 60,
        }
    }
}

impl Criterion {
    /// Runs one free-standing benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let sample_size = self.sample_size;
        self.run(id.to_string(), sample_size, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
        }
    }

    fn run(&mut self, id: String, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
        if !self.filters.is_empty() && !self.filters.iter().any(|flt| id.contains(flt.as_str())) {
            return;
        }
        let mut b = Bencher {
            measure: self.measure,
            sample_size,
            report: None,
        };
        f(&mut b);
        match b.report {
            Some(report) if self.measure => {
                println!(
                    "{id:<44} time: [{} {} {}]  ({} samples x {} iters)",
                    fmt_time(report.min),
                    fmt_time(report.median),
                    fmt_time(report.mean),
                    report.samples,
                    report.iters_per_sample,
                );
            }
            _ => println!("Testing {id} ... ok"),
        }
    }
}

/// A group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timing samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<I: IntoBenchmarkId, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_benchmark_id().id);
        let sample_size = self.sample_size.unwrap_or(self.criterion.sample_size);
        self.criterion.run(full, sample_size, &mut f);
        self
    }

    /// Runs one benchmark parameterised by a borrowed input.
    pub fn bench_with_input<I, ID: IntoBenchmarkId, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: ID,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Benchmark identifier (`name/parameter`), mirroring `criterion::BenchmarkId`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// Values usable as benchmark ids.
pub trait IntoBenchmarkId {
    /// Converts to a concrete [`BenchmarkId`].
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self.to_string() }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self }
    }
}

struct Report {
    min: Duration,
    median: Duration,
    mean: Duration,
    samples: usize,
    iters_per_sample: u64,
}

/// Timing loop handle passed to each benchmark body.
pub struct Bencher {
    measure: bool,
    sample_size: usize,
    report: Option<Report>,
}

impl Bencher {
    /// Times the routine (or runs it once in smoke-test mode).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if !self.measure {
            std::hint::black_box(routine());
            return;
        }

        // Warm-up and per-iteration estimate: run for ~0.4s.
        let warmup = Duration::from_millis(400);
        let start = Instant::now();
        let mut warm_iters: u64 = 0;
        while start.elapsed() < warmup {
            std::hint::black_box(routine());
            warm_iters += 1;
        }
        let est_iter = start.elapsed().as_secs_f64() / warm_iters as f64;

        // Size samples so total measurement lands near ~1.5s.
        let budget = 1.5f64;
        let per_sample = budget / self.sample_size as f64;
        let iters_per_sample = ((per_sample / est_iter).round() as u64).max(1);

        let mut samples: Vec<Duration> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(routine());
            }
            samples.push(t.elapsed() / iters_per_sample as u32);
        }
        samples.sort();
        let min = samples[0];
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
        self.report = Some(Report {
            min,
            median,
            mean,
            samples: self.sample_size,
            iters_per_sample,
        });
    }
}

fn fmt_time(d: Duration) -> String {
    let ns = d.as_nanos() as f64;
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} \u{b5}s", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Re-export matching `criterion::black_box` (deprecated upstream in
/// favour of `std::hint::black_box`, which the workspace benches use).
pub use std::hint::black_box;

/// Bundles benchmark functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running one or more [`criterion_group!`]s.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_body_once() {
        // Unit tests never see `--bench`, so this exercises smoke mode.
        let mut c = Criterion::default();
        assert!(!c.measure);
        let mut runs = 0;
        c.bench_function("noop", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 1);
    }

    #[test]
    fn group_ids_join_with_slash() {
        assert_eq!(BenchmarkId::new("pam", 64).into_benchmark_id().id, "pam/64");
    }

    #[test]
    fn time_formatting_scales() {
        assert_eq!(fmt_time(Duration::from_nanos(500)), "500.0 ns");
        assert_eq!(fmt_time(Duration::from_micros(1500)), "1.50 ms");
    }
}
