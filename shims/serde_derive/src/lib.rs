//! Offline shim replacing the `serde_derive` proc-macro crate.
//!
//! Generates impls of the vendored `serde` shim's `Serialize` /
//! `Deserialize` value-tree traits. Because the environment has no
//! crates.io access, this parses the item token stream by hand (no
//! `syn` / `quote`) and supports exactly the shapes this workspace
//! derives on: named-field structs (with `#[serde(default)]`),
//! newtype structs, and unit-variant enums.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the shim `Serialize` trait (`fn to_value(&self) -> Value`).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("serde_derive: generated invalid Rust")
}

/// Derives the shim `Deserialize` trait (`fn from_value(&Value) -> Result<Self, Error>`).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("serde_derive: generated invalid Rust")
}

struct Item {
    name: String,
    kind: Kind,
}

enum Kind {
    /// `struct S { a: T, #[serde(default)] b: U, ... }`
    Struct(Vec<Field>),
    /// `struct S(T);`
    Newtype,
    /// `enum E { A, B, ... }`
    UnitEnum(Vec<String>),
}

struct Field {
    name: String,
    default: bool,
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes (incl. doc comments) and visibility.
    skip_attrs_and_vis(&tokens, &mut i);

    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, got {other:?}"),
    };
    i += 1;

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected type name, got {other:?}"),
    };
    i += 1;

    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive shim: generic types are not supported (`{name}`)");
    }

    match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item {
                name,
                kind: Kind::Struct(parse_named_fields(g.stream())),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                if n != 1 {
                    panic!(
                        "serde_derive shim: only newtype tuple structs are supported \
                         (`{name}` has {n} fields)"
                    );
                }
                Item { name, kind: Kind::Newtype }
            }
            other => panic!("serde_derive: unexpected token after `struct {name}`: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let variants = parse_unit_variants(g.stream(), &name);
                Item { name, kind: Kind::UnitEnum(variants) }
            }
            other => panic!("serde_derive: unexpected token after `enum {name}`: {other:?}"),
        },
        kw => panic!("serde_derive shim: unsupported item kind `{kw}`"),
    }
}

fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#[...]` — attribute; the bracket group is one token.
                *i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                // `pub(crate)` / `pub(in ...)` — skip the paren group.
                if matches!(
                    tokens.get(*i),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Scans attributes at position `i`, advancing past them; returns whether a
/// `#[serde(default)]` was among them.
fn scan_field_attrs(tokens: &[TokenTree], i: &mut usize) -> bool {
    let mut default = false;
    while matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        if let Some(TokenTree::Group(g)) = tokens.get(*i + 1) {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            if matches!(inner.first(), Some(TokenTree::Ident(id)) if id.to_string() == "serde") {
                if let Some(TokenTree::Group(args)) = inner.get(1) {
                    for t in args.stream() {
                        if matches!(&t, TokenTree::Ident(id) if id.to_string() == "default") {
                            default = true;
                        }
                    }
                }
            }
        }
        *i += 2;
    }
    default
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let default = scan_field_attrs(&tokens, &mut i);
        skip_attrs_and_vis(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive: expected field name, got {other:?}"),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive: expected `:` after field `{name}`, got {other:?}"),
        }
        // Skip the type: consume until a comma at angle-bracket depth 0.
        // `<` / `>` are loose puncts in the token stream, so generic args
        // like `HashMap<usize, usize>` need explicit depth tracking.
        let mut angle_depth = 0i32;
        while let Some(t) = tokens.get(i) {
            if let TokenTree::Punct(p) = t {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
        fields.push(Field { name, default });
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut angle_depth = 0i32;
    let mut commas = 0;
    let mut trailing_comma = false;
    for t in &tokens {
        trailing_comma = false;
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    commas += 1;
                    trailing_comma = true;
                }
                _ => {}
            }
        }
    }
    commas + if trailing_comma { 0 } else { 1 }
}

fn parse_unit_variants(stream: TokenStream, enum_name: &str) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        scan_field_attrs(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive: expected variant name, got {other:?}"),
        };
        i += 1;
        match tokens.get(i) {
            None => {}
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            other => panic!(
                "serde_derive shim: enum `{enum_name}` variant `{name}` is not a unit \
                 variant (got {other:?}); only unit-variant enums are supported"
            ),
        }
        variants.push(name);
    }
    variants
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(fields) => {
            let mut pushes = String::new();
            for f in fields {
                pushes.push_str(&format!(
                    "fields.push((\"{n}\".to_string(), \
                     ::serde::Serialize::to_value(&self.{n})));\n",
                    n = f.name
                ));
            }
            format!(
                "let mut fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                 ::std::vec::Vec::with_capacity({cap});\n{pushes}\
                 ::serde::Value::Object(fields)",
                cap = fields.len()
            )
        }
        Kind::Newtype => "::serde::Serialize::to_value(&self.0)".to_string(),
        Kind::UnitEnum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("Self::{v} => ::serde::Value::Str(\"{v}\".to_string()),\n"))
                .collect();
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
            fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
        }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(fields) => {
            let mut inits = String::new();
            for f in fields {
                let fallback = if f.default {
                    "::std::default::Default::default()".to_string()
                } else {
                    format!("return Err(::serde::Error::missing_field(\"{}\"))", f.name)
                };
                inits.push_str(&format!(
                    "{n}: match v.get_field(\"{n}\") {{\n\
                        Some(x) => ::serde::Deserialize::from_value(x)?,\n\
                        None => {fallback},\n\
                     }},\n",
                    n = f.name
                ));
            }
            format!(
                "if !matches!(v, ::serde::Value::Object(_)) {{\n\
                     return Err(::serde::Error::type_mismatch(\"object\", v));\n\
                 }}\n\
                 Ok(Self {{\n{inits}}})"
            )
        }
        Kind::Newtype => "Ok(Self(::serde::Deserialize::from_value(v)?))".to_string(),
        Kind::UnitEnum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("\"{v}\" => Ok(Self::{v}),\n"))
                .collect();
            format!(
                "match v {{\n\
                    ::serde::Value::Str(s) => match s.as_str() {{\n\
                        {arms}\
                        other => Err(::serde::Error::custom(::std::format!(\n\
                            \"unknown variant `{{}}` of `{name}`\", other))),\n\
                    }},\n\
                    other => Err(::serde::Error::type_mismatch(\"string\", other)),\n\
                }}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
            fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                {body}\n\
            }}\n\
        }}"
    )
}
