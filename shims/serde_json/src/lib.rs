//! Offline shim replacing the `serde_json` crate for this workspace.
//!
//! Serializes the vendored `serde` shim's [`Value`] tree to JSON text and
//! parses JSON text back. Covers the workspace's entry points:
//! [`to_string`], [`to_string_pretty`], [`to_writer`], [`to_writer_pretty`],
//! [`from_str`], [`from_reader`].
//!
//! Numbers: unsigned/signed integers are printed and re-parsed exactly
//! (u64 seeds survive round trips); floats are printed with Rust's `{:?}`
//! formatting, which emits the shortest string that round-trips the exact
//! bit pattern. Non-finite floats become `null`, matching serde_json.

use std::fmt;
use std::io::{Read, Write};

use serde::{Deserialize, Serialize, Value};

/// JSON serialization / parsing failure.
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Self::new(e.to_string())
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Self::new(e.to_string())
    }
}

/// Shorthand matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes to human-readable, two-space-indented JSON text.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Serializes compact JSON into a writer.
pub fn to_writer<W: Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<()> {
    writer.write_all(to_string(value)?.as_bytes())?;
    Ok(())
}

/// Serializes pretty-printed JSON into a writer.
pub fn to_writer_pretty<W: Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<()> {
    writer.write_all(to_string_pretty(value)?.as_bytes())?;
    Ok(())
}

/// Parses a value from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    Ok(T::from_value(&parse_value_str(s)?)?)
}

/// Parses a value from a JSON reader (reads to end first; the workspace
/// only deserializes whole files).
pub fn from_reader<R: Read, T: Deserialize>(mut reader: R) -> Result<T> {
    let mut text = String::new();
    reader.read_to_string(&mut text)?;
    from_str(&text)
}

/// Parses JSON text into a raw [`Value`] tree.
pub fn parse_value_str(s: &str) -> Result<Value> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

// ---------------------------------------------------------------------------
// Printer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::UInt(x) => out.push_str(&x.to_string()),
        Value::Int(x) => out.push_str(&x.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                // `{:?}` gives the shortest representation that parses back
                // to the same f64 and always includes `.` or `e`.
                out.push_str(&format!("{x:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("invalid literal (expected `{word}`)")))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(&format!("unexpected character `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect `\uXXXX` low half.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Copy a full UTF-8 scalar (input is a valid &str).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        let negative = self.peek() == Some(b'-');
        if negative {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        if !is_float {
            // Keep integers exact: u64 for non-negative, i64 for negative.
            if negative {
                if let Ok(i) = text.parse::<i64>() {
                    return Ok(Value::Int(i));
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_compact_and_pretty() {
        let v = Value::Object(vec![
            ("a".into(), Value::UInt(1)),
            ("b".into(), Value::Array(vec![Value::Float(1.5), Value::Null])),
            ("c".into(), Value::Str("x\n\"y\"".into())),
        ]);
        for text in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            assert_eq!(parse_value_str(&text).unwrap(), v);
        }
    }

    #[test]
    fn integers_survive_exactly() {
        let seed = u64::MAX - 3;
        let text = to_string(&seed).unwrap();
        let back: u64 = from_str(&text).unwrap();
        assert_eq!(back, seed);
        let neg: i64 = from_str("-42").unwrap();
        assert_eq!(neg, -42);
    }

    #[test]
    fn floats_survive_bit_exactly() {
        for x in [0.1f64, 1.0 / 3.0, f64::MIN_POSITIVE, 1e300, -2.5e-7] {
            let text = to_string(&x).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{text}");
        }
    }

    #[test]
    fn f32_values_round_trip() {
        for x in [0.1f32, f32::MIN_POSITIVE, 3.4e38, -1.5e-20] {
            let text = to_string(&x).unwrap();
            let back: f32 = from_str(&text).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{text}");
        }
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
        let back: f64 = from_str("null").unwrap();
        assert!(back.is_nan());
    }

    #[test]
    fn unicode_escapes_parse() {
        let s: String = from_str(r#""A😀""#).unwrap();
        assert_eq!(s, "A\u{1F600}");
    }

    #[test]
    fn writer_reader_round_trip() {
        let data = vec![(1usize, 2.5f32), (3, -0.25)];
        let mut buf = Vec::new();
        to_writer_pretty(&mut buf, &data).unwrap();
        let back: Vec<(usize, f32)> = from_reader(buf.as_slice()).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<u64>("12 34").is_err());
    }
}
